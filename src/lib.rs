//! `uavca` — validation tooling for UAV collision avoidance systems
//! developed by model-based optimization.
//!
//! A from-scratch Rust reproduction of Zou, Alexander & McDermid, *"On the
//! Validation of a UAV Collision Avoidance System Developed by Model-Based
//! Optimization: Challenges and a Tentative Partial Solution"* (DSN 2016).
//!
//! This facade crate re-exports the whole stack under stable module names:
//!
//! | Module | Crate | Contents |
//! |--------|-------|----------|
//! | [`mdp`] | `uavca-mdp` | MDPs, value/policy iteration, backward induction, interpolation grids |
//! | [`sim`] | `uavca-sim` | agent-based 3-D encounter simulation, ADS-B noise, coordination, monitors |
//! | [`encounter`] | `uavca-encounter` | 9-parameter CPA encoding, scenario generation, geometry classes, statistical model, stratification |
//! | [`evo`] | `uavca-evo` | genetic algorithm engine, random-search and hill-climbing baselines |
//! | [`acasx`] | `uavca-acasx` | the ACAS XU-like vertical logic (offline solve + online lookup) |
//! | [`ca2d`] | `uavca-ca2d` | the paper's Section III 2-D teaching example |
//! | [`svo`] | `uavca-svo` | the Selective Velocity Obstacle baseline and its 2-D simulation |
//! | [`validation`] | `uavca-validation` | the GA search harness, fitness functions, Monte-Carlo estimation, adaptive stratified campaigns, clustering |
//! | [`serve`] | `uavca-serve` | the sharded campaign service: wire protocol, channel/TCP transports, shard fleet backend, server + client |
//!
//! # Quickstart
//!
//! Search a small budget of encounters for situations the avoidance logic
//! handles poorly:
//!
//! ```no_run
//! use uavca::validation::{EncounterRunner, SearchConfig, SearchHarness};
//!
//! let runner = EncounterRunner::with_default_table();
//! let outcome = SearchHarness::new(runner, SearchConfig::default()).run_ga();
//! for s in outcome.top_scenarios.iter().take(5) {
//!     println!("{} fitness={:.0}", s.class, s.fitness);
//! }
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios and `DESIGN.md` /
//! `EXPERIMENTS.md` for the experiment index.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub use uavca_acasx as acasx;
pub use uavca_ca2d as ca2d;
pub use uavca_encounter as encounter;
pub use uavca_evo as evo;
pub use uavca_mdp as mdp;
pub use uavca_serve as serve;
pub use uavca_sim as sim;
pub use uavca_svo as svo;
pub use uavca_validation as validation;
