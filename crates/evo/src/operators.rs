use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::{Bounds, Population};

/// Parent selection schemes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Selection {
    /// Pick the best of `size` uniformly drawn members. The default; strong,
    /// scale-free selection pressure.
    Tournament {
        /// Tournament size (≥ 1; 1 degenerates to uniform selection).
        size: usize,
    },
    /// Fitness-proportionate selection; fitness is shifted so the minimum
    /// maps to a small positive weight (handles negative fitness).
    RouletteWheel,
    /// Linear ranking: the best member gets twice the sampling weight of
    /// the median, the worst gets (almost) none.
    Rank,
}

impl Default for Selection {
    fn default() -> Self {
        Selection::Tournament { size: 2 }
    }
}

impl Selection {
    /// Selects one parent index from `population`.
    ///
    /// # Panics
    ///
    /// Panics if the population is empty.
    pub fn select<R: Rng + ?Sized>(&self, population: &Population, rng: &mut R) -> usize {
        let n = population.len();
        assert!(n > 0, "cannot select from an empty population");
        match *self {
            Selection::Tournament { size } => {
                let size = size.max(1);
                let mut best = rng.gen_range(0..n);
                for _ in 1..size {
                    let cand = rng.gen_range(0..n);
                    if population.members()[cand].fitness > population.members()[best].fitness {
                        best = cand;
                    }
                }
                best
            }
            Selection::RouletteWheel => {
                let members = population.members();
                let min = members
                    .iter()
                    .map(|m| m.fitness)
                    .fold(f64::INFINITY, f64::min);
                let max = members
                    .iter()
                    .map(|m| m.fitness)
                    .fold(f64::NEG_INFINITY, f64::max);
                let span = (max - min).max(1e-12);
                // Shift so the worst still has 5% of the best's weight.
                let weight = |f: f64| (f - min) + 0.05 * span;
                let total: f64 = members.iter().map(|m| weight(m.fitness)).sum();
                let mut u = rng.gen::<f64>() * total;
                for (i, m) in members.iter().enumerate() {
                    u -= weight(m.fitness);
                    if u <= 0.0 {
                        return i;
                    }
                }
                n - 1
            }
            Selection::Rank => {
                let members = population.members();
                let mut order: Vec<usize> = (0..n).collect();
                order.sort_by(|&a, &b| {
                    members[a]
                        .fitness
                        .partial_cmp(&members[b].fitness)
                        .expect("finite fitness")
                });
                // Weight of the r-th worst is r + 1 (linear ranking).
                let total = (n * (n + 1) / 2) as f64;
                let mut u = rng.gen::<f64>() * total;
                for (r, &idx) in order.iter().enumerate() {
                    u -= (r + 1) as f64;
                    if u <= 0.0 {
                        return idx;
                    }
                }
                order[n - 1]
            }
        }
    }
}

/// Recombination operators for real-coded genomes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Crossover {
    /// Swap tails after a random cut point.
    OnePoint,
    /// Swap the segment between two random cut points.
    TwoPoint,
    /// Swap each gene independently with probability `p`.
    Uniform {
        /// Per-gene swap probability.
        p: f64,
    },
    /// BLX-α blend: each child gene is uniform on the parents' interval
    /// expanded by `alpha` on each side, clamped to bounds.
    Blx {
        /// Interval expansion factor (0 keeps children inside the parents'
        /// hyper-rectangle; 0.5 is the classic setting).
        alpha: f64,
    },
    /// Simulated binary crossover with distribution index `eta` (larger =
    /// children closer to parents).
    Sbx {
        /// Distribution index (typically 2–20).
        eta: f64,
    },
}

impl Default for Crossover {
    fn default() -> Self {
        Crossover::Blx { alpha: 0.5 }
    }
}

impl Crossover {
    /// Produces two children from two parents. Children are clamped to
    /// `bounds`.
    ///
    /// # Panics
    ///
    /// Panics if parent widths differ from the bounds.
    pub fn recombine<R: Rng + ?Sized>(
        &self,
        a: &[f64],
        b: &[f64],
        bounds: &Bounds,
        rng: &mut R,
    ) -> (Vec<f64>, Vec<f64>) {
        assert_eq!(a.len(), bounds.len(), "parent width mismatch");
        assert_eq!(b.len(), bounds.len(), "parent width mismatch");
        let n = a.len();
        let (mut c1, mut c2) = (a.to_vec(), b.to_vec());
        match *self {
            Crossover::OnePoint => {
                if n > 1 {
                    let cut = rng.gen_range(1..n);
                    c1[cut..].copy_from_slice(&b[cut..]);
                    c2[cut..].copy_from_slice(&a[cut..]);
                }
            }
            Crossover::TwoPoint => {
                if n > 1 {
                    let mut p1 = rng.gen_range(0..n);
                    let mut p2 = rng.gen_range(0..n);
                    if p1 > p2 {
                        std::mem::swap(&mut p1, &mut p2);
                    }
                    c1[p1..p2].copy_from_slice(&b[p1..p2]);
                    c2[p1..p2].copy_from_slice(&a[p1..p2]);
                }
            }
            Crossover::Uniform { p } => {
                for i in 0..n {
                    if rng.gen::<f64>() < p {
                        c1[i] = b[i];
                        c2[i] = a[i];
                    }
                }
            }
            Crossover::Blx { alpha } => {
                for i in 0..n {
                    let lo = a[i].min(b[i]);
                    let hi = a[i].max(b[i]);
                    let span = hi - lo;
                    let (xl, xh) = (lo - alpha * span, hi + alpha * span);
                    if xh > xl {
                        c1[i] = rng.gen_range(xl..=xh);
                        c2[i] = rng.gen_range(xl..=xh);
                    }
                }
            }
            Crossover::Sbx { eta } => {
                for i in 0..n {
                    if (a[i] - b[i]).abs() < 1e-14 {
                        continue;
                    }
                    let u: f64 = rng.gen();
                    let beta = if u <= 0.5 {
                        (2.0 * u).powf(1.0 / (eta + 1.0))
                    } else {
                        (1.0 / (2.0 * (1.0 - u))).powf(1.0 / (eta + 1.0))
                    };
                    let x1 = 0.5 * ((1.0 + beta) * a[i] + (1.0 - beta) * b[i]);
                    let x2 = 0.5 * ((1.0 - beta) * a[i] + (1.0 + beta) * b[i]);
                    c1[i] = x1;
                    c2[i] = x2;
                }
            }
        }
        bounds.clamp(&mut c1);
        bounds.clamp(&mut c2);
        (c1, c2)
    }
}

/// Mutation operators for real-coded genomes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Mutation {
    /// Add gaussian noise with σ = `sigma_frac` × gene range to each gene,
    /// independently with probability `per_gene_rate`.
    Gaussian {
        /// σ as a fraction of each gene's interval width.
        sigma_frac: f64,
        /// Per-gene mutation probability.
        per_gene_rate: f64,
    },
    /// Replace a gene with a fresh uniform draw from its interval,
    /// independently with probability `per_gene_rate`.
    UniformReset {
        /// Per-gene mutation probability.
        per_gene_rate: f64,
    },
    /// Polynomial mutation (Deb) with distribution index `eta`.
    Polynomial {
        /// Distribution index (typically 20–100; larger = smaller steps).
        eta: f64,
        /// Per-gene mutation probability.
        per_gene_rate: f64,
    },
}

impl Default for Mutation {
    fn default() -> Self {
        Mutation::Gaussian {
            sigma_frac: 0.1,
            per_gene_rate: 0.25,
        }
    }
}

impl Mutation {
    /// Mutates `genes` in place, keeping them inside `bounds`.
    ///
    /// # Panics
    ///
    /// Panics if the genome width differs from the bounds.
    pub fn mutate<R: Rng + ?Sized>(&self, genes: &mut [f64], bounds: &Bounds, rng: &mut R) {
        assert_eq!(genes.len(), bounds.len(), "genome width mismatch");
        match *self {
            Mutation::Gaussian {
                sigma_frac,
                per_gene_rate,
            } => {
                for (i, gene) in genes.iter_mut().enumerate() {
                    if rng.gen::<f64>() < per_gene_rate {
                        let sigma = sigma_frac * bounds.width(i);
                        *gene += standard_normal(rng) * sigma;
                    }
                }
            }
            Mutation::UniformReset { per_gene_rate } => {
                for (i, gene) in genes.iter_mut().enumerate() {
                    if rng.gen::<f64>() < per_gene_rate {
                        let (lo, hi) = bounds.interval(i);
                        *gene = if hi > lo { rng.gen_range(lo..hi) } else { lo };
                    }
                }
            }
            Mutation::Polynomial { eta, per_gene_rate } => {
                for (i, gene) in genes.iter_mut().enumerate() {
                    if rng.gen::<f64>() < per_gene_rate {
                        let (lo, hi) = bounds.interval(i);
                        let width = hi - lo;
                        if width <= 0.0 {
                            continue;
                        }
                        let u: f64 = rng.gen();
                        let delta = if u < 0.5 {
                            (2.0 * u).powf(1.0 / (eta + 1.0)) - 1.0
                        } else {
                            1.0 - (2.0 * (1.0 - u)).powf(1.0 / (eta + 1.0))
                        };
                        *gene += delta * width;
                    }
                }
            }
        }
        bounds.clamp(genes);
    }
}

/// Box–Muller standard normal draw (keeps the crate off `rand_distr`).
pub(crate) fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.gen();
        return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Individual;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ranked_population() -> Population {
        // Fitness equals index: member 9 is the best.
        (0..10)
            .map(|i| Individual::new(vec![i as f64], i as f64))
            .collect()
    }

    #[test]
    fn tournament_prefers_fitter_members() {
        let pop = ranked_population();
        let sel = Selection::Tournament { size: 4 };
        let mut rng = StdRng::seed_from_u64(1);
        let n = 4000;
        let mean: f64 = (0..n)
            .map(|_| pop.members()[sel.select(&pop, &mut rng)].fitness)
            .sum::<f64>()
            / n as f64;
        // Expected max of 4 uniform draws over 0..9 is ≈ 7.0; far above the
        // uniform mean of 4.5.
        assert!(mean > 6.0, "mean selected fitness {mean}");
    }

    #[test]
    fn roulette_handles_negative_fitness() {
        let pop: Population = (0..10)
            .map(|i| Individual::new(vec![i as f64], i as f64 - 100.0))
            .collect();
        let sel = Selection::RouletteWheel;
        let mut rng = StdRng::seed_from_u64(2);
        let n = 4000;
        let mean: f64 = (0..n)
            .map(|_| pop.members()[sel.select(&pop, &mut rng)].fitness)
            .sum::<f64>()
            / n as f64;
        assert!(
            mean > -95.0,
            "selection still prefers fitter members: {mean}"
        );
    }

    #[test]
    fn rank_selection_orders_by_rank_not_magnitude() {
        // One huge outlier must not dominate rank selection.
        let mut members: Vec<Individual> = (0..9)
            .map(|i| Individual::new(vec![i as f64], i as f64))
            .collect();
        members.push(Individual::new(vec![9.0], 1e9));
        let pop = Population::new(members);
        let sel = Selection::Rank;
        let mut rng = StdRng::seed_from_u64(3);
        let n = 5000;
        let picked_best =
            (0..n).filter(|_| sel.select(&pop, &mut rng) == 9).count() as f64 / n as f64;
        // Linear ranking gives the best member weight 10/55 ≈ 0.18.
        assert!(
            (picked_best - 10.0 / 55.0).abs() < 0.03,
            "best pick rate {picked_best}"
        );
    }

    #[test]
    fn crossovers_stay_in_bounds_and_mix_genes() {
        let bounds = Bounds::uniform(6, -1.0, 1.0).unwrap();
        let a = vec![-1.0; 6];
        let b = vec![1.0; 6];
        let mut rng = StdRng::seed_from_u64(4);
        for op in [
            Crossover::OnePoint,
            Crossover::TwoPoint,
            Crossover::Uniform { p: 0.5 },
            Crossover::Blx { alpha: 0.5 },
            Crossover::Sbx { eta: 5.0 },
        ] {
            for _ in 0..50 {
                let (c1, c2) = op.recombine(&a, &b, &bounds, &mut rng);
                assert!(bounds.contains(&c1), "{op:?} child1 {c1:?}");
                assert!(bounds.contains(&c2), "{op:?} child2 {c2:?}");
            }
        }
    }

    #[test]
    fn one_point_swaps_a_suffix() {
        let bounds = Bounds::uniform(4, 0.0, 10.0).unwrap();
        let a = vec![1.0; 4];
        let b = vec![9.0; 4];
        let mut rng = StdRng::seed_from_u64(5);
        let (c1, _) = Crossover::OnePoint.recombine(&a, &b, &bounds, &mut rng);
        // c1 must be a prefix of 1s followed by a suffix of 9s.
        let first_nine = c1
            .iter()
            .position(|&x| x == 9.0)
            .expect("some suffix swapped");
        assert!(c1[..first_nine].iter().all(|&x| x == 1.0));
        assert!(c1[first_nine..].iter().all(|&x| x == 9.0));
    }

    #[test]
    fn sbx_preserves_parent_mean() {
        // SBX children are symmetric around the parents' mean (pre-clamp).
        let bounds = Bounds::uniform(1, -100.0, 100.0).unwrap();
        let a = vec![3.0];
        let b = vec![7.0];
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..100 {
            let (c1, c2) = Crossover::Sbx { eta: 10.0 }.recombine(&a, &b, &bounds, &mut rng);
            assert!((c1[0] + c2[0] - 10.0).abs() < 1e-9, "{} {}", c1[0], c2[0]);
        }
    }

    #[test]
    fn mutations_stay_in_bounds() {
        let bounds = Bounds::new(vec![(-1.0, 1.0), (0.0, 100.0), (3.0, 3.0)]).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        for op in [
            Mutation::Gaussian {
                sigma_frac: 0.5,
                per_gene_rate: 1.0,
            },
            Mutation::UniformReset { per_gene_rate: 1.0 },
            Mutation::Polynomial {
                eta: 20.0,
                per_gene_rate: 1.0,
            },
        ] {
            for _ in 0..100 {
                let mut g = bounds.sample_uniform(&mut rng);
                op.mutate(&mut g, &bounds, &mut rng);
                assert!(bounds.contains(&g), "{op:?} -> {g:?}");
            }
        }
    }

    #[test]
    fn zero_rate_mutation_is_identity() {
        let bounds = Bounds::uniform(5, -1.0, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(8);
        let mut g = bounds.sample_uniform(&mut rng);
        let orig = g.clone();
        Mutation::Gaussian {
            sigma_frac: 0.5,
            per_gene_rate: 0.0,
        }
        .mutate(&mut g, &bounds, &mut rng);
        assert_eq!(g, orig);
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 50_000;
        let mut sum = 0.0;
        let mut sum2 = 0.0;
        for _ in 0..n {
            let x = standard_normal(&mut rng);
            sum += x;
            sum2 += x * x;
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }
}
