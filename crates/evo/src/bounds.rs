use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::{EvoError, Result};

/// Per-gene box constraints of a real-coded genome.
///
/// Every operator in this crate keeps genes inside their bounds, so the
/// search space is exactly the cartesian product of the intervals — the
/// paper's scenario parameter ranges.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Bounds {
    intervals: Vec<(f64, f64)>,
}

impl Bounds {
    /// Creates bounds from explicit `(low, high)` intervals.
    ///
    /// # Errors
    ///
    /// Returns [`EvoError::EmptyGenome`] for an empty list and
    /// [`EvoError::InvalidBound`] if any interval has `low > high` or a
    /// non-finite endpoint.
    pub fn new(intervals: Vec<(f64, f64)>) -> Result<Self> {
        if intervals.is_empty() {
            return Err(EvoError::EmptyGenome);
        }
        for (i, &(lo, hi)) in intervals.iter().enumerate() {
            // `!(lo <= hi)` deliberately also rejects NaN endpoints.
            #[allow(clippy::neg_cmp_op_on_partial_ord)]
            if !(lo <= hi) || !lo.is_finite() || !hi.is_finite() {
                return Err(EvoError::InvalidBound {
                    gene: i,
                    low: lo,
                    high: hi,
                });
            }
        }
        Ok(Self { intervals })
    }

    /// Creates `n` identical `[low, high]` intervals.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Bounds::new`].
    pub fn uniform(n: usize, low: f64, high: f64) -> Result<Self> {
        Self::new(vec![(low, high); n])
    }

    /// Number of genes.
    pub fn len(&self) -> usize {
        self.intervals.len()
    }

    /// Whether there are zero genes (never true for a constructed value).
    pub fn is_empty(&self) -> bool {
        self.intervals.is_empty()
    }

    /// The `(low, high)` interval of gene `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn interval(&self, i: usize) -> (f64, f64) {
        self.intervals[i]
    }

    /// Width of gene `i`'s interval.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn width(&self, i: usize) -> f64 {
        let (lo, hi) = self.intervals[i];
        hi - lo
    }

    /// Clamps a genome into the box, component-wise.
    ///
    /// # Panics
    ///
    /// Panics if `genes.len()` differs from the number of bounds.
    pub fn clamp(&self, genes: &mut [f64]) {
        assert_eq!(genes.len(), self.intervals.len(), "genome width mismatch");
        for (g, &(lo, hi)) in genes.iter_mut().zip(&self.intervals) {
            *g = g.clamp(lo, hi);
        }
    }

    /// Whether `genes` lies inside the box (inclusive).
    pub fn contains(&self, genes: &[f64]) -> bool {
        genes.len() == self.intervals.len()
            && genes
                .iter()
                .zip(&self.intervals)
                .all(|(g, &(lo, hi))| *g >= lo && *g <= hi)
    }

    /// Samples a genome uniformly from the box.
    pub fn sample_uniform<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<f64> {
        self.intervals
            .iter()
            .map(|&(lo, hi)| if hi > lo { rng.gen_range(lo..hi) } else { lo })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_intervals() {
        assert!(matches!(Bounds::new(vec![]), Err(EvoError::EmptyGenome)));
        assert!(matches!(
            Bounds::new(vec![(1.0, 0.0)]),
            Err(EvoError::InvalidBound { .. })
        ));
        assert!(matches!(
            Bounds::new(vec![(f64::NAN, 1.0)]),
            Err(EvoError::InvalidBound { .. })
        ));
        assert!(matches!(
            Bounds::new(vec![(0.0, f64::INFINITY)]),
            Err(EvoError::InvalidBound { .. })
        ));
    }

    #[test]
    fn degenerate_interval_is_allowed() {
        let b = Bounds::new(vec![(2.0, 2.0)]).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(b.sample_uniform(&mut rng), vec![2.0]);
    }

    #[test]
    fn samples_and_clamps_stay_inside() {
        let b = Bounds::new(vec![(-1.0, 1.0), (0.0, 10.0), (5.0, 5.0)]).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let g = b.sample_uniform(&mut rng);
            assert!(b.contains(&g), "{g:?}");
        }
        let mut g = vec![-100.0, 100.0, 7.0];
        b.clamp(&mut g);
        assert_eq!(g, vec![-1.0, 10.0, 5.0]);
        assert!(b.contains(&g));
    }

    #[test]
    fn widths() {
        let b = Bounds::uniform(3, -2.0, 4.0).unwrap();
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        assert_eq!(b.width(1), 6.0);
        assert_eq!(b.interval(0), (-2.0, 4.0));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn clamp_panics_on_width_mismatch() {
        let b = Bounds::uniform(2, 0.0, 1.0).unwrap();
        b.clamp(&mut [0.0; 3]);
    }
}
