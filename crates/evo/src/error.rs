use std::error::Error;
use std::fmt;

/// Errors raised when configuring evolutionary searches.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum EvoError {
    /// A bound had `low > high`, or a NaN endpoint.
    InvalidBound {
        /// Gene index of the offending bound.
        gene: usize,
        /// Lower endpoint supplied.
        low: f64,
        /// Upper endpoint supplied.
        high: f64,
    },
    /// The genome width was zero.
    EmptyGenome,
    /// A configuration field was out of its valid range.
    InvalidConfig {
        /// Name of the offending field.
        field: &'static str,
        /// Human-readable constraint that was violated.
        requirement: &'static str,
    },
}

impl fmt::Display for EvoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvoError::InvalidBound { gene, low, high } => {
                write!(f, "invalid bound for gene {gene}: [{low}, {high}]")
            }
            EvoError::EmptyGenome => write!(f, "genome must have at least one gene"),
            EvoError::InvalidConfig { field, requirement } => {
                write!(f, "invalid configuration: {field} must {requirement}")
            }
        }
    }
}

impl Error for EvoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_field() {
        let e = EvoError::InvalidConfig {
            field: "population_size",
            requirement: "be at least 2",
        };
        assert!(e.to_string().contains("population_size"));
    }

    #[test]
    fn is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<EvoError>();
    }
}
