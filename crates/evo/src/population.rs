use serde::{Deserialize, Serialize};

/// One evaluated candidate solution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Individual {
    /// The genome (scenario parameter vector).
    pub genes: Vec<f64>,
    /// The fitness assigned by evaluation (higher is better).
    pub fitness: f64,
}

impl Individual {
    /// Creates an evaluated individual.
    pub fn new(genes: Vec<f64>, fitness: f64) -> Self {
        Self { genes, fitness }
    }
}

/// A population of evaluated individuals plus summary statistics.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Population {
    members: Vec<Individual>,
}

impl Population {
    /// Creates a population from evaluated members.
    pub fn new(members: Vec<Individual>) -> Self {
        Self { members }
    }

    /// The members in their current order.
    pub fn members(&self) -> &[Individual] {
        &self.members
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the population is empty.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The best individual (highest fitness), if any.
    pub fn best(&self) -> Option<&Individual> {
        self.members
            .iter()
            .max_by(|a, b| a.fitness.partial_cmp(&b.fitness).expect("finite fitness"))
    }

    /// Mean fitness, or NaN for an empty population.
    pub fn mean_fitness(&self) -> f64 {
        if self.members.is_empty() {
            return f64::NAN;
        }
        self.members.iter().map(|m| m.fitness).sum::<f64>() / self.members.len() as f64
    }

    /// Population standard deviation of fitness, or NaN if empty.
    pub fn std_fitness(&self) -> f64 {
        if self.members.is_empty() {
            return f64::NAN;
        }
        let mean = self.mean_fitness();
        let var = self
            .members
            .iter()
            .map(|m| (m.fitness - mean).powi(2))
            .sum::<f64>()
            / self.members.len() as f64;
        var.sqrt()
    }

    /// The `k` best members, highest fitness first.
    pub fn top_k(&self, k: usize) -> Vec<&Individual> {
        let mut refs: Vec<&Individual> = self.members.iter().collect();
        refs.sort_by(|a, b| b.fitness.partial_cmp(&a.fitness).expect("finite fitness"));
        refs.truncate(k);
        refs
    }

    /// Consumes the population, returning its members.
    pub fn into_members(self) -> Vec<Individual> {
        self.members
    }
}

impl FromIterator<Individual> for Population {
    fn from_iter<T: IntoIterator<Item = Individual>>(iter: T) -> Self {
        Self::new(iter.into_iter().collect())
    }
}

impl Extend<Individual> for Population {
    fn extend<T: IntoIterator<Item = Individual>>(&mut self, iter: T) {
        self.members.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pop() -> Population {
        Population::new(vec![
            Individual::new(vec![0.0], 1.0),
            Individual::new(vec![1.0], 5.0),
            Individual::new(vec![2.0], 3.0),
        ])
    }

    #[test]
    fn best_and_stats() {
        let p = pop();
        assert_eq!(p.best().unwrap().fitness, 5.0);
        assert!((p.mean_fitness() - 3.0).abs() < 1e-12);
        let expected_std = ((4.0 + 4.0 + 0.0) / 3.0f64).sqrt();
        assert!((p.std_fitness() - expected_std).abs() < 1e-12);
    }

    #[test]
    fn top_k_sorted_desc() {
        let p = pop();
        let top = p.top_k(2);
        assert_eq!(top[0].fitness, 5.0);
        assert_eq!(top[1].fitness, 3.0);
        assert_eq!(p.top_k(10).len(), 3, "k larger than population is fine");
    }

    #[test]
    fn empty_population_stats_are_nan() {
        let p = Population::default();
        assert!(p.is_empty());
        assert!(p.best().is_none());
        assert!(p.mean_fitness().is_nan());
        assert!(p.std_fitness().is_nan());
    }

    #[test]
    fn collect_and_extend() {
        let mut p: Population = (0..3)
            .map(|i| Individual::new(vec![i as f64], i as f64))
            .collect();
        p.extend([Individual::new(vec![9.0], 9.0)]);
        assert_eq!(p.len(), 4);
        assert_eq!(p.best().unwrap().fitness, 9.0);
    }
}
