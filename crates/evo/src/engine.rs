use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::{Bounds, Crossover, EvoError, Individual, Mutation, Population, Result, Selection};

/// Configuration of a [`GeneticAlgorithm`] run.
///
/// The defaults mirror the paper's setup where sensible (generational GA
/// with elitism; the paper's experiment uses population 200 × 5
/// generations, set those explicitly via [`GaConfig::new`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GaConfig {
    /// Number of individuals per generation (≥ 2).
    pub population_size: usize,
    /// Number of generations to evolve (≥ 1; the initial random population
    /// counts as generation 0).
    pub generations: usize,
    /// Number of best individuals copied unchanged into the next
    /// generation.
    pub elitism: usize,
    /// Probability that a selected parent pair is recombined (otherwise the
    /// parents are cloned).
    pub crossover_rate: f64,
    /// Parent selection scheme.
    pub selection: Selection,
    /// Recombination operator.
    pub crossover: Crossover,
    /// Mutation operator.
    pub mutation: Mutation,
    /// RNG seed; a run is fully determined by its config (including seed)
    /// and fitness function.
    pub seed: u64,
    /// Worker threads for fitness evaluation (0 = available parallelism).
    pub threads: usize,
    /// Stop early once a fitness ≥ this target has been observed.
    pub target_fitness: Option<f64>,
    /// Stop early after this many consecutive generations without
    /// improvement of the best fitness (`None` = never stall out).
    pub stall_generations: Option<usize>,
}

impl GaConfig {
    /// Creates a config with the given population size and generation
    /// count, defaulting the operators (tournament-2 selection, BLX-0.5
    /// crossover at rate 0.9, gaussian mutation, elitism 2, seed 0).
    pub fn new(population_size: usize, generations: usize) -> Self {
        Self {
            population_size,
            generations,
            elitism: 2,
            crossover_rate: 0.9,
            selection: Selection::default(),
            crossover: Crossover::default(),
            mutation: Mutation::default(),
            seed: 0,
            threads: 1,
            target_fitness: None,
            stall_generations: None,
        }
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the elite count.
    pub fn elitism(mut self, n: usize) -> Self {
        self.elitism = n;
        self
    }

    /// Sets the selection scheme.
    pub fn selection(mut self, s: Selection) -> Self {
        self.selection = s;
        self
    }

    /// Sets the crossover operator.
    pub fn crossover(mut self, c: Crossover) -> Self {
        self.crossover = c;
        self
    }

    /// Sets the crossover rate.
    pub fn crossover_rate(mut self, rate: f64) -> Self {
        self.crossover_rate = rate;
        self
    }

    /// Sets the mutation operator.
    pub fn mutation(mut self, m: Mutation) -> Self {
        self.mutation = m;
        self
    }

    /// Sets the number of evaluation threads (0 = hardware parallelism).
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n;
        self
    }

    /// Stops the run as soon as an individual reaches `target`.
    pub fn target_fitness(mut self, target: f64) -> Self {
        self.target_fitness = Some(target);
        self
    }

    /// Stops the run after `n` consecutive generations without improving
    /// the best fitness.
    pub fn stall_generations(mut self, n: usize) -> Self {
        self.stall_generations = Some(n);
        self
    }

    fn validate(&self) -> Result<()> {
        if self.population_size < 2 {
            return Err(EvoError::InvalidConfig {
                field: "population_size",
                requirement: "be at least 2",
            });
        }
        if self.generations == 0 {
            return Err(EvoError::InvalidConfig {
                field: "generations",
                requirement: "be at least 1",
            });
        }
        if self.elitism >= self.population_size {
            return Err(EvoError::InvalidConfig {
                field: "elitism",
                requirement: "be smaller than population_size",
            });
        }
        if !(0.0..=1.0).contains(&self.crossover_rate) {
            return Err(EvoError::InvalidConfig {
                field: "crossover_rate",
                requirement: "lie in [0, 1]",
            });
        }
        Ok(())
    }
}

/// Per-generation summary statistics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GenerationStats {
    /// Generation index (0 = initial random population).
    pub generation: usize,
    /// Best fitness within the generation.
    pub best_fitness: f64,
    /// Mean fitness within the generation.
    pub mean_fitness: f64,
    /// Fitness standard deviation within the generation.
    pub std_fitness: f64,
}

/// One fitness evaluation, in evaluation order — the unit plotted on the
/// x-axis of the paper's Fig. 6.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvaluationRecord {
    /// Global evaluation index (0-based, in evaluation order).
    pub index: usize,
    /// Generation this evaluation belonged to.
    pub generation: usize,
    /// The evaluated genome.
    pub genes: Vec<f64>,
    /// The fitness obtained.
    pub fitness: f64,
}

/// The result of a GA run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaResult {
    /// Best individual ever evaluated.
    pub best: Individual,
    /// Summary statistics per generation.
    pub generations: Vec<GenerationStats>,
    /// Every evaluation performed, in order.
    pub evaluations: Vec<EvaluationRecord>,
    /// The final population.
    pub final_population: Population,
    /// Whether the run stopped early on reaching `target_fitness`.
    pub reached_target: bool,
}

impl GaResult {
    /// Total number of fitness evaluations performed.
    pub fn num_evaluations(&self) -> usize {
        self.evaluations.len()
    }
}

/// A generational genetic algorithm over bounded real-valued genomes.
///
/// Fitness is **maximized**. Fitness functions are `Fn(&[f64]) -> f64 +
/// Sync` so populations can be evaluated in parallel; pass the thread count
/// via [`GaConfig::threads`].
#[derive(Debug, Clone)]
pub struct GeneticAlgorithm {
    config: GaConfig,
    bounds: Bounds,
}

impl GeneticAlgorithm {
    /// Creates an engine from a config and genome bounds.
    pub fn new(config: GaConfig, bounds: Bounds) -> Self {
        Self { config, bounds }
    }

    /// The configuration in use.
    pub fn config(&self) -> &GaConfig {
        &self.config
    }

    /// Runs the GA to completion.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see [`GaConfig`] field
    /// docs); use [`GeneticAlgorithm::try_run`] for a fallible variant.
    pub fn run<F>(&self, fitness: F) -> GaResult
    where
        F: Fn(&[f64]) -> f64 + Sync,
    {
        self.try_run(fitness).expect("invalid GA configuration")
    }

    /// Runs the GA, validating the configuration first.
    ///
    /// # Errors
    ///
    /// Returns [`EvoError::InvalidConfig`] for out-of-range configuration
    /// fields.
    pub fn try_run<F>(&self, fitness: F) -> Result<GaResult>
    where
        F: Fn(&[f64]) -> f64 + Sync,
    {
        self.config.validate()?;
        let cfg = &self.config;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut evaluations: Vec<EvaluationRecord> = Vec::new();
        let mut gen_stats = Vec::new();

        // Generation 0: uniform random population.
        let genomes: Vec<Vec<f64>> = (0..cfg.population_size)
            .map(|_| self.bounds.sample_uniform(&mut rng))
            .collect();
        let mut population = evaluate_all(genomes, &fitness, cfg.threads, 0, &mut evaluations);
        record_stats(&population, 0, &mut gen_stats);

        let mut best = population.best().expect("population non-empty").clone();
        let mut reached_target = target_hit(cfg, &best);
        let mut stall = 0usize;

        for generation in 1..cfg.generations {
            if reached_target {
                break;
            }
            if cfg.stall_generations.is_some_and(|limit| stall >= limit) {
                break;
            }
            // Elites survive unchanged.
            let mut next_genomes: Vec<Vec<f64>> = population
                .top_k(cfg.elitism)
                .into_iter()
                .map(|e| e.genes.clone())
                .collect();
            // Fill the rest by selection → crossover → mutation.
            while next_genomes.len() < cfg.population_size {
                let pa = cfg.selection.select(&population, &mut rng);
                let pb = cfg.selection.select(&population, &mut rng);
                let (mut c1, mut c2) = if rng.gen::<f64>() < cfg.crossover_rate {
                    cfg.crossover.recombine(
                        &population.members()[pa].genes,
                        &population.members()[pb].genes,
                        &self.bounds,
                        &mut rng,
                    )
                } else {
                    (
                        population.members()[pa].genes.clone(),
                        population.members()[pb].genes.clone(),
                    )
                };
                cfg.mutation.mutate(&mut c1, &self.bounds, &mut rng);
                cfg.mutation.mutate(&mut c2, &self.bounds, &mut rng);
                next_genomes.push(c1);
                if next_genomes.len() < cfg.population_size {
                    next_genomes.push(c2);
                }
            }
            population = evaluate_all(
                next_genomes,
                &fitness,
                cfg.threads,
                generation,
                &mut evaluations,
            );
            record_stats(&population, generation, &mut gen_stats);
            let gen_best = population.best().expect("population non-empty");
            if gen_best.fitness > best.fitness + 1e-12 {
                best = gen_best.clone();
                stall = 0;
            } else {
                stall += 1;
            }
            reached_target = reached_target || target_hit(cfg, &best);
        }

        Ok(GaResult {
            best,
            generations: gen_stats,
            evaluations,
            final_population: population,
            reached_target,
        })
    }
}

fn target_hit(cfg: &GaConfig, best: &Individual) -> bool {
    cfg.target_fitness.is_some_and(|t| best.fitness >= t)
}

fn record_stats(population: &Population, generation: usize, out: &mut Vec<GenerationStats>) {
    out.push(GenerationStats {
        generation,
        best_fitness: population.best().map(|b| b.fitness).unwrap_or(f64::NAN),
        mean_fitness: population.mean_fitness(),
        std_fitness: population.std_fitness(),
    });
}

/// Evaluates a batch of genomes (possibly in parallel), appends the
/// evaluation records, and returns the evaluated population.
fn evaluate_all<F>(
    genomes: Vec<Vec<f64>>,
    fitness: &F,
    threads: usize,
    generation: usize,
    evaluations: &mut Vec<EvaluationRecord>,
) -> Population
where
    F: Fn(&[f64]) -> f64 + Sync,
{
    let fitnesses = evaluate_batch(&genomes, fitness, threads);
    let base = evaluations.len();
    let mut members = Vec::with_capacity(genomes.len());
    for (i, (genes, fit)) in genomes.into_iter().zip(fitnesses).enumerate() {
        evaluations.push(EvaluationRecord {
            index: base + i,
            generation,
            genes: genes.clone(),
            fitness: fit,
        });
        members.push(Individual::new(genes, fit));
    }
    Population::new(members)
}

/// Maps `fitness` over `genomes` with `threads` workers (0 = hardware
/// parallelism), preserving order.
///
/// Runs on the workspace-wide [`uavca_exec::Executor`] pool abstraction,
/// the same one the validation layer's `BatchRunner` uses — fitness is a
/// pure function of the genome, so results are identical for any thread
/// count.
pub(crate) fn evaluate_batch<F>(genomes: &[Vec<f64>], fitness: &F, threads: usize) -> Vec<f64>
where
    F: Fn(&[f64]) -> f64 + Sync,
{
    uavca_exec::Executor::new(threads).map(genomes, |g| fitness(g))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Negative sphere: optimum 0 at the origin.
    fn neg_sphere(genes: &[f64]) -> f64 {
        -genes.iter().map(|x| x * x).sum::<f64>()
    }

    fn bounds(n: usize) -> Bounds {
        Bounds::uniform(n, -5.0, 5.0).unwrap()
    }

    #[test]
    fn improves_over_generations_on_sphere() {
        let config = GaConfig::new(40, 30).seed(1);
        let result = GeneticAlgorithm::new(config, bounds(5)).run(neg_sphere);
        let first = result.generations.first().unwrap().best_fitness;
        let last = result.generations.last().unwrap().best_fitness;
        assert!(last > first, "best fitness must improve: {first} -> {last}");
        assert!(
            result.best.fitness > -1.0,
            "near-optimal: {}",
            result.best.fitness
        );
        assert_eq!(result.num_evaluations(), 40 * 30);
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let config = GaConfig::new(20, 8).seed(42);
        let a = GeneticAlgorithm::new(config, bounds(4)).run(neg_sphere);
        let b = GeneticAlgorithm::new(config, bounds(4)).run(neg_sphere);
        assert_eq!(a.best, b.best);
        assert_eq!(a.evaluations, b.evaluations);
        let c = GeneticAlgorithm::new(GaConfig::new(20, 8).seed(43), bounds(4)).run(neg_sphere);
        assert_ne!(a.best.genes, c.best.genes);
    }

    #[test]
    fn parallel_evaluation_matches_serial() {
        let config = GaConfig::new(30, 6).seed(7);
        let serial = GeneticAlgorithm::new(config, bounds(3)).run(neg_sphere);
        let parallel = GeneticAlgorithm::new(config.threads(4), bounds(3)).run(neg_sphere);
        assert_eq!(serial.best, parallel.best);
        assert_eq!(serial.evaluations, parallel.evaluations);
    }

    #[test]
    fn elitism_preserves_the_best() {
        let config = GaConfig::new(24, 15).seed(3).elitism(2);
        let result = GeneticAlgorithm::new(config, bounds(4)).run(neg_sphere);
        // With elitism the per-generation best is monotonically
        // non-decreasing (the elite is re-evaluated but deterministic).
        for w in result.generations.windows(2) {
            assert!(
                w[1].best_fitness >= w[0].best_fitness - 1e-9,
                "{} -> {}",
                w[0].best_fitness,
                w[1].best_fitness
            );
        }
    }

    #[test]
    fn target_fitness_stops_early() {
        let config = GaConfig::new(30, 100).seed(5).target_fitness(-10.0);
        let result = GeneticAlgorithm::new(config, bounds(2)).run(neg_sphere);
        assert!(result.reached_target);
        assert!(
            result.generations.len() < 100,
            "stopped after {} generations",
            result.generations.len()
        );
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let b = bounds(2);
        for (cfg, field) in [
            (GaConfig::new(1, 5), "population_size"),
            (GaConfig::new(10, 0), "generations"),
            (GaConfig::new(10, 5).elitism(10), "elitism"),
            (GaConfig::new(10, 5).crossover_rate(1.5), "crossover_rate"),
        ] {
            match GeneticAlgorithm::new(cfg, b.clone()).try_run(neg_sphere) {
                Err(EvoError::InvalidConfig { field: f, .. }) => assert_eq!(f, field),
                other => panic!("expected InvalidConfig({field}), got {other:?}"),
            }
        }
    }

    #[test]
    fn every_evaluated_genome_is_within_bounds() {
        let b = bounds(6);
        let config = GaConfig::new(25, 10).seed(9);
        let result = GeneticAlgorithm::new(config, b.clone()).run(neg_sphere);
        for rec in &result.evaluations {
            assert!(b.contains(&rec.genes), "{:?}", rec.genes);
        }
    }

    #[test]
    fn all_selection_and_crossover_variants_run() {
        let b = bounds(3);
        for sel in [
            Selection::Tournament { size: 3 },
            Selection::RouletteWheel,
            Selection::Rank,
        ] {
            for cx in [
                Crossover::OnePoint,
                Crossover::TwoPoint,
                Crossover::Uniform { p: 0.5 },
                Crossover::Blx { alpha: 0.3 },
                Crossover::Sbx { eta: 10.0 },
            ] {
                let config = GaConfig::new(16, 5).seed(11).selection(sel).crossover(cx);
                let result = GeneticAlgorithm::new(config, b.clone()).run(neg_sphere);
                assert_eq!(result.generations.len(), 5, "{sel:?} {cx:?}");
            }
        }
    }

    #[test]
    fn evaluation_records_carry_generation_index() {
        let config = GaConfig::new(10, 4).seed(2);
        let result = GeneticAlgorithm::new(config, bounds(2)).run(neg_sphere);
        for (i, rec) in result.evaluations.iter().enumerate() {
            assert_eq!(rec.index, i);
            assert_eq!(rec.generation, i / 10);
        }
    }
}

#[cfg(test)]
mod stall_tests {
    use super::*;

    #[test]
    fn stall_limit_stops_a_flat_landscape() {
        // Constant fitness: the best never improves after generation 0.
        let bounds = Bounds::uniform(3, 0.0, 1.0).unwrap();
        let config = GaConfig::new(10, 50).seed(1).stall_generations(3);
        let result = GeneticAlgorithm::new(config, bounds).run(|_: &[f64]| 1.0);
        assert!(
            result.generations.len() <= 5,
            "flat fitness must stall out quickly: {} generations",
            result.generations.len()
        );
        assert!(!result.reached_target);
    }

    #[test]
    fn improving_landscape_does_not_stall() {
        let bounds = Bounds::uniform(3, -5.0, 5.0).unwrap();
        let config = GaConfig::new(20, 12).seed(2).stall_generations(4);
        let result = GeneticAlgorithm::new(config, bounds)
            .run(|g: &[f64]| -g.iter().map(|x| x * x).sum::<f64>());
        assert!(
            result.generations.len() >= 8,
            "steady improvement should not trip the stall limit: {}",
            result.generations.len()
        );
    }
}
