use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::engine::evaluate_batch;
use crate::operators::standard_normal;
use crate::{Bounds, EvaluationRecord, Individual};

/// Result of a budget-bounded baseline search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchResult {
    /// Best individual ever evaluated.
    pub best: Individual,
    /// Every evaluation performed, in order (`generation` is always 0 for
    /// random search; for hill climbing it counts accepted moves).
    pub evaluations: Vec<EvaluationRecord>,
    /// Index of the first evaluation that reached `target_fitness`, if a
    /// target was set and reached. The headline metric when comparing
    /// search efficiency (paper Section V / ref \[7\]).
    pub first_hit: Option<usize>,
}

impl SearchResult {
    /// Number of evaluations performed.
    pub fn num_evaluations(&self) -> usize {
        self.evaluations.len()
    }
}

/// Uniform random search over the genome box — the baseline the paper's
/// earlier study compared the GA against.
#[derive(Debug, Clone)]
pub struct RandomSearch {
    bounds: Bounds,
    budget: usize,
    seed: u64,
    threads: usize,
    target_fitness: Option<f64>,
    batch: usize,
}

impl RandomSearch {
    /// Creates a random search drawing `budget` samples.
    pub fn new(bounds: Bounds, budget: usize) -> Self {
        Self {
            bounds,
            budget,
            seed: 0,
            threads: 1,
            target_fitness: None,
            batch: 64,
        }
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets evaluation threads (0 = hardware parallelism).
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n;
        self
    }

    /// Stops as soon as `target` is reached (the comparison metric).
    pub fn target_fitness(mut self, target: f64) -> Self {
        self.target_fitness = Some(target);
        self
    }

    /// Runs the search.
    pub fn run<F>(&self, fitness: F) -> SearchResult
    where
        F: Fn(&[f64]) -> f64 + Sync,
    {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut evaluations = Vec::with_capacity(self.budget);
        let mut best: Option<Individual> = None;
        let mut first_hit = None;
        'outer: while evaluations.len() < self.budget {
            let n = self.batch.min(self.budget - evaluations.len());
            let genomes: Vec<Vec<f64>> = (0..n)
                .map(|_| self.bounds.sample_uniform(&mut rng))
                .collect();
            let fits = evaluate_batch(&genomes, &fitness, self.threads);
            for (genes, fit) in genomes.into_iter().zip(fits) {
                let index = evaluations.len();
                evaluations.push(EvaluationRecord {
                    index,
                    generation: 0,
                    genes: genes.clone(),
                    fitness: fit,
                });
                if best.as_ref().is_none_or(|b| fit > b.fitness) {
                    best = Some(Individual::new(genes, fit));
                }
                if first_hit.is_none() && self.target_fitness.is_some_and(|t| fit >= t) {
                    first_hit = Some(index);
                    break 'outer;
                }
            }
        }
        SearchResult {
            best: best.expect("budget >= 1"),
            evaluations,
            first_hit,
        }
    }
}

/// A (1+1) evolution strategy / stochastic hill climber: perturb the
/// incumbent with gaussian noise, keep the child if it is at least as fit.
#[derive(Debug, Clone)]
pub struct HillClimber {
    bounds: Bounds,
    budget: usize,
    seed: u64,
    sigma_frac: f64,
    target_fitness: Option<f64>,
}

impl HillClimber {
    /// Creates a climber with `budget` evaluations and step size
    /// σ = 10% of each gene's range.
    pub fn new(bounds: Bounds, budget: usize) -> Self {
        Self {
            bounds,
            budget,
            seed: 0,
            sigma_frac: 0.1,
            target_fitness: None,
        }
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the gaussian step size as a fraction of each gene's range.
    pub fn sigma_frac(mut self, f: f64) -> Self {
        self.sigma_frac = f;
        self
    }

    /// Stops as soon as `target` is reached.
    pub fn target_fitness(mut self, target: f64) -> Self {
        self.target_fitness = Some(target);
        self
    }

    /// Runs the climb.
    pub fn run<F>(&self, fitness: F) -> SearchResult
    where
        F: Fn(&[f64]) -> f64 + Sync,
    {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut evaluations = Vec::with_capacity(self.budget);
        let mut current = self.bounds.sample_uniform(&mut rng);
        let mut current_fit = fitness(&current);
        evaluations.push(EvaluationRecord {
            index: 0,
            generation: 0,
            genes: current.clone(),
            fitness: current_fit,
        });
        let mut best = Individual::new(current.clone(), current_fit);
        let mut first_hit = self
            .target_fitness
            .is_some_and(|t| current_fit >= t)
            .then_some(0);
        let mut accepted = 0usize;
        while evaluations.len() < self.budget && first_hit.is_none() {
            let mut child = current.clone();
            for (i, gene) in child.iter_mut().enumerate() {
                *gene += standard_normal(&mut rng) * self.sigma_frac * self.bounds.width(i);
            }
            self.bounds.clamp(&mut child);
            let child_fit = fitness(&child);
            let index = evaluations.len();
            evaluations.push(EvaluationRecord {
                index,
                generation: accepted,
                genes: child.clone(),
                fitness: child_fit,
            });
            if child_fit >= current_fit {
                current = child.clone();
                current_fit = child_fit;
                accepted += 1;
            }
            if child_fit > best.fitness {
                best = Individual::new(child, child_fit);
            }
            if self.target_fitness.is_some_and(|t| child_fit >= t) {
                first_hit = Some(index);
            }
        }
        SearchResult {
            best,
            evaluations,
            first_hit,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn neg_sphere(genes: &[f64]) -> f64 {
        -genes.iter().map(|x| x * x).sum::<f64>()
    }

    fn bounds() -> Bounds {
        Bounds::uniform(4, -5.0, 5.0).unwrap()
    }

    #[test]
    fn random_search_respects_budget_and_tracks_best() {
        let r = RandomSearch::new(bounds(), 200).seed(1).run(neg_sphere);
        assert_eq!(r.num_evaluations(), 200);
        let max = r
            .evaluations
            .iter()
            .map(|e| e.fitness)
            .fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(r.best.fitness, max);
        assert!(r.first_hit.is_none());
    }

    #[test]
    fn random_search_stops_at_target() {
        // Target is easy: any sample with fitness > -40 (most are).
        let r = RandomSearch::new(bounds(), 10_000)
            .seed(2)
            .target_fitness(-40.0)
            .run(neg_sphere);
        let hit = r.first_hit.expect("easy target must be found");
        assert!(r.num_evaluations() <= hit + 64, "stops soon after the hit");
        assert!(r.evaluations[hit].fitness >= -40.0);
    }

    #[test]
    fn random_search_is_deterministic() {
        let a = RandomSearch::new(bounds(), 100).seed(9).run(neg_sphere);
        let b = RandomSearch::new(bounds(), 100).seed(9).run(neg_sphere);
        assert_eq!(a.best, b.best);
    }

    #[test]
    fn hill_climber_improves_monotonically_in_accepted_moves() {
        let r = HillClimber::new(bounds(), 400).seed(3).run(neg_sphere);
        assert!(
            r.best.fitness > -1.0,
            "hill climbing on a sphere gets close: {}",
            r.best.fitness
        );
        assert_eq!(r.num_evaluations(), 400);
    }

    #[test]
    fn hill_climber_stops_at_target() {
        let r = HillClimber::new(bounds(), 100_000)
            .seed(4)
            .target_fitness(-0.5)
            .run(neg_sphere);
        assert!(r.first_hit.is_some());
        assert!(r.num_evaluations() < 100_000);
    }

    #[test]
    fn baselines_keep_genomes_in_bounds() {
        let b = bounds();
        let r = RandomSearch::new(b.clone(), 100).seed(5).run(neg_sphere);
        assert!(r.evaluations.iter().all(|e| b.contains(&e.genes)));
        let h = HillClimber::new(b.clone(), 100).seed(5).run(neg_sphere);
        assert!(h.evaluations.iter().all(|e| b.contains(&e.genes)));
    }
}
