//! Real-coded genetic algorithm engine — the ECJ-equivalent substrate of
//! Zou, Alexander & McDermid (DSN 2016), Section VI-B.
//!
//! The paper encodes encounter scenarios as fixed-length real-valued
//! genomes, evaluates each by simulation, and evolves the population toward
//! higher fitness (more challenging encounters). This crate provides that
//! machinery, problem-agnostically:
//!
//! * [`Bounds`] — per-gene box constraints (the scenario parameter ranges),
//! * [`Individual`] / [`Population`] — evaluated genomes and their stats,
//! * [`Selection`], [`Crossover`], [`Mutation`] — the classic operator
//!   palette (tournament / roulette / rank; one-point / two-point /
//!   uniform / BLX-α / SBX; gaussian / uniform-reset / polynomial),
//! * [`GeneticAlgorithm`] — the generational engine with elitism and
//!   parallel fitness evaluation, recording every evaluation (the paper's
//!   Fig. 6 plots fitness per *encounter*, not per generation), and
//! * budget-matched baselines: [`RandomSearch`] and [`HillClimber`].
//!
//! # Example
//!
//! Maximize the negative sphere function (optimum at the center):
//!
//! ```
//! use uavca_evo::{Bounds, GaConfig, GeneticAlgorithm};
//!
//! let bounds = Bounds::uniform(4, -5.0, 5.0)?;
//! let config = GaConfig::new(40, 25).seed(7);
//! let ga = GeneticAlgorithm::new(config, bounds);
//! let result = ga.run(|genes: &[f64]| -genes.iter().map(|x| x * x).sum::<f64>());
//! assert!(result.best.fitness > -0.5, "GA should get close to the optimum");
//! # Ok::<(), uavca_evo::EvoError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod baselines;
mod bounds;
mod engine;
mod error;
mod operators;
mod population;

pub use baselines::{HillClimber, RandomSearch, SearchResult};
pub use bounds::Bounds;
pub use engine::{EvaluationRecord, GaConfig, GaResult, GenerationStats, GeneticAlgorithm};
pub use error::EvoError;
pub use operators::{Crossover, Mutation, Selection};
pub use population::{Individual, Population};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, EvoError>;
