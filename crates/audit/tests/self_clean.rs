//! The analyzer run against its own workspace: the tree this crate
//! ships in must audit clean. This is the same invocation CI gates on
//! (`cargo run -p uavca-audit`), expressed as a test so `cargo test -q`
//! alone catches a regression.

use std::path::Path;

use uavca_audit::{audit_workspace, find_workspace_root};

#[test]
fn the_workspace_audits_clean() {
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = find_workspace_root(manifest).expect("the audit crate lives inside the workspace");
    let report = audit_workspace(&root).expect("workspace walk");
    assert!(
        report.diagnostics.is_empty(),
        "the workspace must audit clean; run `cargo run -p uavca-audit` for spans:\n{}",
        report
            .diagnostics
            .iter()
            .map(|d| d.render())
            .collect::<Vec<_>>()
            .join("\n")
    );
    // Sanity: the walk actually visited the tree (every crate root,
    // tests, benches and examples), not an empty directory.
    assert!(
        report.files_scanned > 100,
        "only {} files scanned — walk roots are wrong",
        report.files_scanned
    );
}
