//! The known-bad fixture corpus: each file under `tests/fixtures/`
//! triggers an exact set of diagnostics — codes, lines *and* columns —
//! when parsed under a synthetic workspace-relative path. The corpus is
//! the analyzer's ground truth: a rule change that shifts a span or
//! swallows a finding fails here before it silently weakens the CI
//! gate. (The workspace walk itself skips `tests/fixtures/`, so the
//! deliberately-bad files never pollute a real audit.)

use std::path::Path;

use uavca_audit::{run_file_rules, wire_coverage, RuleCode, SourceFile};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {}: {e}", path.display()))
}

/// Parses `tests/fixtures/<name>` as if it lived at `rel_path` in the
/// workspace, so path-scoped rules fire the same way they would on
/// real code.
fn parse_as(rel_path: &str, name: &str) -> SourceFile {
    SourceFile::parse(rel_path, fixture(name))
}

/// Asserts that the diagnostics are exactly `want` (code, line, col),
/// in order.
fn assert_spans(diags: &[uavca_audit::Diagnostic], want: &[(RuleCode, u32, u32)]) {
    let got: Vec<(RuleCode, u32, u32)> = diags.iter().map(|d| (d.rule, d.line, d.col)).collect();
    assert_eq!(got, want, "full diagnostics: {diags:#?}");
}

#[test]
fn hash_collections_fixture_yields_exact_a1_spans() {
    let file = parse_as("crates/sim/src/fixture.rs", "hash_collections.rs");
    let diags = run_file_rules(&file);
    // Lines 1 and 3 fire; both `HashMap` tokens on line 5 are covered
    // by the standalone allow comment on line 4.
    assert_spans(
        &diags,
        &[
            (RuleCode::HashCollections, 1, 23),
            (RuleCode::HashCollections, 3, 30),
        ],
    );
    assert!(
        diags[0].message.contains("`HashMap`"),
        "{}",
        diags[0].message
    );
    assert!(diags[0].message.contains("`sim`"), "{}", diags[0].message);
}

#[test]
fn the_same_source_is_clean_outside_the_deterministic_crates() {
    let file = parse_as("crates/bench/src/fixture.rs", "hash_collections.rs");
    assert_spans(&run_file_rules(&file), &[]);
}

#[test]
fn wall_clock_fixture_yields_exact_a2_spans() {
    let file = parse_as("crates/exec/src/fixture.rs", "wall_clock.rs");
    // The import names both types; the `Instant::now` use on line 4
    // carries a trailing allow, the `SystemTime::now` on line 5 does
    // not.
    assert_spans(
        &run_file_rules(&file),
        &[
            (RuleCode::WallClock, 1, 17),
            (RuleCode::WallClock, 1, 26),
            (RuleCode::WallClock, 5, 13),
        ],
    );
}

#[test]
fn wall_clock_is_scoped_to_library_code() {
    // The same source in a test target and in the serve transport
    // allowlist is clean.
    let as_test = parse_as("crates/exec/tests/fixture.rs", "wall_clock.rs");
    assert_spans(&run_file_rules(&as_test), &[]);
    let allowlisted = parse_as("crates/serve/src/transport.rs", "wall_clock.rs");
    assert_spans(&run_file_rules(&allowlisted), &[]);
}

#[test]
fn entropy_fixture_yields_exact_a3_spans() {
    // A3 applies even outside the deterministic crates: an example that
    // seeds from ambient entropy is unreproducible all the same.
    let file = parse_as("examples/fixture.rs", "entropy.rs");
    assert_spans(
        &run_file_rules(&file),
        &[
            (RuleCode::AmbientEntropy, 2, 25),
            (RuleCode::AmbientEntropy, 3, 38),
        ],
    );
}

#[test]
fn panics_fixture_yields_exact_a4_spans() {
    let file = parse_as("crates/core/src/fixture.rs", "panics.rs");
    let diags = run_file_rules(&file);
    // The four library-code sites fire; the `unwrap` and `panic!`
    // inside the `#[cfg(test)]` module are exempt.
    assert_spans(
        &diags,
        &[
            (RuleCode::PanicPolicy, 2, 15),
            (RuleCode::PanicPolicy, 3, 15),
            (RuleCode::PanicPolicy, 5, 9),
            (RuleCode::PanicPolicy, 8, 14),
        ],
    );
    assert!(
        diags[0].message.contains(".unwrap() call"),
        "{}",
        diags[0].message
    );
    assert!(
        diags[2].message.contains("panic! macro"),
        "{}",
        diags[2].message
    );
}

#[test]
fn panic_policy_is_scoped_to_core_and_serve() {
    let file = parse_as("crates/sim/src/fixture.rs", "panics.rs");
    assert_spans(&run_file_rules(&file), &[]);
}

#[test]
fn lanes_fixture_yields_exact_a5_span() {
    let file = parse_as("crates/sim/src/fixture.rs", "lanes.rs");
    let diags = run_file_rules(&file);
    // `forgotten` is the only Vec field never referenced in a lane
    // method; `width` is not a Vec and `primary` is covered.
    assert_spans(&diags, &[(RuleCode::LaneCoverage, 3, 5)]);
    assert!(
        diags[0].message.contains("`forgotten`"),
        "{}",
        diags[0].message
    );
    assert!(
        diags[0].message.contains("`BadCohort`"),
        "{}",
        diags[0].message
    );
}

#[test]
fn wire_fixture_yields_exact_a6_span() {
    let protocol = parse_as("crates/serve/src/protocol.rs", "protocol.rs");
    let roundtrip = parse_as(
        "crates/serve/tests/protocol_roundtrip.rs",
        "protocol_roundtrip.rs",
    );
    let diags = wire_coverage(&protocol, Some(&roundtrip));
    // `Request::Run`, `Request::Shutdown` and `ShardEvent::Chunk` are
    // exercised; `ShardEvent::Orphaned` is not.
    assert_spans(&diags, &[(RuleCode::WireCoverage, 8, 5)]);
    assert!(
        diags[0].message.contains("ShardEvent::Orphaned"),
        "{}",
        diags[0].message
    );
}

#[test]
fn a_missing_roundtrip_battery_is_itself_a_finding() {
    let protocol = parse_as("crates/serve/src/protocol.rs", "protocol.rs");
    let diags = wire_coverage(&protocol, None);
    assert_eq!(diags.len(), 1, "{diags:#?}");
    assert_eq!(diags[0].rule, RuleCode::WireCoverage);
}

#[test]
fn tricky_syntax_fixture_is_clean_under_every_rule() {
    // Parse the same tricky file under the strictest path (core lib:
    // A1+A2+A3+A4 all in scope) — mentions of `unwrap`, `thread_rng`
    // and `HashMap` inside strings and comments must not fire.
    let file = parse_as("crates/core/src/fixture.rs", "clean.rs");
    assert_spans(&run_file_rules(&file), &[]);
    assert!(file.malformed.is_empty(), "{:#?}", file.malformed);
}

#[test]
fn bad_allow_fixture_yields_exact_e0_spans() {
    let file = parse_as("crates/core/src/fixture.rs", "bad_allow.rs");
    // Unknown rule name, missing reason, and blank reason — all three
    // malformed forms are diagnosed at the comment itself.
    assert_spans(
        &file.malformed,
        &[
            (RuleCode::MalformedAllow, 1, 1),
            (RuleCode::MalformedAllow, 3, 1),
            (RuleCode::MalformedAllow, 5, 19),
        ],
    );
    // A malformed allow covers nothing: the codes still render E0.
    assert_eq!(RuleCode::MalformedAllow.code(), "E0");
}

#[test]
fn rendered_diagnostics_carry_code_name_and_hint() {
    let file = parse_as("crates/sim/src/fixture.rs", "hash_collections.rs");
    let diags = run_file_rules(&file);
    let rendered = diags[0].render();
    assert!(
        rendered.starts_with("crates/sim/src/fixture.rs:1:23: A1 [hash_collections]"),
        "{rendered}"
    );
    assert!(rendered.contains("hint:"), "{rendered}");
}
