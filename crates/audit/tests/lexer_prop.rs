//! Property test for the hand-written lexer: random sequences drawn
//! from a vocabulary of tricky token snippets, joined with newlines,
//! must lex to exactly the concatenation of each snippet's expected
//! kinds — and every token's byte span must slice back out of the
//! source intact. The vocabulary leans on the cases a naive lexer gets
//! wrong: raw strings with `//` and quotes inside, nested block
//! comments, `'a` lifetimes vs `'a'` chars, raw identifiers, and
//! numeric literals with exponents and suffixes.

use proptest::prelude::*;
use uavca_audit::lexer::{lex, TokenKind};

use TokenKind::*;

/// `(snippet, expected kinds)` — each snippet is placed on its own
/// line, so line comments terminate and cannot swallow a neighbor.
const VOCAB: &[(&str, &[TokenKind])] = &[
    ("ident", &[Ident]),
    ("r#type", &[Ident]),
    ("r#match", &[Ident]),
    ("'a", &[Lifetime]),
    ("'static", &[Lifetime]),
    ("'a'", &[Char]),
    ("'\\''", &[Char]),
    ("'\\u{1F600}'", &[Char]),
    ("b'x'", &[Char]),
    ("\"str with // not a comment\"", &[Str]),
    ("\"esc \\\" quote\"", &[Str]),
    ("\"multi\\nline escape\"", &[Str]),
    ("r\"raw no hash\"", &[RawStr]),
    ("r#\"raw with \"inner\" quotes\"#", &[RawStr]),
    ("br##\"raw # bytes with a lone \" quote\"##", &[RawStr]),
    ("42", &[Number]),
    ("1.0e-6", &[Number]),
    ("2.5E+10", &[Number]),
    ("0x_ff", &[Number]),
    ("0b1010", &[Number]),
    ("42u64", &[Number]),
    ("3.0f32", &[Number]),
    (
        "// a line comment with 'quotes' and \"strings\"",
        &[LineComment],
    ),
    ("/* flat block */", &[BlockComment]),
    (
        "/* nested /* twice /* deep */ */ still open */",
        &[BlockComment],
    ),
    ("::", &[Punct, Punct]),
    ("..", &[Punct, Punct]),
    ("{ }", &[Punct, Punct]),
    ("=>", &[Punct, Punct]),
    ("&mut", &[Punct, Ident]),
    ("0..3", &[Number, Punct, Punct, Number]),
    ("x.await", &[Ident, Punct, Ident]),
    ("vec.len()", &[Ident, Punct, Ident, Punct, Punct]),
];

/// The maximum number of snippets composed per case; each draw picks
/// that many vocabulary indices plus a prefix length to vary sequence
/// length (the support proptest `Vec` strategy is fixed-arity).
const MAX_SNIPPETS: usize = 24;

proptest! {
    #[test]
    fn snippet_sequences_lex_to_their_expected_kinds(
        draw in (vec![0usize..VOCAB.len(); MAX_SNIPPETS], 1usize..=MAX_SNIPPETS)
    ) {
        let (indices, len) = (&draw.0, draw.1);
        let picks = &indices[..len];
        let src: String = picks
            .iter()
            .map(|&i| VOCAB[i].0)
            .collect::<Vec<_>>()
            .join("\n");
        let want: Vec<TokenKind> = picks
            .iter()
            .flat_map(|&i| VOCAB[i].1.iter().copied())
            .collect();
        let tokens = lex(&src);
        let got: Vec<TokenKind> = tokens.iter().map(|t| t.kind).collect();
        prop_assert_eq!(&got, &want, "source:\n{}", src);

        // Spans are well-formed: in order, non-overlapping, and each
        // slices cleanly out of the source.
        let mut cursor = 0usize;
        for t in &tokens {
            prop_assert!(t.start >= cursor, "overlapping span in:\n{}", src);
            prop_assert!(t.end > t.start && t.end <= src.len());
            prop_assert!(src.is_char_boundary(t.start) && src.is_char_boundary(t.end));
            cursor = t.end;
        }

        // Everything between tokens is whitespace — the lexer drops
        // nothing else.
        let mut rebuilt = src.clone().into_bytes();
        for t in &tokens {
            rebuilt[t.start..t.end].fill(b' ');
        }
        prop_assert!(
            rebuilt.iter().all(|b| b.is_ascii_whitespace()),
            "unlexed residue in:\n{}",
            src
        );
    }

    /// Line/column bookkeeping: with one snippet per line, every
    /// snippet's first token starts at column 1 of its own line.
    #[test]
    fn first_token_of_each_line_is_at_column_one(
        draw in (vec![0usize..VOCAB.len(); MAX_SNIPPETS], 1usize..=MAX_SNIPPETS)
    ) {
        let (indices, len) = (&draw.0, draw.1);
        let picks = &indices[..len];
        let src: String = picks
            .iter()
            .map(|&i| VOCAB[i].0)
            .collect::<Vec<_>>()
            .join("\n");
        let tokens = lex(&src);
        // Multi-line snippets do not exist in the vocabulary, so each
        // snippet advances exactly one line.
        let expected_first_kinds = (1u32..).zip(picks.iter().map(|&i| VOCAB[i].1[0]));
        for (line, kind) in expected_first_kinds {
            let first = tokens
                .iter()
                .find(|t| t.line == line)
                .unwrap_or_else(|| panic!("no token on line {line} of:\n{src}"));
            prop_assert_eq!(first.col, 1, "line {} of:\n{}", line, src);
            prop_assert_eq!(first.kind, kind, "line {} of:\n{}", line, src);
        }
    }
}

/// The lexer is total: a grab-bag of malformed inputs must produce
/// tokens (degrading to `Punct` or running to EOF) without panicking.
#[test]
fn malformed_inputs_never_panic() {
    for src in [
        "\"unterminated",
        "r#\"unterminated raw",
        "/* unterminated block /* nested",
        "'",
        "'\\",
        "b'",
        "r#",
        "0x",
        "1.0e",
        "\u{FFFD}\u{0}",
        "🦀 émoji idénts",
    ] {
        let _ = lex(src);
    }
}
