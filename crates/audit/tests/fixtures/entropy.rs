fn seed_badly() -> u64 {
    let mut rng = rand::thread_rng();
    let _other = rand::rngs::StdRng::from_entropy();
    rng.gen()
}
