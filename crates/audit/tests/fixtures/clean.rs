//! Tricky-but-clean syntax: the analyzer must report nothing here.

/* nested /* block /* comments */ */ still one comment */
const RAW: &str = r#"not a // comment, and not "done" at the first quote"#;
const URL: &str = "https://example.com/not-a-comment";
const MENTIONS: &str = "contains .unwrap() and thread_rng and HashMap in a string";
const CH: char = 'a';
const ESCAPED: char = '\'';
const BYTES: &[u8] = br##"raw # bytes with a lone " quote"##;
const FLOATY: f64 = 1.0e-6;

fn lifetimes<'a>(x: &'a str) -> &'a str {
    // The `'a` above is a lifetime, not an unterminated char literal.
    x
}

fn ranges() -> usize {
    let mut n = 0_usize;
    for i in 0..3 {
        n += i;
    }
    n
}

fn raw_ident() -> u32 {
    let r#type = 1_u32;
    r#type
}
