use std::collections::HashMap;

fn tabulate(keys: &[u32]) -> HashMap<u32, u32> {
    // audit: allow(hash_collections, fixture demonstrating the standalone allow form)
    let mut counts: HashMap<u32, u32> = HashMap::new();
    for &k in keys {
        *counts.entry(k).or_insert(0) += 1;
    }
    counts
}
