use std::time::{Instant, SystemTime};

fn stamp() -> f64 {
    let t0 = Instant::now(); // audit: allow(wall_clock, fixture demonstrating the trailing allow form)
    let _ = SystemTime::now();
    t0.elapsed().as_secs_f64()
}
