pub enum Request {
    Run { jobs: u32 },
    Shutdown,
}

pub enum ShardEvent {
    Chunk { batch: u64 },
    Orphaned,
}
