pub struct BadCohort {
    primary: Vec<u32>,
    forgotten: Vec<f64>,
    width: usize,
}

impl BadCohort {
    fn ensure_lanes(&mut self, lanes: usize) {
        if self.primary.len() < lanes {
            self.primary.resize(lanes, 0);
        }
    }

    fn swap_lanes(&mut self, a: usize, b: usize) {
        self.primary.swap(a, b);
        let _ = self.width;
    }
}
