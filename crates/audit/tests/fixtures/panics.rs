fn brittle(v: Option<u32>) -> u32 {
    let a = v.unwrap();
    let b = v.expect("present");
    if a != b {
        panic!("mismatch");
    }
    match a {
        0 => unreachable!("zero was filtered upstream"),
        n => n,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        Option::<u32>::None.unwrap();
        panic!("fine here");
    }
}
