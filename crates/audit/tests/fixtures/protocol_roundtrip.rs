fn battery() {
    roundtrip(Request::Run { jobs: 3 });
    roundtrip(Request::Shutdown);
    roundtrip(ShardEvent::Chunk { batch: 7 });
}
