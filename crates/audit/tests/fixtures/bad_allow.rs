// audit: allow(no_such_rule, the rule name does not exist)
const A: u32 = 0;
// audit: allow(wall_clock)
const B: u32 = 1;
const C: u32 = 2; // audit: allow(panic_policy,   )
