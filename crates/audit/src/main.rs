//! The `uavca-audit` CLI: audit the workspace, print diagnostics,
//! exit nonzero on any finding.
//!
//! ```text
//! uavca-audit [--root <dir>]
//! ```
//!
//! Without `--root`, the workspace root is found by walking upward
//! from the current directory to the first `Cargo.toml` declaring
//! `[workspace]` — so `cargo run -p uavca-audit` works from anywhere
//! inside the repo.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use uavca_audit::{audit_workspace, find_workspace_root};

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut root: Option<PathBuf> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("uavca-audit: --root requires a directory argument");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("usage: uavca-audit [--root <workspace dir>]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("uavca-audit: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    let root = match root {
        Some(dir) => dir,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(cwd) => cwd,
                Err(e) => {
                    eprintln!("uavca-audit: cannot read current directory: {e}");
                    return ExitCode::from(2);
                }
            };
            match find_workspace_root(&cwd) {
                Some(dir) => dir,
                None => {
                    eprintln!(
                        "uavca-audit: no enclosing [workspace] Cargo.toml from {}",
                        cwd.display()
                    );
                    return ExitCode::from(2);
                }
            }
        }
    };

    let report = match audit_workspace(&root) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("uavca-audit: walking {} failed: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    for diag in &report.diagnostics {
        println!("{diag}");
    }
    if report.diagnostics.is_empty() {
        println!(
            "uavca-audit: workspace clean ({} files audited)",
            report.files_scanned
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "uavca-audit: {} diagnostic(s) across {} files audited",
            report.diagnostics.len(),
            report.files_scanned
        );
        ExitCode::FAILURE
    }
}
