//! `uavca-audit`: the workspace determinism-and-fault-policy static
//! analyzer.
//!
//! The whole validation claim of this reproduction rests on
//! bit-identical determinism: campaigns, splitting runs and
//! checkpoint/resume are trustworthy *because* their results are
//! byte-for-byte reproducible across threads, shards and restarts
//! (`campaign_determinism.rs`, `checkpoint_resume.rs`, the serve fault
//! batteries). Those test batteries verify the property after the
//! fact; nothing in the build stops the next change from introducing a
//! `HashMap` iteration, an ambient RNG, or a wall-clock read into a
//! deterministic path — the silent-nondeterminism bug class that
//! invalidates statistical estimates without ever failing a test.
//!
//! This crate turns the repo's determinism conventions into
//! machine-checked invariants. It is deliberately **dependency-free**
//! (the offline workspace has no crates.io, so `syn` is not an
//! option): a hand-written Rust [`lexer`] feeds a token-level rule
//! engine, and `cargo run -p uavca-audit` walks the workspace and
//! exits nonzero on any unannotated diagnostic. CI gates on it before
//! the test suite runs.
//!
//! # Rules
//!
//! Each rule has a stable code, a span, a fix hint, and an inline
//! escape hatch `// audit: allow(<rule>, <reason>)` — see [`RuleCode`]
//! for per-rule rustdoc and `DESIGN.md` §"Audited invariants" for the
//! rationale:
//!
//! - **A1 `hash_collections`** — no `HashMap`/`HashSet` in the
//!   deterministic crates.
//! - **A2 `wall_clock`** — no `Instant`/`SystemTime` in library code
//!   (bench/support and the serve timeout allowlist exempt).
//! - **A3 `ambient_entropy`** — no `thread_rng`/`from_entropy`/`OsRng`
//!   anywhere; seeds flow from `campaign_job_seed`/`split_branch_seed`.
//! - **A4 `panic_policy`** — `unwrap`/`expect`/`panic!`/`unreachable!`
//!   in `core`/`serve` library code require an annotation.
//! - **A5 `lane_coverage`** — every `Vec` field of a cohort
//!   lane-protocol struct must be referenced in
//!   `ensure_lanes`/`reset_lane`/`swap_lanes`.
//! - **A6 `wire_coverage`** — every wire-enum variant in
//!   `crates/serve/src/protocol.rs` must appear in the round-trip
//!   battery.
//!
//! # Using the analyzer
//!
//! ```text
//! cargo run -p uavca-audit            # audit the enclosing workspace
//! cargo run -p uavca-audit -- --root /path/to/workspace
//! ```
//!
//! The library surface ([`audit_workspace`], [`SourceFile::parse`] +
//! [`run_file_rules`]) is what the fixture-corpus and self-run tests
//! drive; the binary is a thin wrapper.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod diag;
mod engine;
pub mod lexer;
mod rules;

pub use diag::{Diagnostic, RuleCode};
pub use engine::{
    audit_workspace, find_workspace_root, AuditReport, FileClass, SourceFile, DETERMINISTIC_CRATES,
    PROTOCOL_PATH, ROUNDTRIP_PATH, WALL_CLOCK_ALLOWLIST,
};
pub use rules::{run_file_rules, wire_coverage};
