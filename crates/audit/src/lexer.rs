//! A dependency-free Rust lexer producing a flat token stream with
//! line/column spans.
//!
//! This is a *lexer*, not a parser: it recognizes exactly the token
//! boundaries the rule engine needs to be sound — where comments,
//! strings, and character literals begin and end — so a `HashMap`
//! inside a doc comment or a `thread_rng` inside a string literal can
//! never produce a diagnostic. The tricky boundaries it gets right:
//!
//! - **Nested block comments**: `/* outer /* inner */ still outer */`
//!   is one comment token (Rust block comments nest).
//! - **Raw strings**: `r"…"`, `r#"…"#`, … with any number of hashes,
//!   including quotes and `//` inside the body; `br#"…"#` byte forms.
//! - **Raw identifiers**: `r#type` is an identifier, not a raw string.
//! - **Lifetimes vs char literals**: `'a` is a lifetime, `'a'` is a
//!   char; escapes (`'\n'`, `'\u{1F600}'`, `'\''`) are chars.
//! - **Strings containing `//` or `/*`**: comment openers inside
//!   string bodies are body bytes, not comments.
//!
//! The lexer is total: any byte sequence lexes without panicking
//! (malformed input degrades to `Punct` tokens or an
//! unterminated-token that runs to end of input). Every token carries
//! its byte span and 1-based line/column, and consecutive tokens never
//! overlap — properties the proptest battery in
//! `crates/audit/tests/lexer_props.rs` exercises.

/// The lexical class of one token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (including raw identifiers `r#type`).
    Ident,
    /// A lifetime such as `'a` or `'_` (no closing quote).
    Lifetime,
    /// A character or byte literal: `'a'`, `'\n'`, `b'x'`.
    Char,
    /// A string literal: `"…"`, `b"…"` (escapes handled).
    Str,
    /// A raw string literal: `r"…"`, `r#"…"#`, `br"…"` etc.
    RawStr,
    /// A numeric literal, suffix included: `1.0e-6`, `0x_ff`, `42u64`.
    Number,
    /// A `//` comment, up to but not including the newline.
    LineComment,
    /// A (possibly nested) `/* … */` comment.
    BlockComment,
    /// Any other single non-whitespace character.
    Punct,
}

/// One lexed token: kind plus byte span and 1-based position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// The lexical class.
    pub kind: TokenKind,
    /// Byte offset of the first byte, inclusive.
    pub start: usize,
    /// Byte offset one past the last byte, exclusive.
    pub end: usize,
    /// 1-based line of the first byte.
    pub line: u32,
    /// 1-based column (in bytes) of the first byte.
    pub col: u32,
}

impl Token {
    /// The token's text within the source it was lexed from.
    pub fn slice<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }
}

/// Lexes `src` into a flat token stream (whitespace discarded).
pub fn lex(src: &str) -> Vec<Token> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
    tokens: Vec<Token>,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Self {
            src,
            bytes: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
            tokens: Vec::new(),
        }
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    /// Advances one byte, maintaining the line/column counters.
    fn bump(&mut self) {
        if self.bytes[self.pos] == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        self.pos += 1;
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    fn run(mut self) -> Vec<Token> {
        while self.pos < self.bytes.len() {
            let b = self.bytes[self.pos];
            if b.is_ascii_whitespace() {
                self.bump();
                continue;
            }
            let (start, line, col) = (self.pos, self.line, self.col);
            let kind = self.next_kind(b);
            debug_assert!(self.pos > start, "lexer must always make progress");
            self.tokens.push(Token {
                kind,
                start,
                end: self.pos,
                line,
                col,
            });
        }
        self.tokens
    }

    /// Consumes one token starting at the current position and returns
    /// its kind.
    fn next_kind(&mut self, b: u8) -> TokenKind {
        match b {
            b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
            b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
            b'r' | b'b' if self.raw_or_byte_prefix() => self.prefixed_literal(),
            _ if is_ident_start(b) => self.ident(),
            b'\'' => self.lifetime_or_char(),
            b'"' => self.string(),
            _ if b.is_ascii_digit() => self.number(),
            _ => {
                // A single non-ASCII alphabetic char also counts as an
                // identifier start (non-ASCII idents are valid Rust).
                if let Some(c) = self.src[self.pos..].chars().next() {
                    if c.is_alphabetic() {
                        return self.ident();
                    }
                    self.bump_n(c.len_utf8());
                } else {
                    self.bump();
                }
                TokenKind::Punct
            }
        }
    }

    /// Is the `r`/`b` at the cursor the prefix of a raw/byte literal
    /// (as opposed to a plain identifier like `rate` or a raw
    /// identifier like `r#type`)?
    fn raw_or_byte_prefix(&self) -> bool {
        let b = self.bytes[self.pos];
        match (b, self.peek(1)) {
            // b"…" or b'…'
            (b'b', Some(b'"')) | (b'b', Some(b'\'')) => true,
            // br"…" or br#…
            (b'b', Some(b'r')) => matches!(self.peek(2), Some(b'"') | Some(b'#')),
            // r"…"
            (b'r', Some(b'"')) => true,
            // r#: raw string r#"…"# vs raw identifier r#type — a raw
            // string has only hashes between `r` and the quote.
            (b'r', Some(b'#')) => {
                let mut i = 1;
                while self.peek(i) == Some(b'#') {
                    i += 1;
                }
                self.peek(i) == Some(b'"')
            }
            _ => false,
        }
    }

    /// Lexes `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `b'…'` (the prefix
    /// has been validated by [`Self::raw_or_byte_prefix`]).
    fn prefixed_literal(&mut self) -> TokenKind {
        let mut raw = false;
        if self.bytes[self.pos] == b'b' {
            self.bump();
            if self.peek(0) == Some(b'r') {
                raw = true;
                self.bump();
            }
        } else {
            raw = true;
            self.bump();
        }
        if raw {
            self.raw_string_body()
        } else if self.peek(0) == Some(b'\'') {
            // b'…': always a byte literal, never a lifetime.
            self.bump();
            self.char_body();
            TokenKind::Char
        } else {
            self.string()
        }
    }

    /// Lexes the `#*"…"#*` part of a raw string (cursor on the first
    /// `#` or the quote).
    fn raw_string_body(&mut self) -> TokenKind {
        let mut hashes = 0usize;
        while self.peek(0) == Some(b'#') {
            hashes += 1;
            self.bump();
        }
        if self.peek(0) == Some(b'"') {
            self.bump();
        }
        // Scan for `"` followed by `hashes` hashes.
        while self.pos < self.bytes.len() {
            if self.bytes[self.pos] == b'"' {
                let mut i = 1;
                while i <= hashes && self.peek(i) == Some(b'#') {
                    i += 1;
                }
                if i == hashes + 1 {
                    self.bump_n(hashes + 1);
                    return TokenKind::RawStr;
                }
            }
            self.bump();
        }
        TokenKind::RawStr // unterminated: runs to end of input
    }

    fn line_comment(&mut self) -> TokenKind {
        while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\n' {
            self.bump();
        }
        TokenKind::LineComment
    }

    fn block_comment(&mut self) -> TokenKind {
        self.bump_n(2); // `/*`
        let mut depth = 1usize;
        while self.pos < self.bytes.len() && depth > 0 {
            if self.bytes[self.pos] == b'/' && self.peek(1) == Some(b'*') {
                depth += 1;
                self.bump_n(2);
            } else if self.bytes[self.pos] == b'*' && self.peek(1) == Some(b'/') {
                depth -= 1;
                self.bump_n(2);
            } else {
                self.bump();
            }
        }
        TokenKind::BlockComment
    }

    fn ident(&mut self) -> TokenKind {
        // Raw identifier prefix r#type: consume `r#`, then the name.
        if self.bytes[self.pos] == b'r' && self.peek(1) == Some(b'#') {
            self.bump_n(2);
        }
        while self.pos < self.bytes.len() {
            let c = self.src[self.pos..].chars().next().unwrap_or('\0');
            if c == '_' || c.is_alphanumeric() {
                self.bump_n(c.len_utf8());
            } else {
                break;
            }
        }
        TokenKind::Ident
    }

    /// Disambiguates `'a` (lifetime) from `'a'` / `'\n'` (char).
    fn lifetime_or_char(&mut self) -> TokenKind {
        self.bump(); // opening quote
        match self.peek(0) {
            // An escape can only start a char literal.
            Some(b'\\') => {
                self.char_body();
                TokenKind::Char
            }
            Some(b) if is_ident_start(b) || b.is_ascii_digit() => {
                // Scan the identifier-shaped run after the quote; a
                // closing quote right after makes it a char literal
                // ('a', 'é'), otherwise it is a lifetime ('a, 'static).
                let mut i = 0;
                loop {
                    let rest = &self.src[self.pos + i..];
                    let Some(c) = rest.chars().next() else { break };
                    if c == '_' || c.is_alphanumeric() {
                        i += c.len_utf8();
                    } else {
                        break;
                    }
                }
                if self.peek(i) == Some(b'\'') {
                    self.bump_n(i + 1);
                    TokenKind::Char
                } else {
                    self.bump_n(i);
                    TokenKind::Lifetime
                }
            }
            // Any other single char: '+', ' ', '∂' … must be a char
            // literal (there is no lifetime named `'+`).
            Some(_) => {
                self.char_body();
                TokenKind::Char
            }
            None => TokenKind::Lifetime,
        }
    }

    /// Consumes a char-literal body plus closing quote (cursor just
    /// past the opening quote).
    fn char_body(&mut self) {
        if self.peek(0) == Some(b'\\') {
            self.bump();
            match self.peek(0) {
                Some(b'u') => {
                    self.bump();
                    if self.peek(0) == Some(b'{') {
                        while self.pos < self.bytes.len() && self.bytes[self.pos] != b'}' {
                            self.bump();
                        }
                        if self.pos < self.bytes.len() {
                            self.bump();
                        }
                    }
                }
                Some(b'x') => self.bump_n(3.min(self.bytes.len() - self.pos)),
                Some(_) => self.bump(),
                None => {}
            }
        } else if let Some(c) = self.src[self.pos..].chars().next() {
            self.bump_n(c.len_utf8());
        }
        if self.peek(0) == Some(b'\'') {
            self.bump();
        }
    }

    fn string(&mut self) -> TokenKind {
        self.bump(); // opening quote
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'\\' => {
                    self.bump();
                    if self.pos < self.bytes.len() {
                        self.bump(); // the escaped byte (covers \" and \\)
                    }
                }
                b'"' => {
                    self.bump();
                    return TokenKind::Str;
                }
                _ => self.bump(),
            }
        }
        TokenKind::Str // unterminated: runs to end of input
    }

    fn number(&mut self) -> TokenKind {
        // Integer/prefix part plus any alphanumeric continuation: this
        // single scan covers hex/oct/bin prefixes, `_` separators,
        // type suffixes (42u64, 1f32) and exponent digits.
        self.alphanumeric_run();
        // Fractional part: consume `.` only when a digit follows, so
        // `0..n` lexes as `0`, `.`, `.`, `n` (range, not float).
        if self.peek(0) == Some(b'.') && self.peek(1).is_some_and(|b| b.is_ascii_digit()) {
            self.bump();
            self.alphanumeric_run();
        }
        // Signed exponent: `1e-6` / `2.5E+10` leave the run above at
        // `e`; stitch the sign and digits back on.
        if matches!(
            self.bytes.get(self.pos.wrapping_sub(1)),
            Some(b'e') | Some(b'E')
        ) && matches!(self.peek(0), Some(b'+') | Some(b'-'))
            && self.peek(1).is_some_and(|b| b.is_ascii_digit())
        {
            self.bump();
            self.alphanumeric_run();
        }
        TokenKind::Number
    }

    fn alphanumeric_run(&mut self) {
        while self
            .peek(0)
            .is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_')
        {
            self.bump();
        }
    }
}

fn is_ident_start(b: u8) -> bool {
    b == b'_' || b.is_ascii_alphabetic()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, &str)> {
        lex(src).iter().map(|t| (t.kind, t.slice(src))).collect()
    }

    #[test]
    fn lifetimes_vs_chars() {
        use TokenKind::*;
        assert_eq!(
            kinds("&'a str 'x' '\\n' 'static '_ b'q'"),
            vec![
                (Punct, "&"),
                (Lifetime, "'a"),
                (Ident, "str"),
                (Char, "'x'"),
                (Char, "'\\n'"),
                (Lifetime, "'static"),
                (Lifetime, "'_"),
                (Char, "b'q'"),
            ]
        );
    }

    #[test]
    fn raw_strings_and_raw_idents() {
        use TokenKind::*;
        assert_eq!(
            kinds(r###"r#type r"raw" r#"has " quote"# br##"//"##"###),
            vec![
                (Ident, "r#type"),
                (RawStr, r#"r"raw""#),
                (RawStr, r##"r#"has " quote"#"##),
                (RawStr, r###"br##"//"##"###),
            ]
        );
    }

    #[test]
    fn comments_nest_and_strings_hide_comment_openers() {
        use TokenKind::*;
        assert_eq!(
            kinds("/* a /* b */ c */ \"// not a comment\" // real"),
            vec![
                (BlockComment, "/* a /* b */ c */"),
                (Str, "\"// not a comment\""),
                (LineComment, "// real"),
            ]
        );
    }

    #[test]
    fn numbers_with_suffixes_exponents_and_ranges() {
        use TokenKind::*;
        assert_eq!(
            kinds("1.0e-6 0x_ff 42u64 0..n 3.5f64"),
            vec![
                (Number, "1.0e-6"),
                (Number, "0x_ff"),
                (Number, "42u64"),
                (Number, "0"),
                (Punct, "."),
                (Punct, "."),
                (Ident, "n"),
                (Number, "3.5f64"),
            ]
        );
    }

    #[test]
    fn spans_are_one_based_and_track_newlines() {
        let src = "a\n  bb\n";
        let toks = lex(src);
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }
}
