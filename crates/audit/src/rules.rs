//! The six audit rules, as token-level passes over a [`SourceFile`].
//!
//! Scope summary (see [`RuleCode`](crate::RuleCode) for the *why* of
//! each rule):
//!
//! | rule | code | applies to |
//! |------|------|------------|
//! | `hash_collections` | A1 | every file of the deterministic crates |
//! | `wall_clock` | A2 | library code outside bench/support, minus the serve timeout allowlist |
//! | `ambient_entropy` | A3 | everything except support crates |
//! | `panic_policy` | A4 | `core`/`serve` library code outside `#[cfg(test)]` modules |
//! | `lane_coverage` | A5 | everything except support crates |
//! | `wire_coverage` | A6 | the `protocol.rs` / `protocol_roundtrip.rs` file pair |
//!
//! Fixture-class files (the analyzer's own known-bad corpus) are never
//! audited as workspace code.

use crate::diag::{Diagnostic, RuleCode};
use crate::engine::{
    FileClass, SourceFile, DETERMINISTIC_CRATES, ROUNDTRIP_PATH, WALL_CLOCK_ALLOWLIST,
};
use crate::lexer::TokenKind;

/// Identifiers rule A1 rejects: per-instance-seeded hash collections.
const HASH_COLLECTIONS: [&str; 2] = ["HashMap", "HashSet"];
/// Identifiers rule A2 rejects: wall-clock types.
const WALL_CLOCKS: [&str; 2] = ["Instant", "SystemTime"];
/// Identifiers rule A3 rejects: ambient entropy sources.
const ENTROPY_SOURCES: [&str; 5] = [
    "thread_rng",
    "ThreadRng",
    "from_entropy",
    "OsRng",
    "getrandom",
];
/// The cohort lane-protocol methods rule A5 requires field coverage in.
const LANE_METHODS: [&str; 3] = ["ensure_lanes", "reset_lane", "swap_lanes"];
/// The wire enums rule A6 requires round-trip coverage for.
const WIRE_ENUMS: [&str; 4] = ["Request", "Event", "ShardRequest", "ShardEvent"];

/// Runs every single-file rule (A1–A5) over `file`.
pub fn run_file_rules(file: &SourceFile) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if matches!(file.class, FileClass::Fixture | FileClass::Support) {
        return out;
    }
    hash_collections(file, &mut out);
    wall_clock(file, &mut out);
    ambient_entropy(file, &mut out);
    panic_policy(file, &mut out);
    lane_coverage(file, &mut out);
    out
}

/// A1: no `HashMap`/`HashSet` anywhere in a deterministic crate
/// (library, tests and benches alike — a test that iterates a hash map
/// can flake just as silently as a report that does).
fn hash_collections(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    let deterministic = file
        .krate
        .as_deref()
        .is_some_and(|k| DETERMINISTIC_CRATES.contains(&k));
    if !deterministic {
        return;
    }
    for (i, tok) in file.tokens.iter().enumerate() {
        if tok.kind == TokenKind::Ident && HASH_COLLECTIONS.contains(&tok.slice(&file.src)) {
            file.diag_at(
                RuleCode::HashCollections,
                i,
                format!(
                    "`{}` in deterministic crate `{}`: iteration order is seeded per instance",
                    tok.slice(&file.src),
                    file.krate.as_deref().unwrap_or("?"),
                ),
                out,
            );
        }
    }
}

/// A2: no `Instant`/`SystemTime` in library code (bench/support crates,
/// tests, benches, examples and the serve timeout allowlist exempt).
fn wall_clock(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    if file.class != FileClass::Lib
        || file.krate.as_deref() == Some("bench")
        || WALL_CLOCK_ALLOWLIST.contains(&file.rel_path.as_str())
    {
        return;
    }
    for (i, tok) in file.tokens.iter().enumerate() {
        if tok.kind == TokenKind::Ident && WALL_CLOCKS.contains(&tok.slice(&file.src)) {
            file.diag_at(
                RuleCode::WallClock,
                i,
                format!("wall-clock type `{}` in library code", tok.slice(&file.src)),
                out,
            );
        }
    }
}

/// A3: no ambient entropy anywhere outside the support crates — every
/// seed must be a pure function of job identity.
fn ambient_entropy(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    for (i, tok) in file.tokens.iter().enumerate() {
        if tok.kind == TokenKind::Ident && ENTROPY_SOURCES.contains(&tok.slice(&file.src)) {
            file.diag_at(
                RuleCode::AmbientEntropy,
                i,
                format!(
                    "ambient entropy source `{}`; seeds must flow from \
                     campaign_job_seed/split_branch_seed",
                    tok.slice(&file.src)
                ),
                out,
            );
        }
    }
}

/// A4: `unwrap`/`expect`/`panic!`/`unreachable!` in `core`/`serve`
/// library code (outside `#[cfg(test)]` modules) require an annotation.
fn panic_policy(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    if file.class != FileClass::Lib
        || !matches!(file.krate.as_deref(), Some("core") | Some("serve"))
    {
        return;
    }
    let toks = &file.tokens;
    for (i, tok) in toks.iter().enumerate() {
        if tok.kind != TokenKind::Ident || file.in_test_mod(tok.line) {
            continue;
        }
        let text = tok.slice(&file.src);
        let method_call = |name| {
            // `.unwrap(` / `.expect(` — requiring the leading dot keeps
            // `#[expect(lint)]` attributes and items *named* unwrap out.
            text == name
                && i > 0
                && toks[i - 1].slice(&file.src) == "."
                && toks.get(i + 1).is_some_and(|t| t.slice(&file.src) == "(")
        };
        let bang_macro =
            |name| text == name && toks.get(i + 1).is_some_and(|t| t.slice(&file.src) == "!");
        let found = if method_call("unwrap") || method_call("expect") {
            format!(".{text}() call")
        } else if bang_macro("panic") || bang_macro("unreachable") {
            format!("{text}! macro")
        } else {
            continue;
        };
        file.diag_at(
            RuleCode::PanicPolicy,
            i,
            format!(
                "{found} in `{}` library code: typed faults must not regress into panics",
                file.krate.as_deref().unwrap_or("?")
            ),
            out,
        );
    }
}

/// A5: every `Vec` field of a struct that implements any lane-protocol
/// method must be referenced in at least one of those methods.
fn lane_coverage(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    let structs = collect_structs(file);
    if structs.is_empty() {
        return;
    }
    for s in &structs {
        let mut referenced: Vec<&str> = Vec::new();
        let mut has_lane_methods = false;
        for (self_name, body_range) in collect_lane_method_bodies(file) {
            if self_name == s.name {
                has_lane_methods = true;
                for tok in &file.tokens[body_range.0..body_range.1] {
                    if tok.kind == TokenKind::Ident {
                        referenced.push(tok.slice(&file.src));
                    }
                }
            }
        }
        if !has_lane_methods {
            continue;
        }
        for field in &s.vec_fields {
            if !referenced.contains(&field.name.as_str()) {
                file.diag_at(
                    RuleCode::LaneCoverage,
                    field.token_index,
                    format!(
                        "per-lane field `{}` of `{}` is not referenced in any of \
                         ensure_lanes/reset_lane/swap_lanes: dense-slot compaction \
                         would mix lanes",
                        field.name, s.name
                    ),
                    out,
                );
            }
        }
    }
}

struct VecField {
    name: String,
    token_index: usize,
}

struct StructDef {
    name: String,
    vec_fields: Vec<VecField>,
}

/// Finds every brace struct definition and its `Vec`-typed fields
/// (including arrays of `Vec`, e.g. `[Vec<UavState>; 2]`).
fn collect_structs(file: &SourceFile) -> Vec<StructDef> {
    let toks = &file.tokens;
    let text = |i: usize| toks[i].slice(&file.src);
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].kind == TokenKind::Ident && text(i) == "struct" && i + 1 < toks.len() {
            let name = text(i + 1).to_string();
            // Skip generics to the body opener; `;` or `(` means a
            // unit/tuple struct — no named fields to audit.
            let mut j = i + 2;
            let mut angle = 0i32;
            while j < toks.len() {
                match text(j) {
                    "<" => angle += 1,
                    ">" => angle -= 1,
                    "{" if angle == 0 => break,
                    ";" | "(" if angle == 0 => break,
                    _ => {}
                }
                j += 1;
            }
            if j < toks.len() && text(j) == "{" {
                let mut vec_fields = Vec::new();
                let mut depth = 1usize;
                let mut k = j + 1;
                while k < toks.len() && depth > 0 {
                    match text(k) {
                        "{" | "(" | "[" => depth += 1,
                        "}" | ")" | "]" => depth -= 1,
                        "#" if depth == 1 => {
                            // Skip attributes on fields.
                            if k + 1 < toks.len() && text(k + 1) == "[" {
                                let mut b = 1usize;
                                k += 2;
                                while k < toks.len() && b > 0 {
                                    match text(k) {
                                        "[" => b += 1,
                                        "]" => b -= 1,
                                        _ => {}
                                    }
                                    k += 1;
                                }
                                continue;
                            }
                        }
                        _ => {
                            // A field: ident followed by `:` at depth 1.
                            if depth == 1
                                && toks[k].kind == TokenKind::Ident
                                && text(k) != "pub"
                                && k + 1 < toks.len()
                                && text(k + 1) == ":"
                            {
                                let field_index = k;
                                let field_name = text(k).to_string();
                                // Scan the type tokens up to the `,` (or
                                // closing `}`) at this depth.
                                let mut t = k + 2;
                                let mut tdepth = 0i32;
                                let mut is_vec = false;
                                while t < toks.len() {
                                    match text(t) {
                                        "<" | "(" | "[" | "{" => tdepth += 1,
                                        ">" | ")" | "]" => tdepth -= 1,
                                        "}" if tdepth == 0 => break,
                                        "," if tdepth <= 0 => break,
                                        "Vec" => is_vec = true,
                                        _ => {}
                                    }
                                    t += 1;
                                }
                                if is_vec {
                                    vec_fields.push(VecField {
                                        name: field_name,
                                        token_index: field_index,
                                    });
                                }
                                k = t;
                                continue;
                            }
                        }
                    }
                    k += 1;
                }
                out.push(StructDef { name, vec_fields });
                i = k;
                continue;
            }
        }
        i += 1;
    }
    out
}

/// Finds every `ensure_lanes`/`reset_lane`/`swap_lanes` *method body*
/// inside an `impl` block, returning `(self_type, token_range)` pairs.
fn collect_lane_method_bodies(file: &SourceFile) -> Vec<(String, (usize, usize))> {
    let toks = &file.tokens;
    let text = |i: usize| toks[i].slice(&file.src);
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if !(toks[i].kind == TokenKind::Ident && text(i) == "impl") {
            i += 1;
            continue;
        }
        // Resolve the Self type of `impl … {`: the ident after `for`
        // if present (trait impl), else the first ident outside the
        // generic parameter list (inherent impl).
        let mut j = i + 1;
        let mut angle = 0i32;
        let mut self_ty: Option<String> = None;
        while j < toks.len() && text(j) != "{" {
            match text(j) {
                "<" => angle += 1,
                ">" => angle -= 1,
                // `impl Trait for Type`: the Self type restarts after
                // `for`, so the trait name is discarded.
                "for" if angle == 0 => self_ty = None,
                _ => {
                    if angle == 0 && toks[j].kind == TokenKind::Ident && self_ty.is_none() {
                        self_ty = Some(text(j).to_string());
                    }
                }
            }
            j += 1;
        }
        let Some(self_ty) = self_ty else {
            i = j;
            continue;
        };
        if j >= toks.len() {
            break;
        }
        // Walk the impl body looking for the lane methods.
        let mut depth = 1usize;
        let mut k = j + 1;
        while k < toks.len() && depth > 0 {
            match text(k) {
                "{" => depth += 1,
                "}" => depth -= 1,
                "fn" if depth == 1
                    && toks[k].kind == TokenKind::Ident
                    && k + 1 < toks.len()
                    && LANE_METHODS.contains(&text(k + 1)) =>
                {
                    // Find the body `{` (skipping the signature) and
                    // record its token range.
                    let mut b = k + 2;
                    let mut sig_depth = 0i32;
                    while b < toks.len() {
                        match text(b) {
                            "(" | "<" | "[" => sig_depth += 1,
                            ")" | ">" | "]" => sig_depth -= 1,
                            "{" if sig_depth <= 0 => break,
                            ";" if sig_depth <= 0 => break,
                            _ => {}
                        }
                        b += 1;
                    }
                    if b < toks.len() && text(b) == "{" {
                        let start = b + 1;
                        let mut bd = 1usize;
                        let mut e = start;
                        while e < toks.len() && bd > 0 {
                            match text(e) {
                                "{" => bd += 1,
                                "}" => bd -= 1,
                                _ => {}
                            }
                            e += 1;
                        }
                        // The body's braces balance, so `depth`
                        // stays at the impl level after the skip.
                        out.push((self_ty.clone(), (start, e)));
                        k = e;
                        continue;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        i = k;
    }
    out
}

/// A6: every variant of the wire enums in `protocol.rs` must appear
/// (as an identifier) in `protocol_roundtrip.rs`.
pub fn wire_coverage(protocol: &SourceFile, roundtrip: Option<&SourceFile>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let enums = collect_enum_variants(protocol);
    let Some(roundtrip) = roundtrip else {
        if !enums.is_empty() {
            out.push(Diagnostic {
                rule: RuleCode::WireCoverage,
                path: protocol.rel_path.clone().into(),
                line: 1,
                col: 1,
                message: format!("round-trip battery `{ROUNDTRIP_PATH}` is missing"),
            });
        }
        return out;
    };
    let covered: Vec<&str> = roundtrip
        .tokens
        .iter()
        .filter(|t| t.kind == TokenKind::Ident)
        .map(|t| t.slice(&roundtrip.src))
        .collect();
    for (enum_name, variants) in enums {
        for (variant, token_index) in variants {
            if !covered.contains(&variant.as_str()) {
                protocol.diag_at(
                    RuleCode::WireCoverage,
                    token_index,
                    format!(
                        "wire variant `{enum_name}::{variant}` never appears in the \
                         round-trip battery ({ROUNDTRIP_PATH})"
                    ),
                    &mut out,
                );
            }
        }
    }
    out
}

/// Collects `(enum_name, [(variant, token_index)])` for the wire enums.
fn collect_enum_variants(file: &SourceFile) -> Vec<(String, Vec<(String, usize)>)> {
    let toks = &file.tokens;
    let text = |i: usize| toks[i].slice(&file.src);
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if !(toks[i].kind == TokenKind::Ident
            && text(i) == "enum"
            && i + 1 < toks.len()
            && WIRE_ENUMS.contains(&text(i + 1)))
        {
            i += 1;
            continue;
        }
        let enum_name = text(i + 1).to_string();
        let mut j = i + 2;
        while j < toks.len() && text(j) != "{" {
            j += 1;
        }
        let mut variants = Vec::new();
        let mut depth = 1usize;
        let mut k = j + 1;
        let mut expect_variant = true;
        while k < toks.len() && depth > 0 {
            match text(k) {
                "{" | "(" | "[" => depth += 1,
                "}" | ")" | "]" => depth -= 1,
                "," if depth == 1 => expect_variant = true,
                "#" if depth == 1 => {
                    // Skip variant attributes.
                    if k + 1 < toks.len() && text(k + 1) == "[" {
                        let mut b = 1usize;
                        k += 2;
                        while k < toks.len() && b > 0 {
                            match text(k) {
                                "[" => b += 1,
                                "]" => b -= 1,
                                _ => {}
                            }
                            k += 1;
                        }
                        continue;
                    }
                }
                _ => {
                    if depth == 1 && expect_variant && toks[k].kind == TokenKind::Ident {
                        variants.push((text(k).to_string(), k));
                        expect_variant = false;
                    }
                }
            }
            k += 1;
        }
        out.push((enum_name, variants));
        i = k;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(path: &str, src: &str) -> SourceFile {
        SourceFile::parse(path, src.to_string())
    }

    fn codes(diags: &[Diagnostic]) -> Vec<(&'static str, u32, u32)> {
        diags
            .iter()
            .map(|d| (d.rule.code(), d.line, d.col))
            .collect()
    }

    #[test]
    fn hash_collections_fire_only_in_deterministic_crates() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(
            codes(&run_file_rules(&file("crates/core/src/x.rs", src))),
            vec![("A1", 1, 23)]
        );
        assert!(run_file_rules(&file("crates/evo/src/x.rs", src)).is_empty());
    }

    #[test]
    fn comments_and_strings_never_fire() {
        let src = "// HashMap Instant thread_rng\nlet s = \"HashMap thread_rng\";\nlet r = r#\"Instant::now()\"#;\n";
        assert!(run_file_rules(&file("crates/core/src/x.rs", src)).is_empty());
    }

    #[test]
    fn panic_policy_requires_the_dot_and_the_bang() {
        let src = "#[expect(dead_code)]\nfn f(x: Option<u8>) -> u8 {\n    std::panic::catch_unwind(|| 1u8).ok();\n    x.unwrap()\n}\n";
        assert_eq!(
            codes(&run_file_rules(&file("crates/serve/src/x.rs", src))),
            vec![("A4", 4, 7)]
        );
    }

    #[test]
    fn panic_policy_skips_cfg_test_modules_and_other_crates() {
        let src =
            "#[cfg(test)]\nmod tests {\n    fn t() { None::<u8>.unwrap(); panic!(\"x\") }\n}\n";
        assert!(run_file_rules(&file("crates/core/src/x.rs", src)).is_empty());
        let live = "fn f() { panic!(\"boom\") }\n";
        assert!(run_file_rules(&file("crates/sim/src/x.rs", live)).is_empty());
        assert_eq!(
            codes(&run_file_rules(&file("crates/core/src/x.rs", live))),
            vec![("A4", 1, 10)]
        );
    }

    #[test]
    fn lane_coverage_flags_the_forgotten_field() {
        let src = "struct C {\n    covered: Vec<u8>,\n    forgotten: Vec<u8>,\n    plain: u8,\n}\nimpl C {\n    fn swap_lanes(&mut self, a: usize, b: usize) {\n        self.covered.swap(a, b);\n    }\n}\n";
        let diags = run_file_rules(&file("crates/sim/src/x.rs", src));
        assert_eq!(codes(&diags), vec![("A5", 3, 5)]);
        assert!(diags[0].message.contains("forgotten"));
    }

    #[test]
    fn lane_coverage_ignores_structs_without_lane_methods() {
        let src = "struct Buffers {\n    scratch: Vec<u8>,\n}\n";
        assert!(run_file_rules(&file("crates/sim/src/x.rs", src)).is_empty());
    }

    #[test]
    fn lane_coverage_resolves_trait_impl_self_types() {
        let src = "struct A { lanes: Vec<u8> }\nimpl Cohort for A {\n    fn ensure_lanes(&mut self, n: usize) { self.lanes.resize(n, 0); }\n}\n";
        assert!(run_file_rules(&file("crates/acasx/src/x.rs", src)).is_empty());
    }

    #[test]
    fn wire_coverage_reports_missing_variants() {
        let protocol = file(
            "crates/serve/src/protocol.rs",
            "pub enum Request {\n    #[doc = \"x\"]\n    RunBatch { jobs: Vec<u8> },\n    Shutdown,\n}\n",
        );
        let covered = file(
            "crates/serve/tests/protocol_roundtrip.rs",
            "fn t() { let _ = Request::RunBatch { jobs: vec![] }; }\n",
        );
        let diags = wire_coverage(&protocol, Some(&covered));
        assert_eq!(codes(&diags), vec![("A6", 4, 5)]);
        assert!(diags[0].message.contains("Request::Shutdown"));
    }
}
