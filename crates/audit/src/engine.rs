//! File classification, the annotation escape hatch, `#[cfg(test)]`
//! scope tracking, and the workspace walk.
//!
//! Every rule's scope is expressed in terms of a [`FileClass`] derived
//! from the workspace-relative path, so the fixture corpus can exercise
//! exact scoping by *pretending* paths (see
//! `crates/audit/tests/fixture_corpus.rs`) without a real workspace on
//! disk.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::diag::{Diagnostic, RuleCode};
use crate::lexer::{lex, Token, TokenKind};

/// Crate directories whose code must be bit-replayable: a campaign,
/// splitting run, or checkpoint/resume touching these crates must
/// serialize byte-identically across threads, shards and restarts.
pub const DETERMINISTIC_CRATES: [&str; 7] =
    ["core", "encounter", "sim", "acasx", "mdp", "exec", "serve"];

/// Files exempt from the wall-clock rule (A2): the serve timeout
/// allowlist. Deadline plumbing (`Transport::recv_deadline` and the
/// shard-loss timeout) legitimately owns time; everything it feeds is
/// still replay-tested byte-for-byte by the fault batteries.
pub const WALL_CLOCK_ALLOWLIST: [&str; 1] = ["crates/serve/src/transport.rs"];

/// The wire-protocol definition and its round-trip battery — the file
/// pair rule A6 ties together.
pub const PROTOCOL_PATH: &str = "crates/serve/src/protocol.rs";
/// See [`PROTOCOL_PATH`].
pub const ROUNDTRIP_PATH: &str = "crates/serve/tests/protocol_roundtrip.rs";

/// What kind of code a file holds, derived from its path. Rule scopes
/// are defined over these classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileClass {
    /// Library source: `crates/<k>/src/**` or the facade `src/**`.
    Lib,
    /// Integration tests: `crates/<k>/tests/**` or root `tests/**`.
    Test,
    /// Benchmark code: anything in `crates/bench` or a `benches/` dir.
    Bench,
    /// Example binaries: `examples/**`.
    Example,
    /// The offline stand-in crates: `crates/support/**`.
    Support,
    /// The analyzer's own known-bad corpus: never audited as workspace
    /// code.
    Fixture,
}

/// A lexed source file with its audit-relevant context resolved.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path, forward slashes.
    pub rel_path: String,
    /// The file contents.
    pub src: String,
    /// The token stream.
    pub tokens: Vec<Token>,
    /// The path-derived class.
    pub class: FileClass,
    /// The crate directory name (`core`, `serve`, …; `uavca` for the
    /// root facade), when the path is inside a crate.
    pub krate: Option<String>,
    /// Malformed annotations found while parsing (E0 diagnostics).
    pub malformed: Vec<Diagnostic>,
    /// `(rule, line)` pairs: `rule` is allowed on `line`.
    allows: Vec<(RuleCode, u32)>,
    /// Line ranges (inclusive) of `#[cfg(test)] mod … { … }` bodies.
    test_mod_ranges: Vec<(u32, u32)>,
}

impl SourceFile {
    /// Lexes and contextualizes `src` as if it lived at `rel_path`
    /// (workspace-relative, forward slashes).
    pub fn parse(rel_path: &str, src: String) -> SourceFile {
        let tokens = lex(&src);
        let (class, krate) = classify(rel_path);
        let mut file = SourceFile {
            rel_path: rel_path.to_string(),
            src,
            tokens,
            class,
            krate,
            malformed: Vec::new(),
            allows: Vec::new(),
            test_mod_ranges: Vec::new(),
        };
        file.collect_allows();
        file.collect_test_mods();
        file
    }

    /// Is `rule` explicitly allowed on `line`?
    pub fn allowed(&self, rule: RuleCode, line: u32) -> bool {
        self.allows.iter().any(|&(r, l)| r == rule && l == line)
    }

    /// Is `line` inside a `#[cfg(test)] mod` body?
    pub fn in_test_mod(&self, line: u32) -> bool {
        self.test_mod_ranges
            .iter()
            .any(|&(lo, hi)| (lo..=hi).contains(&line))
    }

    /// Emits a diagnostic for the token at `tokens[at]` unless an
    /// annotation covers its line.
    pub fn diag_at(&self, rule: RuleCode, at: usize, message: String, out: &mut Vec<Diagnostic>) {
        let tok = &self.tokens[at];
        if !self.allowed(rule, tok.line) {
            out.push(Diagnostic {
                rule,
                path: PathBuf::from(&self.rel_path),
                line: tok.line,
                col: tok.col,
                message,
            });
        }
    }

    /// Parses every `// audit: allow(rule, reason)` comment. A
    /// trailing comment covers its own line; a comment alone on its
    /// line covers the next line bearing any non-comment token.
    fn collect_allows(&mut self) {
        for (i, tok) in self.tokens.iter().enumerate() {
            if tok.kind != TokenKind::LineComment {
                continue;
            }
            let body = tok.slice(&self.src).trim_start_matches('/').trim();
            let Some(args) = body.strip_prefix("audit:").map(str::trim) else {
                continue;
            };
            let parsed = args
                .strip_prefix("allow(")
                .and_then(|rest| rest.rfind(')').map(|end| &rest[..end]))
                .and_then(|inner| {
                    let (name, reason) = inner.split_once(',')?;
                    let rule = RuleCode::from_name(name.trim())?;
                    (!reason.trim().is_empty()).then_some(rule)
                });
            let Some(rule) = parsed else {
                self.malformed.push(Diagnostic {
                    rule: RuleCode::MalformedAllow,
                    path: PathBuf::from(&self.rel_path),
                    line: tok.line,
                    col: tok.col,
                    message: format!("unparseable audit annotation `{body}`"),
                });
                continue;
            };
            let standalone = !self.tokens[..i]
                .iter()
                .rev()
                .take_while(|t| t.line == tok.line)
                .any(|t| t.kind != TokenKind::LineComment);
            let covered = if standalone {
                self.tokens[i + 1..]
                    .iter()
                    .find(|t| t.kind != TokenKind::LineComment && t.kind != TokenKind::BlockComment)
                    .map(|t| t.line)
            } else {
                Some(tok.line)
            };
            if let Some(line) = covered {
                self.allows.push((rule, line));
            }
        }
    }

    /// Records the body line range of every `#[cfg(test)] mod … { … }`.
    fn collect_test_mods(&mut self) {
        let toks = &self.tokens;
        let is = |i: usize, text: &str| {
            toks.get(i)
                .is_some_and(|t: &Token| t.slice(&self.src) == text)
        };
        let mut i = 0;
        while i < toks.len() {
            // Match `# [ cfg ( test` token-by-token.
            if is(i, "#")
                && is(i + 1, "[")
                && is(i + 2, "cfg")
                && is(i + 3, "(")
                && is(i + 4, "test")
            {
                // Skip to the attribute's closing `]`.
                let mut j = i + 2;
                let mut bracket = 1usize;
                while j < toks.len() && bracket > 0 {
                    match toks[j].slice(&self.src) {
                        "[" => bracket += 1,
                        "]" => bracket -= 1,
                        _ => {}
                    }
                    j += 1;
                }
                // Skip any further attributes, then require `mod`.
                while is(j, "#") && is(j + 1, "[") {
                    let mut depth = 1usize;
                    j += 2;
                    while j < toks.len() && depth > 0 {
                        match toks[j].slice(&self.src) {
                            "[" => depth += 1,
                            "]" => depth -= 1,
                            _ => {}
                        }
                        j += 1;
                    }
                }
                if is(j, "mod") {
                    // Find the body `{` and its matching `}`.
                    while j < toks.len() && toks[j].slice(&self.src) != "{" {
                        j += 1;
                    }
                    if j < toks.len() {
                        let open = j;
                        let mut depth = 0usize;
                        while j < toks.len() {
                            match toks[j].slice(&self.src) {
                                "{" => depth += 1,
                                "}" => {
                                    depth -= 1;
                                    if depth == 0 {
                                        break;
                                    }
                                }
                                _ => {}
                            }
                            j += 1;
                        }
                        let close_line = toks.get(j).map_or(u32::MAX, |t| t.line);
                        self.test_mod_ranges.push((toks[open].line, close_line));
                        i = j;
                        continue;
                    }
                }
            }
            i += 1;
        }
    }
}

/// Derives `(class, crate_dir)` from a workspace-relative path.
fn classify(rel_path: &str) -> (FileClass, Option<String>) {
    let parts: Vec<&str> = rel_path.split('/').collect();
    if parts.first() == Some(&"crates") {
        let krate = parts.get(1).map(|s| s.to_string());
        let class = match (parts.get(1), parts.get(2), parts.get(3)) {
            (Some(&"support"), _, _) => FileClass::Support,
            (Some(&"audit"), Some(&"tests"), Some(&"fixtures")) => FileClass::Fixture,
            (Some(&"bench"), _, _) => FileClass::Bench,
            (_, Some(&"tests"), _) => FileClass::Test,
            (_, Some(&"benches"), _) => FileClass::Bench,
            (_, Some(&"examples"), _) => FileClass::Example,
            _ => FileClass::Lib,
        };
        (class, krate)
    } else {
        let class = match parts.first() {
            Some(&"examples") => FileClass::Example,
            Some(&"tests") => FileClass::Test,
            Some(&"benches") => FileClass::Bench,
            _ => FileClass::Lib,
        };
        (class, Some("uavca".to_string()))
    }
}

/// The outcome of auditing a workspace: how much was looked at, and
/// everything found.
#[derive(Debug)]
pub struct AuditReport {
    /// Number of `.rs` files lexed and audited.
    pub files_scanned: usize,
    /// Every diagnostic, sorted by path, line, column, code.
    pub diagnostics: Vec<Diagnostic>,
}

/// Audits the workspace rooted at `root`: walks `src/`, `crates/`,
/// `examples/`, `tests/` and `benches/`, skipping `target/` and the
/// analyzer's own fixture corpus, and runs every rule.
pub fn audit_workspace(root: &Path) -> io::Result<AuditReport> {
    let mut files = Vec::new();
    for dir in ["src", "crates", "examples", "tests", "benches"] {
        let path = root.join(dir);
        if path.is_dir() {
            walk(&path, &mut files)?;
        }
    }
    files.sort();

    let mut sources = Vec::with_capacity(files.len());
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let src = fs::read_to_string(path)?;
        sources.push(SourceFile::parse(&rel, src));
    }

    let mut diagnostics = Vec::new();
    for file in &sources {
        diagnostics.extend(crate::rules::run_file_rules(file));
        diagnostics.extend(file.malformed.iter().cloned());
    }
    let protocol = sources.iter().find(|f| f.rel_path == PROTOCOL_PATH);
    let roundtrip = sources.iter().find(|f| f.rel_path == ROUNDTRIP_PATH);
    if let Some(protocol) = protocol {
        diagnostics.extend(crate::rules::wire_coverage(protocol, roundtrip));
    }
    diagnostics
        .sort_by(|a, b| (&a.path, a.line, a.col, a.rule).cmp(&(&b.path, b.line, b.col, b.rule)));
    Ok(AuditReport {
        files_scanned: sources.len(),
        diagnostics,
    })
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" {
                continue;
            }
            // The known-bad corpus must never be audited as workspace
            // code — it exists to violate every rule.
            if name == "fixtures" && dir.ends_with("crates/audit/tests") {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Walks upward from `start` to the first directory whose `Cargo.toml`
/// declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_by_path() {
        use FileClass::*;
        let cases = [
            ("crates/core/src/campaign.rs", Lib, Some("core")),
            ("crates/core/tests/determinism.rs", Test, Some("core")),
            (
                "crates/bench/src/bin/engine_profile.rs",
                Bench,
                Some("bench"),
            ),
            ("crates/support/rand/src/lib.rs", Support, Some("support")),
            ("crates/audit/tests/fixtures/bad.rs", Fixture, Some("audit")),
            ("examples/quickstart.rs", Example, Some("uavca")),
            ("src/lib.rs", Lib, Some("uavca")),
            ("tests/pipeline.rs", Test, Some("uavca")),
        ];
        for (path, class, krate) in cases {
            let file = SourceFile::parse(path, String::new());
            assert_eq!(file.class, class, "{path}");
            assert_eq!(file.krate.as_deref(), krate, "{path}");
        }
    }

    #[test]
    fn trailing_allow_covers_its_own_line() {
        let src = "let x = 1; // audit: allow(wall_clock, timing the bench itself)\n";
        let file = SourceFile::parse("crates/core/src/x.rs", src.to_string());
        assert!(file.allowed(RuleCode::WallClock, 1));
        assert!(!file.allowed(RuleCode::WallClock, 2));
    }

    #[test]
    fn standalone_allow_covers_the_next_code_line() {
        let src = "\n// audit: allow(panic_policy, lock poisoning is fatal by design)\n// more prose\nlet x = a.unwrap();\n";
        let file = SourceFile::parse("crates/core/src/x.rs", src.to_string());
        assert!(file.allowed(RuleCode::PanicPolicy, 4));
        assert!(!file.allowed(RuleCode::PanicPolicy, 2));
    }

    #[test]
    fn malformed_annotations_are_diagnosed() {
        for bad in [
            "// audit: allow(bogus_rule, reason)",
            "// audit: allow(wall_clock)",
            "// audit: allow(wall_clock, )",
            "// audit: allow wall_clock",
        ] {
            let file = SourceFile::parse("crates/core/src/x.rs", bad.to_string());
            assert_eq!(file.malformed.len(), 1, "{bad}");
            assert_eq!(file.malformed[0].rule, RuleCode::MalformedAllow, "{bad}");
        }
    }

    #[test]
    fn cfg_test_mod_ranges_cover_bodies() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn after() {}\n";
        let file = SourceFile::parse("crates/core/src/x.rs", src.to_string());
        assert!(!file.in_test_mod(1));
        assert!(file.in_test_mod(4));
        assert!(!file.in_test_mod(6));
    }
}
