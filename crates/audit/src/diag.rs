//! Diagnostic codes, spans and the annotation escape hatch.
//!
//! Every rule has a stable short code (`A1`…`A6`, plus `E0` for a
//! malformed annotation), a snake_case name usable in an inline
//! annotation, and a fix hint. A site that must legitimately break a
//! rule carries the escape hatch **on the offending line or on a
//! comment line directly above it**:
//!
//! ```text
//! // audit: allow(panic_policy, a poisoned lock means a panicked peer)
//! let guard = self.inner.lock().expect("event log poisoned");
//! ```
//!
//! The reason is mandatory: an annotation without one is itself a
//! diagnostic ([`RuleCode::MalformedAllow`]). Annotations are the
//! reviewed, greppable record of every deliberate exception — the
//! analyzer turns "we agreed this is fine" from tribal knowledge into
//! a token the next refactor cannot silently drop.

use std::fmt;
use std::path::PathBuf;

/// The stable identity of one audit rule.
///
/// Each variant documents what the rule guards; `DESIGN.md` §"Audited
/// invariants" explains why the test batteries alone cannot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleCode {
    /// **A1 `hash_collections`** — no `HashMap`/`HashSet` in the
    /// deterministic crates (`core`, `encounter`, `sim`, `acasx`,
    /// `mdp`, `exec`, `serve`).
    ///
    /// `RandomState` seeds every `std` hash map per-instance, so any
    /// iteration order that reaches a report, a serialization, or a
    /// work schedule is a silent nondeterminism: campaigns would stop
    /// being byte-identical across runs without a single test failing
    /// deterministically. Use `BTreeMap`/`BTreeSet`, or sort before
    /// iterating and annotate.
    HashCollections,
    /// **A2 `wall_clock`** — no `Instant`/`SystemTime` outside the
    /// bench/support crates, examples/tests, and the serve timeout
    /// allowlist (`crates/serve/src/transport.rs`, which owns deadline
    /// plumbing).
    ///
    /// A wall-clock read in a simulation or estimator path makes
    /// results depend on host load; the checkpoint/resume contract
    /// (resume == uninterrupted, byte-for-byte) is unprovable the
    /// moment any deterministic path can see time.
    WallClock,
    /// **A3 `ambient_entropy`** — no `thread_rng`, `from_entropy`,
    /// `OsRng` or other ambient randomness anywhere in the workspace;
    /// every seed must flow from `campaign_job_seed` /
    /// `split_branch_seed` (or an explicit test seed).
    ///
    /// All replay guarantees — shard requeue, kill-at-any-round
    /// resume, splitting branch replay — derive from seeds being pure
    /// functions of job identity. One ambient draw anywhere upstream
    /// of an outcome breaks every one of them at once.
    AmbientEntropy,
    /// **A4 `panic_policy`** — `unwrap`/`expect`/`panic!`/
    /// `unreachable!` in `core` and `serve` *library* code (tests,
    /// benches and examples exempt) require an annotation.
    ///
    /// The serve layer's faults are typed (`ShardFault`,
    /// `AllShardsLost`) precisely so operators and supervisors can
    /// react to them; an unannotated `unwrap` is a typed fault
    /// regressing into a panic string. The annotation forces each
    /// panic site to state why panicking is the correct contract.
    PanicPolicy,
    /// **A5 `lane_coverage`** — every `Vec` field of a struct that
    /// implements the cohort lane protocol (`ensure_lanes` /
    /// `reset_lane` / `swap_lanes`) must be referenced in at least one
    /// of those methods.
    ///
    /// The lockstep engine's dense-slot compaction swaps *whole lanes*
    /// across every per-lane vector; a new per-lane `Vec` field that
    /// `swap_lanes` forgets silently attaches one lane's state to
    /// another lane's encounter after the first divergence — the exact
    /// bug class `cohort_identity.rs` can only catch for fields that
    /// already existed when its cases were written. Per-tick scratch
    /// vectors that are *not* per-lane state carry an annotation
    /// saying so.
    LaneCoverage,
    /// **A6 `wire_coverage`** — every variant of the serve wire enums
    /// (`Request`, `Event`, `ShardRequest`, `ShardEvent` in
    /// `crates/serve/src/protocol.rs`) must appear in
    /// `crates/serve/tests/protocol_roundtrip.rs`.
    ///
    /// The round-trip battery is the wire format's compatibility
    /// contract, but nothing ties "every message kind" in its doc
    /// comment to the enum definitions: a new variant ships untested
    /// by default (exactly what happened to `ShardEvent::SplitChunk`
    /// in PR 7). This rule makes the battery's coverage structural.
    WireCoverage,
    /// **E0 `malformed_allow`** — an `// audit: allow(…)` annotation
    /// that names an unknown rule or omits the reason.
    ///
    /// A typo'd annotation would otherwise silently fail to cover its
    /// site — or worse, appear to document an exception that the
    /// analyzer never actually granted.
    MalformedAllow,
}

impl RuleCode {
    /// Every real rule, in code order (excludes [`RuleCode::MalformedAllow`],
    /// which is emitted by the annotation parser rather than a rule pass).
    pub const ALL: [RuleCode; 6] = [
        RuleCode::HashCollections,
        RuleCode::WallClock,
        RuleCode::AmbientEntropy,
        RuleCode::PanicPolicy,
        RuleCode::LaneCoverage,
        RuleCode::WireCoverage,
    ];

    /// The short diagnostic code (`A1`…`A6`, `E0`).
    pub fn code(self) -> &'static str {
        match self {
            RuleCode::HashCollections => "A1",
            RuleCode::WallClock => "A2",
            RuleCode::AmbientEntropy => "A3",
            RuleCode::PanicPolicy => "A4",
            RuleCode::LaneCoverage => "A5",
            RuleCode::WireCoverage => "A6",
            RuleCode::MalformedAllow => "E0",
        }
    }

    /// The snake_case rule name accepted by `// audit: allow(<name>, <reason>)`.
    pub fn name(self) -> &'static str {
        match self {
            RuleCode::HashCollections => "hash_collections",
            RuleCode::WallClock => "wall_clock",
            RuleCode::AmbientEntropy => "ambient_entropy",
            RuleCode::PanicPolicy => "panic_policy",
            RuleCode::LaneCoverage => "lane_coverage",
            RuleCode::WireCoverage => "wire_coverage",
            RuleCode::MalformedAllow => "malformed_allow",
        }
    }

    /// Parses a rule name as written inside an annotation.
    pub fn from_name(name: &str) -> Option<RuleCode> {
        RuleCode::ALL
            .into_iter()
            .find(|r| r.name() == name)
            .or((name == "malformed_allow").then_some(RuleCode::MalformedAllow))
    }

    /// The generic fix hint shown beneath each diagnostic.
    pub fn hint(self) -> &'static str {
        match self {
            RuleCode::HashCollections => {
                "use BTreeMap/BTreeSet (or sort before iterating), or annotate: \
                 // audit: allow(hash_collections, <why order cannot leak>)"
            }
            RuleCode::WallClock => {
                "deterministic paths must not read clocks; move timing to crates/bench \
                 or annotate: // audit: allow(wall_clock, <why time is safe here>)"
            }
            RuleCode::AmbientEntropy => {
                "derive every seed from campaign_job_seed/split_branch_seed or an \
                 explicit constant; or annotate: // audit: allow(ambient_entropy, <why>)"
            }
            RuleCode::PanicPolicy => {
                "return a typed error (see ShardFault/AllShardsLost), or annotate: \
                 // audit: allow(panic_policy, <why panicking is the contract>)"
            }
            RuleCode::LaneCoverage => {
                "reference the field in swap_lanes/reset_lane/ensure_lanes, or mark \
                 per-tick scratch: // audit: allow(lane_coverage, <why not per-lane>)"
            }
            RuleCode::WireCoverage => {
                "add the variant to crates/serve/tests/protocol_roundtrip.rs (build a \
                 value, call roundtrip(&…))"
            }
            RuleCode::MalformedAllow => {
                "write // audit: allow(<rule_name>, <reason>) with a rule from: \
                 hash_collections, wall_clock, ambient_entropy, panic_policy, \
                 lane_coverage, wire_coverage"
            }
        }
    }
}

impl fmt::Display for RuleCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]", self.code(), self.name())
    }
}

/// One finding: a rule violated at a span, with a fix hint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Which rule fired.
    pub rule: RuleCode,
    /// Workspace-relative path of the offending file.
    pub path: PathBuf,
    /// 1-based line of the offending token.
    pub line: u32,
    /// 1-based column of the offending token.
    pub col: u32,
    /// What was found, specifically.
    pub message: String,
}

impl Diagnostic {
    /// Renders the diagnostic in the `path:line:col: code message`
    /// format editors and CI logs know how to link.
    pub fn render(&self) -> String {
        format!(
            "{}:{}:{}: {} {}\n    hint: {}",
            self.path.display(),
            self.line,
            self.col,
            self.rule,
            self.message,
            self.rule.hint()
        )
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}
