//! FIG5-HEADON — regenerates the paper's Fig. 5: collision avoidance for a
//! head-on encounter. The own-ship's logic picks one vertical sense, the
//! coordination message forces the intruder into the complementary sense,
//! and the mid-air collision is avoided.
//!
//! `cargo run --release -p uavca-bench --bin fig5_head_on [--full]`

use uavca_bench::runner_for_scale;
use uavca_encounter::EncounterParams;
use uavca_validation::TextTable;

fn main() {
    let runner = runner_for_scale();
    let params = EncounterParams::head_on_template();
    let (outcome, trace) = runner.run_traced(&params, uavca_bench::seed_arg().wrapping_add(2016));

    println!("== FIG5-HEADON: coordinated head-on avoidance ==\n");
    println!("{}", trace.render_altitude_profile(16));

    let mut table = TextTable::new(["metric", "value"]);
    table.row(["NMAC", &outcome.nmac.to_string()]);
    table.row([
        "min separation (ft)",
        &format!("{:.0}", outcome.min_separation_ft),
    ]);
    table.row([
        "min horizontal (ft)",
        &format!("{:.0}", outcome.min_horizontal_ft),
    ]);
    table.row([
        "min vertical (ft)",
        &format!("{:.0}", outcome.min_vertical_ft),
    ]);
    table.row([
        "first alert (s)",
        &format!("{:?}", outcome.first_alert_time_s),
    ]);
    table.row(["own alert steps", &outcome.own_alert_steps.to_string()]);
    table.row([
        "intruder alert steps",
        &outcome.intruder_alert_steps.to_string(),
    ]);
    println!("{table}");

    println!("advisory timeline (own / intruder):");
    let mut last = (String::new(), String::new());
    for step in trace.steps() {
        let now = (step.own_advisory.clone(), step.intruder_advisory.clone());
        if now != last {
            println!("  t = {:>5.1} s   {:>9} / {:<9}", step.time_s, now.0, now.1);
            last = now;
        }
    }

    // The figure's claim: maneuvers have complementary senses and the
    // collision is avoided.
    assert!(!outcome.nmac, "Fig. 5 shows the collision avoided");
    let up = ["CL1500", "SCL2500", "DND"];
    let down = ["DES1500", "SDES2500", "DNC"];
    let complementary = trace.steps().iter().any(|s| {
        (up.contains(&s.own_advisory.as_str()) && down.contains(&s.intruder_advisory.as_str()))
            || (down.contains(&s.own_advisory.as_str())
                && up.contains(&s.intruder_advisory.as_str()))
    });
    assert!(
        complementary,
        "coordination must yield complementary senses"
    );
    println!("\nresult: NMAC avoided by coordinated complementary maneuvers — matches Fig. 5");
}
