//! Engine comparison harness: scalar vs cohort widths, both equipages.
//!
//! Unlike the criterion bench (which times each engine in its own block),
//! this interleaves one rep per engine round-robin inside a single process,
//! so clock drift and noisy neighbours hit every engine equally, and
//! reports the median rep. Numbers in `BENCH_simulation.json` come from
//! here.

// Experiment binary: wall-clock timing is the point (audit rule A2
// carves the bench crate out the same way).
#![allow(clippy::disallowed_methods)]
use std::time::Instant;

use uavca_validation::{BatchRunner, Equipage, SimEngine, SimJob};

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

fn main() {
    let params = uavca_encounter::EncounterParams::head_on_template();
    let reps: u64 = 60;
    let engines = [
        ("scalar", SimEngine::Scalar),
        ("cohort8", SimEngine::Cohort { width: 8 }),
        ("cohort16", SimEngine::Cohort { width: 16 }),
        ("cohort32", SimEngine::Cohort { width: 32 }),
        ("cohort64", SimEngine::Cohort { width: 64 }),
    ];
    for equipage in [Equipage::Both, Equipage::Neither] {
        let jobs = BatchRunner::repeated_jobs(&params, equipage, 64, 0);
        let runners: Vec<BatchRunner> = engines
            .iter()
            .map(|&(_, e)| BatchRunner::serial(uavca_bench::coarse_runner()).engine(e))
            .collect();
        for batch in &runners {
            let _ = batch.run_batch(&jobs); // warm up
        }
        let mut times: Vec<Vec<f64>> = vec![Vec::new(); engines.len()];
        for r in 0..reps {
            for (k, batch) in runners.iter().enumerate() {
                let shifted: Vec<SimJob> = jobs
                    .iter()
                    .map(|j| SimJob {
                        seed: j.seed.wrapping_add(r * 64),
                        ..*j
                    })
                    .collect();
                let t = Instant::now();
                let out = batch.run_batch(&shifted);
                let dt = t.elapsed().as_secs_f64();
                assert_eq!(out.len(), 64);
                times[k].push(dt * 1e9 / 64.0);
            }
        }
        for ((label, _), t) in engines.iter().zip(times) {
            println!(
                "{:?} {:10}: {:9.1} ns/job (median of {reps})",
                equipage,
                label,
                median(t)
            );
        }
    }
}
