//! ABL-HORIZON — the "model revision" step of the paper's Fig. 1 loop,
//! driven by what the GA search found: the logic's weakness in aligned
//! low-closure encounters depends on the table's alerting horizon τ_max.
//!
//! Sweeps the horizon and reports the NMAC rate on the canonical
//! tail-approach and head-on conflicts plus alert statistics. Short
//! horizons reproduce the paper's catastrophic tail-approach rates
//! (80–90/100); extending the horizon — a *model* change, not a logic
//! patch — repairs them, demonstrating how search-found situations feed
//! model improvement.
//!
//! `cargo run --release -p uavca-bench --bin horizon_ablation [--full]`

// Experiment binary: wall-clock timing is the point (audit rule A2
// carves the bench crate out the same way).
#![allow(clippy::disallowed_methods)]
use std::sync::Arc;

use uavca_acasx::{AcasConfig, LogicTable};
use uavca_bench::full_scale;
use uavca_encounter::EncounterParams;
use uavca_validation::{EncounterRunner, FitnessFunction, TextTable};

fn main() {
    let horizons: &[usize] = if full_scale() {
        &[8, 12, 16, 20, 28, 40]
    } else {
        &[8, 12, 20, 40]
    };
    let runs = if full_scale() { 100 } else { 30 };
    println!("== ABL-HORIZON: NMAC rate vs alerting horizon (runs = {runs}/geometry) ==\n");

    let mut table = TextTable::new([
        "horizon (s)",
        "solve (s)",
        "tail NMAC",
        "head-on NMAC",
        "tail mean sep (ft)",
        "tail alert lead (s)",
    ]);
    for &h in horizons {
        let mut config = if full_scale() {
            AcasConfig::default()
        } else {
            AcasConfig::coarse()
        };
        config.tau_max_s = h;
        let started = std::time::Instant::now();
        let lt = Arc::new(LogicTable::solve(&config));
        let solve_s = started.elapsed().as_secs_f64();
        let runner = EncounterRunner::new(lt);

        let tail = runner.run_repeated(&EncounterParams::tail_approach_template(), runs, 7);
        let head = runner.run_repeated(&EncounterParams::head_on_template(), runs, 7);
        let tail_rate = FitnessFunction::nmac_rate(&tail);
        let head_rate = FitnessFunction::nmac_rate(&head);
        let mean_sep = tail.iter().map(|o| o.min_separation_ft).sum::<f64>() / tail.len() as f64;
        // Alert lead time: CPA time minus first alert time (more is safer).
        let lead: Vec<f64> = tail
            .iter()
            .filter_map(|o| o.first_alert_time_s.map(|t| o.time_of_min_s - t))
            .collect();
        let mean_lead = if lead.is_empty() {
            f64::NAN
        } else {
            lead.iter().sum::<f64>() / lead.len() as f64
        };
        table.row([
            h.to_string(),
            format!("{solve_s:.1}"),
            format!("{:.0}/{}", tail_rate * runs as f64, runs),
            format!("{:.0}/{}", head_rate * runs as f64, runs),
            format!("{mean_sep:.0}"),
            format!("{mean_lead:.1}"),
        ]);
    }
    println!("{table}");
    println!(
        "shape check: short horizons reproduce the paper's tail-approach failures \
         (their Section VII rates), longer horizons repair them — the search output \
         feeds the manual model revision step of Fig. 1"
    );
}
