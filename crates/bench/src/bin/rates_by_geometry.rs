//! CLAIM-RATES — the Section VII in-text numbers as a table: accident
//! rate, alert statistics and separations per geometry class, equipped vs
//! unequipped, over sampled encounters from each class.
//!
//! `cargo run --release -p uavca-bench --bin rates_by_geometry [--full]`

use rand::rngs::StdRng;
use rand::SeedableRng;
use uavca_bench::{full_scale, runner_for_scale, seed_arg};
use uavca_encounter::{GeometryClass, ParamRanges, StatisticalEncounterModel};
use uavca_validation::{Equipage, TextTable};

fn main() {
    let runner = runner_for_scale();
    let (encounters_per_class, runs_each) = if full_scale() { (50, 20) } else { (15, 6) };
    println!(
        "== CLAIM-RATES: {} encounters/class x {} runs, equipped vs unequipped ==\n",
        encounters_per_class, runs_each
    );

    // Sample *conflict* encounters per class: geometry from the class
    // sampler, CPA offsets restricted to the paper's must-nearly-collide
    // box (R <= 500 ft, |Y| <= 100 ft).
    let mut model = StatisticalEncounterModel::default();
    let search_box = ParamRanges::default();
    model.max_cpa_horizontal_ft = search_box.bound(3).1;
    model.max_cpa_vertical_ft = search_box.bound(5).1;

    let mut rng = StdRng::seed_from_u64(seed_arg());
    let mut table = TextTable::new([
        "class",
        "equipped NMAC",
        "unequipped NMAC",
        "risk ratio",
        "alert rate",
        "mean min sep eq. (ft)",
    ]);
    let mut summary: Vec<(GeometryClass, f64)> = Vec::new();
    for class in GeometryClass::ALL {
        let mut eq_nmacs = 0usize;
        let mut un_nmacs = 0usize;
        let mut alerts = 0usize;
        let mut trials = 0usize;
        let mut sep_sum = 0.0;
        for i in 0..encounters_per_class {
            let params = model.sample_in_class(class, &mut rng);
            for k in 0..runs_each {
                let seed = (i * runs_each + k) as u64;
                let eq = runner.run_once_with(&params, seed, Equipage::Both);
                let un = runner.run_once_with(&params, seed, Equipage::Neither);
                trials += 1;
                eq_nmacs += eq.nmac as usize;
                un_nmacs += un.nmac as usize;
                alerts += eq.alerted() as usize;
                sep_sum += eq.min_separation_ft;
            }
        }
        let eq_rate = eq_nmacs as f64 / trials as f64;
        let un_rate = un_nmacs as f64 / trials as f64;
        summary.push((class, eq_rate));
        table.row([
            class.to_string(),
            format!("{eq_nmacs}/{trials} = {eq_rate:.3}"),
            format!("{un_nmacs}/{trials} = {un_rate:.3}"),
            format!(
                "{:.3}",
                if un_nmacs > 0 {
                    eq_rate / un_rate
                } else {
                    f64::NAN
                }
            ),
            format!("{:.2}", alerts as f64 / trials as f64),
            format!("{:.0}", sep_sum / trials as f64),
        ]);
    }
    println!("{table}");

    let head_on = summary
        .iter()
        .find(|s| s.0 == GeometryClass::HeadOn)
        .unwrap()
        .1;
    let tail = summary
        .iter()
        .find(|s| s.0 == GeometryClass::TailApproach)
        .unwrap()
        .1;
    println!(
        "shape check (paper Section VII): tail-approach equipped NMAC rate ({tail:.3}) vs \
         head-on ({head_on:.3}) — tail/aligned geometries are the weak spot"
    );
}
