//! EXT-POMDP — quantifies the paper's Section IV model-structure question:
//! "Is the chosen modelling technique (i.e. MDP model) \[expressive\] enough…
//! Or should another model (e.g. a POMDP) be used?"
//!
//! The MDP-generated policy assumes perfect observation of the intruder.
//! This experiment sweeps an observation error probability on the Section
//! III toy system and reports the collision probability — the performance
//! gap that a POMDP formulation (or a state-estimation front end, cf. the
//! `AlphaBetaTracker`) would need to close.
//!
//! `cargo run --release -p uavca-bench --bin pomdp_gap [--full]`

use rand::rngs::StdRng;
use rand::SeedableRng;
use uavca_bench::full_scale;
use uavca_ca2d::{
    estimate_collision_probability, simulate_encounter_noisy_observation, Ca2dConfig, Ca2dSystem,
};
use uavca_validation::TextTable;

fn main() {
    let runs = if full_scale() { 40_000 } else { 6_000 };
    let config = Ca2dConfig::default();
    let system = Ca2dSystem::solve(&config).expect("toy model solves");
    let policy = system.policy();
    println!("== EXT-POMDP: MDP policy under observation noise ({runs} rollouts/cell) ==\n");

    let mut rng = StdRng::seed_from_u64(2016);
    let unequipped = estimate_collision_probability(&config, None, 0, 9, 0, runs, &mut rng);

    let mut table = TextTable::new([
        "observation error p",
        "P(collision)",
        "vs perfect",
        "vs unequipped",
    ]);
    let mut perfect = None;
    for p in [0.0, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0] {
        let rate = (0..runs)
            .filter(|_| {
                simulate_encounter_noisy_observation(&config, &policy, 0, 9, 0, p, &mut rng)
                    .collided
            })
            .count() as f64
            / runs as f64;
        let base = *perfect.get_or_insert(rate);
        table.row([
            format!("{p:.1}"),
            format!("{rate:.4}"),
            format!("{:+.1}%", (rate / base - 1.0) * 100.0),
            format!("{:.2}x", rate / unequipped),
        ]);
    }
    println!("{table}");
    println!("unequipped reference: {unequipped:.4}");
    println!(
        "\nshape check: the MDP policy degrades gracefully under observation noise but \
         never falls back to unequipped performance — evidence that the MDP (plus a \
         state-estimation front end) is an adequate model structure for this noise \
         regime, answering Section IV's question empirically"
    );
}
