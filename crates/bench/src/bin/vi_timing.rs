//! CLAIM-VI-TIME — the paper's footnote 2: "For the real ACAS XU model,
//! Value Iteration takes several minutes (less than 5 minutes) on an
//! ordinary laptop PC." Measures the offline solve (backward induction)
//! wall time as the state-space resolution grows, reporting the scaling
//! series.
//!
//! `cargo run --release -p uavca-bench --bin vi_timing [--full]`

// Experiment binary: wall-clock timing is the point (audit rule A2
// carves the bench crate out the same way).
#![allow(clippy::disallowed_methods)]
use uavca_acasx::{AcasConfig, LogicTable};
use uavca_bench::full_scale;
use uavca_validation::TextTable;

fn main() {
    println!("== CLAIM-VI-TIME: offline solve time vs state-space resolution ==\n");
    let mut configs: Vec<(&str, AcasConfig)> = vec![
        ("coarse (13h x 5v x 12tau)", AcasConfig::coarse()),
        (
            "medium (19h x 9v x 24tau)",
            AcasConfig {
                h_points: 19,
                rate_points: 9,
                tau_max_s: 24,
                ..AcasConfig::default()
            },
        ),
        ("default (25h x 13v x 40tau)", AcasConfig::default()),
    ];
    if full_scale() {
        configs.push((
            "fine (41h x 17v x 40tau)",
            AcasConfig {
                h_points: 41,
                rate_points: 17,
                ..AcasConfig::default()
            },
        ));
        configs.push((
            "very fine (61h x 21v x 60tau)",
            AcasConfig {
                h_points: 61,
                rate_points: 21,
                tau_max_s: 60,
                ..AcasConfig::default()
            },
        ));
    }

    let mut table = TextTable::new([
        "resolution",
        "states/stage",
        "stages",
        "solve time (s)",
        "table (MiB)",
    ]);
    let mut series: Vec<(usize, f64)> = Vec::new();
    for (name, config) in configs {
        let states = config.build_grid_points() * 7;
        let started = std::time::Instant::now();
        let lt = LogicTable::solve(&config);
        let secs = started.elapsed().as_secs_f64();
        series.push((states * config.num_stages(), secs));
        table.row([
            name.to_string(),
            states.to_string(),
            config.num_stages().to_string(),
            format!("{secs:.2}"),
            format!("{:.1}", lt.q_bytes() as f64 / (1024.0 * 1024.0)),
        ]);
    }
    println!("{table}");

    // Scaling shape: roughly linear in (states x stages).
    if series.len() >= 2 {
        let (n0, t0) = series[0];
        let (n1, t1) = series[series.len() - 1];
        let ratio = (t1 / t0) / (n1 as f64 / n0 as f64);
        println!(
            "scaling: {:.0}x more backups took {:.0}x longer (ratio {ratio:.2}; ~1 = linear)",
            n1 as f64 / n0 as f64,
            t1 / t0
        );
    }
    println!(
        "\nshape check (paper footnote 2): the full-resolution table solves in seconds-to-\
         minutes on a laptop — comfortably inside the paper's <5 min budget"
    );
}

trait GridPointsExt {
    fn build_grid_points(&self) -> usize;
}

impl GridPointsExt for AcasConfig {
    fn build_grid_points(&self) -> usize {
        self.build_grid().num_points()
    }
}
