//! ABL-COORD — ablation of the Section VI-C coordination mechanism: NMAC
//! rates per geometry class with coordination on vs off, and one-sided
//! equipage. Quantifies how much of the generated logic's performance
//! comes from the complementary-sense datalink rather than the table.
//!
//! `cargo run --release -p uavca-bench --bin coordination_ablation [--full]`

use rand::rngs::StdRng;
use rand::SeedableRng;
use uavca_bench::{full_scale, runner_for_scale, seed_arg};
use uavca_encounter::{GeometryClass, ParamRanges, StatisticalEncounterModel};
use uavca_sim::SimConfig;
use uavca_validation::{Equipage, TextTable};

fn main() {
    let base_runner = runner_for_scale();
    let (encounters, runs) = if full_scale() { (40, 10) } else { (12, 5) };
    println!(
        "== ABL-COORD: coordination ablation, {encounters} encounters/class x {runs} runs ==\n"
    );

    let mut model = StatisticalEncounterModel::default();
    let search_box = ParamRanges::default();
    model.max_cpa_horizontal_ft = search_box.bound(3).1;
    model.max_cpa_vertical_ft = search_box.bound(5).1;

    let coord_on = SimConfig {
        coordination: true,
        ..SimConfig::default()
    };
    let coord_off = SimConfig {
        coordination: false,
        ..SimConfig::default()
    };

    let configs: [(&str, SimConfig, Equipage); 3] = [
        ("both + coordination", coord_on, Equipage::Both),
        ("both, no coordination", coord_off, Equipage::Both),
        ("own-ship only", coord_on, Equipage::OwnOnly),
    ];

    let mut table = TextTable::new([
        "class",
        "both+coord NMAC",
        "no-coord NMAC",
        "one-sided NMAC",
        "unequipped NMAC",
    ]);
    for class in GeometryClass::ALL {
        let mut rng = StdRng::seed_from_u64(seed_arg());
        let params: Vec<_> = (0..encounters)
            .map(|_| model.sample_in_class(class, &mut rng))
            .collect();
        let rate_for = |sim: SimConfig, equipage: Equipage| -> f64 {
            let runner = base_runner.clone().sim_config(sim).equipage(equipage);
            let mut nmacs = 0;
            let mut trials = 0;
            for (i, p) in params.iter().enumerate() {
                for k in 0..runs {
                    trials += 1;
                    nmacs += runner.run_once(p, (i * runs + k) as u64).nmac as usize;
                }
            }
            nmacs as f64 / trials as f64
        };
        let r_coord = rate_for(configs[0].1, configs[0].2);
        let r_nocoord = rate_for(configs[1].1, configs[1].2);
        let r_oneside = rate_for(configs[2].1, configs[2].2);
        let r_none = rate_for(coord_on, Equipage::Neither);
        table.row([
            class.to_string(),
            format!("{r_coord:.3}"),
            format!("{r_nocoord:.3}"),
            format!("{r_oneside:.3}"),
            format!("{r_none:.3}"),
        ]);
    }
    println!("{table}");
    println!(
        "shape check: coordination matters most in symmetric geometries (head-on), where \
         uncoordinated logics can pick the same sense; one-sided equipage sits between \
         full equipage and unequipped"
    );
}
