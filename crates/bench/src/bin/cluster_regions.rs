//! EXT-CLUSTER — the paper's Section VIII future-work extension: instead
//! of individual challenging points, find *areas* of the scenario space
//! with high accident rates by clustering the GA's evaluation archive.
//!
//! `cargo run --release -p uavca-bench --bin cluster_regions [--full]`

use uavca_bench::{full_scale, runner_for_scale, seed_arg};
use uavca_validation::{
    analysis, FitnessKind, ScenarioSpace, SearchConfig, SearchHarness, TextTable,
};

fn main() {
    let runner = runner_for_scale();
    let config = if full_scale() {
        SearchConfig::default().seed(seed_arg())
    } else {
        SearchConfig {
            population_size: 40,
            generations: 5,
            runs_per_eval: 15,
            seed: seed_arg(),
            threads: 0,
            objective: FitnessKind::Proximity,
        }
    };
    println!("== EXT-CLUSTER: clustering the GA archive into challenging regions ==\n");
    let outcome = SearchHarness::new(runner, config).run_ga();

    // Cluster the top half of the archive (the challenging region).
    let space = ScenarioSpace::default();
    let mut evals: Vec<(Vec<f64>, f64)> = outcome
        .result
        .evaluations
        .iter()
        .map(|e| (e.genes.clone(), e.fitness))
        .collect();
    evals.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite fitness"));
    let top_half = &evals[..evals.len() / 2];

    let clusters = analysis::cluster_scenarios(&space, top_half, 4, seed_arg());
    let mut table = TextTable::new([
        "cluster",
        "size",
        "mean fitness",
        "dominant class",
        "centroid closure (kt)",
        "centroid Vs_o/Vs_i (fpm)",
        "centroid T (s)",
    ]);
    for (i, c) in clusters.iter().enumerate() {
        let closure = (c.centroid.intruder_ground_speed_kt * c.centroid.intruder_bearing_rad.cos()
            - c.centroid.own_ground_speed_kt)
            .abs();
        table.row([
            (i + 1).to_string(),
            c.size.to_string(),
            format!("{:.0}", c.mean_fitness),
            c.dominant_class.to_string(),
            format!("{closure:.0}"),
            format!(
                "{:.0}/{:.0}",
                c.centroid.own_vertical_speed_fpm, c.centroid.intruder_vertical_speed_fpm
            ),
            format!("{:.0}", c.centroid.time_to_cpa_s),
        ]);
    }
    println!("{table}");

    let rows = analysis::class_summary(top_half);
    let mut summary = TextTable::new(["class", "count in top half", "mean fitness"]);
    for (class, count, mean) in rows {
        summary.row([class.to_string(), count.to_string(), format!("{mean:.0}")]);
    }
    println!("{summary}");
    println!(
        "shape check (paper Section VIII): the highest-fitness cluster corresponds to a \
         coherent region (aligned, low-closure geometries), not isolated points"
    );
}
