//! FIG2-POLICY — regenerates the Section III walk-through artifacts:
//! the toy 2-D MDP's optimal policy (the "logic table"), its value
//! structure, and the simulated collision probabilities with and without
//! the generated logic.
//!
//! `cargo run --release -p uavca-bench --bin fig2_toy_policy`

// Experiment binary: wall-clock timing is the point (audit rule A2
// carves the bench crate out the same way).
#![allow(clippy::disallowed_methods)]
use rand::rngs::StdRng;
use rand::SeedableRng;
use uavca_ca2d::{estimate_collision_probability, Ca2dConfig, Ca2dSystem};
use uavca_mdp::{Mdp, PolicyIteration};
use uavca_validation::TextTable;

fn main() {
    let config = Ca2dConfig::default();
    println!("== FIG2-POLICY: Section III toy collision avoidance MDP ==");
    println!(
        "state space: {} states ({} altitudes x {} distances x {} altitudes), 3 actions\n",
        config.num_states(),
        config.num_altitudes(),
        config.num_distances(),
        config.num_altitudes()
    );

    let started = std::time::Instant::now();
    let system = Ca2dSystem::solve(&config).expect("toy model solves");
    println!(
        "value iteration solved the model in {:.3} s\n",
        started.elapsed().as_secs_f64()
    );

    for x_r in [1, 2, 4, 8] {
        println!("{}", system.render_policy_slice(x_r).expect("x_r on grid"));
    }

    // Cross-check: policy iteration agrees with value iteration.
    let mdp = uavca_ca2d::build_mdp(&config).expect("model builds");
    let (pi_solution, pi_stats) = PolicyIteration::new().solve(&mdp).expect("PI converges");
    let mut disagreements = 0;
    for s in 0..mdp.num_states() {
        let vi_v = system
            .value_of(config.decode(s).0, config.decode(s).1, config.decode(s).2)
            .unwrap();
        if (vi_v - pi_solution.values[s]).abs() > 1e-3 {
            disagreements += 1;
        }
    }
    println!(
        "policy iteration cross-check: {} improvement rounds, {} value disagreements",
        pi_stats.improvement_rounds, disagreements
    );

    // Collision probabilities by start state (the evaluation loop of Fig. 1).
    let policy = system.policy();
    let mut rng = StdRng::seed_from_u64(7);
    let mut table = TextTable::new([
        "start (y_o, x_r, y_i)",
        "unequipped P(col)",
        "equipped P(col)",
    ]);
    for (y_o, x_r, y_i) in [(0, 9, 0), (0, 9, 2), (2, 9, -2), (0, 5, 0), (0, 3, 0)] {
        let without = estimate_collision_probability(&config, None, y_o, x_r, y_i, 4000, &mut rng);
        let with =
            estimate_collision_probability(&config, Some(&policy), y_o, x_r, y_i, 4000, &mut rng);
        table.row([
            format!("({y_o}, {x_r}, {y_i})"),
            format!("{without:.3}"),
            format!("{with:.3}"),
        ]);
    }
    println!("\n{table}");
    println!(
        "series: the generated logic cuts collision probability in every conflict start state"
    );
}
