//! Uniform vs adaptive stratified Monte-Carlo: runs-to-target-CI.
//!
//! For a set of campaign seeds, runs the same risk-ratio estimation with
//! (a) mass-proportional ("uniform") allocation and (b) the adaptive
//! planner (Neyman reallocation on the paired log-ratio objective), and
//! reports how many paired simulations each needed before the combined
//! paired risk-ratio CI half-width (maximum one-sided width) reached the
//! target, plus the final paired/unpaired/jackknife half-widths. The
//! recorded numbers live in BENCH_campaign.json / EXPERIMENTS.md.
//!
//! Flags: `--full` (full-resolution table), `--seed N` (first seed),
//! `--seeds K` (number of seeds, default 5), `--bins B` (CPA bands,
//! default 4), `--target X` (CI half-width target, default 0.1),
//! `--enriched` (conflict-enriched model variant), `--json` (emit one
//! machine-readable JSON document instead of the text table — undefined
//! estimates serialize as `null`, never as bare `NaN`/`Infinity`),
//! `--shards N` (run every campaign through an N-shard
//! `uavca_serve::ShardedBackend` instead of the in-process worker pool —
//! results are bit-identical by contract, so this flag measures the
//! service path's overhead, not a different estimate).

use serde::Serialize;
use uavca_encounter::{StatisticalEncounterModel, Stratification};
use uavca_serve::ShardedBackend;
use uavca_validation::{
    CampaignConfig, CampaignOutcome, CampaignPlanner, RatioEstimate, TextTable,
};

fn flag_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.windows(2).find(|w| w[0] == name).map(|w| w[1].clone())
}

/// One seed's uniform-vs-adaptive comparison, JSON-serializable.
#[derive(Debug, Serialize)]
struct SeedReport {
    seed: u64,
    uniform_runs: Option<usize>,
    adaptive_runs: Option<usize>,
    uniform_risk_ratio: RatioEstimate,
    adaptive_risk_ratio: RatioEstimate,
    adaptive_risk_ratio_unpaired: RatioEstimate,
    adaptive_risk_ratio_jackknife: RatioEstimate,
    covariance: f64,
}

fn main() {
    let runner = uavca_bench::runner_for_scale();
    let seeds: u64 = flag_value("--seeds")
        .and_then(|v| v.parse().ok())
        .unwrap_or(5);
    let first_seed = uavca_bench::seed_arg();
    let bins: usize = flag_value("--bins")
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let target: f64 = flag_value("--target")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.1);
    let enriched = std::env::args().any(|a| a == "--enriched");
    let json = std::env::args().any(|a| a == "--json");
    let shards: Option<usize> = flag_value("--shards").and_then(|v| v.parse().ok());

    let mut model = StatisticalEncounterModel::default();
    if enriched {
        // Conflict-enriched variant: tighter CPA envelope, so NMACs are
        // common enough to estimate but still concentrated in the inner
        // bands — the regime importance splitting targets.
        model.max_cpa_horizontal_ft = 2500.0;
        model.max_cpa_vertical_ft = 500.0;
    }

    let config = CampaignConfig {
        seed: first_seed,
        pilot_per_stratum: 30,
        round_runs: 400,
        max_rounds: 60,
        target_half_width: target,
        threads: 0,
    };
    // --target is unvalidated user input (e.g. the pre-PR4 `--target 0`
    // disable idiom): surface the typed error cleanly, don't panic.
    if let Err(err) = config.validate() {
        eprintln!("campaign_eval: {err}");
        std::process::exit(1);
    }
    if !json {
        println!(
            "campaign_eval: {} seeds, {} CPA bands, target half-width {target}, enriched={enriched}{}",
            seeds,
            bins,
            shards.map_or(String::new(), |n| format!(", shards={n}")),
        );
    }
    // With --shards N every campaign runs through the sharded service
    // backend (N local shard workers, one executor thread each — the
    // bench box is 1-CPU, so threads measure nothing here); without it,
    // through the in-process worker pool. Estimates are bit-identical
    // either way, so the comparison isolates the service overhead.
    let backend = shards.map(|n| ShardedBackend::spawn_local(runner.clone(), n.max(1), 1));

    let to_target = |o: &CampaignOutcome| o.runs_to_half_width(target);
    let mut table = TextTable::new([
        "seed",
        "uniform runs",
        "adaptive runs",
        "saving",
        "uniform RR",
        "adaptive RR",
        "paired hw",
        "unpaired hw",
        "jackknife hw",
    ]);
    let mut savings = Vec::new();
    let mut reports = Vec::new();
    for k in 0..seeds {
        let config = CampaignConfig {
            seed: first_seed + k,
            ..config
        };
        let planner = CampaignPlanner::new(runner.clone(), config)
            .model(model)
            .stratification(Stratification::new(bins));
        let (adaptive, uniform) = match &backend {
            Some(fleet) => (
                planner.run_with(fleet).expect("valid campaign config"),
                planner
                    .run_uniform_with(fleet)
                    .expect("valid campaign config"),
            ),
            None => (
                planner.run().expect("valid campaign config"),
                planner.run_uniform().expect("valid campaign config"),
            ),
        };
        let (a, u) = (to_target(&adaptive), to_target(&uniform));
        let saving = match (a, u) {
            (Some(a), Some(u)) => {
                let s = 100.0 * (1.0 - a as f64 / u as f64);
                savings.push(s);
                format!("{s:.0}%")
            }
            _ => "n/a".to_string(),
        };
        let fmt_hw = |r: &RatioEstimate| {
            let hw = r.half_width();
            if hw.is_finite() {
                format!("{hw:.4}")
            } else {
                "inf".to_string()
            }
        };
        table.row([
            config.seed.to_string(),
            u.map_or("-".into(), |r| r.to_string()),
            a.map_or("-".into(), |r| r.to_string()),
            saving,
            format!("{:.3}", uniform.estimate.risk_ratio.ratio),
            format!("{:.3}", adaptive.estimate.risk_ratio.ratio),
            fmt_hw(&adaptive.estimate.risk_ratio),
            fmt_hw(&adaptive.estimate.risk_ratio_unpaired),
            fmt_hw(&adaptive.estimate.risk_ratio_jackknife),
        ]);
        reports.push(SeedReport {
            seed: config.seed,
            uniform_runs: u,
            adaptive_runs: a,
            uniform_risk_ratio: uniform.estimate.risk_ratio,
            adaptive_risk_ratio: adaptive.estimate.risk_ratio,
            adaptive_risk_ratio_unpaired: adaptive.estimate.risk_ratio_unpaired,
            adaptive_risk_ratio_jackknife: adaptive.estimate.risk_ratio_jackknife,
            covariance: adaptive.estimate.covariance,
        });
    }
    if json {
        println!(
            "{}",
            serde_json::to_string(&reports).expect("reports serialize")
        );
        return;
    }
    print!("{table}");
    if !savings.is_empty() {
        savings.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        println!(
            "\nmedian saving {:.0}%  (min {:.0}%, max {:.0}%, {} of {} seeds compared)",
            savings[savings.len() / 2],
            savings[0],
            savings[savings.len() - 1],
            savings.len(),
            seeds
        );
    }
}
