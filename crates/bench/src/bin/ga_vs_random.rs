//! CLAIM-GA-VS-RANDOM — the efficiency claim from Section V (established
//! in the authors' earlier study \[7\]): GA-guided search finds high-fitness
//! (collision-prone) situations faster than random search. Compared on
//! both systems under test: the 2-D SVO algorithm (as in \[7\]) and the 3-D
//! ACAS XU-like logic (this paper).
//!
//! `cargo run --release -p uavca-bench --bin ga_vs_random [--full]`

use uavca_bench::{full_scale, genome_seed, runner_for_scale, seed_arg};
use uavca_evo::{Bounds, GaConfig, GeneticAlgorithm, RandomSearch};
use uavca_svo::{run_encounter_2d, Scenario2d, Sim2dConfig, SCENARIO_2D_BOUNDS};
use uavca_validation::{FitnessFunction, ScenarioSpace, TextTable};

fn svo_fitness(genes: &[f64]) -> f64 {
    let scenario = Scenario2d::from_slice(genes);
    let config = Sim2dConfig::default();
    let seed = genome_seed(genes);
    let runs = 10;
    (0..runs)
        .map(|k| {
            let o = run_encounter_2d(&config, &scenario, [true, true], seed.wrapping_add(k));
            10_000.0 / (1.0 + o.min_separation_ft)
        })
        .sum::<f64>()
        / runs as f64
}

fn main() {
    let trials = if full_scale() { 10 } else { 3 };
    let base_seed = seed_arg();

    // ---- System 1: SVO in 2-D (the setting of [7]) ----------------------
    println!("== CLAIM-GA-VS-RANDOM, system 1: SVO (2-D) ==");
    let bounds = Bounds::new(SCENARIO_2D_BOUNDS.to_vec()).expect("valid bounds");
    let (pop, gens) = if full_scale() { (100, 10) } else { (40, 6) };
    let budget = pop * gens;
    let mut table = TextTable::new([
        "seed",
        "GA best",
        "random best",
        "GA evals to 5000",
        "random evals to 5000",
    ]);
    let mut ga_better = 0;
    for t in 0..trials {
        let seed = base_seed + t;
        let ga = GeneticAlgorithm::new(
            GaConfig::new(pop, gens)
                .seed(seed)
                .threads(0)
                .target_fitness(5000.0),
            bounds.clone(),
        )
        .run(svo_fitness);
        let ga_hit = ga
            .evaluations
            .iter()
            .position(|e| e.fitness >= 5000.0)
            .map(|i| i + 1);
        let random = RandomSearch::new(bounds.clone(), budget)
            .seed(seed)
            .threads(0)
            .target_fitness(5000.0)
            .run(svo_fitness);
        if ga.best.fitness >= random.best.fitness {
            ga_better += 1;
        }
        table.row([
            seed.to_string(),
            format!("{:.0}", ga.best.fitness),
            format!("{:.0}", random.best.fitness),
            ga_hit.map_or("-".into(), |n| n.to_string()),
            random.first_hit.map_or("-".into(), |n| (n + 1).to_string()),
        ]);
    }
    println!("{table}");
    println!("GA best >= random best in {ga_better}/{trials} trials (budget {budget} evals)\n");

    // ---- System 2: ACAS XU-like logic in 3-D (this paper) ---------------
    println!("== CLAIM-GA-VS-RANDOM, system 2: ACAS XU-like logic (3-D) ==");
    let runner = runner_for_scale();
    let space = ScenarioSpace::default();
    let runs_per_eval = if full_scale() { 50 } else { 10 };
    let fitness = FitnessFunction::new(runner, space.clone(), runs_per_eval);
    let (pop3, gens3) = if full_scale() { (60, 8) } else { (24, 5) };
    let budget3 = pop3 * gens3;
    let mut table = TextTable::new(["seed", "GA best", "random best"]);
    let mut ga_better3 = 0;
    for t in 0..trials {
        let seed = base_seed + 100 + t;
        let ga = GeneticAlgorithm::new(
            GaConfig::new(pop3, gens3).seed(seed).threads(0),
            space.bounds(),
        )
        .run(|g: &[f64]| fitness.evaluate(g));
        let random = RandomSearch::new(space.bounds(), budget3)
            .seed(seed)
            .threads(0)
            .run(|g: &[f64]| fitness.evaluate(g));
        if ga.best.fitness >= random.best.fitness {
            ga_better3 += 1;
        }
        table.row([
            seed.to_string(),
            format!("{:.0}", ga.best.fitness),
            format!("{:.0}", random.best.fitness),
        ]);
    }
    println!("{table}");
    println!("GA best >= random best in {ga_better3}/{trials} trials (budget {budget3} evals)");
    println!(
        "\nshape check (paper Section V / ref [7]): guided search dominates random search \
         at equal simulation budgets"
    );
}
