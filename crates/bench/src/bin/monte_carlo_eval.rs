//! PIPE-MC — the Monte-Carlo evaluation loop of the development process
//! (paper Fig. 1 "Simulation Evaluation" + Section IV): NMAC probability,
//! alert rate and risk ratio over the statistical encounter model, with
//! confidence intervals, plus the cost accounting that motivates guided
//! search for rare events.
//!
//! `cargo run --release -p uavca-bench --bin monte_carlo_eval [--full]`

// Experiment binary: wall-clock timing is the point (audit rule A2
// carves the bench crate out the same way).
#![allow(clippy::disallowed_methods)]
use uavca_bench::{full_scale, runner_for_scale, seed_arg};
use uavca_validation::{MonteCarloConfig, MonteCarloEstimator, TextTable};

fn main() {
    let runner = runner_for_scale();
    let config = if full_scale() {
        MonteCarloConfig {
            num_encounters: 5000,
            runs_per_encounter: 10,
            seed: seed_arg(),
            threads: 0,
        }
    } else {
        MonteCarloConfig {
            num_encounters: 400,
            runs_per_encounter: 4,
            seed: seed_arg(),
            threads: 0,
        }
    };
    println!(
        "== PIPE-MC: Monte-Carlo campaign, {} encounters x {} runs ==\n",
        config.num_encounters, config.runs_per_encounter
    );

    let started = std::time::Instant::now();
    let estimate = MonteCarloEstimator::new(runner, config).estimate();
    let wall = started.elapsed().as_secs_f64();

    let mut table = TextTable::new(["metric", "estimate"]);
    table.row([
        "unequipped NMAC rate",
        &estimate.unequipped_nmac.to_string(),
    ]);
    table.row(["equipped NMAC rate", &estimate.equipped_nmac.to_string()]);
    table.row([
        "risk ratio (equipped/unequipped)",
        &format!("{:.3}", estimate.risk_ratio),
    ]);
    table.row(["alert rate", &estimate.alert_rate.to_string()]);
    table.row(["false alert rate", &estimate.false_alert_rate.to_string()]);
    println!("{table}");

    let sims = 2 * config.num_encounters * config.runs_per_encounter;
    println!(
        "{sims} simulations in {wall:.1} s ({:.0} sims/s)",
        sims as f64 / wall
    );
    println!(
        "\nshape check (paper Sections II & IV): the equipped system cuts the NMAC rate \
         (risk ratio {:.3} « 1), but the CI on the equipped rate is still {:.4} wide — \
         rare-event estimation is what makes Monte-Carlo costly and guided search attractive.",
        estimate.risk_ratio,
        estimate.equipped_nmac.ci_high - estimate.equipped_nmac.ci_low
    );
    assert!(
        estimate.risk_ratio < 0.5,
        "the generated logic must cut risk substantially"
    );
}
