//! FIG7/8-TAIL — regenerates the paper's Figs. 7–8 and the surrounding
//! Section VII analysis: the top encounters found by the GA search,
//! re-evaluated over 100 runs each, classified by geometry, and the two
//! hardest rendered as altitude-profile "figures".
//!
//! `cargo run --release -p uavca-bench --bin fig7_8_challenging [--full]`

use uavca_bench::{full_scale, runner_for_scale, seed_arg};
use uavca_encounter::GeometryClass;
use uavca_validation::{FitnessFunction, FitnessKind, SearchConfig, SearchHarness, TextTable};

fn main() {
    let runner = runner_for_scale();
    let config = if full_scale() {
        SearchConfig::default().seed(seed_arg())
    } else {
        SearchConfig {
            population_size: 40,
            generations: 5,
            runs_per_eval: 20,
            seed: seed_arg(),
            threads: 0,
            objective: FitnessKind::Proximity,
        }
    };
    println!("== FIG7/8-TAIL: challenging situations found by the GA ==\n");
    let outcome = SearchHarness::new(runner.clone(), config).run_ga();

    // Re-evaluate the top scenarios over 100 runs for honest statistics
    // (the search fitness is an estimate from runs_per_eval runs).
    let revalidation_runs = 100;
    let mut table = TextTable::new([
        "rank",
        "class",
        "fitness",
        "NMAC/100",
        "mean min sep (ft)",
        "closure (kt)",
        "Vs_o/Vs_i (fpm)",
    ]);
    let mut class_counts: Vec<(GeometryClass, usize)> =
        GeometryClass::ALL.iter().map(|&c| (c, 0)).collect();
    for (rank, s) in outcome.top_scenarios.iter().take(10).enumerate() {
        let outs = runner.run_repeated(&s.params, revalidation_runs, 12345);
        let nmacs = outs.iter().filter(|o| o.nmac).count();
        let mean_sep = outs.iter().map(|o| o.min_separation_ft).sum::<f64>() / outs.len() as f64;
        // Horizontal closure rate along-track (aligned geometries).
        let closure = (s.params.intruder_ground_speed_kt * (s.params.intruder_bearing_rad.cos())
            - s.params.own_ground_speed_kt)
            .abs();
        table.row([
            (rank + 1).to_string(),
            s.class.to_string(),
            format!("{:.0}", s.fitness),
            format!("{nmacs}"),
            format!("{mean_sep:.0}"),
            format!("{closure:.0}"),
            format!(
                "{:.0}/{:.0}",
                s.params.own_vertical_speed_fpm, s.params.intruder_vertical_speed_fpm
            ),
        ]);
        for entry in class_counts.iter_mut() {
            if entry.0 == s.class {
                entry.1 += 1;
            }
        }
    }
    println!("{table}");
    println!("geometry classes among the top 10:");
    for (class, count) in &class_counts {
        println!("  {class:<14} {count}");
    }

    // Render the two hardest as Fig. 7 / Fig. 8 analogues.
    for (i, s) in outcome.top_scenarios.iter().take(2).enumerate() {
        let (run_outcome, trace) = runner.run_traced(&s.params, 777 + i as u64);
        println!(
            "\n-- Fig. {} analogue: {} encounter, fitness {:.0}, this run min sep {:.0} ft, NMAC {} --",
            7 + i,
            s.class,
            s.fitness,
            run_outcome.min_separation_ft,
            run_outcome.nmac
        );
        println!("{}", trace.render_altitude_profile(14));
    }

    // The Section VII shape: the hardest encounters concentrate in the
    // aligned low-closure family (tail approach / overtake), and they are
    // harder than a reference head-on.
    let aligned: usize = class_counts
        .iter()
        .filter(|(c, _)| matches!(c, GeometryClass::TailApproach | GeometryClass::Overtake))
        .map(|(_, n)| n)
        .sum();
    println!("\naligned (tail/overtake) fraction of top 10: {aligned}/10");

    let head_on_outs = runner.run_repeated(
        &uavca_encounter::EncounterParams::head_on_template(),
        revalidation_runs,
        0,
    );
    let head_on_rate = FitnessFunction::nmac_rate(&head_on_outs);
    println!(
        "reference head-on NMAC rate: {:.0}/100 (paper: < 5/100)",
        head_on_rate * 100.0
    );
}
