//! FIG6-GA — regenerates the paper's Fig. 6: fitness of every evaluated
//! encounter, in evaluation order, across the GA generations. The paper
//! runs population 200 × 5 generations with 100 simulations per
//! evaluation; `--full` reproduces that scale, the default is a smoke
//! scale with the same structure.
//!
//! Prints the Fig. 6 series (one fitness value per encounter) in compact
//! per-generation histograms plus the generation summary, and writes the
//! raw series to `fig6_series.json` for external plotting.
//!
//! `cargo run --release -p uavca-bench --bin fig6_ga_fitness [--full]`

// Experiment binary: wall-clock timing is the point (audit rule A2
// carves the bench crate out the same way).
#![allow(clippy::disallowed_methods)]
use uavca_bench::{full_scale, runner_for_scale, seed_arg};
use uavca_validation::{FitnessKind, SearchConfig, SearchHarness, TextTable};

fn main() {
    let runner = runner_for_scale();
    let config = if full_scale() {
        SearchConfig::default().seed(seed_arg())
    } else {
        SearchConfig {
            population_size: 40,
            generations: 5,
            runs_per_eval: 20,
            seed: seed_arg(),
            threads: 0,
            objective: FitnessKind::Proximity,
        }
    };
    println!(
        "== FIG6-GA: fitness per encounter over {} generations x {} encounters ({} sims/eval) ==\n",
        config.generations, config.population_size, config.runs_per_eval
    );

    let started = std::time::Instant::now();
    let outcome = SearchHarness::new(runner, config).run_ga();
    let wall = started.elapsed().as_secs_f64();

    // Per-generation fitness histogram: the textual analogue of the
    // scatter in Fig. 6.
    let buckets = [
        0.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0,
    ];
    let mut table = TextTable::new([
        "generation",
        "<25",
        "<50",
        "<100",
        "<250",
        "<500",
        "<1k",
        "<2.5k",
        "<5k",
        "<=10k",
        "best",
        "mean",
    ]);
    for g in 0..config.generations {
        let fits: Vec<f64> = outcome
            .result
            .evaluations
            .iter()
            .filter(|e| e.generation == g)
            .map(|e| e.fitness)
            .collect();
        let mut counts = vec![0usize; buckets.len() - 1];
        for &f in &fits {
            for b in 0..buckets.len() - 1 {
                if f >= buckets[b] && f < buckets[b + 1] {
                    counts[b] += 1;
                    break;
                }
            }
        }
        let best = fits.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mean = fits.iter().sum::<f64>() / fits.len().max(1) as f64;
        let mut row: Vec<String> = vec![g.to_string()];
        row.extend(counts.iter().map(|c| c.to_string()));
        row.push(format!("{best:.0}"));
        row.push(format!("{mean:.0}"));
        table.row(row);
    }
    println!("{table}");

    // The Fig. 6 claim: later generations concentrate on higher fitness.
    let first_mean = outcome.result.generations.first().unwrap().mean_fitness;
    let last_mean = outcome.result.generations.last().unwrap().mean_fitness;
    let first_best = outcome.result.generations.first().unwrap().best_fitness;
    let last_best = outcome
        .result
        .generations
        .iter()
        .map(|g| g.best_fitness)
        .fold(f64::NEG_INFINITY, f64::max);
    println!(
        "mean fitness {first_mean:.0} -> {last_mean:.0}, best fitness {first_best:.0} -> {last_best:.0}"
    );
    println!("search wall time: {wall:.1} s (paper footnote 5: ~300 s at paper scale on a laptop)");

    let series: Vec<(usize, usize, f64)> = outcome
        .result
        .evaluations
        .iter()
        .map(|e| (e.index, e.generation, e.fitness))
        .collect();
    std::fs::write(
        "fig6_series.json",
        serde_json::to_string(&series).expect("series serializes"),
    )
    .expect("write fig6_series.json");
    println!("raw per-encounter series written to fig6_series.json");

    assert!(
        last_mean > first_mean,
        "Fig. 6 shape: the GA must concentrate the population on higher fitness"
    );
}
