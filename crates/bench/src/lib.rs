//! Shared helpers for the experiment binaries (see DESIGN.md's experiment
//! index and EXPERIMENTS.md for recorded outputs).
//!
//! Every binary accepts `--full` to run at paper scale (population 200 ×
//! 5 generations × 100 runs/eval, full-resolution logic table); the
//! default is a fast smoke scale with identical structure.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
// The bench harness exists to read the wall clock (audit rule A2
// carves it out the same way).
#![allow(clippy::disallowed_methods)]
use std::sync::Arc;

use uavca_acasx::{AcasConfig, LogicTable};
use uavca_validation::EncounterRunner;

/// Whether `--full` was passed: run at paper scale.
pub fn full_scale() -> bool {
    std::env::args().any(|a| a == "--full")
}

/// Parses `--seed N` (default 0).
pub fn seed_arg() -> u64 {
    let args: Vec<String> = std::env::args().collect();
    args.windows(2)
        .find(|w| w[0] == "--seed")
        .and_then(|w| w[1].parse().ok())
        .unwrap_or(0)
}

/// Parses `--horizon N` (seconds): overrides the logic table's alerting
/// horizon τ_max. The horizon is the decisive robustness parameter the
/// search experiments expose (see the `horizon_ablation` binary).
pub fn horizon_arg() -> Option<usize> {
    let args: Vec<String> = std::env::args().collect();
    args.windows(2)
        .find(|w| w[0] == "--horizon")
        .and_then(|w| w[1].parse().ok())
}

/// Solves the logic table at the scale selected by `--full` and wraps it
/// in a runner. Prints the solve time (the paper's footnote 2 claims the
/// real model solves in under five minutes on a laptop).
pub fn runner_for_scale() -> EncounterRunner {
    let mut config = if full_scale() {
        AcasConfig::default()
    } else {
        AcasConfig::coarse()
    };
    if let Some(h) = horizon_arg() {
        config.tau_max_s = h;
    }
    let started = std::time::Instant::now();
    let table = Arc::new(LogicTable::solve(&config));
    eprintln!(
        "[setup] solved logic table ({} stages, {:.1} MiB) in {:.1} s",
        table.num_stages(),
        table.q_bytes() as f64 / (1024.0 * 1024.0),
        started.elapsed().as_secs_f64()
    );
    EncounterRunner::new(table)
}

/// A runner over the coarse logic table, for criterion benches that must
/// set up quickly regardless of `--full`.
pub fn coarse_runner() -> EncounterRunner {
    EncounterRunner::with_coarse_table()
}

/// A genome-derived seed identical to the one used by fitness evaluation.
pub fn genome_seed(genes: &[f64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for x in genes {
        h ^= x.to_bits();
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}
