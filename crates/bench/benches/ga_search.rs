//! Criterion bench: search-loop overhead (CLAIM-SEARCH-TIME). Uses a
//! synthetic cheap fitness so the bench isolates the GA machinery, plus a
//! small real-simulation generation to capture the paper's end-to-end
//! cost structure.

use criterion::{criterion_group, criterion_main, Criterion};
use uavca_evo::{Bounds, GaConfig, GeneticAlgorithm, RandomSearch};
use uavca_svo::{run_encounter_2d, Scenario2d, Sim2dConfig, SCENARIO_2D_BOUNDS};

fn bench_ga_machinery(c: &mut Criterion) {
    // Pure engine overhead on a trivial fitness.
    let bounds = Bounds::uniform(9, -1.0, 1.0).expect("valid bounds");
    c.bench_function("ga_engine_200x5_cheap_fitness", |b| {
        b.iter(|| {
            GeneticAlgorithm::new(GaConfig::new(200, 5).seed(1), bounds.clone())
                .run(|g: &[f64]| -g.iter().map(|x| x * x).sum::<f64>())
        })
    });
}

fn bench_random_machinery(c: &mut Criterion) {
    let bounds = Bounds::uniform(9, -1.0, 1.0).expect("valid bounds");
    c.bench_function("random_search_1000_cheap_fitness", |b| {
        b.iter(|| {
            RandomSearch::new(bounds.clone(), 1000)
                .seed(1)
                .run(|g: &[f64]| -g.iter().map(|x| x * x).sum::<f64>())
        })
    });
}

fn bench_one_svo_generation(c: &mut Criterion) {
    // One GA generation against the real (2-D) simulation: 20 individuals
    // x 5 runs — the unit the ~300 s paper-scale search repeats.
    let bounds = Bounds::new(SCENARIO_2D_BOUNDS.to_vec()).expect("valid bounds");
    let fitness = |genes: &[f64]| {
        let scenario = Scenario2d::from_slice(genes);
        (0..5)
            .map(|k| {
                let o = run_encounter_2d(&Sim2dConfig::default(), &scenario, [true, true], k);
                10_000.0 / (1.0 + o.min_separation_ft)
            })
            .sum::<f64>()
            / 5.0
    };
    let mut group = c.benchmark_group("ga_generation_svo");
    group.sample_size(10);
    group.bench_function("20_individuals_x_5_runs", |b| {
        b.iter(|| GeneticAlgorithm::new(GaConfig::new(20, 1).seed(2), bounds.clone()).run(fitness))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_ga_machinery,
    bench_random_machinery,
    bench_one_svo_generation
);
criterion_main!(benches);
