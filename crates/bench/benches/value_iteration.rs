//! Criterion bench: dynamic-programming solve throughput (CLAIM-VI-TIME).
//!
//! Covers the toy 2-D model (value iteration to convergence) and the
//! 3-D vertical-logic model (backward induction per stage) at several
//! resolutions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use uavca_acasx::{AcasConfig, VerticalMdp};
use uavca_ca2d::{build_mdp, Ca2dConfig};
use uavca_mdp::{BackwardInduction, SweepOrder, ValueIteration};

fn bench_toy_value_iteration(c: &mut Criterion) {
    let mut group = c.benchmark_group("toy_2d_value_iteration");
    for (label, y, x) in [("paper_7x10x7", 3, 9), ("double_13x19x13", 6, 18)] {
        let config = Ca2dConfig {
            y_extent: y,
            x_extent: x,
            ..Ca2dConfig::default()
        };
        let mdp = build_mdp(&config).expect("model builds");
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| {
                ValueIteration::new()
                    .tolerance(1e-6)
                    .skip_validation()
                    .solve(&mdp)
                    .expect("converges")
            })
        });
    }
    group.finish();
}

fn bench_toy_gauss_seidel(c: &mut Criterion) {
    let mdp = build_mdp(&Ca2dConfig::default()).expect("model builds");
    c.bench_function("toy_2d_gauss_seidel", |b| {
        b.iter(|| {
            ValueIteration::new()
                .tolerance(1e-6)
                .sweep_order(SweepOrder::GaussSeidel)
                .skip_validation()
                .solve(&mdp)
                .expect("converges")
        })
    });
}

fn bench_acasx_backward_stage(c: &mut Criterion) {
    let mut group = c.benchmark_group("acasx_backward_induction");
    group.sample_size(10);
    for (label, config) in [
        ("coarse", AcasConfig::coarse()),
        // bench a 5-stage slice of the default model, not the whole horizon
        (
            "default_5stages",
            AcasConfig {
                tau_max_s: 5,
                ..AcasConfig::default()
            },
        ),
    ] {
        let model = VerticalMdp::new(config.clone());
        let terminal = model.terminal_values();
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| {
                BackwardInduction::new()
                    .solve(&model, config.num_stages(), terminal.clone())
                    .expect("solves")
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_toy_value_iteration,
    bench_toy_gauss_seidel,
    bench_acasx_backward_stage
);
criterion_main!(benches);
