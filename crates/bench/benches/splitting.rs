//! Criterion bench: multilevel splitting vs crude stratified sampling
//! on a rare-event source with a *known* NMAC rate.
//!
//! Two readings:
//!
//! 1. A **steps-to-target comparison** (printed once, recorded in
//!    BENCH_campaign.json): how many simulated UAV-steps each estimator
//!    needs before the risk-ratio CI half-width (maximum one-sided
//!    width) reaches the target, against a rigged source whose equipped
//!    NMAC probability is exactly `p_cross^(rungs+1)` per root —
//!    6.25e-6 at the full-scale setting. Crude per-root sampling pays
//!    `1/p` roots per equipped event; splitting pays roughly
//!    `(rungs+1)/p_cross` segments, so the step budget collapses by
//!    orders of magnitude at matched CI width. Both sides are *measured*
//!    (actual draws, actual observed half-widths), not projected.
//! 2. **Wall-clock timings** of a fixed-budget splitting campaign on the
//!    real simulator, so the branch-tree driver's overhead (checkpoint
//!    cloning, per-segment CPA tracking, schedule folding) is pinned
//!    next to the simulations themselves and cannot rot unnoticed.
//!
//! The rig is the same Bernoulli replay used by the statistical
//! coverage battery in `crates/core/tests/splitting_statistics.rs`: the
//! driver's exact depth-first walk and `split_branch_seed` rule, with
//! flight dynamics replaced by one conditional crossing draw per
//! segment, so the ground truth is exact and the comparison is about
//! estimator efficiency, not simulator fidelity.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use uavca_encounter::{StatisticalEncounterModel, Stratification};
use uavca_sim::EncounterOutcome;
use uavca_validation::{
    split_branch_seed, RatioEstimate, SplitConfig, SplitJob, SplitOutcome, SplitPlanner,
    SplitSource,
};

/// Steps per simulated encounter arm — the rigged world charges the same
/// horizon the real 60 s / 0.25 s-step encounters cost.
const HORIZON_STEPS: u64 = 240;

/// The enriched model every CPA band of which clears the ladder entry
/// gate, so all strata carry the full ladder and the rigged equipped
/// truth is `p_cross^(rungs+1)` everywhere.
fn enriched() -> StatisticalEncounterModel {
    StatisticalEncounterModel {
        max_cpa_horizontal_ft: 2500.0,
        max_cpa_vertical_ft: 500.0,
        ..StatisticalEncounterModel::default()
    }
}

fn plain_outcome(nmac: bool) -> EncounterOutcome {
    EncounterOutcome {
        nmac,
        first_nmac_time_s: nmac.then_some(30.0),
        min_separation_ft: if nmac { 100.0 } else { 2000.0 },
        min_horizontal_ft: if nmac { 80.0 } else { 1500.0 },
        min_vertical_ft: if nmac { 50.0 } else { 400.0 },
        time_of_min_s: 30.0,
        own_alert_steps: 0,
        intruder_alert_steps: 0,
        first_alert_time_s: None,
        own_reversals: 0,
        duration_s: 60.0,
    }
}

/// Synthetic world with known conditional rates: every stage segment
/// crosses independently with probability `p_cross` (one seeded draw per
/// segment, branch seeds from the engine's own rule), and the unequipped
/// arm is NMAC iff the sampled CPA miss lands in the lowest `p_u`
/// fraction of its band.
struct RiggedWorld {
    model: StatisticalEncounterModel,
    strat: Stratification,
    p_cross: f64,
    p_u: f64,
}

impl RiggedWorld {
    fn run_one(&self, job: &SplitJob) -> SplitOutcome {
        let stages = job.levels.len() + 1;
        let mut out = SplitOutcome {
            weight: 0.0,
            level_trials: vec![0; stages],
            level_crossings: vec![0; stages],
            equipped_steps: 0,
            unequipped_steps: HORIZON_STEPS,
            unequipped: plain_outcome(false),
        };
        let mut next_node = 0u64;
        self.descend(job, 0, job.seed, 1.0, &mut next_node, &mut out);
        let stratum = self.strat.stratum_of(&self.model, &job.params);
        let (lo, hi) = self.strat.cpa_bounds(&self.model, stratum.cpa_bin);
        let frac = (job.params.cpa_horizontal_ft - lo) / (hi - lo);
        out.unequipped = plain_outcome(frac < self.p_u);
        out
    }

    fn descend(
        &self,
        job: &SplitJob,
        stage: usize,
        seed: u64,
        leaf_weight: f64,
        next_node: &mut u64,
        out: &mut SplitOutcome,
    ) {
        out.level_trials[stage] += 1;
        out.equipped_steps += HORIZON_STEPS / (job.levels.len() as u64 + 1);
        if !StdRng::seed_from_u64(seed).gen_bool(self.p_cross) {
            return;
        }
        out.level_crossings[stage] += 1;
        if stage == job.levels.len() {
            out.weight += leaf_weight;
            return;
        }
        let fan = job.branches.get(stage).copied().unwrap_or(1).max(1);
        let node = *next_node;
        *next_node += 1;
        for branch in 0..fan {
            self.descend(
                job,
                stage + 1,
                split_branch_seed(job.seed, stage, node, branch),
                leaf_weight / fan as f64,
                next_node,
                out,
            );
        }
    }
}

impl SplitSource for RiggedWorld {
    fn run_splits(&self, jobs: &[SplitJob]) -> Vec<SplitOutcome> {
        jobs.iter().map(|j| self.run_one(j)).collect()
    }
}

/// Crude per-root sampling against the same ground truth: each root runs
/// one equipped and one unequipped encounter (2 × 240 steps) and the
/// equipped arm is NMAC with the full product probability
/// `p_cross^(rungs+1)` — exactly what the splitting ladder decomposes.
/// Stratification buys nothing here (the rate is uniform across strata),
/// so crude stratified and crude global sampling coincide and this is
/// the strongest honest baseline. Returns the simulated UAV-steps spent
/// when the risk-ratio CI half-width first reaches `target`, or `None`
/// at the root cap.
fn crude_steps_to_target(
    seed: u64,
    p_equipped: f64,
    p_u: f64,
    target: f64,
    round_roots: u64,
    cap_roots: u64,
) -> Option<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut roots = 0u64;
    let mut events_e = 0u64;
    let mut events_u = 0u64;
    while roots < cap_roots {
        for _ in 0..round_roots {
            if rng.gen_bool(p_equipped) {
                events_e += 1;
            }
            if rng.gen_bool(p_u) {
                events_u += 1;
            }
        }
        roots += round_roots;
        if events_e == 0 || events_u == 0 {
            continue;
        }
        let (n, pe, pu) = (
            roots as f64,
            events_e as f64 / roots as f64,
            events_u as f64 / roots as f64,
        );
        // Unpaired log-delta CI: the arms are independent draws here, so
        // the covariance-free construction is the right one for crude.
        let se_log = ((1.0 - pe) / (n * pe) + (1.0 - pu) / (n * pu)).sqrt();
        if RatioEstimate::from_log(pe / pu, se_log).half_width() <= target {
            return Some(roots * 2 * HORIZON_STEPS);
        }
    }
    None
}

fn splitting_planner(seed: u64, target: f64, round_roots: usize, rounds: usize) -> SplitPlanner {
    SplitPlanner::new(
        uavca_bench::coarse_runner(),
        SplitConfig {
            seed,
            levels: 3,
            max_branch: 8,
            pilot_roots_per_stratum: 16,
            round_roots,
            max_rounds: rounds,
            target_half_width: target,
            threads: 1,
        },
    )
    .model(enriched())
    .stratification(Stratification::new(3))
}

fn print_steps_to_target() {
    // Respect the CI smoke budget: under a tiny BENCH_TARGET_MS the
    // comparison still runs (bench-rot guard) but at one seed and a
    // conditional rate high enough that both estimators converge in
    // milliseconds, instead of the recorded 6.25e-6 regime.
    let smoke = std::env::var("BENCH_TARGET_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .is_some_and(|ms| ms < 50);
    let (p_cross, seeds, round_roots, rounds, crude_cap) = if smoke {
        (0.15f64, 1u64, 200, 8, 2_000_000)
    } else {
        (0.05f64, 3u64, 800, 40, 40_000_000)
    };
    let p_u = 0.25;
    let truth_e = p_cross.powi(4);
    let ratio_truth = truth_e / p_u;
    // 100% relative on the worse side: the interval must pin the order
    // of magnitude, the regime the paper's 1e-6 NMAC rates live in.
    let target = ratio_truth;
    println!(
        "splitting: UAV-steps to risk-ratio CI half-width <= {target:.3e} \
         (equipped truth {truth_e:.3e}, rigged source, crude vs 3-rung splitting)"
    );
    let mut savings = Vec::new();
    for seed in 0..seeds {
        let rig = RiggedWorld {
            model: enriched(),
            strat: Stratification::new(3),
            p_cross,
            p_u,
        };
        let outcome = splitting_planner(9000 + seed, target, round_roots, rounds)
            .run_with(&rig)
            .expect("valid config");
        let split_steps = outcome.steps_to_half_width(target);
        let crude_steps =
            crude_steps_to_target(9000 + seed, truth_e, p_u, target, 20_000, crude_cap);
        let show = |s: Option<u64>| s.map_or("-".to_string(), |v| v.to_string());
        match (split_steps, crude_steps) {
            (Some(s), Some(c)) => {
                println!(
                    "  seed {seed}: crude {c} steps  splitting {s} steps  ({:.0}x fewer)",
                    c as f64 / s as f64
                );
                savings.push(c as f64 / s as f64);
            }
            (s, c) => println!(
                "  seed {seed}: crude {} steps  splitting {} steps (one side hit its cap)",
                show(c),
                show(s)
            ),
        }
    }
    if !savings.is_empty() {
        savings.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        println!(
            "  median step saving {:.0}x across {} seeds",
            savings[savings.len() / 2],
            savings.len()
        );
    }
}

fn bench_splitting(c: &mut Criterion) {
    print_steps_to_target();

    // Fixed-budget splitting campaign on the real simulator: wall-clock
    // for the branch-tree driver end to end (checkpointed segments,
    // schedule folds, estimate composition). Scale-matched to the
    // campaign bench's fixed-budget reading.
    let mut group = c.benchmark_group("split_campaign_real_sim");
    group.sample_size(10);
    group.bench_function("fixed_budget", |b| {
        let planner = SplitPlanner::new(
            uavca_bench::coarse_runner(),
            SplitConfig {
                seed: 11,
                levels: 2,
                max_branch: 4,
                pilot_roots_per_stratum: 2,
                round_roots: 40,
                max_rounds: 2,
                target_half_width: f64::INFINITY,
                threads: 1,
            },
        )
        .model(enriched())
        .stratification(Stratification::new(3));
        b.iter(|| planner.run().expect("valid config"))
    });
    group.finish();
}

criterion_group!(benches, bench_splitting);
criterion_main!(benches);
