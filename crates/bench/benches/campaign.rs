//! Criterion bench: uniform vs adaptive stratified Monte-Carlo.
//!
//! Two readings:
//!
//! 1. A **runs-to-target comparison** (printed once, recorded in
//!    BENCH_campaign.json): how many paired simulations each allocation
//!    policy needs before the combined risk-ratio CI half-width (maximum
//!    one-sided width) reaches the target on the conflict-enriched
//!    benchmark scenario — under both the paired (covariance-aware) CI
//!    and the covariance-free one, computed from the *same* campaign
//!    trails so the CI construction is the only variable. This isolates
//!    the two payoff claims: adaptive-vs-uniform (allocation) and
//!    paired-vs-unpaired (estimator).
//! 2. **Wall-clock timings** of fixed-budget campaigns, showing the
//!    planner's per-round overhead (stratum sampling, reallocation,
//!    estimate folding, jackknife) is noise next to the simulations
//!    themselves.

use criterion::{criterion_group, criterion_main, Criterion};
use uavca_encounter::{StatisticalEncounterModel, Stratification};
use uavca_validation::analysis::{convergence_series, runs_to_half_width};
use uavca_validation::{CampaignConfig, CampaignOutcome, CampaignPlanner};

/// The benchmark scenario: conflict-enriched model (tighter CPA
/// envelope), five CPA bands, the regime recorded in EXPERIMENTS.md.
fn benchmark_planner(seed: u64, target: f64) -> CampaignPlanner {
    let model = StatisticalEncounterModel {
        max_cpa_horizontal_ft: 2500.0,
        max_cpa_vertical_ft: 500.0,
        ..StatisticalEncounterModel::default()
    };
    CampaignPlanner::new(
        uavca_bench::coarse_runner(),
        CampaignConfig {
            seed,
            pilot_per_stratum: 30,
            round_runs: 400,
            max_rounds: 60,
            target_half_width: target,
            threads: 0,
        },
    )
    .model(model)
    .stratification(Stratification::new(5))
}

/// Runs-to-target under both CI constructions, from one campaign trail:
/// `(paired, unpaired)` cumulative runs at the first round whose
/// half-width reached `target`.
fn runs_to_both(outcome: &CampaignOutcome, target: f64) -> (Option<usize>, Option<usize>) {
    let series = convergence_series(&outcome.rounds);
    // The paired reading is the library's single runs-to-target
    // definition; only the unpaired comparison column needs an inline
    // scan (there is no library reading for the covariance-free CI).
    let paired = runs_to_half_width(&series, target);
    let unpaired = series
        .iter()
        .find(|p| p.unpaired_half_width <= target)
        .map(|p| p.total_runs);
    (paired, unpaired)
}

fn print_runs_to_target() {
    // Respect the CI smoke budget: under a tiny BENCH_TARGET_MS the
    // comparison still runs (bench-rot guard) but at one seed, a loose
    // target and few rounds instead of the full recorded scale.
    let smoke = std::env::var("BENCH_TARGET_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .is_some_and(|ms| ms < 50);
    let (target, seeds, max_rounds) = if smoke {
        (0.04, 1u64, 12)
    } else {
        (0.015, 5u64, 60)
    };
    println!(
        "campaign: paired runs to risk-ratio CI half-width <= {target} \
         (max one-sided width; paired vs unpaired CI on the same trails)"
    );
    let mut savings = Vec::new();
    for seed in 0..seeds {
        // Early stop disabled so the trail extends past the paired stop
        // point and the unpaired reading stays comparable.
        let planner =
            benchmark_planner(seed, f64::INFINITY).config_with(|c| c.max_rounds = max_rounds);
        let adaptive = planner.run().expect("valid config");
        let uniform = planner.run_uniform().expect("valid config");
        let (ap, au) = runs_to_both(&adaptive, target);
        let (up, uu) = runs_to_both(&uniform, target);
        let show = |r: Option<usize>| r.map_or("-".to_string(), |v| v.to_string());
        println!(
            "  seed {seed}: uniform paired {} (unpaired {})  adaptive paired {} (unpaired {})",
            show(up),
            show(uu),
            show(ap),
            show(au)
        );
        if let (Some(a), Some(u)) = (ap, up) {
            savings.push(100.0 * (1.0 - a as f64 / u as f64));
        }
    }
    if !savings.is_empty() {
        savings.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        println!(
            "  median adaptive-vs-uniform saving {:.0}% across {} seeds (paired CI)",
            savings[savings.len() / 2],
            savings.len()
        );
    }
}

fn bench_campaign(c: &mut Criterion) {
    print_runs_to_target();

    // Fixed-budget campaigns for wall-clock comparison: identical run
    // counts, so the timing gap is pure planner overhead difference.
    let fixed = |seed: u64| {
        benchmark_planner(seed, f64::INFINITY).config_with(|c| {
            c.pilot_per_stratum = 5;
            c.round_runs = 100;
            c.max_rounds = 3;
        })
    };
    let mut group = c.benchmark_group("campaign_400_pairs");
    group.sample_size(10);
    group.bench_function("adaptive", |b| {
        let planner = fixed(11);
        b.iter(|| planner.run().expect("valid config"))
    });
    group.bench_function("uniform", |b| {
        let planner = fixed(11);
        b.iter(|| planner.run_uniform().expect("valid config"))
    });
    group.finish();
}

criterion_group!(benches, bench_campaign);
criterion_main!(benches);
