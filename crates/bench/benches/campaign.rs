//! Criterion bench: uniform vs adaptive stratified Monte-Carlo.
//!
//! Two readings:
//!
//! 1. A **runs-to-target comparison** (printed once, recorded in
//!    BENCH_campaign.json): how many paired simulations each allocation
//!    policy needs before the combined risk-ratio CI half-width reaches
//!    the target on the conflict-enriched benchmark scenario. This is
//!    the payoff claim of importance splitting — fewer simulations for
//!    the same statistical precision.
//! 2. **Wall-clock timings** of fixed-budget campaigns, showing the
//!    planner's per-round overhead (stratum sampling, reallocation,
//!    estimate folding) is noise next to the simulations themselves.

use criterion::{criterion_group, criterion_main, Criterion};
use uavca_encounter::{StatisticalEncounterModel, Stratification};
use uavca_validation::{CampaignConfig, CampaignOutcome, CampaignPlanner};

/// The benchmark scenario: conflict-enriched model (tighter CPA
/// envelope), five CPA bands, the regime recorded in EXPERIMENTS.md.
fn benchmark_planner(seed: u64, target: f64) -> CampaignPlanner {
    let model = StatisticalEncounterModel {
        max_cpa_horizontal_ft: 2500.0,
        max_cpa_vertical_ft: 500.0,
        ..StatisticalEncounterModel::default()
    };
    CampaignPlanner::new(
        uavca_bench::coarse_runner(),
        CampaignConfig {
            seed,
            pilot_per_stratum: 30,
            round_runs: 400,
            max_rounds: 60,
            target_half_width: target,
            threads: 0,
        },
    )
    .model(model)
    .stratification(Stratification::new(5))
}

fn print_runs_to_target() {
    // Respect the CI smoke budget: under a tiny BENCH_TARGET_MS the
    // comparison still runs (bench-rot guard) but at one seed and a
    // loose target instead of the full recorded scale.
    let smoke = std::env::var("BENCH_TARGET_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .is_some_and(|ms| ms < 50);
    let (target, seeds) = if smoke { (0.04, 1u64) } else { (0.015, 3u64) };
    let to_target = |o: &CampaignOutcome| o.runs_to_half_width(target);
    println!("campaign: paired runs to risk-ratio CI half-width <= {target}");
    let mut savings = Vec::new();
    for seed in 0..seeds {
        let planner = benchmark_planner(seed, target);
        let adaptive = to_target(&planner.run());
        let uniform = to_target(&planner.run_uniform());
        if let (Some(a), Some(u)) = (adaptive, uniform) {
            savings.push(100.0 * (1.0 - a as f64 / u as f64));
            println!("  seed {seed}: uniform {u}  adaptive {a}");
        } else {
            println!(
                "  seed {seed}: target not reached (uniform {uniform:?}, adaptive {adaptive:?})"
            );
        }
    }
    if !savings.is_empty() {
        savings.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        println!(
            "  median saving {:.0}% across {} seeds",
            savings[savings.len() / 2],
            savings.len()
        );
    }
}

fn bench_campaign(c: &mut Criterion) {
    print_runs_to_target();

    // Fixed-budget campaigns for wall-clock comparison: identical run
    // counts, so the timing gap is pure planner overhead difference.
    let fixed = |seed: u64| {
        benchmark_planner(seed, 0.0).config_with(|c| {
            c.pilot_per_stratum = 5;
            c.round_runs = 100;
            c.max_rounds = 3;
        })
    };
    let mut group = c.benchmark_group("campaign_400_pairs");
    group.sample_size(10);
    group.bench_function("adaptive", |b| {
        let planner = fixed(11);
        b.iter(|| planner.run())
    });
    group.bench_function("uniform", |b| {
        let planner = fixed(11);
        b.iter(|| planner.run_uniform())
    });
    group.finish();
}

criterion_group!(benches, bench_campaign);
criterion_main!(benches);
