//! Criterion bench: batched vs serial Monte-Carlo evaluation throughput.
//!
//! Measures the payoff of the `BatchRunner` engine: the same Monte-Carlo
//! campaign (paired equipped/unequipped runs on identical seeds) executed
//! serially and on the shared worker pool, reported in encounters per
//! second. Results are bit-identical across thread counts by
//! construction; this bench exists to show the wall-clock gap.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use uavca_validation::{MonteCarloConfig, MonteCarloEstimator};

fn config(threads: usize) -> MonteCarloConfig {
    MonteCarloConfig {
        num_encounters: 40,
        runs_per_encounter: 2,
        seed: 11,
        threads,
    }
}

fn bench_monte_carlo_scaling(c: &mut Criterion) {
    let runner = uavca_bench::coarse_runner();
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut group = c.benchmark_group("monte_carlo_batch_eval");
    group.sample_size(10);
    for threads in [1usize, 2, hw] {
        group.bench_function(
            BenchmarkId::from_parameter(format!("threads_{threads}")),
            |b| {
                let est = MonteCarloEstimator::new(runner.clone(), config(threads));
                b.iter(|| est.estimate())
            },
        );
    }
    group.finish();
}

fn bench_repeated_runs(c: &mut Criterion) {
    // The fitness-evaluation inner loop: 100 stochastic runs of one
    // scenario, serial with avoider reuse vs batched across the pool.
    use uavca_encounter::EncounterParams;
    use uavca_exec::Executor;
    use uavca_validation::BatchRunner;

    let runner = uavca_bench::coarse_runner();
    let params = EncounterParams::tail_approach_template();
    let equipage = runner.current_equipage();
    let mut group = c.benchmark_group("run_repeated_100");
    group.sample_size(10);
    // The pre-engine hot loop: two boxed avoiders + a world per run.
    group.bench_function("fresh_allocations_per_run", |b| {
        b.iter(|| {
            (0..100)
                .map(|k| runner.run_once_with(&params, k, equipage))
                .collect::<Vec<_>>()
        })
    });
    group.bench_function("serial_reused_avoiders", |b| {
        b.iter(|| runner.run_repeated(&params, 100, 0))
    });
    group.bench_function("batched_hardware_threads", |b| {
        let batch = BatchRunner::new(runner.clone(), Executor::default());
        b.iter(|| batch.run_repeated(&params, 100, 0))
    });
    group.finish();
}

criterion_group!(benches, bench_monte_carlo_scaling, bench_repeated_runs);
criterion_main!(benches);
