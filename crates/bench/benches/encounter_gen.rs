//! Criterion bench: scenario generation throughput — parameter sampling,
//! CPA geometry instantiation, and statistical-model draws. These sit on
//! the hot path of both search and Monte-Carlo loops.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use uavca_encounter::{classify, ParamRanges, ScenarioGenerator, StatisticalEncounterModel};

fn bench_uniform_sampling(c: &mut Criterion) {
    let ranges = ParamRanges::default();
    let mut rng = StdRng::seed_from_u64(1);
    c.bench_function("uniform_param_sample", |b| {
        b.iter(|| ranges.sample_uniform(&mut rng))
    });
}

fn bench_generation(c: &mut Criterion) {
    let ranges = ParamRanges::default();
    let generator = ScenarioGenerator::default();
    let mut rng = StdRng::seed_from_u64(2);
    let params: Vec<_> = (0..256).map(|_| ranges.sample_uniform(&mut rng)).collect();
    c.bench_function("cpa_geometry_instantiation", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % params.len();
            generator.generate(&params[i])
        })
    });
}

fn bench_statistical_model(c: &mut Criterion) {
    let model = StatisticalEncounterModel::default();
    let mut rng = StdRng::seed_from_u64(3);
    c.bench_function("statistical_model_sample", |b| {
        b.iter(|| model.sample(&mut rng))
    });
}

fn bench_classification(c: &mut Criterion) {
    let ranges = ParamRanges::default();
    let mut rng = StdRng::seed_from_u64(4);
    let params: Vec<_> = (0..256).map(|_| ranges.sample_uniform(&mut rng)).collect();
    c.bench_function("geometry_classification", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % params.len();
            classify(&params[i])
        })
    });
}

criterion_group!(
    benches,
    bench_uniform_sampling,
    bench_generation,
    bench_statistical_model,
    bench_classification
);
criterion_main!(benches);
