//! Criterion bench: online logic-table lookups — the per-decision cost of
//! the deployed system (multilinear interpolation over the kinematic grid
//! plus τ blending, then masked argmax).

use criterion::{criterion_group, criterion_main, Criterion};
use uavca_acasx::{AcasConfig, Advisory, LogicTable};

fn bench_q_lookup(c: &mut Criterion) {
    let table = LogicTable::solve(&AcasConfig::coarse());
    c.bench_function("logic_table_q_values", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let h = ((i % 200) as f64) * 10.0 - 1000.0;
            let tau = (i % 12) as f64 + 0.5;
            table.q_values(h, 5.0, -8.0, tau, Advisory::Coc)
        })
    });
}

fn bench_best_advisory(c: &mut Criterion) {
    let table = LogicTable::solve(&AcasConfig::coarse());
    c.bench_function("logic_table_best_advisory_masked", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let h = ((i % 200) as f64) * 10.0 - 1000.0;
            table.best_advisory(
                h,
                5.0,
                -8.0,
                6.5,
                Advisory::Cl1500,
                Some(uavca_sim::Sense::Down),
                3.0,
            )
        })
    });
}

fn bench_interp_weights(c: &mut Criterion) {
    // The raw 3-D interpolation kernel.
    let grid = AcasConfig::default().build_grid();
    c.bench_function("grid_interp_weights_3d", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let h = ((i % 300) as f64) * 7.0 - 1000.0;
            grid.interp_weights(&[h, 3.3, -12.7]).expect("3-D query")
        })
    });
}

criterion_group!(
    benches,
    bench_q_lookup,
    bench_best_advisory,
    bench_interp_weights
);
criterion_main!(benches);
