//! Criterion bench: online logic-table lookups — the per-decision cost of
//! the deployed system (multilinear interpolation over the kinematic grid
//! plus τ blending, then masked argmax), scalar and batched.
//!
//! The `*_scalar_256` / `*_batch_256` pairs run the *same* 256 queries per
//! iteration, so dividing either number by 256 gives the per-lookup cost
//! and the pair is directly comparable. Recorded runs live in
//! `BENCH_table_lookup.json`.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use uavca_acasx::{AcasConfig, Advisory, LogicTable, LookupScratch, StateBatch};

/// Query-set size for the scalar-vs-batch comparison: roughly one
/// Monte-Carlo campaign tick's worth of per-aircraft decisions.
const BATCH: usize = 256;

/// A deterministic SoA query set covering the grid box, τ range and all
/// previous advisories.
struct QuerySet {
    h: Vec<f64>,
    own: Vec<f64>,
    intr: Vec<f64>,
    tau: Vec<f64>,
    prev: Vec<Advisory>,
}

fn query_set() -> QuerySet {
    QuerySet {
        h: (0..BATCH)
            .map(|i| (i % 200) as f64 * 10.0 - 1000.0)
            .collect(),
        own: (0..BATCH).map(|i| (i % 17) as f64 - 8.0).collect(),
        intr: (0..BATCH).map(|i| 8.0 - (i % 19) as f64).collect(),
        tau: (0..BATCH).map(|i| (i % 12) as f64 + 0.5).collect(),
        prev: (0..BATCH)
            .map(|i| Advisory::from_index(i % Advisory::COUNT))
            .collect(),
    }
}

fn bench_q_lookup(c: &mut Criterion) {
    let table = LogicTable::solve(&AcasConfig::coarse());
    c.bench_function("logic_table_q_values", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let h = ((i % 200) as f64) * 10.0 - 1000.0;
            let tau = (i % 12) as f64 + 0.5;
            table.q_values(h, 5.0, -8.0, tau, Advisory::Coc)
        })
    });
}

fn bench_best_advisory(c: &mut Criterion) {
    let table = LogicTable::solve(&AcasConfig::coarse());
    c.bench_function("logic_table_best_advisory_masked", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let h = ((i % 200) as f64) * 10.0 - 1000.0;
            table.best_advisory(
                h,
                5.0,
                -8.0,
                6.5,
                Advisory::Cl1500,
                Some(uavca_sim::Sense::Down),
                3.0,
            )
        })
    });
}

fn bench_interp_weights(c: &mut Criterion) {
    // The raw 3-D interpolation kernel.
    let grid = AcasConfig::default().build_grid();
    c.bench_function("grid_interp_weights_3d", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let h = ((i % 300) as f64) * 7.0 - 1000.0;
            grid.interp_weights(&[h, 3.3, -12.7]).expect("3-D query")
        })
    });
}

fn bench_scalar_vs_batch(c: &mut Criterion) {
    let table = LogicTable::solve(&AcasConfig::coarse());
    let QuerySet {
        h,
        own,
        intr,
        tau,
        prev,
    } = query_set();
    let forbidden = vec![None; BATCH];

    c.bench_function("logic_table_q_values_scalar_256", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..BATCH {
                acc += table.q_values(h[i], own[i], intr[i], tau[i], prev[i])[0];
            }
            black_box(acc)
        })
    });

    let mut scratch = LookupScratch::default();
    let mut q_out = Vec::new();
    c.bench_function("logic_table_q_values_batch_256", |b| {
        b.iter(|| {
            let batch = StateBatch {
                h_ft: &h,
                own_rate_fps: &own,
                intruder_rate_fps: &intr,
                tau_s: &tau,
                previous: &prev,
            };
            table.q_values_batch(&batch, &mut scratch, &mut q_out);
            black_box(q_out[BATCH - 1][0])
        })
    });

    c.bench_function("logic_table_best_advisory_scalar_256", |b| {
        b.iter(|| {
            let mut alerts = 0usize;
            for i in 0..BATCH {
                let adv =
                    table.best_advisory(h[i], own[i], intr[i], tau[i], prev[i], forbidden[i], 3.0);
                alerts += usize::from(adv.is_alert());
            }
            black_box(alerts)
        })
    });

    let mut best_out = Vec::new();
    c.bench_function("logic_table_best_advisory_batch_256", |b| {
        b.iter(|| {
            let batch = StateBatch {
                h_ft: &h,
                own_rate_fps: &own,
                intruder_rate_fps: &intr,
                tau_s: &tau,
                previous: &prev,
            };
            table.best_advisory_batch(&batch, &forbidden, 3.0, &mut scratch, &mut best_out);
            black_box(best_out[BATCH - 1])
        })
    });
}

criterion_group!(
    benches,
    bench_q_lookup,
    bench_best_advisory,
    bench_interp_weights,
    bench_scalar_vs_batch
);
criterion_main!(benches);
