//! Criterion bench: encounter simulation throughput (the denominator of
//! every search and Monte-Carlo budget; paper footnote 5's ~300 s search
//! is dominated by simulation time).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use uavca_acasx::{AcasConfig, LogicTable};
use uavca_encounter::EncounterParams;
use uavca_validation::{EncounterRunner, Equipage};

fn table() -> Arc<LogicTable> {
    Arc::new(LogicTable::solve(&AcasConfig::coarse()))
}

fn bench_single_run(c: &mut Criterion) {
    let runner = EncounterRunner::new(table());
    let params = EncounterParams::head_on_template();
    c.bench_function("encounter_run_equipped_100s", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            runner.run_once(&params, seed)
        })
    });
}

fn bench_unequipped_run(c: &mut Criterion) {
    let runner = EncounterRunner::new(table()).equipage(Equipage::Neither);
    let params = EncounterParams::head_on_template();
    c.bench_function("encounter_run_unequipped_100s", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            runner.run_once(&params, seed)
        })
    });
}

fn bench_paper_evaluation(c: &mut Criterion) {
    // One fitness evaluation at paper scale = 100 stochastic runs.
    let runner = EncounterRunner::new(table());
    let params = EncounterParams::tail_approach_template();
    let mut group = c.benchmark_group("fitness_evaluation");
    group.sample_size(10);
    group.bench_function("100_runs_per_encounter", |b| {
        b.iter(|| runner.run_repeated(&params, 100, 0))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_single_run,
    bench_unequipped_run,
    bench_paper_evaluation
);
criterion_main!(benches);
