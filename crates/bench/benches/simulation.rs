//! Criterion bench: encounter simulation throughput (the denominator of
//! every search and Monte-Carlo budget; paper footnote 5's ~300 s search
//! is dominated by simulation time).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use uavca_acasx::{AcasConfig, LogicTable};
use uavca_encounter::EncounterParams;
use uavca_validation::{BatchRunner, EncounterRunner, Equipage, SimEngine};

fn table() -> Arc<LogicTable> {
    Arc::new(LogicTable::solve(&AcasConfig::coarse()))
}

fn bench_single_run(c: &mut Criterion) {
    let runner = EncounterRunner::new(table());
    let params = EncounterParams::head_on_template();
    c.bench_function("encounter_run_equipped_100s", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            runner.run_once(&params, seed)
        })
    });
}

fn bench_unequipped_run(c: &mut Criterion) {
    let runner = EncounterRunner::new(table()).equipage(Equipage::Neither);
    let params = EncounterParams::head_on_template();
    c.bench_function("encounter_run_unequipped_100s", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            runner.run_once(&params, seed)
        })
    });
}

fn bench_paper_evaluation(c: &mut Criterion) {
    // One fitness evaluation at paper scale = 100 stochastic runs.
    let runner = EncounterRunner::new(table());
    let params = EncounterParams::tail_approach_template();
    let mut group = c.benchmark_group("fitness_evaluation");
    group.sample_size(10);
    group.bench_function("100_runs_per_encounter", |b| {
        b.iter(|| runner.run_repeated(&params, 100, 0))
    });
    group.finish();
}

fn bench_engine_comparison(c: &mut Criterion) {
    // The head-to-head the cohort engine exists for: the same 64-job
    // batch through the scalar oracle and through the lockstep cohort
    // (SoA state + batched SIMD advisory lookups). Outcomes are
    // byte-identical by construction (crates/core/tests/cohort_identity.rs);
    // only the wall clock differs. Serial backend so the ratio measures
    // the engine, not thread scheduling.
    let params = EncounterParams::head_on_template();
    let mut group = c.benchmark_group("engine_comparison");
    group.sample_size(10);
    for (label, engine, equipage) in [
        ("scalar_batch_64", SimEngine::Scalar, Equipage::Both),
        (
            "cohort_batch_64",
            SimEngine::Cohort { width: 64 },
            Equipage::Both,
        ),
        ("scalar_unequipped_64", SimEngine::Scalar, Equipage::Neither),
        (
            "cohort_unequipped_64",
            SimEngine::Cohort { width: 64 },
            Equipage::Neither,
        ),
    ] {
        let jobs = BatchRunner::repeated_jobs(&params, equipage, 64, 0);
        let batch = BatchRunner::serial(EncounterRunner::new(table())).engine(engine);
        group.bench_function(label, |b| {
            let mut seed = 0u64;
            b.iter(|| {
                // Fresh seeds per iteration so neither engine benefits
                // from a repeated trajectory.
                seed = seed.wrapping_add(jobs.len() as u64);
                let shifted: Vec<_> = jobs
                    .iter()
                    .map(|j| uavca_validation::SimJob {
                        seed: j.seed.wrapping_add(seed),
                        ..*j
                    })
                    .collect();
                batch.run_batch(&shifted)
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_single_run,
    bench_unequipped_run,
    bench_paper_evaluation,
    bench_engine_comparison
);
criterion_main!(benches);
