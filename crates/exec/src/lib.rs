//! Deterministic fan-out execution for batch evaluation.
//!
//! Every throughput-bound loop in this workspace — GA population
//! evaluation, Monte-Carlo campaigns, value-iteration sweeps, batched
//! encounter simulation — has the same shape: map a pure function over a
//! list of independent jobs and collect the results *in job order*. This
//! crate provides that one primitive, [`Executor`], with the guarantees
//! the validation tooling depends on:
//!
//! * **Determinism**: results are identical for any thread count,
//!   because each job is a pure function of its input (seeds travel with
//!   jobs) and results are placed by job index, never by completion
//!   order.
//! * **Work stealing**: workers pull the next job from a shared atomic
//!   counter, so uneven job costs (encounters that alert simulate slower
//!   than ones that do not) cannot starve the pool the way fixed
//!   chunking does.
//! * **Worker-local scratch**: [`Executor::map_with`] gives every worker
//!   one lazily initialized scratch value, which is how the simulation
//!   layer reuses avoider and world allocations across thousands of runs
//!   (see `uavca_validation`'s `BatchRunner`).
//!
//! Threads are scoped (std scoped threads): no pool lives beyond a call,
//! so there is no shutdown protocol and borrowed job lists are fine.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The execution seam behind every local fan-out site: map a pure
/// function over a job list and collect results **in job order**.
///
/// [`Executor`] is the canonical implementation (scoped worker threads
/// with work stealing); consumers that hold a `Backend` instead of an
/// `Executor` — such as `uavca_validation::BatchRunner` — can be handed
/// alternative local execution strategies without code changes.
///
/// This trait is deliberately *closure-level*: `f` crosses into the
/// backend as a borrowed function, so every implementation must run
/// within the caller's address space. Distribution across processes or
/// machines cannot satisfy this contract (closures do not serialize) —
/// that seam is *job-level* and lives one layer up, at
/// `uavca_validation`'s `PairSource`/`SimSource` traits, where jobs and
/// outcomes are plain serializable data.
///
/// # Contract
///
/// Implementations must guarantee what `Executor` guarantees:
///
/// * results are returned in item order, never completion order;
/// * `f` is invoked exactly once per item;
/// * scratch values (`map_with`) never influence results — which worker
///   runs which job is scheduling-dependent.
pub trait Backend: Sync {
    /// Maps `f` over `items` with one worker-local scratch value,
    /// created by `init` at most once per worker. See
    /// [`Executor::map_with`].
    fn map_with<T, S, O, I, F>(&self, items: &[T], init: I, f: F) -> Vec<O>
    where
        T: Sync,
        O: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, &T) -> O + Sync;

    /// Maps `f` over `items`, returning results in item order. See
    /// [`Executor::map`].
    fn map<T, O, F>(&self, items: &[T], f: F) -> Vec<O>
    where
        T: Sync,
        O: Send,
        F: Fn(&T) -> O + Sync,
    {
        self.map_with(items, || (), move |(), item| f(item))
    }
}

impl Backend for Executor {
    fn map_with<T, S, O, I, F>(&self, items: &[T], init: I, f: F) -> Vec<O>
    where
        T: Sync,
        O: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, &T) -> O + Sync,
    {
        Executor::map_with(self, items, init, f)
    }
}

/// A fan-out executor with a fixed degree of parallelism.
///
/// `Executor` is a value, not a handle to live threads: it records how
/// many workers a [`map`](Executor::map) call may spawn. Cloning and
/// sharing it is free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Executor {
    threads: usize,
}

impl Executor {
    /// An executor with `threads` workers; `0` selects the machine's
    /// available parallelism.
    pub fn new(threads: usize) -> Self {
        Self { threads }
    }

    /// A strictly serial executor (the in-thread fast path; used by
    /// nested evaluation sites that are already inside a worker).
    pub fn serial() -> Self {
        Self { threads: 1 }
    }

    /// The configured thread count (`0` = hardware parallelism).
    pub fn configured_threads(&self) -> usize {
        self.threads
    }

    /// The number of workers a call over `jobs` jobs will actually use.
    pub fn resolved_threads(&self, jobs: usize) -> usize {
        let hw = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let t = if self.threads == 0 { hw } else { self.threads };
        t.clamp(1, jobs.max(1))
    }

    /// Maps `f` over `items`, returning results in item order.
    ///
    /// `f` must be pure with respect to each item for the determinism
    /// guarantee to hold (all randomness must come seeded from the item).
    pub fn map<T, O, F>(&self, items: &[T], f: F) -> Vec<O>
    where
        T: Sync,
        O: Send,
        F: Fn(&T) -> O + Sync,
    {
        self.map_with(items, || (), move |(), item| f(item))
    }

    /// Maps `f` over `items` with one worker-local scratch value, created
    /// by `init` at most once per worker.
    ///
    /// Scratch must not influence results (allocation reuse, caches):
    /// which worker runs which job is scheduling-dependent.
    pub fn map_with<T, S, O, I, F>(&self, items: &[T], init: I, f: F) -> Vec<O>
    where
        T: Sync,
        O: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, &T) -> O + Sync,
    {
        let threads = self.resolved_threads(items.len());
        if threads <= 1 {
            let mut scratch = init();
            return items.iter().map(|item| f(&mut scratch, item)).collect();
        }

        let slots: Vec<Mutex<Option<O>>> = (0..items.len()).map(|_| Mutex::new(None)).collect();
        let cursor = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    let mut scratch: Option<S> = None;
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        let scratch = scratch.get_or_insert_with(&init);
                        let out = f(scratch, &items[i]);
                        *slots[i].lock().expect("result slot poisoned") = Some(out);
                    }
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .expect("every job index was claimed exactly once")
            })
            .collect()
    }
}

impl Default for Executor {
    /// Hardware parallelism.
    fn default() -> Self {
        Self::new(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn map_preserves_order_for_any_thread_count() {
        let items: Vec<u64> = (0..257).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 3, 8, 0] {
            let got = Executor::new(threads).map(&items, |x| x * x);
            assert_eq!(got, expect, "threads = {threads}");
        }
    }

    #[test]
    fn uneven_job_costs_still_collect_in_order() {
        let items: Vec<usize> = (0..64).collect();
        let got = Executor::new(4).map(&items, |&i| {
            if i % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            i * 3
        });
        assert_eq!(got, items.iter().map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn scratch_is_initialized_at_most_once_per_worker() {
        static INITS: AtomicUsize = AtomicUsize::new(0);
        let items: Vec<usize> = (0..100).collect();
        let threads = 4;
        let got = Executor::new(threads).map_with(
            &items,
            || {
                INITS.fetch_add(1, Ordering::Relaxed);
                0usize
            },
            |count, &i| {
                *count += 1;
                i + 1
            },
        );
        assert_eq!(got, (1..=100).collect::<Vec<_>>());
        assert!(
            INITS.load(Ordering::Relaxed) <= threads,
            "at most one scratch per worker, got {}",
            INITS.load(Ordering::Relaxed)
        );
    }

    #[test]
    fn empty_and_single_item_batches() {
        let empty: Vec<u32> = Vec::new();
        assert!(Executor::default().map(&empty, |x| *x).is_empty());
        assert_eq!(Executor::new(0).map(&[41u32], |x| x + 1), vec![42]);
    }

    #[test]
    fn backend_trait_dispatch_matches_inherent_methods() {
        fn via_backend<B: Backend>(b: &B, items: &[u64]) -> Vec<u64> {
            b.map(items, |x| x + 1)
        }
        let items: Vec<u64> = (0..97).collect();
        assert_eq!(
            via_backend(&Executor::new(3), &items),
            Executor::new(3).map(&items, |x| x + 1)
        );
        // map_with through the trait object path keeps job order too.
        fn sums<B: Backend>(b: &B, items: &[u64]) -> Vec<u64> {
            b.map_with(
                items,
                || 0u64,
                |acc, x| {
                    *acc += x;
                    *acc
                },
            )
        }
        let serial = sums(&Executor::serial(), &items);
        assert_eq!(serial.len(), items.len());
        assert_eq!(serial.last(), Some(&items.iter().sum::<u64>()));
    }

    #[test]
    fn resolved_threads_clamps_to_jobs() {
        let e = Executor::new(16);
        assert_eq!(e.resolved_threads(3), 3);
        assert_eq!(e.resolved_threads(0), 1);
        assert_eq!(Executor::serial().resolved_threads(100), 1);
        assert!(Executor::new(0).resolved_threads(usize::MAX) >= 1);
    }
}
