//! The paper's Section III walk-through: a fictional two-dimensional
//! collision avoidance system developed by model-based optimization.
//!
//! Two UAVs meet in a 2-D vertical plane (the paper's Fig. 2). The state is
//! `{y_o, x_r, y_i}` — own altitude, relative horizontal distance, intruder
//! altitude. Each step the intruder moves one cell left (deterministic
//! horizontal closure) and drifts vertically by white noise; the own-ship
//! chooses *level off / move up / move down*, each with stochastic effect.
//! A collision (`x_r = 0` and `y_o = y_i`) costs 10 000; maneuvering costs
//! 100; leveling off is rewarded with 50 — exactly the paper's numbers.
//!
//! Dynamic programming over this MDP yields the optimal look-up-table
//! policy, which [`Ca2dPolicy`] wraps, and [`simulate_encounter`] rolls out
//! stochastic episodes to estimate collision probabilities with and
//! without the generated logic.
//!
//! # Example
//!
//! ```
//! use uavca_ca2d::{Ca2dConfig, Ca2dSystem};
//!
//! let system = Ca2dSystem::solve(&Ca2dConfig::default())?;
//! // Intruder dead ahead at the same altitude, two cells away: maneuver!
//! let action = system.policy().action_for(0, 2, 0)?;
//! assert_ne!(action, uavca_ca2d::OwnAction::Level);
//! # Ok::<(), uavca_mdp::MdpError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

use rand::Rng;
use serde::{Deserialize, Serialize};
use uavca_mdp::{DenseMdp, DenseMdpBuilder, MdpError, Policy, Solution, ValueIteration};

/// The own-ship's action set (paper: `{level off (0), move up (+1), move
/// down (−1)}`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OwnAction {
    /// Maintain altitude.
    Level,
    /// Move up one grid cell.
    Up,
    /// Move down one grid cell.
    Down,
}

impl OwnAction {
    /// All actions in action-index order.
    pub const ALL: [OwnAction; 3] = [OwnAction::Level, OwnAction::Up, OwnAction::Down];

    /// Action index of this action.
    pub fn index(self) -> usize {
        match self {
            OwnAction::Level => 0,
            OwnAction::Up => 1,
            OwnAction::Down => 2,
        }
    }

    /// The intended altitude change of the action.
    pub fn intended_dy(self) -> i32 {
        match self {
            OwnAction::Level => 0,
            OwnAction::Up => 1,
            OwnAction::Down => -1,
        }
    }
}

/// Configuration of the 2-D model: grid extents, the paper's stochastic
/// kernels and preference values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ca2dConfig {
    /// Altitudes span `-y_extent ..= y_extent`.
    pub y_extent: i32,
    /// Initial/maximum relative horizontal distance (the intruder starts
    /// `x_extent` cells away and closes by one per step).
    pub x_extent: i32,
    /// Collision cost (paper: 10 000).
    pub collision_cost: f64,
    /// Maneuver (up/down) cost (paper: 100).
    pub maneuver_cost: f64,
    /// Level-off reward (paper: 50).
    pub level_reward: f64,
    /// Own-ship action effect distribution `(intended, stay, opposite)`
    /// (paper: 0.7 / 0.2 / 0.1 for maneuvers).
    pub own_effect: (f64, f64, f64),
    /// Level-off effect distribution `(stay, up, down)`.
    pub level_effect: (f64, f64, f64),
    /// Intruder vertical drift: probabilities of `{0, −1, +1, −2, +2}`
    /// (paper: 0.5 / 0.15 / 0.15 / 0.1 / 0.1).
    pub intruder_drift: [f64; 5],
    /// Discount factor for value iteration.
    pub discount: f64,
}

impl Default for Ca2dConfig {
    /// The paper's exact numbers on the Fig. 2 grid (y ∈ [−3, 3],
    /// x ∈ [0, 9]).
    fn default() -> Self {
        Self {
            y_extent: 3,
            x_extent: 9,
            collision_cost: 10_000.0,
            maneuver_cost: 100.0,
            level_reward: 50.0,
            own_effect: (0.7, 0.2, 0.1),
            level_effect: (0.7, 0.15, 0.15),
            intruder_drift: [0.5, 0.15, 0.15, 0.1, 0.1],
            discount: 0.95,
        }
    }
}

impl Ca2dConfig {
    /// Number of altitude levels per aircraft.
    pub fn num_altitudes(&self) -> usize {
        (2 * self.y_extent + 1) as usize
    }

    /// Number of horizontal distances (0 ..= x_extent).
    pub fn num_distances(&self) -> usize {
        (self.x_extent + 1) as usize
    }

    /// Total state count.
    pub fn num_states(&self) -> usize {
        self.num_altitudes() * self.num_distances() * self.num_altitudes()
    }

    fn y_index(&self, y: i32) -> Option<usize> {
        if y.abs() > self.y_extent {
            None
        } else {
            Some((y + self.y_extent) as usize)
        }
    }

    fn clamp_y(&self, y: i32) -> i32 {
        y.clamp(-self.y_extent, self.y_extent)
    }

    /// Flat state index of `{y_o, x_r, y_i}`.
    ///
    /// # Errors
    ///
    /// Returns [`MdpError::StateOutOfRange`] if any coordinate is outside
    /// the grid.
    pub fn state_index(&self, y_o: i32, x_r: i32, y_i: i32) -> Result<usize, MdpError> {
        let yo = self.y_index(y_o).ok_or(MdpError::StateOutOfRange {
            state: 0,
            num_states: self.num_states(),
        })?;
        let yi = self.y_index(y_i).ok_or(MdpError::StateOutOfRange {
            state: 0,
            num_states: self.num_states(),
        })?;
        if x_r < 0 || x_r > self.x_extent {
            return Err(MdpError::StateOutOfRange {
                state: 0,
                num_states: self.num_states(),
            });
        }
        Ok((yo * self.num_distances() + x_r as usize) * self.num_altitudes() + yi)
    }

    /// Decodes a flat state index back into `{y_o, x_r, y_i}`.
    pub fn decode(&self, state: usize) -> (i32, i32, i32) {
        let na = self.num_altitudes();
        let nd = self.num_distances();
        let yi = (state % na) as i32 - self.y_extent;
        let xr = ((state / na) % nd) as i32;
        let yo = (state / (na * nd)) as i32 - self.y_extent;
        (yo, xr, yi)
    }
}

/// Builds the paper's MDP as an explicit [`DenseMdp`].
///
/// States with `x_r = 0` are absorbing (the encounter is over); the
/// collision penalty is charged on *entering* a collision state.
///
/// # Errors
///
/// Propagates [`MdpError`] if the configured distributions do not sum to
/// one.
pub fn build_mdp(config: &Ca2dConfig) -> Result<DenseMdp, MdpError> {
    let mut b = DenseMdpBuilder::new(config.num_states(), 3, config.discount);
    for state in 0..config.num_states() {
        let (y_o, x_r, y_i) = config.decode(state);
        for action in OwnAction::ALL {
            let a = action.index();
            if x_r == 0 {
                // Absorbing: encounter over, no further cost or reward.
                b.transition(state, a, state, 1.0);
                b.reward(state, a, 0.0);
                continue;
            }
            // Own-ship movement distribution for this action.
            let own_moves: [(i32, f64); 3] = match action {
                OwnAction::Level => {
                    let (stay, up, down) = config.level_effect;
                    [(0, stay), (1, up), (-1, down)]
                }
                OwnAction::Up => {
                    let (intended, stay, opposite) = config.own_effect;
                    [(1, intended), (0, stay), (-1, opposite)]
                }
                OwnAction::Down => {
                    let (intended, stay, opposite) = config.own_effect;
                    [(-1, intended), (0, stay), (1, opposite)]
                }
            };
            let intruder_moves: [(i32, f64); 5] = [
                (0, config.intruder_drift[0]),
                (-1, config.intruder_drift[1]),
                (1, config.intruder_drift[2]),
                (-2, config.intruder_drift[3]),
                (2, config.intruder_drift[4]),
            ];
            let x_next = x_r - 1;
            let mut expected_collision = 0.0;
            for (dy_o, p_o) in own_moves {
                for (dy_i, p_i) in intruder_moves {
                    let p = p_o * p_i;
                    if p == 0.0 {
                        continue;
                    }
                    let ny_o = config.clamp_y(y_o + dy_o);
                    let ny_i = config.clamp_y(y_i + dy_i);
                    let next = config
                        .state_index(ny_o, x_next, ny_i)
                        .expect("clamped coordinates are in range");
                    if x_next == 0 && ny_o == ny_i {
                        expected_collision += p;
                    }
                    b.transition(state, a, next, p);
                }
            }
            let action_reward = match action {
                OwnAction::Level => config.level_reward,
                _ => -config.maneuver_cost,
            };
            b.reward(
                state,
                a,
                action_reward - config.collision_cost * expected_collision,
            );
        }
    }
    b.build()
}

/// The generated look-up-table logic for the 2-D system.
#[derive(Debug, Clone)]
pub struct Ca2dPolicy {
    config: Ca2dConfig,
    policy: Policy,
}

impl Ca2dPolicy {
    /// The action prescribed in state `{y_o, x_r, y_i}`.
    ///
    /// # Errors
    ///
    /// Returns [`MdpError::StateOutOfRange`] for coordinates outside the
    /// grid.
    pub fn action_for(&self, y_o: i32, x_r: i32, y_i: i32) -> Result<OwnAction, MdpError> {
        let idx = self.config.state_index(y_o, x_r, y_i)?;
        Ok(OwnAction::ALL[self.policy.action(idx)])
    }

    /// The underlying flat policy.
    pub fn as_policy(&self) -> &Policy {
        &self.policy
    }
}

/// The solved 2-D collision avoidance system: model + optimal solution.
#[derive(Debug, Clone)]
pub struct Ca2dSystem {
    config: Ca2dConfig,
    solution: Solution,
}

impl Ca2dSystem {
    /// Builds the MDP and solves it by value iteration (the paper's DP
    /// step).
    ///
    /// # Errors
    ///
    /// Propagates model-construction and convergence errors.
    pub fn solve(config: &Ca2dConfig) -> Result<Ca2dSystem, MdpError> {
        let mdp = build_mdp(config)?;
        let solution = ValueIteration::new()
            .tolerance(1e-9)
            .skip_validation()
            .solve(&mdp)?;
        Ok(Ca2dSystem {
            config: config.clone(),
            solution,
        })
    }

    /// The generated logic table.
    pub fn policy(&self) -> Ca2dPolicy {
        Ca2dPolicy {
            config: self.config.clone(),
            policy: self.solution.policy.clone(),
        }
    }

    /// The optimal value of state `{y_o, x_r, y_i}`.
    ///
    /// # Errors
    ///
    /// Returns [`MdpError::StateOutOfRange`] for off-grid coordinates.
    pub fn value_of(&self, y_o: i32, x_r: i32, y_i: i32) -> Result<f64, MdpError> {
        Ok(self.solution.values[self.config.state_index(y_o, x_r, y_i)?])
    }

    /// The configuration this system was generated from.
    pub fn config(&self) -> &Ca2dConfig {
        &self.config
    }

    /// Renders the policy slice at distance `x_r` as an ASCII matrix
    /// (rows: own altitude top-down; columns: intruder altitude), using
    /// `-` for level, `^` for up, `v` for down.
    ///
    /// # Errors
    ///
    /// Returns [`MdpError::StateOutOfRange`] if `x_r` is off-grid.
    pub fn render_policy_slice(&self, x_r: i32) -> Result<String, MdpError> {
        let policy = self.policy();
        let mut out = String::new();
        out.push_str(&format!(
            "policy at x_r = {x_r} (rows y_o top-down, cols y_i)\n"
        ));
        for y_o in (-self.config.y_extent..=self.config.y_extent).rev() {
            for y_i in -self.config.y_extent..=self.config.y_extent {
                let ch = match policy.action_for(y_o, x_r, y_i)? {
                    OwnAction::Level => '-',
                    OwnAction::Up => '^',
                    OwnAction::Down => 'v',
                };
                out.push(ch);
            }
            out.push('\n');
        }
        Ok(out)
    }
}

/// Result of one simulated 2-D encounter rollout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RolloutOutcome {
    /// Whether the rollout ended in a collision.
    pub collided: bool,
    /// Number of up/down maneuvers the own-ship performed.
    pub maneuvers: usize,
}

/// Rolls out one stochastic episode from `{y_o0, x_r0, y_i0}` using
/// `policy` (or pure leveling-off when `policy` is `None` — the unequipped
/// baseline), drawing dynamics noise from `rng`.
pub fn simulate_encounter<R: Rng + ?Sized>(
    config: &Ca2dConfig,
    policy: Option<&Ca2dPolicy>,
    y_o0: i32,
    x_r0: i32,
    y_i0: i32,
    rng: &mut R,
) -> RolloutOutcome {
    let mut y_o = config.clamp_y(y_o0);
    let mut y_i = config.clamp_y(y_i0);
    let mut x_r = x_r0.clamp(0, config.x_extent);
    let mut maneuvers = 0;
    while x_r > 0 {
        let action = match policy {
            Some(p) => p
                .action_for(y_o, x_r, y_i)
                .expect("coordinates stay on-grid"),
            None => OwnAction::Level,
        };
        if action != OwnAction::Level {
            maneuvers += 1;
        }
        // Own-ship stochastic effect.
        let u: f64 = rng.gen();
        let dy_o = match action {
            OwnAction::Level => {
                let (stay, up, _down) = config.level_effect;
                if u < stay {
                    0
                } else if u < stay + up {
                    1
                } else {
                    -1
                }
            }
            OwnAction::Up | OwnAction::Down => {
                let (intended, stay, _opposite) = config.own_effect;
                let dir = action.intended_dy();
                if u < intended {
                    dir
                } else if u < intended + stay {
                    0
                } else {
                    -dir
                }
            }
        };
        // Intruder drift.
        let v: f64 = rng.gen();
        let d = &config.intruder_drift;
        let dy_i = if v < d[0] {
            0
        } else if v < d[0] + d[1] {
            -1
        } else if v < d[0] + d[1] + d[2] {
            1
        } else if v < d[0] + d[1] + d[2] + d[3] {
            -2
        } else {
            2
        };
        y_o = config.clamp_y(y_o + dy_o);
        y_i = config.clamp_y(y_i + dy_i);
        x_r -= 1;
    }
    RolloutOutcome {
        collided: y_o == y_i,
        maneuvers,
    }
}

/// Estimates the collision probability over `runs` rollouts from the given
/// start state.
pub fn estimate_collision_probability<R: Rng + ?Sized>(
    config: &Ca2dConfig,
    policy: Option<&Ca2dPolicy>,
    y_o0: i32,
    x_r0: i32,
    y_i0: i32,
    runs: usize,
    rng: &mut R,
) -> f64 {
    let collisions = (0..runs)
        .filter(|_| simulate_encounter(config, policy, y_o0, x_r0, y_i0, rng).collided)
        .count();
    collisions as f64 / runs.max(1) as f64
}

/// Rolls out one episode where the policy observes the intruder's altitude
/// **with noise**: with probability `observation_error_p` the observed
/// `y_i` is off by ±1 (clamped). The dynamics themselves are unchanged.
///
/// This quantifies the paper's Section IV model-structure question — "or
/// should another model (e.g. a POMDP) be used?" — by measuring how much
/// of the MDP policy's performance survives when the full-observability
/// assumption it was optimized under is violated.
pub fn simulate_encounter_noisy_observation<R: Rng + ?Sized>(
    config: &Ca2dConfig,
    policy: &Ca2dPolicy,
    y_o0: i32,
    x_r0: i32,
    y_i0: i32,
    observation_error_p: f64,
    rng: &mut R,
) -> RolloutOutcome {
    let mut y_o = config.clamp_y(y_o0);
    let mut y_i = config.clamp_y(y_i0);
    let mut x_r = x_r0.clamp(0, config.x_extent);
    let mut maneuvers = 0;
    while x_r > 0 {
        // Corrupt the observation of the intruder's altitude.
        let observed_y_i = if rng.gen::<f64>() < observation_error_p {
            let delta = if rng.gen::<bool>() { 1 } else { -1 };
            config.clamp_y(y_i + delta)
        } else {
            y_i
        };
        let action = policy
            .action_for(y_o, x_r, observed_y_i)
            .expect("coordinates stay on-grid");
        if action != OwnAction::Level {
            maneuvers += 1;
        }
        let u: f64 = rng.gen();
        let dy_o = match action {
            OwnAction::Level => {
                let (stay, up, _down) = config.level_effect;
                if u < stay {
                    0
                } else if u < stay + up {
                    1
                } else {
                    -1
                }
            }
            OwnAction::Up | OwnAction::Down => {
                let (intended, stay, _opposite) = config.own_effect;
                let dir = action.intended_dy();
                if u < intended {
                    dir
                } else if u < intended + stay {
                    0
                } else {
                    -dir
                }
            }
        };
        let v: f64 = rng.gen();
        let d = &config.intruder_drift;
        let dy_i = if v < d[0] {
            0
        } else if v < d[0] + d[1] {
            -1
        } else if v < d[0] + d[1] + d[2] {
            1
        } else if v < d[0] + d[1] + d[2] + d[3] {
            -2
        } else {
            2
        };
        y_o = config.clamp_y(y_o + dy_o);
        y_i = config.clamp_y(y_i + dy_i);
        x_r -= 1;
    }
    RolloutOutcome {
        collided: y_o == y_i,
        maneuvers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::OnceLock;

    fn system() -> &'static Ca2dSystem {
        static SYS: OnceLock<Ca2dSystem> = OnceLock::new();
        SYS.get_or_init(|| Ca2dSystem::solve(&Ca2dConfig::default()).unwrap())
    }

    #[test]
    fn state_indexing_round_trips() {
        let c = Ca2dConfig::default();
        for y_o in -3..=3 {
            for x_r in 0..=9 {
                for y_i in -3..=3 {
                    let s = c.state_index(y_o, x_r, y_i).unwrap();
                    assert_eq!(c.decode(s), (y_o, x_r, y_i));
                }
            }
        }
        assert!(c.state_index(4, 0, 0).is_err());
        assert!(c.state_index(0, 10, 0).is_err());
        assert!(c.state_index(0, -1, 0).is_err());
    }

    #[test]
    fn mdp_is_well_formed() {
        // DenseMdpBuilder::build validates distributions; just confirm it
        // constructs at the paper's size.
        let c = Ca2dConfig::default();
        let m = build_mdp(&c).unwrap();
        use uavca_mdp::Mdp;
        assert_eq!(m.num_states(), 7 * 10 * 7);
        assert_eq!(m.num_actions(), 3);
    }

    #[test]
    fn head_on_state_commands_a_maneuver() {
        let policy = system().policy();
        // Same altitude, intruder 2 cells out: leveling is suicidal.
        let action = policy.action_for(0, 2, 0).unwrap();
        assert_ne!(action, OwnAction::Level);
    }

    #[test]
    fn far_apart_states_level_off() {
        let policy = system().policy();
        // Own at +3, intruder at -3, far out: no reason to maneuver.
        assert_eq!(policy.action_for(3, 9, -3).unwrap(), OwnAction::Level);
    }

    #[test]
    fn values_prefer_separation() {
        let s = system();
        // At the same distance, being co-altitude is worse than being
        // separated.
        let v_same = s.value_of(0, 3, 0).unwrap();
        let v_apart = s.value_of(3, 3, -3).unwrap();
        assert!(v_apart > v_same, "{v_apart} vs {v_same}");
    }

    #[test]
    fn policy_cuts_collision_probability_dramatically() {
        let s = system();
        let policy = s.policy();
        let mut rng = StdRng::seed_from_u64(2024);
        let p_unequipped =
            estimate_collision_probability(s.config(), None, 0, 9, 0, 4000, &mut rng);
        let p_equipped =
            estimate_collision_probability(s.config(), Some(&policy), 0, 9, 0, 4000, &mut rng);
        assert!(
            p_unequipped > 0.08,
            "head-on drift should collide often: {p_unequipped}"
        );
        // The theoretical floor (min-collision DP, ignoring maneuver costs)
        // is ≈ 3.6% from this start state — the intruder's ±2 drift and the
        // clamped grid put a hard limit on what any policy can do. The
        // cost-optimal policy additionally trades maneuvers against risk,
        // so expect roughly a 2–3× reduction, not a miracle.
        assert!(
            p_equipped < 0.6 * p_unequipped,
            "policy must cut collisions: {p_equipped} vs {p_unequipped}"
        );
        assert!(p_equipped < 0.09, "close to the ≈3.6% floor: {p_equipped}");
    }

    #[test]
    fn policy_is_roughly_symmetric() {
        // Starting above the intruder should be as safe as starting below.
        let s = system();
        let v_above = s.value_of(2, 5, -2).unwrap();
        let v_below = s.value_of(-2, 5, 2).unwrap();
        assert!((v_above - v_below).abs() < 1.0, "{v_above} vs {v_below}");
    }

    #[test]
    fn rollouts_are_deterministic_per_seed() {
        let s = system();
        let policy = s.policy();
        let a = simulate_encounter(
            s.config(),
            Some(&policy),
            0,
            9,
            0,
            &mut StdRng::seed_from_u64(7),
        );
        let b = simulate_encounter(
            s.config(),
            Some(&policy),
            0,
            9,
            0,
            &mut StdRng::seed_from_u64(7),
        );
        assert_eq!(a, b);
    }

    #[test]
    fn render_policy_slice_shape() {
        let art = system().render_policy_slice(2).unwrap();
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 8, "caption + 7 altitude rows");
        assert!(lines[1..].iter().all(|l| l.len() == 7));
        // The diagonal (co-altitude) near x_r=2 should show maneuvers.
        assert!(art.contains('^') || art.contains('v'));
    }

    #[test]
    fn observation_noise_degrades_but_does_not_destroy_the_policy() {
        // The Section IV POMDP question, quantified: the MDP policy under
        // perfect observation beats the same policy under 40% observation
        // error, which still beats doing nothing.
        let s = system();
        let policy = s.policy();
        let runs = 4000;
        let mut rng = StdRng::seed_from_u64(99);
        let clean =
            estimate_collision_probability(s.config(), Some(&policy), 0, 9, 0, runs, &mut rng);
        let noisy = (0..runs)
            .filter(|_| {
                simulate_encounter_noisy_observation(s.config(), &policy, 0, 9, 0, 0.4, &mut rng)
                    .collided
            })
            .count() as f64
            / runs as f64;
        let unequipped = estimate_collision_probability(s.config(), None, 0, 9, 0, runs, &mut rng);
        assert!(
            noisy >= clean - 0.01,
            "noise must not help: {noisy} vs {clean}"
        );
        assert!(
            noisy < unequipped,
            "even a noisy policy beats no policy: {noisy} vs {unequipped}"
        );
    }

    #[test]
    fn absorbing_states_have_zero_value() {
        let s = system();
        // x_r = 0 with separation: encounter over, value 0.
        assert_eq!(s.value_of(3, 0, -3).unwrap(), 0.0);
    }
}
