use serde::{Deserialize, Serialize};
use uavca_sim::{UavState, Vec3};

use crate::EncounterParams;

/// A fully instantiated encounter: the initial kinematic states of both
/// aircraft, ready to drop into a [`uavca_sim::EncounterWorld`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Encounter {
    /// Own-ship initial state.
    pub own: UavState,
    /// Intruder initial state.
    pub intruder: UavState,
    /// The parameters this encounter was generated from.
    pub params: EncounterParams,
}

/// Builds encounters from [`EncounterParams`] via the paper's equations
/// (1)–(3).
///
/// Because the avoidance logic only considers *relative* state, the
/// own-ship's initial position and bearing are fixed (paper Section VI-A):
/// by default at the origin of the horizontal plane, 4000 ft altitude,
/// flying along +x.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScenarioGenerator {
    /// Fixed own-ship initial position, ft.
    pub own_initial_position: Vec3,
    /// Fixed own-ship initial bearing ψ_o, radians.
    pub own_initial_bearing_rad: f64,
}

impl Default for ScenarioGenerator {
    fn default() -> Self {
        Self {
            own_initial_position: Vec3::new(0.0, 0.0, 4000.0),
            own_initial_bearing_rad: 0.0,
        }
    }
}

impl ScenarioGenerator {
    /// Creates a generator with an explicit own-ship anchor.
    pub fn new(own_initial_position: Vec3, own_initial_bearing_rad: f64) -> Self {
        Self {
            own_initial_position,
            own_initial_bearing_rad,
        }
    }

    /// Instantiates the encounter described by `params`.
    ///
    /// Equation (1): velocities from `(Gs, ψ, Vs)` triples. Equation (3):
    /// the intruder starts at
    /// `own_pos + own_vel·T + offset(R, θ, Y) − intruder_vel·T`,
    /// so both aircraft arrive at the closest point of approach after `T`
    /// seconds with horizontal miss `R` (direction `θ`) and vertical
    /// offset `Y`.
    pub fn generate(&self, params: &EncounterParams) -> Encounter {
        let own_velocity = velocity_from_polar(
            params.own_ground_speed_fps(),
            self.own_initial_bearing_rad,
            params.own_vertical_speed_fps(),
        );
        let intruder_velocity = velocity_from_polar(
            params.intruder_ground_speed_fps(),
            params.intruder_bearing_rad,
            params.intruder_vertical_speed_fps(),
        );
        let t = params.time_to_cpa_s;
        // Own-ship position at CPA.
        let own_at_cpa = self.own_initial_position + own_velocity * t;
        // Intruder position at CPA: horizontal offset (R, θ) and vertical Y.
        let offset = Vec3::new(
            params.cpa_horizontal_ft * params.cpa_angle_rad.cos(),
            params.cpa_horizontal_ft * params.cpa_angle_rad.sin(),
            params.cpa_vertical_ft,
        );
        let intruder_at_cpa = own_at_cpa + offset;
        // Roll the intruder back T seconds along its own velocity.
        let intruder_initial = intruder_at_cpa - intruder_velocity * t;

        Encounter {
            own: UavState::new(self.own_initial_position, own_velocity),
            intruder: UavState::new(intruder_initial, intruder_velocity),
            params: *params,
        }
    }
}

/// Equation (1): `[Vx, Vy, Vz] = [Gs·cos ψ, Gs·sin ψ, Vs]`.
fn velocity_from_polar(ground_speed_fps: f64, bearing_rad: f64, vertical_fps: f64) -> Vec3 {
    Vec3::new(
        ground_speed_fps * bearing_rad.cos(),
        ground_speed_fps * bearing_rad.sin(),
        vertical_fps,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ParamRanges;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Closed-form relative geometry at time `t` for an encounter.
    fn separation_at(enc: &Encounter, t: f64) -> (f64, f64) {
        let own = enc.own.position + enc.own.velocity * t;
        let intr = enc.intruder.position + enc.intruder.velocity * t;
        (own.horizontal_distance(intr), (own.z - intr.z).abs())
    }

    #[test]
    fn cpa_geometry_is_exact_for_head_on() {
        let params = EncounterParams::head_on_template();
        let enc = ScenarioGenerator::default().generate(&params);
        let (h, v) = separation_at(&enc, params.time_to_cpa_s);
        assert!(h < 1e-6, "horizontal miss at CPA: {h}");
        assert!(v < 1e-6, "vertical miss at CPA: {v}");
    }

    #[test]
    fn cpa_offsets_are_honored() {
        let mut params = EncounterParams::head_on_template();
        params.cpa_horizontal_ft = 400.0;
        params.cpa_angle_rad = std::f64::consts::FRAC_PI_2;
        params.cpa_vertical_ft = -80.0;
        let enc = ScenarioGenerator::default().generate(&params);
        let (h, v) = separation_at(&enc, params.time_to_cpa_s);
        assert!((h - 400.0).abs() < 1e-6);
        assert!((v - 80.0).abs() < 1e-6);
    }

    #[test]
    fn separation_at_t_matches_requested_offset_exactly() {
        // By construction (eq. 3), the relative position at time T is the
        // requested (R, θ, Y) offset for *every* parameter assignment.
        let ranges = ParamRanges::default();
        let generator = ScenarioGenerator::default();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..300 {
            let params = ranges.sample_uniform(&mut rng);
            let enc = generator.generate(&params);
            let (h, v) = separation_at(&enc, params.time_to_cpa_s);
            assert!((h - params.cpa_horizontal_ft).abs() < 1e-6, "{params:?}");
            assert!(
                (v - params.cpa_vertical_ft.abs()).abs() < 1e-6,
                "{params:?}"
            );
        }
    }

    #[test]
    fn sweep_minimum_never_exceeds_separation_at_t() {
        // The time-sweep minimum is a lower bound on the separation at T;
        // and for zero-offset encounters it is ~0 at T itself.
        let ranges = ParamRanges::default();
        let generator = ScenarioGenerator::default();
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..100 {
            let mut params = ranges.sample_uniform(&mut rng);
            let d_at_t = {
                let enc = generator.generate(&params);
                let (h, v) = separation_at(&enc, params.time_to_cpa_s);
                (h * h + v * v).sqrt()
            };
            let enc = generator.generate(&params);
            let mut d_min = f64::INFINITY;
            let mut t = 0.0;
            while t <= 120.0 {
                let (h, v) = separation_at(&enc, t);
                d_min = d_min.min((h * h + v * v).sqrt());
                t += 0.05;
            }
            // The 0.05 s sweep grid can miss the exact instant T by up to
            // half a step; allow the corresponding distance slack.
            assert!(d_min <= d_at_t + 20.0, "d_min {d_min} d_at_t {d_at_t}");

            // Zero the offsets: the pair must (nearly) collide at T.
            params.cpa_horizontal_ft = 0.0;
            params.cpa_vertical_ft = 0.0;
            let enc0 = generator.generate(&params);
            let (h0, v0) = separation_at(&enc0, params.time_to_cpa_s);
            assert!(h0 < 1e-6 && v0 < 1e-6);
        }
    }

    #[test]
    fn own_anchor_is_respected() {
        let anchor = Vec3::new(100.0, -200.0, 5000.0);
        let generator = ScenarioGenerator::new(anchor, 1.0);
        let enc = generator.generate(&EncounterParams::head_on_template());
        assert_eq!(enc.own.position, anchor);
        assert!((enc.own.bearing() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_speed_intruder_is_representable() {
        let mut params = EncounterParams::head_on_template();
        params.intruder_ground_speed_kt = 0.0;
        params.intruder_vertical_speed_fpm = 0.0;
        let enc = ScenarioGenerator::default().generate(&params);
        assert!(enc.intruder.velocity.norm() < 1e-9);
        // The own-ship still reaches it at the CPA.
        let own_at_cpa = enc.own.position + enc.own.velocity * params.time_to_cpa_s;
        assert!(own_at_cpa.distance(enc.intruder.position) < 1e-6);
    }
}
