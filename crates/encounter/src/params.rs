use rand::Rng;
use serde::{Deserialize, Serialize};
use uavca_sim::units;

/// Number of parameters in the encounter encoding (paper Section VI-A).
pub const NUM_PARAMS: usize = 9;

/// The paper's 9-parameter encounter description
/// `{Gs_o, Vs_o, T, R, θ, Y, Gs_i, ψ_i, Vs_i}`.
///
/// Aviation units: ground speeds in knots, vertical speeds in ft/min,
/// distances in feet, angles in radians, time in seconds. The own-ship's
/// initial position and bearing are fixed by the [`crate::ScenarioGenerator`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EncounterParams {
    /// `Gs_o` — own-ship ground speed, knots.
    pub own_ground_speed_kt: f64,
    /// `Vs_o` — own-ship vertical speed, ft/min.
    pub own_vertical_speed_fpm: f64,
    /// `T` — time for both aircraft to reach the CPA, seconds.
    pub time_to_cpa_s: f64,
    /// `R` — horizontal miss distance at the CPA, feet.
    pub cpa_horizontal_ft: f64,
    /// `θ` — direction of the horizontal CPA offset, radians (own-ship
    /// frame, 0 = ahead along +x).
    pub cpa_angle_rad: f64,
    /// `Y` — vertical offset (intruder minus own) at the CPA, feet.
    pub cpa_vertical_ft: f64,
    /// `Gs_i` — intruder ground speed at the CPA, knots.
    pub intruder_ground_speed_kt: f64,
    /// `ψ_i` — intruder bearing, radians.
    pub intruder_bearing_rad: f64,
    /// `Vs_i` — intruder vertical speed, ft/min.
    pub intruder_vertical_speed_fpm: f64,
}

impl EncounterParams {
    /// Flattens the parameters into a `[f64; 9]` vector in the canonical
    /// order `{Gs_o, Vs_o, T, R, θ, Y, Gs_i, ψ_i, Vs_i}` — the GA genome
    /// layout.
    pub fn to_vector(self) -> [f64; NUM_PARAMS] {
        [
            self.own_ground_speed_kt,
            self.own_vertical_speed_fpm,
            self.time_to_cpa_s,
            self.cpa_horizontal_ft,
            self.cpa_angle_rad,
            self.cpa_vertical_ft,
            self.intruder_ground_speed_kt,
            self.intruder_bearing_rad,
            self.intruder_vertical_speed_fpm,
        ]
    }

    /// Rebuilds parameters from the canonical vector layout.
    pub fn from_vector(v: &[f64; NUM_PARAMS]) -> Self {
        Self {
            own_ground_speed_kt: v[0],
            own_vertical_speed_fpm: v[1],
            time_to_cpa_s: v[2],
            cpa_horizontal_ft: v[3],
            cpa_angle_rad: v[4],
            cpa_vertical_ft: v[5],
            intruder_ground_speed_kt: v[6],
            intruder_bearing_rad: v[7],
            intruder_vertical_speed_fpm: v[8],
        }
    }

    /// Rebuilds parameters from a slice.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != 9`; genome widths are fixed at construction in
    /// this crate's callers, so a mismatch is a programming error.
    pub fn from_slice(v: &[f64]) -> Self {
        assert_eq!(
            v.len(),
            NUM_PARAMS,
            "encounter genome must have {NUM_PARAMS} genes"
        );
        let mut a = [0.0; NUM_PARAMS];
        a.copy_from_slice(v);
        Self::from_vector(&a)
    }

    /// A canonical co-altitude head-on conflict (the paper's Fig. 5
    /// geometry): both at 100 kt, level, meeting head-on in 40 s with zero
    /// miss distance.
    pub fn head_on_template() -> Self {
        Self {
            own_ground_speed_kt: 100.0,
            own_vertical_speed_fpm: 0.0,
            time_to_cpa_s: 40.0,
            cpa_horizontal_ft: 0.0,
            cpa_angle_rad: 0.0,
            cpa_vertical_ft: 0.0,
            intruder_ground_speed_kt: 100.0,
            intruder_bearing_rad: std::f64::consts::PI,
            intruder_vertical_speed_fpm: 0.0,
        }
    }

    /// A canonical tail-approach conflict (the paper's Figs. 7–8 family):
    /// the intruder overtakes slowly from behind while the own-ship
    /// descends and the intruder climbs into it. The small closure rate
    /// (4 kt) keeps the pair inside the NMAC horizontal band for a long
    /// window, the geometry the paper found challenging.
    pub fn tail_approach_template() -> Self {
        Self {
            own_ground_speed_kt: 70.0,
            own_vertical_speed_fpm: -500.0,
            time_to_cpa_s: 40.0,
            cpa_horizontal_ft: 0.0,
            cpa_angle_rad: 0.0,
            cpa_vertical_ft: 0.0,
            intruder_ground_speed_kt: 74.0,
            intruder_bearing_rad: 0.0,
            intruder_vertical_speed_fpm: 500.0,
        }
    }

    /// Own-ship ground speed in ft/s.
    pub fn own_ground_speed_fps(&self) -> f64 {
        units::knots_to_fps(self.own_ground_speed_kt)
    }

    /// Intruder ground speed in ft/s.
    pub fn intruder_ground_speed_fps(&self) -> f64 {
        units::knots_to_fps(self.intruder_ground_speed_kt)
    }

    /// Own-ship vertical speed in ft/s.
    pub fn own_vertical_speed_fps(&self) -> f64 {
        units::fpm_to_fps(self.own_vertical_speed_fpm)
    }

    /// Intruder vertical speed in ft/s.
    pub fn intruder_vertical_speed_fps(&self) -> f64 {
        units::fpm_to_fps(self.intruder_vertical_speed_fpm)
    }
}

/// Box constraints for each of the 9 parameters: the GA search space of
/// Section VI, restricted (per the paper) to encounters that would at
/// least nearly collide if neither aircraft maneuvered.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ParamRanges {
    /// Per-parameter `(low, high)` bounds in the canonical vector order.
    pub bounds: [(f64, f64); NUM_PARAMS],
}

impl Default for ParamRanges {
    /// The search space used by the experiments in this repository:
    ///
    /// * ground speeds 30–150 kt (small-UAV envelope),
    /// * vertical speeds ±1000 ft/min,
    /// * time to CPA 20–60 s (ACAS XU's short-term horizon),
    /// * CPA horizontal miss 0–500 ft and vertical offset ±100 ft, i.e.
    ///   inside the NMAC cylinder — every unresolved encounter is (nearly)
    ///   a collision, matching the paper's restriction,
    /// * approach angle and intruder bearing free over `(-π, π]`.
    fn default() -> Self {
        use std::f64::consts::PI;
        Self {
            bounds: [
                (30.0, 150.0),     // Gs_o, kt
                (-1000.0, 1000.0), // Vs_o, fpm
                (20.0, 60.0),      // T, s
                (0.0, 500.0),      // R, ft
                (-PI, PI),         // theta, rad
                (-100.0, 100.0),   // Y, ft
                (30.0, 150.0),     // Gs_i, kt
                (-PI, PI),         // psi_i, rad
                (-1000.0, 1000.0), // Vs_i, fpm
            ],
        }
    }
}

impl ParamRanges {
    /// Bounds of parameter `i` in the canonical order.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 9`.
    pub fn bound(&self, i: usize) -> (f64, f64) {
        self.bounds[i]
    }

    /// Clamps a parameter vector into the box, component-wise.
    pub fn clamp(&self, v: &mut [f64; NUM_PARAMS]) {
        for (x, (lo, hi)) in v.iter_mut().zip(self.bounds.iter()) {
            *x = x.clamp(*lo, *hi);
        }
    }

    /// Whether `params` lies inside the box (inclusive).
    pub fn contains(&self, params: &EncounterParams) -> bool {
        params
            .to_vector()
            .iter()
            .zip(self.bounds.iter())
            .all(|(x, (lo, hi))| *x >= *lo - 1e-9 && *x <= *hi + 1e-9)
    }

    /// Samples parameters uniformly from the box — the "random encounter"
    /// of Section VI-A and the random-search baseline of the experiments.
    pub fn sample_uniform<R: Rng + ?Sized>(&self, rng: &mut R) -> EncounterParams {
        let mut v = [0.0; NUM_PARAMS];
        for (x, (lo, hi)) in v.iter_mut().zip(self.bounds.iter()) {
            *x = if hi > lo {
                rng.gen_range(*lo..*hi)
            } else {
                *lo
            };
        }
        EncounterParams::from_vector(&v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn vector_round_trip() {
        let p = EncounterParams::tail_approach_template();
        let v = p.to_vector();
        let q = EncounterParams::from_vector(&v);
        assert_eq!(p, q);
        let r = EncounterParams::from_slice(&v);
        assert_eq!(p, r);
    }

    #[test]
    #[should_panic(expected = "9 genes")]
    fn from_slice_rejects_wrong_width() {
        EncounterParams::from_slice(&[0.0; 5]);
    }

    #[test]
    fn default_ranges_contain_templates() {
        let ranges = ParamRanges::default();
        assert!(ranges.contains(&EncounterParams::head_on_template()));
        assert!(ranges.contains(&EncounterParams::tail_approach_template()));
    }

    #[test]
    fn uniform_samples_stay_in_box() {
        let ranges = ParamRanges::default();
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..500 {
            let p = ranges.sample_uniform(&mut rng);
            assert!(ranges.contains(&p), "{p:?}");
        }
    }

    #[test]
    fn clamp_pulls_outliers_into_box() {
        let ranges = ParamRanges::default();
        let mut v = [1e9; NUM_PARAMS];
        ranges.clamp(&mut v);
        let p = EncounterParams::from_vector(&v);
        assert!(ranges.contains(&p));
        let mut v = [-1e9; NUM_PARAMS];
        ranges.clamp(&mut v);
        assert!(ranges.contains(&EncounterParams::from_vector(&v)));
    }

    #[test]
    fn unit_helpers_convert() {
        let p = EncounterParams::head_on_template();
        assert!((p.own_ground_speed_fps() - units::knots_to_fps(100.0)).abs() < 1e-12);
        let q = EncounterParams::tail_approach_template();
        assert!((q.own_vertical_speed_fps() - (-500.0 / 60.0)).abs() < 1e-12);
    }

    #[test]
    fn serde_round_trip() {
        let p = EncounterParams::head_on_template();
        let json = serde_json::to_string(&p).unwrap();
        let q: EncounterParams = serde_json::from_str(&json).unwrap();
        assert_eq!(p, q);
    }
}
