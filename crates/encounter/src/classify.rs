use serde::{Deserialize, Serialize};
use uavca_sim::units::wrap_angle;

use crate::EncounterParams;

/// Coarse geometry class of an encounter, used to analyze what kinds of
/// situations a search surfaced (paper Section VII: "most of them are tail
/// approach situations").
/// `Ord` follows declaration order (the order of [`GeometryClass::ALL`])
/// so the class can key a `BTreeMap` — the workspace's order-stable
/// substitute for hash maps in counting passes (audit rule A1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum GeometryClass {
    /// Roughly opposed tracks (relative heading within 45° of 180°).
    HeadOn,
    /// Roughly aligned tracks with opposite vertical senses — one climbs
    /// into the other while approaching from behind. The paper's
    /// challenging case.
    TailApproach,
    /// Roughly aligned tracks without the climb/descend geometry.
    Overtake,
    /// Everything else: convergent crossing tracks.
    Crossing,
}

impl GeometryClass {
    /// All classes in a stable order (useful for tabulation).
    pub const ALL: [GeometryClass; 4] = [
        GeometryClass::HeadOn,
        GeometryClass::TailApproach,
        GeometryClass::Overtake,
        GeometryClass::Crossing,
    ];

    /// A short stable label for reports.
    pub fn label(self) -> &'static str {
        match self {
            GeometryClass::HeadOn => "head-on",
            GeometryClass::TailApproach => "tail-approach",
            GeometryClass::Overtake => "overtake",
            GeometryClass::Crossing => "crossing",
        }
    }
}

impl std::fmt::Display for GeometryClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Threshold on the relative heading for "aligned" tracks, radians (45°).
const ALIGNED_RAD: f64 = std::f64::consts::FRAC_PI_4;

/// Vertical rate magnitude above which an aircraft counts as climbing or
/// descending rather than level, ft/min.
const VERTICAL_ACTIVE_FPM: f64 = 200.0;

/// Classifies the geometry of an encounter from its parameters.
///
/// The own-ship bearing is taken as 0 (the [`crate::ScenarioGenerator`]
/// convention), so the relative heading is simply the intruder bearing.
///
/// * relative heading within 45° of 180° → [`GeometryClass::HeadOn`];
/// * relative heading within 45° of 0°: if the two vertical speeds have
///   opposite active senses (one climbing ≥ 200 ft/min, one descending
///   ≤ −200 ft/min) → [`GeometryClass::TailApproach`], else
///   [`GeometryClass::Overtake`];
/// * otherwise → [`GeometryClass::Crossing`].
pub fn classify(params: &EncounterParams) -> GeometryClass {
    let rel_heading = wrap_angle(params.intruder_bearing_rad);
    let from_opposed = (rel_heading.abs() - std::f64::consts::PI).abs();
    if from_opposed <= ALIGNED_RAD {
        return GeometryClass::HeadOn;
    }
    if rel_heading.abs() <= ALIGNED_RAD {
        let own_vs = params.own_vertical_speed_fpm;
        let int_vs = params.intruder_vertical_speed_fpm;
        let opposite_senses = (own_vs >= VERTICAL_ACTIVE_FPM && int_vs <= -VERTICAL_ACTIVE_FPM)
            || (own_vs <= -VERTICAL_ACTIVE_FPM && int_vs >= VERTICAL_ACTIVE_FPM);
        return if opposite_senses {
            GeometryClass::TailApproach
        } else {
            GeometryClass::Overtake
        };
    }
    GeometryClass::Crossing
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn base() -> EncounterParams {
        EncounterParams::head_on_template()
    }

    #[test]
    fn templates_classify_as_named() {
        assert_eq!(
            classify(&EncounterParams::head_on_template()),
            GeometryClass::HeadOn
        );
        assert_eq!(
            classify(&EncounterParams::tail_approach_template()),
            GeometryClass::TailApproach
        );
    }

    #[test]
    fn aligned_level_tracks_are_overtake() {
        let mut p = base();
        p.intruder_bearing_rad = 0.2;
        p.own_vertical_speed_fpm = 0.0;
        p.intruder_vertical_speed_fpm = 0.0;
        assert_eq!(classify(&p), GeometryClass::Overtake);
    }

    #[test]
    fn same_sense_vertical_is_not_tail_approach() {
        let mut p = base();
        p.intruder_bearing_rad = 0.0;
        p.own_vertical_speed_fpm = 600.0;
        p.intruder_vertical_speed_fpm = 600.0;
        assert_eq!(classify(&p), GeometryClass::Overtake);
    }

    #[test]
    fn perpendicular_is_crossing() {
        let mut p = base();
        p.intruder_bearing_rad = PI / 2.0;
        assert_eq!(classify(&p), GeometryClass::Crossing);
        p.intruder_bearing_rad = -PI / 2.0;
        assert_eq!(classify(&p), GeometryClass::Crossing);
    }

    #[test]
    fn heading_wraps_correctly() {
        let mut p = base();
        // 350° is 10° off aligned — overtake family (level → Overtake).
        p.intruder_bearing_rad = 2.0 * PI - 10.0_f64.to_radians();
        p.own_vertical_speed_fpm = 0.0;
        assert_eq!(classify(&p), GeometryClass::Overtake);
        // -170° is within 45° of 180°.
        p.intruder_bearing_rad = -170.0_f64.to_radians();
        assert_eq!(classify(&p), GeometryClass::HeadOn);
    }

    #[test]
    fn weak_vertical_rates_do_not_count() {
        let mut p = base();
        p.intruder_bearing_rad = 0.0;
        p.own_vertical_speed_fpm = -150.0;
        p.intruder_vertical_speed_fpm = 150.0;
        assert_eq!(
            classify(&p),
            GeometryClass::Overtake,
            "below the 200 fpm threshold"
        );
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(GeometryClass::TailApproach.label(), "tail-approach");
        assert_eq!(GeometryClass::ALL.len(), 4);
        assert_eq!(format!("{}", GeometryClass::HeadOn), "head-on");
    }
}
