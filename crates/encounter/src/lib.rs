//! Two-UAV encounter parameterization and generation.
//!
//! Implements Section VI-A of Zou, Alexander & McDermid (DSN 2016): an
//! encounter is described by **9 parameters**
//! `{Gs_o, Vs_o, T, R, θ, Y, Gs_i, ψ_i, Vs_i}` — the own-ship speed pair,
//! the time to the closest point of approach (CPA), the intruder's relative
//! position at the CPA `(R, θ, Y)`, and the intruder's velocity triple.
//! The own-ship's initial position and bearing are fixed by convention
//! (the avoidance logic only sees relative state), so these 9 numbers
//! uniquely determine an encounter via the paper's equations (1)–(3).
//!
//! The crate provides:
//!
//! * [`EncounterParams`] — the 9-tuple, with conversion to/from a flat
//!   `[f64; 9]` vector for use as a GA genome,
//! * [`ParamRanges`] — box constraints on each parameter (the GA search
//!   space), with uniform sampling,
//! * [`ScenarioGenerator`] — turns parameters into initial
//!   [`UavState`](uavca_sim::UavState)s,
//! * [`GeometryClass`]/[`classify`] — head-on / crossing / tail-approach
//!   labelling used in the paper's Section VII analysis, and
//! * [`StatisticalEncounterModel`] — a synthetic stand-in for the
//!   radar-derived airspace encounter models of Kochenderfer et al.,
//!   feeding Monte-Carlo estimation (see DESIGN.md for the substitution
//!   rationale), and
//! * [`Stratification`] — an exact geometry-class × CPA-band partition of
//!   the statistical model, the sampling substrate for stratified and
//!   adaptive Monte-Carlo campaigns (`uavca-validation`'s
//!   `CampaignPlanner`).
//!
//! # Example
//!
//! ```
//! use uavca_encounter::{EncounterParams, ScenarioGenerator};
//!
//! let params = EncounterParams::head_on_template();
//! let gen = ScenarioGenerator::default();
//! let enc = gen.generate(&params);
//! // With no avoidance the pair meets near the CPA: relative positions
//! // close on each other at time T.
//! let own_at_cpa = enc.own.position + enc.own.velocity * params.time_to_cpa_s;
//! let int_at_cpa = enc.intruder.position + enc.intruder.velocity * params.time_to_cpa_s;
//! assert!(own_at_cpa.horizontal_distance(int_at_cpa) <= 500.0);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod classify;
mod generator;
mod multi;
mod params;
mod statistical;
mod strata;

pub use classify::{classify, GeometryClass};
pub use generator::{Encounter, ScenarioGenerator};
pub use multi::{
    classify_multi, AircraftParams, MultiEncounterModel, MultiEncounterParams, MultiGeometry,
    MultiGeometryWeights, MultiScenarioGenerator, MultiStratum,
};
pub use params::{EncounterParams, ParamRanges, NUM_PARAMS};
pub use statistical::{ClassWeights, StatisticalEncounterModel};
pub use strata::{Stratification, Stratum};
