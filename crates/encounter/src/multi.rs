//! k-aircraft integrated-airspace encounter parameterization.
//!
//! Generalizes the pairwise 9-parameter encounter encoding to traffic
//! scenes: each aircraft gets its own kinematic 7-tuple
//! ([`AircraftParams`]) describing how it transits a shared *focus
//! volume*, and a scene ([`MultiEncounterParams`]) is a list of them.
//! Three scene geometries cover the integrated-airspace settings of the
//! multi-UAV literature (shared corridor, crossing streams, converging
//! traffic), and the [`MultiEncounterModel`] mixes them with a discrete
//! traffic-*density* axis — the aircraft count — giving the density ×
//! geometry stratification that multi-aircraft Monte-Carlo campaigns
//! reallocate over (the analogue of the pairwise
//! [`Stratification`](crate::Stratification)).
//!
//! The partition is exact in the same sense as the pairwise one: every
//! sample falls in exactly one [`MultiStratum`], stratum weights sum
//! to 1, and conditional sampling round-trips through
//! [`MultiEncounterModel::stratum_of`] (enforced by a proptest in
//! `uavca-validation`'s determinism battery).

use rand::Rng;
use serde::{Deserialize, Serialize};
use uavca_sim::units::{fpm_to_fps, knots_to_fps, wrap_angle};
use uavca_sim::{UavState, Vec3};

use std::f64::consts::PI;

/// Scene geometry of a k-aircraft encounter: how the tracks relate.
///
/// Classified from the *maximum pairwise circular bearing difference*
/// of the scene (see [`classify_multi`]); `Ord` follows declaration
/// order so the class can key a `BTreeMap` (audit rule A1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum MultiGeometry {
    /// Shared corridor: all tracks nearly parallel (every pairwise
    /// bearing difference under 45°).
    Corridor,
    /// Crossing streams: two track families meeting at roughly right
    /// angles (maximum pairwise difference between 45° and 135°).
    CrossingStreams,
    /// Converging traffic: at least one nearly-opposed pair (maximum
    /// pairwise difference above 135°).
    Converging,
}

impl MultiGeometry {
    /// All geometries in a stable order (useful for tabulation).
    pub const ALL: [MultiGeometry; 3] = [
        MultiGeometry::Corridor,
        MultiGeometry::CrossingStreams,
        MultiGeometry::Converging,
    ];

    /// A short stable label for reports.
    pub fn label(self) -> &'static str {
        match self {
            MultiGeometry::Corridor => "corridor",
            MultiGeometry::CrossingStreams => "crossing-streams",
            MultiGeometry::Converging => "converging",
        }
    }
}

impl std::fmt::Display for MultiGeometry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One aircraft's transit of the shared focus volume: velocity triple
/// plus where and when it passes closest to the focus point. The
/// k-aircraft generalization of one "side" of the pairwise 9-tuple —
/// relative CPA offsets against a fixed peer are replaced by an
/// absolute miss offset against the scene focus.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AircraftParams {
    /// Ground speed, kt.
    pub ground_speed_kt: f64,
    /// Track bearing, radians (0 = +x).
    pub bearing_rad: f64,
    /// Vertical speed, ft/min (positive climbs).
    pub vertical_speed_fpm: f64,
    /// Time at which the aircraft passes its focus offset, s.
    pub time_to_focus_s: f64,
    /// Horizontal miss distance from the focus point at that time, ft.
    pub miss_horizontal_ft: f64,
    /// Direction of the horizontal miss offset, radians.
    pub miss_angle_rad: f64,
    /// Vertical offset from the focus altitude at that time, ft.
    pub miss_vertical_ft: f64,
}

impl AircraftParams {
    /// Ground speed, ft/s.
    pub fn ground_speed_fps(&self) -> f64 {
        knots_to_fps(self.ground_speed_kt)
    }

    /// Vertical speed, ft/s.
    pub fn vertical_speed_fps(&self) -> f64 {
        fpm_to_fps(self.vertical_speed_fpm)
    }
}

/// A fully parameterized k-aircraft scene.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiEncounterParams {
    /// Per-aircraft parameters; the length is the traffic density k.
    pub aircraft: Vec<AircraftParams>,
}

impl MultiEncounterParams {
    /// Number of aircraft in the scene.
    pub fn num_aircraft(&self) -> usize {
        self.aircraft.len()
    }
}

/// Classifies a scene's [`MultiGeometry`] from the maximum pairwise
/// circular bearing difference (range `[0, π]`):
///
/// * all differences < 45° → [`MultiGeometry::Corridor`];
/// * maximum difference > 135° → [`MultiGeometry::Converging`];
/// * otherwise → [`MultiGeometry::CrossingStreams`].
pub fn classify_multi(params: &MultiEncounterParams) -> MultiGeometry {
    let mut max_diff: f64 = 0.0;
    for (i, a) in params.aircraft.iter().enumerate() {
        for b in &params.aircraft[i + 1..] {
            let diff = wrap_angle(a.bearing_rad - b.bearing_rad).abs();
            max_diff = max_diff.max(diff);
        }
    }
    if max_diff < PI / 4.0 {
        MultiGeometry::Corridor
    } else if max_diff > 3.0 * PI / 4.0 {
        MultiGeometry::Converging
    } else {
        MultiGeometry::CrossingStreams
    }
}

/// Mixture weights over scene geometries.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MultiGeometryWeights {
    /// Weight of shared-corridor scenes.
    pub corridor: f64,
    /// Weight of crossing-streams scenes.
    pub crossing: f64,
    /// Weight of converging scenes.
    pub converging: f64,
}

impl Default for MultiGeometryWeights {
    /// Corridor operations dominate integrated airspace; crossings are
    /// common at route intersections; converging scenes are the rare,
    /// risk-rich tail.
    fn default() -> Self {
        Self {
            corridor: 0.5,
            crossing: 0.3,
            converging: 0.2,
        }
    }
}

impl MultiGeometryWeights {
    fn total(&self) -> f64 {
        self.corridor + self.crossing + self.converging
    }

    fn of(&self, geometry: MultiGeometry) -> f64 {
        match geometry {
            MultiGeometry::Corridor => self.corridor,
            MultiGeometry::CrossingStreams => self.crossing,
            MultiGeometry::Converging => self.converging,
        }
    }
}

/// The k-aircraft statistical encounter model: a distribution over
/// [`MultiEncounterParams`] mixing traffic densities (aircraft counts)
/// and scene geometries, with kinematics drawn from the same plausible
/// small-UAV ranges as the pairwise
/// [`StatisticalEncounterModel`](crate::StatisticalEncounterModel).
///
/// The density × geometry cells are the model's stratification: the
/// [`strata`](Self::strata) methods mirror the pairwise
/// [`Stratification`](crate::Stratification) API (canonical order,
/// exact weights, conditional sampling, `stratum_of` round-trip).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiEncounterModel {
    /// The traffic-density axis: candidate aircraft counts (each ≥ 2).
    pub densities: Vec<usize>,
    /// Mixture weight of each density (parallel to `densities`).
    pub density_weights: Vec<f64>,
    /// Mixture weights over scene geometries.
    pub geometry_weights: MultiGeometryWeights,
    /// Ground speed range, kt.
    pub ground_speed_kt: (f64, f64),
    /// Vertical speed magnitude bound, ft/min.
    pub max_vertical_speed_fpm: f64,
    /// Focus transit time range, s.
    pub time_to_focus_s: (f64, f64),
    /// Upper bound of the horizontal focus miss distance, ft.
    pub max_miss_horizontal_ft: f64,
    /// Bound of the vertical focus offset magnitude, ft.
    pub max_miss_vertical_ft: f64,
}

impl Default for MultiEncounterModel {
    /// Densities 2/4/8 (baseline pair, busy, 4× the baseline traffic)
    /// weighted toward the sparse end, kinematics matching the pairwise
    /// statistical model.
    fn default() -> Self {
        Self {
            densities: vec![2, 4, 8],
            density_weights: vec![0.5, 0.3, 0.2],
            geometry_weights: MultiGeometryWeights::default(),
            ground_speed_kt: (30.0, 150.0),
            max_vertical_speed_fpm: 1000.0,
            time_to_focus_s: (20.0, 60.0),
            max_miss_horizontal_ft: 4000.0,
            max_miss_vertical_ft: 800.0,
        }
    }
}

/// One cell of the density × geometry stratification. `Ord` follows
/// the canonical density-major stratum order so the stratum can key a
/// `BTreeMap` (audit rule A1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MultiStratum {
    /// Index into [`MultiEncounterModel::densities`].
    pub density_index: usize,
    /// The scene geometry this stratum conditions on.
    pub geometry: MultiGeometry,
}

impl std::fmt::Display for MultiStratum {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "d{}/{}", self.density_index, self.geometry.label())
    }
}

/// Bearing jitter half-widths guaranteeing the classification
/// round-trip: corridor offsets stay within ±20° (max pairwise 40°,
/// strictly under the 45° corridor bound), crossing-stream offsets
/// within ±14° around two 90°-separated streams (max pairwise in
/// [62°, 118°] ⊂ (45°, 135°)), converging leader/opposer within ±10°
/// of opposed tracks (minimum pairwise difference 160° > 135°).
const CORRIDOR_JITTER_RAD: f64 = 20.0 * PI / 180.0;
const CROSSING_JITTER_RAD: f64 = 14.0 * PI / 180.0;
const CONVERGING_JITTER_RAD: f64 = 10.0 * PI / 180.0;

impl MultiEncounterModel {
    /// Number of density × geometry strata.
    pub fn num_strata(&self) -> usize {
        self.densities.len() * MultiGeometry::ALL.len()
    }

    /// All strata in a stable, density-major order (the canonical
    /// stratum indexing used by campaign seed derivation).
    pub fn strata(&self) -> Vec<MultiStratum> {
        let mut out = Vec::with_capacity(self.num_strata());
        for density_index in 0..self.densities.len() {
            for geometry in MultiGeometry::ALL {
                out.push(MultiStratum {
                    density_index,
                    geometry,
                });
            }
        }
        out
    }

    /// The canonical index of `stratum` (its position in
    /// [`strata`](Self::strata)).
    pub fn index_of(&self, stratum: MultiStratum) -> usize {
        let geometry_idx = MultiGeometry::ALL
            .iter()
            .position(|&g| g == stratum.geometry)
            .expect("MultiGeometry::ALL is exhaustive");
        stratum.density_index.min(self.densities.len() - 1) * MultiGeometry::ALL.len()
            + geometry_idx
    }

    /// Probability mass of `stratum`: normalized density weight times
    /// normalized geometry weight (the axes are independent in the
    /// mixture). Masses over [`strata`](Self::strata) sum to 1.
    pub fn weight(&self, stratum: MultiStratum) -> f64 {
        let density_total: f64 = self.density_weights.iter().sum();
        let density_w = self.density_weights[stratum.density_index] / density_total;
        density_w * self.geometry_weights.of(stratum.geometry) / self.geometry_weights.total()
    }

    /// Draws one scene from the full mixture.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> MultiEncounterParams {
        let density_index = {
            let total: f64 = self.density_weights.iter().sum();
            let mut u = rng.gen::<f64>() * total;
            let mut chosen = self.densities.len() - 1;
            for (i, w) in self.density_weights.iter().enumerate() {
                u -= w;
                if u < 0.0 {
                    chosen = i;
                    break;
                }
            }
            chosen
        };
        let geometry = {
            let w = self.geometry_weights;
            let mut u = rng.gen::<f64>() * w.total();
            u -= w.corridor;
            if u < 0.0 {
                MultiGeometry::Corridor
            } else {
                u -= w.crossing;
                if u < 0.0 {
                    MultiGeometry::CrossingStreams
                } else {
                    MultiGeometry::Converging
                }
            }
        };
        self.sample_in(
            MultiStratum {
                density_index,
                geometry,
            },
            rng,
        )
    }

    /// Draws one scene conditioned on `stratum`. The result always maps
    /// back to `stratum` under [`stratum_of`](Self::stratum_of).
    ///
    /// Draw order (fixed; campaign determinism depends on it): one base
    /// bearing, then per aircraft in id order a bearing offset, ground
    /// speed, vertical speed, focus time, horizontal miss, miss angle
    /// and vertical offset.
    ///
    /// # Panics
    ///
    /// Panics if the stratum's density index is out of range or the
    /// configured density is below 2.
    pub fn sample_in<R: Rng + ?Sized>(
        &self,
        stratum: MultiStratum,
        rng: &mut R,
    ) -> MultiEncounterParams {
        let k = self.densities[stratum.density_index];
        assert!(k >= 2, "a traffic density needs at least two aircraft");
        let base = rng.gen_range(-PI..PI);
        let aircraft = (0..k)
            .map(|i| {
                let bearing = match stratum.geometry {
                    MultiGeometry::Corridor => {
                        base + rng.gen_range(-CORRIDOR_JITTER_RAD..CORRIDOR_JITTER_RAD)
                    }
                    MultiGeometry::CrossingStreams => {
                        let stream = (i % 2) as f64;
                        base + stream * PI / 2.0
                            + rng.gen_range(-CROSSING_JITTER_RAD..CROSSING_JITTER_RAD)
                    }
                    MultiGeometry::Converging => match i {
                        0 => base + rng.gen_range(-CONVERGING_JITTER_RAD..CONVERGING_JITTER_RAD),
                        1 => {
                            base + PI + rng.gen_range(-CONVERGING_JITTER_RAD..CONVERGING_JITTER_RAD)
                        }
                        _ => rng.gen_range(-PI..PI),
                    },
                };
                AircraftParams {
                    bearing_rad: wrap_angle(bearing),
                    ground_speed_kt: rng.gen_range(self.ground_speed_kt.0..self.ground_speed_kt.1),
                    vertical_speed_fpm: rng
                        .gen_range(-self.max_vertical_speed_fpm..self.max_vertical_speed_fpm),
                    time_to_focus_s: rng.gen_range(self.time_to_focus_s.0..self.time_to_focus_s.1),
                    miss_horizontal_ft: rng.gen_range(0.0..self.max_miss_horizontal_ft),
                    miss_angle_rad: rng.gen_range(-PI..PI),
                    miss_vertical_ft: rng
                        .gen_range(-self.max_miss_vertical_ft..self.max_miss_vertical_ft),
                }
            })
            .collect();
        MultiEncounterParams { aircraft }
    }

    /// The stratum `params` falls in: the density cell whose configured
    /// aircraft count is nearest the scene's (exact for model-sampled
    /// scenes; off-model counts clamp to the nearest density, ties to
    /// the smaller index) crossed with its [`classify_multi`] geometry.
    pub fn stratum_of(&self, params: &MultiEncounterParams) -> MultiStratum {
        let k = params.num_aircraft();
        let density_index = self
            .densities
            .iter()
            .enumerate()
            .min_by_key(|(_, &d)| d.abs_diff(k))
            .map(|(i, _)| i)
            .expect("models have at least one density");
        MultiStratum {
            density_index,
            geometry: classify_multi(params),
        }
    }
}

/// Builds initial [`UavState`]s from a [`MultiEncounterParams`] scene:
/// each aircraft is rolled back from its focus-transit point along its
/// own (straight-line) velocity, the k-aircraft generalization of the
/// pairwise generator's equation (3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MultiScenarioGenerator {
    /// The shared focus point every aircraft's miss offset is measured
    /// from, ft.
    pub focus_position: Vec3,
}

impl Default for MultiScenarioGenerator {
    /// Focus at the pairwise generator's anchor altitude: (0, 0, 4000 ft).
    fn default() -> Self {
        Self {
            focus_position: Vec3::new(0.0, 0.0, 4000.0),
        }
    }
}

impl MultiScenarioGenerator {
    /// Instantiates the initial states for `params`, aircraft in id
    /// order.
    pub fn generate(&self, params: &MultiEncounterParams) -> Vec<UavState> {
        params
            .aircraft
            .iter()
            .map(|a| {
                let velocity = Vec3::new(
                    a.ground_speed_fps() * a.bearing_rad.cos(),
                    a.ground_speed_fps() * a.bearing_rad.sin(),
                    a.vertical_speed_fps(),
                );
                let at_focus = self.focus_position
                    + Vec3::new(
                        a.miss_horizontal_ft * a.miss_angle_rad.cos(),
                        a.miss_horizontal_ft * a.miss_angle_rad.sin(),
                        a.miss_vertical_ft,
                    );
                UavState::new(at_focus - velocity * a.time_to_focus_s, velocity)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn weights_sum_to_one() {
        let model = MultiEncounterModel::default();
        let total: f64 = model.strata().iter().map(|&s| model.weight(s)).sum();
        assert!((total - 1.0).abs() < 1e-12, "total {total}");
        assert_eq!(model.strata().len(), model.num_strata());
    }

    #[test]
    fn index_of_matches_strata_order() {
        let model = MultiEncounterModel::default();
        for (i, s) in model.strata().into_iter().enumerate() {
            assert_eq!(model.index_of(s), i, "{s}");
        }
    }

    #[test]
    fn conditional_samples_round_trip_to_their_stratum() {
        let model = MultiEncounterModel::default();
        let mut rng = StdRng::seed_from_u64(17);
        for stratum in model.strata() {
            for _ in 0..50 {
                let p = model.sample_in(stratum, &mut rng);
                assert_eq!(model.stratum_of(&p), stratum, "{stratum}: {p:?}");
                assert_eq!(
                    p.num_aircraft(),
                    model.densities[stratum.density_index],
                    "{stratum}"
                );
            }
        }
    }

    #[test]
    fn full_mixture_samples_land_in_some_stratum() {
        let model = MultiEncounterModel::default();
        let mut rng = StdRng::seed_from_u64(9);
        let mut counts = std::collections::BTreeMap::new();
        for _ in 0..3000 {
            let p = model.sample(&mut rng);
            *counts.entry(model.stratum_of(&p)).or_insert(0usize) += 1;
        }
        // Every stratum of the default model has nontrivial mass, so a
        // 3000-draw sweep should visit all nine.
        assert_eq!(counts.len(), model.num_strata(), "{counts:?}");
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let model = MultiEncounterModel::default();
        let stratum = model.strata()[4];
        let a = model.sample_in(stratum, &mut StdRng::seed_from_u64(9));
        let b = model.sample_in(stratum, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn classify_multi_thresholds() {
        let mk = |bearings: &[f64]| MultiEncounterParams {
            aircraft: bearings
                .iter()
                .map(|&b| AircraftParams {
                    ground_speed_kt: 100.0,
                    bearing_rad: b,
                    vertical_speed_fpm: 0.0,
                    time_to_focus_s: 30.0,
                    miss_horizontal_ft: 1000.0,
                    miss_angle_rad: 0.0,
                    miss_vertical_ft: 0.0,
                })
                .collect(),
        };
        assert_eq!(
            classify_multi(&mk(&[0.0, 0.1, -0.1])),
            MultiGeometry::Corridor
        );
        assert_eq!(
            classify_multi(&mk(&[0.0, PI / 2.0])),
            MultiGeometry::CrossingStreams
        );
        assert_eq!(
            classify_multi(&mk(&[0.0, PI, 0.2])),
            MultiGeometry::Converging
        );
        // Wrapping: bearings near ±π are a corridor, not converging.
        assert_eq!(
            classify_multi(&mk(&[PI - 0.05, -PI + 0.05])),
            MultiGeometry::Corridor
        );
    }

    #[test]
    fn stratum_of_clamps_off_model_density() {
        let model = MultiEncounterModel::default(); // densities 2, 4, 8
        let mut rng = StdRng::seed_from_u64(3);
        let mut p = model.sample_in(model.strata()[0], &mut rng);
        // Grow the scene to 5 aircraft: nearest density is 4 (index 1);
        // the 4-vs-6 tie at k=5... 5 is distance 1 from 4 and 3 from 8.
        p.aircraft
            .extend(vec![p.aircraft[0], p.aircraft[1], p.aircraft[0]]);
        assert_eq!(p.num_aircraft(), 5);
        assert_eq!(model.stratum_of(&p).density_index, 1);
    }

    #[test]
    fn generator_honors_focus_transit() {
        let model = MultiEncounterModel::default();
        let generator = MultiScenarioGenerator::default();
        let mut rng = StdRng::seed_from_u64(21);
        for stratum in model.strata() {
            let p = model.sample_in(stratum, &mut rng);
            let states = generator.generate(&p);
            assert_eq!(states.len(), p.num_aircraft());
            for (a, s) in p.aircraft.iter().zip(&states) {
                // At its focus time the aircraft sits at its miss offset.
                let at = s.position + s.velocity * a.time_to_focus_s;
                let expected = generator.focus_position
                    + Vec3::new(
                        a.miss_horizontal_ft * a.miss_angle_rad.cos(),
                        a.miss_horizontal_ft * a.miss_angle_rad.sin(),
                        a.miss_vertical_ft,
                    );
                assert!(at.distance(expected) < 1e-6, "{a:?}");
            }
        }
    }

    #[test]
    fn serde_round_trip() {
        let model = MultiEncounterModel::default();
        let mut rng = StdRng::seed_from_u64(2);
        let p = model.sample(&mut rng);
        let json = serde_json::to_string(&p).unwrap();
        let back: MultiEncounterParams = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
        let mjson = serde_json::to_string(&model).unwrap();
        let mback: MultiEncounterModel = serde_json::from_str(&mjson).unwrap();
        assert_eq!(model, mback);
    }

    #[test]
    fn display_is_stable() {
        let s = MultiStratum {
            density_index: 2,
            geometry: MultiGeometry::CrossingStreams,
        };
        assert_eq!(s.to_string(), "d2/crossing-streams");
        assert_eq!(MultiGeometry::ALL.len(), 3);
    }
}
