use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::{EncounterParams, GeometryClass};

/// Mixture weights over geometry classes for the statistical model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClassWeights {
    /// Weight of head-on encounters.
    pub head_on: f64,
    /// Weight of tail-approach encounters.
    pub tail_approach: f64,
    /// Weight of overtake encounters.
    pub overtake: f64,
    /// Weight of crossing encounters.
    pub crossing: f64,
}

impl Default for ClassWeights {
    /// En-route-like mix: crossings dominate, head-ons are common on
    /// airway-like tracks, tail geometries are rarer.
    fn default() -> Self {
        Self {
            head_on: 0.25,
            tail_approach: 0.10,
            overtake: 0.15,
            crossing: 0.50,
        }
    }
}

impl ClassWeights {
    fn total(&self) -> f64 {
        self.head_on + self.tail_approach + self.overtake + self.crossing
    }
}

/// A synthetic statistical encounter model.
///
/// **Substitution note (see DESIGN.md):** the paper's Monte-Carlo studies
/// use the MIT-LL airspace encounter models estimated from radar data
/// ([5, 6] in the paper) — data we do not have, and which the paper itself
/// flags as unrepresentative of UAV operations. This model plays the same
/// *role*: a distribution over initial encounter geometries from which
/// Monte-Carlo evaluation samples. It mixes the four geometry classes with
/// configurable weights and draws kinematics from plausible small-UAV
/// distributions. Unlike [`crate::ParamRanges::sample_uniform`], the CPA
/// miss distances extend well outside the NMAC cylinder, so most sampled
/// encounters are benign — which is what makes risk-ratio estimation
/// meaningful.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StatisticalEncounterModel {
    /// Mixture weights over geometry classes.
    pub weights: ClassWeights,
    /// Upper bound of the horizontal CPA miss distance, ft.
    pub max_cpa_horizontal_ft: f64,
    /// Bound of the vertical CPA offset magnitude, ft.
    pub max_cpa_vertical_ft: f64,
    /// Ground speed range, kt.
    pub ground_speed_kt: (f64, f64),
    /// Vertical speed magnitude bound, ft/min.
    pub max_vertical_speed_fpm: f64,
    /// Time-to-CPA range, s.
    pub time_to_cpa_s: (f64, f64),
}

impl Default for StatisticalEncounterModel {
    fn default() -> Self {
        Self {
            weights: ClassWeights::default(),
            max_cpa_horizontal_ft: 4000.0,
            max_cpa_vertical_ft: 800.0,
            ground_speed_kt: (30.0, 150.0),
            max_vertical_speed_fpm: 1000.0,
            time_to_cpa_s: (20.0, 60.0),
        }
    }
}

impl StatisticalEncounterModel {
    /// Draws one encounter parameter set.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> EncounterParams {
        let class = self.sample_class(rng);
        self.sample_in_class(class, rng)
    }

    /// Draws the geometry class according to the mixture weights.
    pub fn sample_class<R: Rng + ?Sized>(&self, rng: &mut R) -> GeometryClass {
        let total = self.weights.total();
        let mut u = rng.gen::<f64>() * total;
        u -= self.weights.head_on;
        if u < 0.0 {
            return GeometryClass::HeadOn;
        }
        u -= self.weights.tail_approach;
        if u < 0.0 {
            return GeometryClass::TailApproach;
        }
        u -= self.weights.overtake;
        if u < 0.0 {
            return GeometryClass::Overtake;
        }
        GeometryClass::Crossing
    }

    /// Draws encounter parameters conditioned on a geometry class. The
    /// returned parameters always [`crate::classify`] to `class`.
    pub fn sample_in_class<R: Rng + ?Sized>(
        &self,
        class: GeometryClass,
        rng: &mut R,
    ) -> EncounterParams {
        use std::f64::consts::PI;
        let (gs_lo, gs_hi) = self.ground_speed_kt;
        let gs = |rng: &mut R| rng.gen_range(gs_lo..gs_hi);
        let vs_any =
            |rng: &mut R| rng.gen_range(-self.max_vertical_speed_fpm..self.max_vertical_speed_fpm);
        // Vertical rate that is clearly "active" in a required direction.
        let vs_active =
            |rng: &mut R, sign: f64| sign * rng.gen_range(250.0..self.max_vertical_speed_fpm);
        // Vertical rate that is clearly level-ish (avoids flipping the class).
        let vs_level = |rng: &mut R| rng.gen_range(-180.0..180.0);

        let bearing = match class {
            GeometryClass::HeadOn => {
                // Within 45° of 180°.
                let off = rng.gen_range(-PI / 4.0 + 1e-3..PI / 4.0 - 1e-3);
                uavca_sim::units::wrap_angle(PI + off)
            }
            GeometryClass::TailApproach | GeometryClass::Overtake => {
                rng.gen_range(-PI / 4.0 + 1e-3..PI / 4.0 - 1e-3)
            }
            GeometryClass::Crossing => {
                // Within (45°, 135°) on either side.
                let mag = rng.gen_range(PI / 4.0 + 1e-3..3.0 * PI / 4.0 - 1e-3);
                if rng.gen::<bool>() {
                    mag
                } else {
                    -mag
                }
            }
        };
        let (own_vs, int_vs) = match class {
            GeometryClass::TailApproach => {
                if rng.gen::<bool>() {
                    (vs_active(rng, -1.0), vs_active(rng, 1.0))
                } else {
                    (vs_active(rng, 1.0), vs_active(rng, -1.0))
                }
            }
            GeometryClass::Overtake => (vs_level(rng), vs_level(rng)),
            _ => (vs_any(rng), vs_any(rng)),
        };

        EncounterParams {
            own_ground_speed_kt: gs(rng),
            own_vertical_speed_fpm: own_vs,
            time_to_cpa_s: rng.gen_range(self.time_to_cpa_s.0..self.time_to_cpa_s.1),
            cpa_horizontal_ft: rng.gen_range(0.0..self.max_cpa_horizontal_ft),
            cpa_angle_rad: rng.gen_range(-PI..PI),
            cpa_vertical_ft: rng.gen_range(-self.max_cpa_vertical_ft..self.max_cpa_vertical_ft),
            intruder_ground_speed_kt: gs(rng),
            intruder_bearing_rad: bearing,
            intruder_vertical_speed_fpm: int_vs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn conditional_samples_classify_to_their_class() {
        let model = StatisticalEncounterModel::default();
        let mut rng = StdRng::seed_from_u64(3);
        for class in GeometryClass::ALL {
            for _ in 0..200 {
                let p = model.sample_in_class(class, &mut rng);
                assert_eq!(classify(&p), class, "{p:?}");
            }
        }
    }

    #[test]
    fn class_frequencies_follow_weights() {
        let model = StatisticalEncounterModel::default();
        let mut rng = StdRng::seed_from_u64(9);
        let n = 20_000;
        let mut counts = std::collections::BTreeMap::new();
        for _ in 0..n {
            *counts.entry(model.sample_class(&mut rng)).or_insert(0usize) += 1;
        }
        let frac = |c: GeometryClass| counts[&c] as f64 / n as f64;
        assert!((frac(GeometryClass::HeadOn) - 0.25).abs() < 0.02);
        assert!((frac(GeometryClass::TailApproach) - 0.10).abs() < 0.02);
        assert!((frac(GeometryClass::Overtake) - 0.15).abs() < 0.02);
        assert!((frac(GeometryClass::Crossing) - 0.50).abs() < 0.02);
    }

    #[test]
    fn most_samples_are_outside_the_nmac_cylinder() {
        // The MC model must produce mostly benign encounters, unlike the
        // search space.
        let model = StatisticalEncounterModel::default();
        let mut rng = StdRng::seed_from_u64(21);
        let n = 5000;
        let benign = (0..n)
            .filter(|_| {
                let p = model.sample(&mut rng);
                p.cpa_horizontal_ft > 500.0 || p.cpa_vertical_ft.abs() > 100.0
            })
            .count();
        assert!(
            benign as f64 / n as f64 > 0.6,
            "benign fraction {}",
            benign as f64 / n as f64
        );
    }

    #[test]
    fn samples_are_deterministic_per_seed() {
        let model = StatisticalEncounterModel::default();
        let a = model.sample(&mut StdRng::seed_from_u64(5));
        let b = model.sample(&mut StdRng::seed_from_u64(5));
        assert_eq!(a, b);
    }
}
