//! Stratification of the statistical encounter model's parameter space.
//!
//! Adaptive Monte-Carlo campaigns (see `uavca-validation`'s
//! `CampaignPlanner`) need the encounter distribution cut into disjoint
//! **strata** with known probability mass, so the run budget can be
//! reallocated toward the strata where equipped/unequipped outcomes
//! disagree. The natural axes in this model are the ones risk
//! concentrates along: the geometry class (a discrete mixture component
//! with explicit weights) and the horizontal CPA miss distance (uniform
//! under the model, and the dominant driver of whether an encounter can
//! become an NMAC at all).

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::{classify, EncounterParams, GeometryClass, StatisticalEncounterModel};

/// One cell of the stratification: a geometry class crossed with a
/// horizontal-CPA band.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Stratum {
    /// The geometry class this stratum conditions on.
    pub class: GeometryClass,
    /// Index of the horizontal-CPA band, `0..cpa_bins` (0 is closest).
    pub cpa_bin: usize,
}

impl std::fmt::Display for Stratum {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/r{}", self.class.label(), self.cpa_bin)
    }
}

/// A partition of the [`StatisticalEncounterModel`] parameter space into
/// geometry-class × CPA-band strata.
///
/// The partition is exact: every sample of the model falls in exactly one
/// stratum, the per-stratum masses ([`weight`](Self::weight)) sum to 1,
/// and conditional sampling ([`sample`](Self::sample)) draws from the
/// model's distribution restricted to the stratum. That makes stratified
/// estimates unbiased for the same population quantity plain Monte-Carlo
/// estimates: `p = Σ_s w_s · p_s`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Stratification {
    /// Number of equal-width horizontal-CPA bands over
    /// `[0, max_cpa_horizontal_ft)`.
    pub cpa_bins: usize,
}

impl Default for Stratification {
    /// Three CPA bands × four geometry classes = 12 strata — fine enough
    /// to separate the conflict-rich inner band from the benign bulk,
    /// coarse enough that a small pilot round covers every stratum.
    fn default() -> Self {
        Self { cpa_bins: 3 }
    }
}

impl Stratification {
    /// A stratification with `cpa_bins` CPA bands (at least 1).
    ///
    /// # Panics
    ///
    /// Panics if `cpa_bins == 0`.
    pub fn new(cpa_bins: usize) -> Self {
        assert!(cpa_bins > 0, "stratification needs at least one CPA band");
        Self { cpa_bins }
    }

    /// Number of strata in the partition.
    pub fn num_strata(&self) -> usize {
        GeometryClass::ALL.len() * self.cpa_bins
    }

    /// All strata in a stable, class-major order (the canonical stratum
    /// indexing used by campaign seed derivation).
    pub fn strata(&self) -> Vec<Stratum> {
        let mut out = Vec::with_capacity(self.num_strata());
        for class in GeometryClass::ALL {
            for cpa_bin in 0..self.cpa_bins {
                out.push(Stratum { class, cpa_bin });
            }
        }
        out
    }

    /// The canonical index of `stratum` (position in [`strata`](Self::strata)).
    pub fn index_of(&self, stratum: Stratum) -> usize {
        let class_idx = GeometryClass::ALL
            .iter()
            .position(|&c| c == stratum.class)
            .expect("GeometryClass::ALL is exhaustive");
        class_idx * self.cpa_bins + stratum.cpa_bin.min(self.cpa_bins - 1)
    }

    /// The `[lo, hi)` horizontal-CPA bounds of band `cpa_bin`, ft.
    pub fn cpa_bounds(&self, model: &StatisticalEncounterModel, cpa_bin: usize) -> (f64, f64) {
        let width = model.max_cpa_horizontal_ft / self.cpa_bins as f64;
        let bin = cpa_bin.min(self.cpa_bins - 1);
        (bin as f64 * width, (bin + 1) as f64 * width)
    }

    /// Probability mass of `stratum` under `model`: the normalized class
    /// weight times the (equal) band mass — the CPA miss distance is
    /// uniform under the model, so equal-width bands carry equal mass.
    pub fn weight(&self, model: &StatisticalEncounterModel, stratum: Stratum) -> f64 {
        let w = model.weights;
        let total = w.head_on + w.tail_approach + w.overtake + w.crossing;
        let class_weight = match stratum.class {
            GeometryClass::HeadOn => w.head_on,
            GeometryClass::TailApproach => w.tail_approach,
            GeometryClass::Overtake => w.overtake,
            GeometryClass::Crossing => w.crossing,
        };
        (class_weight / total) / self.cpa_bins as f64
    }

    /// Draws one encounter from `model` conditioned on `stratum`: class-
    /// conditional kinematics with the horizontal CPA re-drawn uniformly
    /// inside the stratum's band. The result always maps back to
    /// `stratum` under [`stratum_of`](Self::stratum_of).
    pub fn sample<R: Rng + ?Sized>(
        &self,
        model: &StatisticalEncounterModel,
        stratum: Stratum,
        rng: &mut R,
    ) -> EncounterParams {
        let mut params = model.sample_in_class(stratum.class, rng);
        let (lo, hi) = self.cpa_bounds(model, stratum.cpa_bin);
        params.cpa_horizontal_ft = rng.gen_range(lo..hi);
        params
    }

    /// The importance-splitting severity level ladder for `stratum`:
    /// `levels` nested NMAC-severity thresholds, strictly descending and
    /// all strictly above 1 (severity `< 1` *is* the NMAC event, which
    /// stays the terminal stage and is never a ladder rung).
    ///
    /// Severity measures separation in NMAC-cylinder radii with
    /// `unit_cpa_ft` horizontal feet per unit (pass the simulation
    /// layer's `NMAC_HORIZONTAL_FT`). An encounter sampled in this
    /// stratum has its planned horizontal CPA in the band
    /// [`cpa_bounds`](Self::cpa_bounds), so its nominal trajectory
    /// bottoms out near severity `hi / unit_cpa_ft`; the ladder is
    /// log-spaced from that entry severity down toward 1, which is the
    /// classic geometric spacing that keeps per-level conditional
    /// probabilities of similar magnitude. Inner bands whose nominal
    /// severity is already ≈ 1 get an empty ladder — splitting there
    /// degenerates to plain sampling, which is exactly right because the
    /// event is not rare in those strata.
    pub fn severity_levels(
        &self,
        model: &StatisticalEncounterModel,
        stratum: Stratum,
        levels: usize,
        unit_cpa_ft: f64,
    ) -> Vec<f64> {
        let (_, hi) = self.cpa_bounds(model, stratum.cpa_bin);
        let entry = hi / unit_cpa_ft;
        // Below this entry severity a ladder buys nothing: the nominal
        // trajectory already ends adjacent to the NMAC cylinder. The
        // negated comparison also routes a NaN entry (degenerate model)
        // to the empty ladder instead of NaN rungs.
        const MIN_ENTRY: f64 = 1.2;
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if levels == 0 || !(entry > MIN_ENTRY) {
            return Vec::new();
        }
        let ln_entry = entry.ln();
        (1..=levels)
            .map(|j| (ln_entry * (levels + 1 - j) as f64 / (levels + 1) as f64).exp())
            .collect()
    }

    /// The stratum `params` falls in: its [`classify`] class and the CPA
    /// band containing its horizontal miss distance (values at or beyond
    /// the model maximum clamp into the outermost band).
    pub fn stratum_of(
        &self,
        model: &StatisticalEncounterModel,
        params: &EncounterParams,
    ) -> Stratum {
        let width = model.max_cpa_horizontal_ft / self.cpa_bins as f64;
        let bin = if params.cpa_horizontal_ft <= 0.0 {
            0
        } else {
            ((params.cpa_horizontal_ft / width) as usize).min(self.cpa_bins - 1)
        };
        Stratum {
            class: classify(params),
            cpa_bin: bin,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn weights_sum_to_one() {
        let model = StatisticalEncounterModel::default();
        for bins in [1, 2, 3, 7] {
            let strat = Stratification::new(bins);
            let total: f64 = strat
                .strata()
                .iter()
                .map(|&s| strat.weight(&model, s))
                .sum();
            assert!((total - 1.0).abs() < 1e-12, "bins {bins}: total {total}");
            assert_eq!(strat.strata().len(), strat.num_strata());
        }
    }

    #[test]
    fn index_of_matches_strata_order() {
        let strat = Stratification::default();
        for (i, s) in strat.strata().into_iter().enumerate() {
            assert_eq!(strat.index_of(s), i, "{s}");
        }
    }

    #[test]
    fn conditional_samples_round_trip_to_their_stratum() {
        let model = StatisticalEncounterModel::default();
        let strat = Stratification::default();
        let mut rng = StdRng::seed_from_u64(17);
        for stratum in strat.strata() {
            for _ in 0..50 {
                let p = strat.sample(&model, stratum, &mut rng);
                assert_eq!(strat.stratum_of(&model, &p), stratum, "{p:?}");
                let (lo, hi) = strat.cpa_bounds(&model, stratum.cpa_bin);
                assert!(p.cpa_horizontal_ft >= lo && p.cpa_horizontal_ft < hi);
            }
        }
    }

    #[test]
    fn stratum_of_clamps_out_of_range_cpa() {
        let model = StatisticalEncounterModel::default();
        let strat = Stratification::default();
        let mut p = EncounterParams::head_on_template();
        p.cpa_horizontal_ft = model.max_cpa_horizontal_ft * 10.0;
        assert_eq!(strat.stratum_of(&model, &p).cpa_bin, strat.cpa_bins - 1);
        p.cpa_horizontal_ft = -1.0;
        assert_eq!(strat.stratum_of(&model, &p).cpa_bin, 0);
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let model = StatisticalEncounterModel::default();
        let strat = Stratification::default();
        let stratum = strat.strata()[5];
        let a = strat.sample(&model, stratum, &mut StdRng::seed_from_u64(9));
        let b = strat.sample(&model, stratum, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one CPA band")]
    fn zero_bins_is_rejected() {
        Stratification::new(0);
    }

    #[test]
    fn severity_ladder_is_descending_and_above_one() {
        let model = StatisticalEncounterModel::default();
        let strat = Stratification::default();
        for stratum in strat.strata() {
            for levels in [1, 3, 5] {
                let ladder = strat.severity_levels(&model, stratum, levels, 500.0);
                assert!(ladder.len() <= levels);
                for pair in ladder.windows(2) {
                    assert!(pair[0] > pair[1], "{stratum}: {ladder:?} not descending");
                }
                for &t in &ladder {
                    assert!(t > 1.0, "{stratum}: rung {t} not above 1");
                }
            }
        }
    }

    #[test]
    fn severity_ladder_spans_band_entry_down_to_one() {
        let model = StatisticalEncounterModel::default();
        let strat = Stratification::new(3);
        // Outermost band: entry severity is max_cpa / 500.
        let outer = Stratum {
            class: GeometryClass::HeadOn,
            cpa_bin: 2,
        };
        let ladder = strat.severity_levels(&model, outer, 3, 500.0);
        assert_eq!(ladder.len(), 3);
        let entry = model.max_cpa_horizontal_ft / 500.0;
        assert!(ladder[0] < entry, "first rung below the entry severity");
        // Log-spaced: ratios between consecutive rungs are equal.
        let r0 = ladder[0] / ladder[1];
        let r1 = ladder[1] / ladder[2];
        assert!((r0 - r1).abs() < 1e-9, "{ladder:?}");
    }

    #[test]
    fn severity_ladder_is_empty_where_nmac_is_not_rare() {
        let model = StatisticalEncounterModel::default();
        // Many narrow bands: the innermost band's upper CPA bound is
        // well inside the NMAC cylinder, so no ladder.
        let strat = Stratification::new(24);
        let inner = Stratum {
            class: GeometryClass::HeadOn,
            cpa_bin: 0,
        };
        assert!(strat.severity_levels(&model, inner, 3, 500.0).is_empty());
        // Zero requested levels is always empty.
        let outer = Stratum {
            class: GeometryClass::HeadOn,
            cpa_bin: 23,
        };
        assert!(strat.severity_levels(&model, outer, 0, 500.0).is_empty());
    }

    #[test]
    fn display_is_stable() {
        let s = Stratum {
            class: GeometryClass::HeadOn,
            cpa_bin: 2,
        };
        assert_eq!(s.to_string(), "head-on/r2");
    }
}
