//! Selective Velocity Obstacle (SVO) collision avoidance — the simpler
//! 2-D algorithm (Jenie et al., AIAA GNC 2013) that Zou, Alexander &
//! McDermid used in their earlier evolutionary-search study (\[7\] in the
//! DSN 2016 paper) before scaling the approach up to ACAS XU.
//!
//! SVO works in the horizontal plane: a conflict exists when the own
//! velocity lies inside the *velocity obstacle* — the cone of velocities
//! whose relative motion intersects the intruder's protection disc. The
//! *selective* rule resolves every conflict by turning to the **right**
//! (rules-of-the-air style), which makes the maneuver implicitly
//! cooperative: when both aircraft run SVO they turn in complementary
//! directions.
//!
//! The crate ships the geometric core ([`VelocityObstacle`]), the avoider
//! ([`SvoAvoider`]), and a lightweight stochastic 2-D encounter simulation
//! ([`Sim2dConfig`], [`run_encounter_2d`]) used as the system-under-test in
//! the GA-vs-random search comparison experiment.
//!
//! # Example
//!
//! ```
//! use uavca_svo::{run_encounter_2d, Scenario2d, Sim2dConfig};
//!
//! // Head-on at 150 ft/s each, 6000 ft apart, both running SVO.
//! let scenario = Scenario2d::head_on(6000.0, 150.0);
//! let outcome = run_encounter_2d(&Sim2dConfig::default(), &scenario, [true, true], 1);
//! assert!(!outcome.collided, "cooperative SVO resolves a head-on");
//!
//! let blind = run_encounter_2d(&Sim2dConfig::default(), &scenario, [false, false], 4);
//! assert!(blind.min_separation_ft < 100.0, "unequipped pair nearly collides");
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A 2-D vector (ft / ft-per-second in the horizontal plane).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec2 {
    /// East component.
    pub x: f64,
    /// North component.
    pub y: f64,
}

impl Vec2 {
    /// The zero vector.
    pub const ZERO: Vec2 = Vec2 { x: 0.0, y: 0.0 };

    /// Creates a vector.
    pub const fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// Creates the vector of length `speed` pointing along `heading_rad`
    /// (0 = +x, counter-clockwise positive).
    pub fn from_heading(heading_rad: f64, speed: f64) -> Self {
        Self::new(speed * heading_rad.cos(), speed * heading_rad.sin())
    }

    /// Euclidean norm.
    pub fn norm(self) -> f64 {
        self.x.hypot(self.y)
    }

    /// Dot product.
    pub fn dot(self, o: Vec2) -> f64 {
        self.x * o.x + self.y * o.y
    }

    /// 2-D cross product (z-component).
    pub fn cross(self, o: Vec2) -> f64 {
        self.x * o.y - self.y * o.x
    }

    /// Heading angle, radians.
    pub fn heading(self) -> f64 {
        self.y.atan2(self.x)
    }

    /// Rotates the vector by `angle_rad` (counter-clockwise positive).
    pub fn rotated(self, angle_rad: f64) -> Vec2 {
        let (s, c) = angle_rad.sin_cos();
        Vec2::new(self.x * c - self.y * s, self.x * s + self.y * c)
    }

    /// Distance to another point.
    pub fn distance(self, o: Vec2) -> f64 {
        (self - o).norm()
    }
}

impl std::ops::Add for Vec2 {
    type Output = Vec2;
    fn add(self, o: Vec2) -> Vec2 {
        Vec2::new(self.x + o.x, self.y + o.y)
    }
}

impl std::ops::Sub for Vec2 {
    type Output = Vec2;
    fn sub(self, o: Vec2) -> Vec2 {
        Vec2::new(self.x - o.x, self.y - o.y)
    }
}

impl std::ops::Mul<f64> for Vec2 {
    type Output = Vec2;
    fn mul(self, s: f64) -> Vec2 {
        Vec2::new(self.x * s, self.y * s)
    }
}

/// The velocity-obstacle test between one pair of aircraft.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VelocityObstacle {
    /// Relative position (intruder − own), ft.
    pub relative_position: Vec2,
    /// Protection-zone radius, ft.
    pub protection_radius_ft: f64,
}

impl VelocityObstacle {
    /// Builds the obstacle for an own/intruder pair.
    pub fn new(own_position: Vec2, intruder_position: Vec2, protection_radius_ft: f64) -> Self {
        Self {
            relative_position: intruder_position - own_position,
            protection_radius_ft,
        }
    }

    /// Whether the positions are already inside the protection zone.
    pub fn in_violation(&self) -> bool {
        self.relative_position.norm() <= self.protection_radius_ft
    }

    /// Whether own velocity `v_own` (given intruder velocity `v_int`) lies
    /// inside the velocity obstacle: the relative velocity points into the
    /// collision cone.
    pub fn contains(&self, v_own: Vec2, v_int: Vec2) -> bool {
        if self.in_violation() {
            return true;
        }
        let w = v_own - v_int; // relative velocity of own w.r.t. intruder
        let r = self.relative_position;
        let d = r.norm();
        if w.norm() < 1e-9 {
            return false;
        }
        // Approaching at all?
        if w.dot(r) <= 0.0 {
            return false;
        }
        // Angle between w and r below the cone half-angle asin(R/d)?
        let cos_angle = (w.dot(r) / (w.norm() * d)).clamp(-1.0, 1.0);
        let angle = cos_angle.acos();
        let half_angle = (self.protection_radius_ft / d).clamp(-1.0, 1.0).asin();
        angle < half_angle
    }

    /// Time until the protection zones first touch if velocities stay
    /// constant, or `None` when there is no predicted conflict.
    pub fn time_to_conflict(&self, v_own: Vec2, v_int: Vec2) -> Option<f64> {
        if self.in_violation() {
            return Some(0.0);
        }
        let w = v_own - v_int;
        let r = self.relative_position;
        // Solve |r - w t| = R for the smallest positive t.
        let a = w.dot(w);
        if a < 1e-12 {
            return None;
        }
        let b = -2.0 * r.dot(w);
        let c = r.dot(r) - self.protection_radius_ft * self.protection_radius_ft;
        let disc = b * b - 4.0 * a * c;
        if disc < 0.0 {
            return None;
        }
        let t = (-b - disc.sqrt()) / (2.0 * a);
        (t >= 0.0).then_some(t)
    }
}

/// The Selective Velocity Obstacle avoidance logic for one aircraft.
///
/// When a conflict is predicted within `lookahead_s`, the avoider searches
/// clockwise (rightward) heading changes in `resolution_step_rad`
/// increments until the velocity leaves the obstacle — the "selective"
/// right-turn rule that makes simultaneous maneuvers cooperative.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SvoAvoider {
    /// Protection-zone radius, ft.
    pub protection_radius_ft: f64,
    /// Only conflicts closer than this horizon trigger maneuvers, s.
    pub lookahead_s: f64,
    /// Granularity of the rightward heading search, rad.
    pub resolution_step_rad: f64,
}

impl Default for SvoAvoider {
    fn default() -> Self {
        Self {
            protection_radius_ft: 500.0,
            lookahead_s: 60.0,
            resolution_step_rad: 2.0_f64.to_radians(),
        }
    }
}

impl SvoAvoider {
    /// Decides the desired heading (radians) for the own-ship. Returns
    /// `None` when the current velocity is conflict-free (maintain course).
    pub fn desired_heading(
        &self,
        own_position: Vec2,
        own_velocity: Vec2,
        intruder_position: Vec2,
        intruder_velocity: Vec2,
    ) -> Option<f64> {
        let vo = VelocityObstacle::new(own_position, intruder_position, self.protection_radius_ft);
        let conflict = vo.contains(own_velocity, intruder_velocity)
            && vo
                .time_to_conflict(own_velocity, intruder_velocity)
                .is_some_and(|t| t <= self.lookahead_s);
        if !conflict {
            return None;
        }
        let speed = own_velocity.norm();
        let heading = own_velocity.heading();
        // Search rightward (clockwise = negative rotation) up to 180°.
        let steps = (std::f64::consts::PI / self.resolution_step_rad).ceil() as usize;
        for k in 1..=steps {
            let candidate = heading - k as f64 * self.resolution_step_rad;
            let v = Vec2::from_heading(candidate, speed);
            if !vo.contains(v, intruder_velocity) {
                return Some(candidate);
            }
        }
        // Fully enclosed (deep violation): turn hard right.
        Some(heading - std::f64::consts::FRAC_PI_2)
    }
}

/// One aircraft's kinematic state in the 2-D simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Uav2dState {
    /// Position, ft.
    pub position: Vec2,
    /// Heading, rad.
    pub heading_rad: f64,
    /// Speed, ft/s (constant during a run).
    pub speed_fps: f64,
}

impl Uav2dState {
    /// Current velocity vector.
    pub fn velocity(&self) -> Vec2 {
        Vec2::from_heading(self.heading_rad, self.speed_fps)
    }
}

/// A parameterized 2-D encounter: the planar analogue of the paper's
/// 9-parameter encoding (6 parameters — no vertical terms).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Scenario2d {
    /// Own speed, ft/s.
    pub own_speed_fps: f64,
    /// Time to the closest point of approach, s.
    pub time_to_cpa_s: f64,
    /// Horizontal miss distance at the CPA, ft.
    pub cpa_distance_ft: f64,
    /// Direction of the CPA offset, rad.
    pub cpa_angle_rad: f64,
    /// Intruder speed, ft/s.
    pub intruder_speed_fps: f64,
    /// Intruder heading, rad.
    pub intruder_heading_rad: f64,
}

/// Canonical parameter bounds for searches over [`Scenario2d`], in field
/// order: speeds 50–250 ft/s, T 20–60 s, R 0–400 ft, angles free.
pub const SCENARIO_2D_BOUNDS: [(f64, f64); 6] = [
    (50.0, 250.0),
    (20.0, 60.0),
    (0.0, 400.0),
    (-std::f64::consts::PI, std::f64::consts::PI),
    (50.0, 250.0),
    (-std::f64::consts::PI, std::f64::consts::PI),
];

impl Scenario2d {
    /// A zero-miss head-on meeting after `distance_ft / (2 speed)` seconds.
    pub fn head_on(distance_ft: f64, speed_fps: f64) -> Self {
        Self {
            own_speed_fps: speed_fps,
            time_to_cpa_s: distance_ft / (2.0 * speed_fps),
            cpa_distance_ft: 0.0,
            cpa_angle_rad: 0.0,
            intruder_speed_fps: speed_fps,
            intruder_heading_rad: std::f64::consts::PI,
        }
    }

    /// Flattens to the 6-gene search vector.
    pub fn to_vector(self) -> [f64; 6] {
        [
            self.own_speed_fps,
            self.time_to_cpa_s,
            self.cpa_distance_ft,
            self.cpa_angle_rad,
            self.intruder_speed_fps,
            self.intruder_heading_rad,
        ]
    }

    /// Rebuilds a scenario from the 6-gene vector.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != 6`.
    pub fn from_slice(v: &[f64]) -> Self {
        assert_eq!(v.len(), 6, "2-D scenario genome has 6 genes");
        Self {
            own_speed_fps: v[0],
            time_to_cpa_s: v[1],
            cpa_distance_ft: v[2],
            cpa_angle_rad: v[3],
            intruder_speed_fps: v[4],
            intruder_heading_rad: v[5],
        }
    }

    /// Instantiates initial states: own at the origin heading +x, intruder
    /// rolled back from the CPA (same construction as the 3-D generator).
    pub fn initial_states(&self) -> [Uav2dState; 2] {
        let own = Uav2dState {
            position: Vec2::ZERO,
            heading_rad: 0.0,
            speed_fps: self.own_speed_fps,
        };
        let own_at_cpa = own.position + own.velocity() * self.time_to_cpa_s;
        let offset = Vec2::from_heading(self.cpa_angle_rad, self.cpa_distance_ft);
        let intruder_velocity =
            Vec2::from_heading(self.intruder_heading_rad, self.intruder_speed_fps);
        let intruder_start = own_at_cpa + offset - intruder_velocity * self.time_to_cpa_s;
        let intruder = Uav2dState {
            position: intruder_start,
            heading_rad: self.intruder_heading_rad,
            speed_fps: self.intruder_speed_fps,
        };
        [own, intruder]
    }
}

/// Configuration of the 2-D encounter simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Sim2dConfig {
    /// Step size, s.
    pub dt_s: f64,
    /// Run length, s.
    pub max_time_s: f64,
    /// Maximum heading change per second, rad/s.
    pub turn_rate_rad_s: f64,
    /// Collision distance (both aircraft lost), ft.
    pub collision_radius_ft: f64,
    /// Std-dev of per-step heading disturbance, rad.
    pub heading_noise_rad: f64,
    /// Std-dev of sensed intruder position error, ft.
    pub sensor_noise_ft: f64,
    /// The avoidance logic parameters.
    pub avoider: SvoAvoider,
}

impl Default for Sim2dConfig {
    fn default() -> Self {
        Self {
            dt_s: 1.0,
            max_time_s: 100.0,
            turn_rate_rad_s: 6.0_f64.to_radians(),
            collision_radius_ft: 100.0,
            heading_noise_rad: 0.01,
            sensor_noise_ft: 30.0,
            avoider: SvoAvoider::default(),
        }
    }
}

/// Outcome of a 2-D encounter run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Outcome2d {
    /// Whether the pair came within the collision radius.
    pub collided: bool,
    /// Minimum separation over the run, ft.
    pub min_separation_ft: f64,
    /// Steps during which either aircraft was maneuvering.
    pub maneuver_steps: usize,
}

/// Runs one stochastic 2-D encounter. `equipped[i]` selects whether
/// aircraft `i` runs SVO; `seed` drives all noise.
pub fn run_encounter_2d(
    config: &Sim2dConfig,
    scenario: &Scenario2d,
    equipped: [bool; 2],
    seed: u64,
) -> Outcome2d {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut states = scenario.initial_states();
    let mut min_separation = states[0].position.distance(states[1].position);
    let mut collided = min_separation <= config.collision_radius_ft;
    let mut maneuver_steps = 0;
    let steps = (config.max_time_s / config.dt_s).ceil() as usize;

    for _ in 0..steps {
        // Decisions from (noisy) sensed state.
        let mut desired = [None, None];
        for i in 0..2 {
            if !equipped[i] {
                continue;
            }
            let j = 1 - i;
            let sensed_pos = states[j].position
                + Vec2::new(
                    gauss(&mut rng) * config.sensor_noise_ft,
                    gauss(&mut rng) * config.sensor_noise_ft,
                );
            desired[i] = config.avoider.desired_heading(
                states[i].position,
                states[i].velocity(),
                sensed_pos,
                states[j].velocity(),
            );
        }
        // Apply heading changes under the turn-rate limit + disturbance.
        let before = [states[0].position, states[1].position];
        for i in 0..2 {
            if let Some(target) = desired[i] {
                maneuver_steps += 1;
                let err = wrap_angle(target - states[i].heading_rad);
                let max_turn = config.turn_rate_rad_s * config.dt_s;
                states[i].heading_rad += err.clamp(-max_turn, max_turn);
            }
            states[i].heading_rad += gauss(&mut rng) * config.heading_noise_rad;
            let v = states[i].velocity();
            states[i].position = states[i].position + v * config.dt_s;
        }
        // Continuous proximity check along the step's straight-line motion
        // (endpoint-only sampling would miss fast crossings).
        let rel0 = before[0] - before[1];
        let rel1 = states[0].position - states[1].position;
        let d = segment_min_distance(rel0, rel1);
        min_separation = min_separation.min(d);
        if d <= config.collision_radius_ft {
            collided = true;
        }
    }
    Outcome2d {
        collided,
        min_separation_ft: min_separation,
        maneuver_steps,
    }
}

/// Minimum of `|rel0 + s (rel1 - rel0)|` over `s ∈ [0, 1]`.
fn segment_min_distance(rel0: Vec2, rel1: Vec2) -> f64 {
    let d = rel1 - rel0;
    let dd = d.dot(d);
    let s = if dd < 1e-12 {
        0.0
    } else {
        (-rel0.dot(d) / dd).clamp(0.0, 1.0)
    };
    (rel0 + d * s).norm()
}

fn wrap_angle(a: f64) -> f64 {
    let two_pi = std::f64::consts::TAU;
    let mut x = a % two_pi;
    if x > std::f64::consts::PI {
        x -= two_pi;
    } else if x <= -std::f64::consts::PI {
        x += two_pi;
    }
    x
}

fn gauss<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.gen();
        return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn vo_detects_head_on_and_clears_abeam() {
        let vo = VelocityObstacle::new(Vec2::ZERO, Vec2::new(5000.0, 0.0), 500.0);
        let own = Vec2::new(150.0, 0.0);
        let intr = Vec2::new(-150.0, 0.0);
        assert!(vo.contains(own, intr), "head-on closing is a conflict");
        // Intruder moving away.
        assert!(
            !vo.contains(own, Vec2::new(200.0, 0.0)),
            "slower chase never catches up? no: own 150 vs 200 away means diverging"
        );
        // Passing far abeam.
        let vo_abeam = VelocityObstacle::new(Vec2::ZERO, Vec2::new(5000.0, 3000.0), 500.0);
        assert!(!vo_abeam.contains(own, Vec2::new(-150.0, 0.0)));
    }

    #[test]
    fn vo_time_to_conflict_head_on() {
        let vo = VelocityObstacle::new(Vec2::ZERO, Vec2::new(6000.0, 0.0), 500.0);
        let t = vo
            .time_to_conflict(Vec2::new(150.0, 0.0), Vec2::new(-150.0, 0.0))
            .unwrap();
        // Zones touch when range = 500: (6000-500)/300 ≈ 18.33 s.
        assert!((t - 5500.0 / 300.0).abs() < 1e-6);
        // Diverging: no conflict.
        assert!(vo
            .time_to_conflict(Vec2::new(-150.0, 0.0), Vec2::new(150.0, 0.0))
            .is_none());
    }

    #[test]
    fn violation_is_immediate_conflict() {
        let vo = VelocityObstacle::new(Vec2::ZERO, Vec2::new(100.0, 0.0), 500.0);
        assert!(vo.in_violation());
        assert!(vo.contains(Vec2::ZERO, Vec2::ZERO));
        assert_eq!(vo.time_to_conflict(Vec2::ZERO, Vec2::ZERO), Some(0.0));
    }

    #[test]
    fn resolution_turns_right() {
        let avoider = SvoAvoider::default();
        let heading = avoider
            .desired_heading(
                Vec2::ZERO,
                Vec2::new(150.0, 0.0),
                Vec2::new(5000.0, 0.0),
                Vec2::new(-150.0, 0.0),
            )
            .expect("head-on must resolve");
        assert!(
            heading < 0.0,
            "selective rule turns right (clockwise): {heading}"
        );
        assert!(heading > -FRAC_PI_2, "a modest turn suffices: {heading}");
        // The resolved velocity must be conflict-free.
        let vo = VelocityObstacle::new(Vec2::ZERO, Vec2::new(5000.0, 0.0), 500.0);
        assert!(!vo.contains(Vec2::from_heading(heading, 150.0), Vec2::new(-150.0, 0.0)));
    }

    #[test]
    fn no_conflict_means_no_command() {
        let avoider = SvoAvoider::default();
        assert!(avoider
            .desired_heading(
                Vec2::ZERO,
                Vec2::new(150.0, 0.0),
                Vec2::new(0.0, 8000.0),
                Vec2::new(150.0, 0.0),
            )
            .is_none());
    }

    #[test]
    fn scenario_round_trip_and_cpa_geometry() {
        let s = Scenario2d {
            own_speed_fps: 120.0,
            time_to_cpa_s: 30.0,
            cpa_distance_ft: 250.0,
            cpa_angle_rad: 1.0,
            intruder_speed_fps: 180.0,
            intruder_heading_rad: 2.5,
        };
        assert_eq!(Scenario2d::from_slice(&s.to_vector()), s);
        let [own, intr] = s.initial_states();
        let own_cpa = own.position + own.velocity() * 30.0;
        let intr_cpa = intr.position + intr.velocity() * 30.0;
        assert!((own_cpa.distance(intr_cpa) - 250.0).abs() < 1e-6);
    }

    #[test]
    fn cooperative_svo_resolves_head_on_but_unequipped_collides() {
        // Disturbance makes single runs stochastic (the paper's reason for
        // evaluating encounters over many runs); compare collision counts
        // over a batch of seeds instead of one run.
        let cfg = Sim2dConfig::default();
        let scenario = Scenario2d::head_on(6000.0, 150.0);
        let seeds = 0..20;
        let mut unequipped_collisions = 0;
        let mut equipped_collisions = 0;
        let mut maneuvered = 0;
        for seed in seeds {
            let with = run_encounter_2d(&cfg, &scenario, [true, true], seed);
            if with.collided {
                equipped_collisions += 1;
            }
            if with.maneuver_steps > 0 {
                maneuvered += 1;
            }
            if run_encounter_2d(&cfg, &scenario, [false, false], seed).collided {
                unequipped_collisions += 1;
            }
        }
        assert!(
            unequipped_collisions >= 12,
            "unequipped head-on mostly collides: {unequipped_collisions}/20"
        );
        assert_eq!(
            equipped_collisions, 0,
            "cooperative SVO must resolve every run"
        );
        assert_eq!(maneuvered, 20, "every run requires a maneuver");
    }

    #[test]
    fn single_equipped_aircraft_still_helps() {
        let cfg = Sim2dConfig::default();
        let scenario = Scenario2d::head_on(6000.0, 150.0);
        let one = run_encounter_2d(&cfg, &scenario, [true, false], 5);
        assert!(!one.collided, "one-sided SVO should still avoid a head-on");
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let cfg = Sim2dConfig::default();
        let scenario = Scenario2d::head_on(5000.0, 120.0);
        let a = run_encounter_2d(&cfg, &scenario, [true, true], 11);
        let b = run_encounter_2d(&cfg, &scenario, [true, true], 11);
        assert_eq!(a, b);
        let c = run_encounter_2d(&cfg, &scenario, [true, true], 12);
        assert_ne!(a.min_separation_ft, c.min_separation_ft);
    }

    #[test]
    fn crossing_traffic_resolved_from_the_right() {
        // Intruder crossing from the left, right-of-way geometry.
        let cfg = Sim2dConfig::default();
        let scenario = Scenario2d {
            own_speed_fps: 150.0,
            time_to_cpa_s: 30.0,
            cpa_distance_ft: 0.0,
            cpa_angle_rad: 0.0,
            intruder_speed_fps: 150.0,
            intruder_heading_rad: -FRAC_PI_2, // southbound, crossing our track
        };
        let out = run_encounter_2d(&cfg, &scenario, [true, true], 8);
        assert!(!out.collided, "min sep {}", out.min_separation_ft);
    }

    #[test]
    fn wrap_angle_bounds() {
        for a in [-7.0, -PI, 0.0, PI, 7.0, 20.0] {
            let w = wrap_angle(a);
            assert!(w > -PI - 1e-9 && w <= PI + 1e-9);
        }
    }

    #[test]
    fn bounds_table_matches_genome_width() {
        assert_eq!(SCENARIO_2D_BOUNDS.len(), 6);
        let s = Scenario2d::head_on(6000.0, 150.0);
        assert_eq!(s.to_vector().len(), SCENARIO_2D_BOUNDS.len());
    }
}
