//! Property-based tests for the velocity-obstacle geometry and the SVO
//! resolution rule.

use proptest::prelude::*;
use uavca_svo::{SvoAvoider, Vec2, VelocityObstacle};

fn finite_vec2(range: f64) -> impl Strategy<Value = Vec2> {
    (-range..range, -range..range).prop_map(|(x, y)| Vec2::new(x, y))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `contains` and `time_to_conflict` agree: a velocity is inside the
    /// obstacle iff a future conflict time exists (outside the protection
    /// zone; inside, both report conflict immediately).
    #[test]
    fn contains_iff_time_to_conflict(
        rel in finite_vec2(20_000.0),
        v_own in finite_vec2(400.0),
        v_int in finite_vec2(400.0),
    ) {
        let vo = VelocityObstacle::new(Vec2::ZERO, rel, 500.0);
        let inside = vo.contains(v_own, v_int);
        let ttc = vo.time_to_conflict(v_own, v_int);
        if vo.in_violation() {
            prop_assert!(inside);
            prop_assert_eq!(ttc, Some(0.0));
        } else if inside {
            prop_assert!(ttc.is_some(), "conflict velocity must have a conflict time");
        } else if let Some(t) = ttc {
            // The closed cone boundary can disagree with the strict `<`
            // angular test by numerical hair; require the conflict to be
            // either far in the future or a grazing contact.
            let w = v_own - v_int;
            let closest = {
                // distance at time t must be ~the protection radius
                let px = rel.x - w.x * t;
                let py = rel.y - w.y * t;
                (px * px + py * py).sqrt()
            };
            prop_assert!((closest - 500.0).abs() < 1.0, "non-contained velocity with ttc {} reaching {}", t, closest);
        }
    }

    /// The resolution heading returned by SVO is always conflict-free and
    /// always a right (clockwise) turn relative to the current heading.
    #[test]
    fn resolution_exits_the_obstacle_rightward(
        dist in 1200.0f64..15_000.0,
        bearing in -std::f64::consts::PI..std::f64::consts::PI,
        own_speed in 60.0f64..250.0,
        int_speed in 60.0f64..250.0,
        int_heading in -std::f64::consts::PI..std::f64::consts::PI,
    ) {
        let intruder_pos = Vec2::from_heading(bearing, dist);
        let own_vel = Vec2::new(own_speed, 0.0);
        let int_vel = Vec2::from_heading(int_heading, int_speed);
        let avoider = SvoAvoider::default();
        if let Some(heading) = avoider.desired_heading(Vec2::ZERO, own_vel, intruder_pos, int_vel) {
            // Conflict-free after the turn (unless geometrically enclosed —
            // the hard-right fallback at π/2).
            let resolved = Vec2::from_heading(heading, own_speed);
            let vo = VelocityObstacle::new(Vec2::ZERO, intruder_pos, avoider.protection_radius_ft);
            let fallback = (heading - (-std::f64::consts::FRAC_PI_2)).abs() < 1e-9;
            if !fallback {
                prop_assert!(!vo.contains(resolved, int_vel),
                    "resolved heading {} must exit the obstacle", heading);
            }
            // Rightward: the new heading is clockwise of the old one.
            prop_assert!(heading < 0.0 + 1e-12, "turns must be rightward: {}", heading);
        }
    }

    /// Rotation preserves vector length.
    #[test]
    fn rotation_is_an_isometry(v in finite_vec2(1000.0), angle in -10.0f64..10.0) {
        let r = v.rotated(angle);
        prop_assert!((r.norm() - v.norm()).abs() < 1e-9);
    }

    /// Scenario round trip through the 6-gene vector.
    #[test]
    fn scenario_vector_round_trip(
        own in 50.0f64..250.0,
        t in 20.0f64..60.0,
        r in 0.0f64..400.0,
        theta in -3.0f64..3.0,
        int in 50.0f64..250.0,
        heading in -3.0f64..3.0,
    ) {
        let s = uavca_svo::Scenario2d {
            own_speed_fps: own,
            time_to_cpa_s: t,
            cpa_distance_ft: r,
            cpa_angle_rad: theta,
            intruder_speed_fps: int,
            intruder_heading_rad: heading,
        };
        prop_assert_eq!(uavca_svo::Scenario2d::from_slice(&s.to_vector()), s);
        // CPA geometry holds exactly.
        let [o, i] = s.initial_states();
        let d = (o.position + o.velocity() * t).distance(i.position + i.velocity() * t);
        prop_assert!((d - r).abs() < 1e-6);
    }
}
