//! Property-based tests for the vertical logic: τ estimation, dynamics
//! and table-lookup invariants under random inputs.

use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::sync::OnceLock;
use uavca_acasx::{
    estimate_tau, AcasConfig, Advisory, LogicTable, LookupScratch, StateBatch, VerticalDynamics,
};
use uavca_sim::Sense;

fn table() -> &'static LogicTable {
    static TABLE: OnceLock<LogicTable> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut cfg = AcasConfig::coarse();
        cfg.h_points = 9;
        cfg.rate_points = 5;
        cfg.tau_max_s = 8;
        LogicTable::solve(&cfg)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// τ estimates are non-negative (or infinite) and the projected miss
    /// distance never exceeds the current range for converging geometry.
    #[test]
    fn tau_estimate_invariants(
        rx in -20_000.0f64..20_000.0,
        ry in -20_000.0f64..20_000.0,
        vx in -500.0f64..500.0,
        vy in -500.0f64..500.0,
    ) {
        let est = estimate_tau(rx, ry, vx, vy, 3000.0);
        prop_assert!(est.tau_s >= 0.0);
        prop_assert!(est.hmd_ft >= 0.0);
        prop_assert!((est.range_ft - (rx * rx + ry * ry).sqrt()).abs() < 1e-6);
        if est.tau_s.is_finite() && !est.diverging && est.tau_s > 0.0 {
            prop_assert!(
                est.hmd_ft <= est.range_ft + 1e-6,
                "closest approach cannot exceed current range: hmd {} range {}",
                est.hmd_ft,
                est.range_ft
            );
        }
    }

    /// Own-ship responses never exceed the vertical-rate envelope and move
    /// toward the advisory target.
    #[test]
    fn own_response_is_bounded_and_directed(
        rate in -45.0f64..45.0,
        adv_idx in 0usize..7,
    ) {
        let d = VerticalDynamics::default();
        let adv = Advisory::from_index(adv_idx);
        let next = d.own_response(rate, adv).next_rate_fps;
        prop_assert!(next.abs() <= d.max_rate_fps + 1e-9);
        if let Some(target) = adv.target_rate_fps(rate) {
            let before = (target - rate.clamp(-d.max_rate_fps, d.max_rate_fps)).abs();
            let after = (target - next).abs();
            prop_assert!(after <= before + 1e-9, "response must not move away from target");
        } else {
            prop_assert!((next - rate.clamp(-d.max_rate_fps, d.max_rate_fps)).abs() < 1e-9);
        }
    }

    /// Successor distributions are proper for arbitrary kinematics.
    #[test]
    fn successor_mass_is_one(
        h in -2000.0f64..2000.0,
        own in -45.0f64..45.0,
        intr in -45.0f64..45.0,
        adv_idx in 0usize..7,
    ) {
        let d = VerticalDynamics::default();
        let succ = d.successors(h, own, intr, Advisory::from_index(adv_idx));
        let mass: f64 = succ.iter().map(|s| s.3).sum();
        prop_assert!((mass - 1.0).abs() < 1e-9);
        for (_, o, i, p) in succ {
            prop_assert!(p > 0.0);
            prop_assert!(o.abs() <= d.max_rate_fps + 1e-9);
            prop_assert!(i.abs() <= d.max_rate_fps + 1e-9);
        }
    }

    /// Q-lookups are finite everywhere in (and beyond) the grid box, and
    /// the masked argmax never returns a forbidden-sense advisory.
    #[test]
    fn table_lookup_is_total_and_mask_is_respected(
        h in -5000.0f64..5000.0,
        own in -80.0f64..80.0,
        intr in -80.0f64..80.0,
        tau in -5.0f64..60.0,
        prev_idx in 0usize..7,
    ) {
        let t = table();
        let prev = Advisory::from_index(prev_idx);
        let q = t.q_values(h, own, intr, tau, prev);
        prop_assert!(q.iter().all(|v| v.is_finite()));
        for forbidden in [uavca_sim::Sense::Up, uavca_sim::Sense::Down] {
            let best = t.best_advisory(h, own, intr, tau, prev, Some(forbidden), 0.0);
            prop_assert_ne!(best.sense(), Some(forbidden));
        }
    }

    /// The batched structure-of-arrays lookups are bit-identical to the
    /// scalar path across random states, τ values (including out-of-range)
    /// and previous advisories, and across repeated scratch reuse.
    #[test]
    fn batched_lookups_are_bit_identical_to_scalar(
        seed in 0u64..u64::MAX,
        n in 1usize..64,
        hysteresis in 0.0f64..10.0,
    ) {
        let t = table();
        let mut rng = StdRng::seed_from_u64(seed);
        let h: Vec<f64> = (0..n).map(|_| rng.gen_range(-5000.0..5000.0)).collect();
        let own: Vec<f64> = (0..n).map(|_| rng.gen_range(-80.0..80.0)).collect();
        let intr: Vec<f64> = (0..n).map(|_| rng.gen_range(-80.0..80.0)).collect();
        let tau: Vec<f64> = (0..n).map(|_| rng.gen_range(-5.0..60.0)).collect();
        let prev: Vec<Advisory> = (0..n)
            .map(|_| Advisory::from_index(rng.gen_range(0usize..7)))
            .collect();
        let forbidden: Vec<Option<Sense>> = (0..n)
            .map(|_| match rng.gen_range(0usize..3) {
                0 => None,
                1 => Some(Sense::Up),
                _ => Some(Sense::Down),
            })
            .collect();
        let batch = StateBatch {
            h_ft: &h,
            own_rate_fps: &own,
            intruder_rate_fps: &intr,
            tau_s: &tau,
            previous: &prev,
        };

        let mut scratch = LookupScratch::default();
        let mut q_batch = Vec::new();
        let mut best_batch = Vec::new();
        // Two passes through the same scratch: reuse must not change bits.
        for pass in 0..2 {
            t.q_values_batch(&batch, &mut scratch, &mut q_batch);
            t.best_advisory_batch(&batch, &forbidden, hysteresis, &mut scratch, &mut best_batch);
            prop_assert_eq!(q_batch.len(), n, "pass {}", pass);
            for i in 0..n {
                let q_scalar = t.q_values(h[i], own[i], intr[i], tau[i], prev[i]);
                for a in 0..Advisory::COUNT {
                    prop_assert_eq!(
                        q_batch[i][a].to_bits(),
                        q_scalar[a].to_bits(),
                        "pass {} query {} action {}: {} vs {}",
                        pass, i, a, q_batch[i][a], q_scalar[a]
                    );
                }
                let best_scalar = t.best_advisory(
                    h[i], own[i], intr[i], tau[i], prev[i], forbidden[i], hysteresis,
                );
                prop_assert_eq!(best_batch[i], best_scalar, "pass {} query {}", pass, i);
            }
        }
    }
}
