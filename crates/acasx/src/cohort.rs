use std::sync::Arc;

use uavca_sim::{CohortAvoider, CohortContext, ManeuverCommand};

use crate::online::{advisory_command, alerting_eligible, decision_mask, effective_hysteresis};
use crate::{estimate_tau, Advisory, AdvisorySet, LogicTable, LookupScratch, StateBatch};

/// The cohort form of [`crate::AcasXu`]: one batched Q-table query per tick
/// instead of one scalar lookup per encounter.
///
/// Per lockstep tick it runs three passes:
///
/// 1. **Gather** — per entry, estimate τ from the ADS-B geometry and apply
///    the alerting-eligibility gate. Ineligible entries decide clear of
///    conflict without touching the table (exactly the scalar early-out);
///    eligible entries append their lookup state, decision mask and
///    hysteresis bonus to dense batch columns.
/// 2. **Lookup** — one [`LogicTable::best_advisory_batch_masked`] call over
///    the dense columns. The batch path routes through the same unrolled
///    Q-row kernel and masked argmax as the scalar path, so each entry's
///    advisory is bit-identical to what [`crate::AcasXu`] would have
///    chosen.
/// 3. **Scatter** — write each advisory back to its entry, update the
///    per-lane advisory memory, and emit the maneuver command.
///
/// Decision state (the advisory in force) is held per cohort lane, indexed
/// by [`CohortContext::lane`]. Track smoothing
/// ([`crate::AcasXu::with_tracking`]) is not supported on the cohort path —
/// campaigns run the raw-report configuration, and traced/smoothed runs use
/// the scalar avoider.
pub struct AcasXuCohort {
    table: Arc<LogicTable>,
    horizon_s: f64,
    hysteresis_bonus: f64,
    hmd_threshold_ft: f64,
    dmod_ft: f64,
    /// Advisory in force, per lane. The *only* per-lane state this
    /// avoider carries — everything in `cols` is per-tick scratch.
    previous: Vec<Advisory>,
    scratch: LookupScratch,
    cols: GatherColumns,
}

/// Dense per-tick batch columns (eligible entries only), reused across
/// ticks — zero steady-state allocation.
///
/// Kept as a separate struct (the `TickBuffers` idiom from `uavca-sim`)
/// rather than as fields of [`AcasXuCohort`]: these columns are rebuilt
/// from scratch every `decide_cohort` call and carry no state between
/// ticks, so they must *not* participate in the lane protocol
/// (`swap_lanes`/`reset_lane`/`ensure_lanes`). The type split makes that
/// distinction checkable by the audit lane-coverage rule (A5).
#[derive(Default)]
struct GatherColumns {
    h_ft: Vec<f64>,
    own_rate_fps: Vec<f64>,
    intruder_rate_fps: Vec<f64>,
    tau_s: Vec<f64>,
    prev: Vec<Advisory>,
    masks: Vec<AdvisorySet>,
    hysteresis: Vec<f64>,
    /// Context entry index of each batch column, for the scatter pass.
    entries: Vec<usize>,
    best: Vec<Advisory>,
}

impl GatherColumns {
    fn clear(&mut self) {
        self.h_ft.clear();
        self.own_rate_fps.clear();
        self.intruder_rate_fps.clear();
        self.tau_s.clear();
        self.prev.clear();
        self.masks.clear();
        self.hysteresis.clear();
        self.entries.clear();
        // `best` is overwritten wholesale by the batched lookup.
    }
}

impl std::fmt::Debug for AcasXuCohort {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AcasXuCohort")
            .field("lanes", &self.previous.len())
            .field("horizon_s", &self.horizon_s)
            .finish_non_exhaustive()
    }
}

impl AcasXuCohort {
    /// Creates a cohort avoider over a shared solved table with the same
    /// default online parameters as [`crate::AcasXu::new`] (hysteresis 3
    /// cost units, HMD threshold 1500 ft, DMOD 3000 ft, no track
    /// smoothing).
    pub fn new(table: Arc<LogicTable>) -> Self {
        let horizon_s = table.horizon_s();
        Self {
            table,
            horizon_s,
            hysteresis_bonus: 3.0,
            hmd_threshold_ft: 1500.0,
            dmod_ft: 3000.0,
            previous: Vec::new(),
            scratch: LookupScratch::default(),
            cols: GatherColumns::default(),
        }
    }
}

impl CohortAvoider for AcasXuCohort {
    fn ensure_lanes(&mut self, lanes: usize) {
        if self.previous.len() < lanes {
            self.previous.resize(lanes, Advisory::Coc);
        }
    }

    fn reset_lane(&mut self, lane: usize) {
        self.previous[lane] = Advisory::Coc;
    }

    fn swap_lanes(&mut self, a: usize, b: usize) {
        self.previous.swap(a, b);
    }

    fn decide_cohort(&mut self, ctx: &CohortContext<'_>, out: &mut Vec<Option<ManeuverCommand>>) {
        let n = ctx.len();
        debug_assert!(
            ctx.lane.iter().all(|&lane| lane < self.previous.len()),
            "ensure_lanes must cover every context lane before deciding"
        );

        // Pass 1: τ estimation and the alerting gate; gather eligible
        // entries into dense batch columns.
        self.cols.clear();
        for e in 0..n {
            let own = &ctx.own[e];
            let report = &ctx.intruder[e];
            let rel_pos = report.position - own.position;
            let rel_vel = report.velocity - own.velocity;
            let tau = estimate_tau(rel_pos.x, rel_pos.y, rel_vel.x, rel_vel.y, self.dmod_ft);
            if alerting_eligible(&tau, self.horizon_s, self.hmd_threshold_ft, self.dmod_ft) {
                let previous = self.previous[ctx.lane[e]];
                self.cols.h_ft.push(rel_pos.z);
                self.cols.own_rate_fps.push(own.velocity.z);
                self.cols.intruder_rate_fps.push(report.velocity.z);
                self.cols.tau_s.push(tau.tau_s);
                self.cols.prev.push(previous);
                self.cols
                    .masks
                    .push(decision_mask(previous, ctx.forbidden[e]));
                self.cols
                    .hysteresis
                    .push(effective_hysteresis(previous, self.hysteresis_bonus));
                self.cols.entries.push(e);
            }
        }

        // Pass 2: one batched masked lookup over every eligible entry.
        let GatherColumns {
            best,
            h_ft,
            own_rate_fps,
            intruder_rate_fps,
            tau_s,
            prev,
            masks,
            hysteresis,
            ..
        } = &mut self.cols;
        self.table.best_advisory_batch_masked(
            &StateBatch {
                h_ft,
                own_rate_fps,
                intruder_rate_fps,
                tau_s,
                previous: prev,
            },
            masks,
            hysteresis,
            &mut self.scratch,
            best,
        );

        // Pass 3: merge the lookup results back over the entry range
        // (`entries` is ascending by construction — one cursor walk, no
        // scatter buffer), update per-lane advisory memory, emit commands.
        out.clear();
        let mut column = 0;
        for e in 0..n {
            let advisory = if self.cols.entries.get(column) == Some(&e) {
                column += 1;
                self.cols.best[column - 1]
            } else {
                Advisory::Coc
            };
            self.previous[ctx.lane[e]] = advisory;
            out.push(advisory_command(advisory, ctx.own[e].velocity.z));
        }
    }

    fn name(&self) -> &'static str {
        "acas-xu"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AcasConfig, AcasXu};
    use uavca_sim::{
        AvoiderContext, CohortJob, CollisionAvoider, EncounterCohort, EncounterOutcome,
        EncounterWorld, SimConfig, UavState, Unequipped, UnequippedCohort, Vec3,
    };

    fn table() -> Arc<LogicTable> {
        Arc::new(LogicTable::solve(&AcasConfig::coarse()))
    }

    fn head_on(distance_ft: f64, dz_ft: f64) -> [UavState; 2] {
        [
            UavState::new(Vec3::ZERO, Vec3::new(150.0, 0.0, 0.0)),
            UavState::new(
                Vec3::new(distance_ft, dz_ft, 0.0),
                Vec3::new(-160.0, 0.0, 0.0),
            ),
        ]
    }

    fn scalar_outcome(
        config: SimConfig,
        table: &Arc<LogicTable>,
        job: &CohortJob,
        equipped: [bool; 2],
    ) -> EncounterOutcome {
        let make = |on: bool| -> Box<dyn CollisionAvoider> {
            if on {
                Box::new(AcasXu::new(Arc::clone(table)))
            } else {
                Box::new(Unequipped::new())
            }
        };
        EncounterWorld::new(
            config,
            job.initial,
            [make(equipped[0]), make(equipped[1])],
            job.seed,
        )
        .run()
    }

    fn jobs() -> Vec<CohortJob> {
        (0..9)
            .map(|k| CohortJob {
                initial: head_on(5000.0 + 700.0 * k as f64, 40.0 * k as f64 - 160.0),
                seed: 77 + k,
            })
            .collect()
    }

    #[test]
    fn cohort_advisories_match_scalar_acas_xu_outcomes() {
        let table = table();
        let config = SimConfig::default();
        let jobs = jobs();
        for width in [1, 4, 9] {
            let mut cohort = EncounterCohort::new(
                config,
                [
                    Box::new(AcasXuCohort::new(Arc::clone(&table))),
                    Box::new(AcasXuCohort::new(Arc::clone(&table))),
                ],
                width,
            );
            let outcomes = cohort.run(&jobs);
            for (job, outcome) in jobs.iter().zip(&outcomes) {
                assert_eq!(
                    *outcome,
                    scalar_outcome(config, &table, job, [true, true]),
                    "width {width}"
                );
            }
        }
    }

    #[test]
    fn mixed_equipage_cohort_matches_scalar() {
        let table = table();
        let config = SimConfig::default();
        let jobs = jobs();
        let mut cohort = EncounterCohort::new(
            config,
            [
                Box::new(AcasXuCohort::new(Arc::clone(&table))),
                Box::new(UnequippedCohort::new()),
            ],
            4,
        );
        let outcomes = cohort.run(&jobs);
        for (job, outcome) in jobs.iter().zip(&outcomes) {
            assert_eq!(*outcome, scalar_outcome(config, &table, job, [true, false]));
        }
    }

    /// Drives one lane through a deterministic closing geometry and checks
    /// every per-tick command against the scalar avoider — including the
    /// hysteresis/sense-lock state carried between ticks.
    #[test]
    fn per_tick_commands_match_scalar_avoider() {
        let table = table();
        let mut scalar = AcasXu::new(Arc::clone(&table));
        let mut cohort = AcasXuCohort::new(Arc::clone(&table));
        cohort.ensure_lanes(1);
        cohort.reset_lane(0);
        assert_eq!(cohort.name(), scalar.name());

        let dt = 1.0;
        let mut out = Vec::new();
        for step in 0..40 {
            let t = step as f64 * dt;
            let own = UavState::new(
                Vec3::new(150.0 * t, 0.0, 5.0 * t),
                Vec3::new(150.0, 0.0, 5.0),
            );
            let intr = UavState::new(
                Vec3::new(7000.0 - 160.0 * t, 50.0, 0.0),
                Vec3::new(-160.0, 0.0, 0.0),
            );
            let report = uavca_sim::AdsbReport {
                sender: 1,
                position: intr.position,
                velocity: intr.velocity,
                time_s: t,
            };
            let forbidden = if step % 3 == 0 {
                Some(uavca_sim::Sense::Up)
            } else {
                None
            };
            let want = scalar.decide(&AvoiderContext {
                own: &own,
                intruder: &report,
                forbidden_sense: forbidden,
                time_s: t,
                dt_s: dt,
            });
            cohort.decide_cohort(
                &CohortContext {
                    own: std::slice::from_ref(&own),
                    intruder: std::slice::from_ref(&report),
                    forbidden: &[forbidden],
                    time_s: &[t],
                    lane: &[0],
                    dt_s: dt,
                },
                &mut out,
            );
            assert_eq!(out.as_slice(), &[want], "step {step}");
        }
    }
}
