use std::sync::Arc;

use serde::{Deserialize, Serialize};
use uavca_sim::{
    AlphaBetaTracker, AvoiderContext, CollisionAvoider, ManeuverCommand, Sense, SenseSet,
};

use crate::{Advisory, AdvisorySet, LogicTable};

/// The horizontal-geometry part of the online state estimation: time to
/// the closest point of approach and projected miss distance, computed
/// from (noisy) ADS-B relative state.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TauEstimate {
    /// Estimated time to horizontal CPA, s (`f64::INFINITY` when
    /// diverging and outside the protection range).
    pub tau_s: f64,
    /// Projected horizontal miss distance at the CPA, ft.
    pub hmd_ft: f64,
    /// Current horizontal range, ft.
    pub range_ft: f64,
    /// Whether the horizontal geometry is diverging.
    pub diverging: bool,
}

/// Estimates τ and the horizontal miss distance from relative position and
/// velocity (horizontal components, ft and ft/s).
///
/// Inside `dmod_ft` range the estimate saturates to τ = 0 even when
/// diverging — the "modified tau" protection volume used by TCAS-family
/// logics so slow, already-close geometries still alert.
pub fn estimate_tau(rx: f64, ry: f64, vx: f64, vy: f64, dmod_ft: f64) -> TauEstimate {
    let range = (rx * rx + ry * ry).sqrt();
    let closure = rx * vx + ry * vy; // < 0 when converging
    let v2 = vx * vx + vy * vy;
    if v2 < 1e-9 || closure >= 0.0 {
        // No relative motion, or diverging.
        let inside = range <= dmod_ft;
        return TauEstimate {
            tau_s: if inside { 0.0 } else { f64::INFINITY },
            hmd_ft: range,
            range_ft: range,
            diverging: closure >= 0.0 && !inside,
        };
    }
    let tau = -closure / v2;
    let mx = rx + vx * tau;
    let my = ry + vy * tau;
    let hmd = (mx * mx + my * my).sqrt();
    TauEstimate {
        tau_s: tau,
        hmd_ft: hmd,
        range_ft: range,
        diverging: false,
    }
}

/// Whether the alerting entry criteria hold: τ within the table horizon
/// and either the projected miss distance inside the protection threshold
/// or the raw range inside DMOD. Shared by the scalar and cohort decision
/// paths so their eligibility pruning is identical.
#[inline]
pub(crate) fn alerting_eligible(
    tau: &TauEstimate,
    horizon_s: f64,
    hmd_threshold_ft: f64,
    dmod_ft: f64,
) -> bool {
    tau.tau_s <= horizon_s && (tau.hmd_ft <= hmd_threshold_ft || tau.range_ft <= dmod_ft)
}

/// The advisory mask in force for one decision: the coordination
/// restriction combined with the sense lock.
///
/// Sense lock: once an advisory with a sense is active, the logic stays in
/// that sense family (or weakens to COC) unless the coordination
/// restriction forbids it — reversals happen only when the peer claims our
/// sense with priority. This is the TCAS-family anti-chattering rule;
/// reversal costs in the offline table discourage but cannot forbid
/// flapping in perfectly symmetric geometries.
#[inline]
pub(crate) fn decision_mask(previous: Advisory, forbidden: Option<Sense>) -> AdvisorySet {
    decision_mask_set(previous, SenseSet::from_option(forbidden))
}

/// [`decision_mask`] over a multi-party restriction set: identical rule,
/// except that with *both* senses forbidden (possible only with ≥ 3
/// coordinating aircraft) the mask collapses to COC alone. For sets of at
/// most one sense this computes exactly what `decision_mask` computes —
/// `SenseSet::from_option` is a bijection onto such sets — which is what
/// keeps the k = 2 multi-aircraft path bit-identical to the pairwise one.
#[inline]
pub(crate) fn decision_mask_set(previous: Advisory, forbidden: SenseSet) -> AdvisorySet {
    let locked = match previous.sense() {
        Some(s) if !forbidden.contains(s) => Some(s),
        _ => None,
    };
    AdvisorySet::from_fn(|adv| {
        if adv.sense().is_some_and(|s| forbidden.contains(s)) {
            return false;
        }
        match (adv.sense(), locked) {
            (Some(s), Some(l)) => s == l,
            _ => true,
        }
    })
}

/// The hysteresis bonus actually applied for one decision: the incumbent
/// advisory keeps its bonus only while alerting (COC gets none, so initial
/// alerts are not delayed).
#[inline]
pub(crate) fn effective_hysteresis(previous: Advisory, bonus: f64) -> f64 {
    if previous.is_alert() {
        bonus
    } else {
        0.0
    }
}

/// Converts a selected advisory into the command handed to the simulation
/// (`None` for COC) — shared so the scalar and cohort paths emit identical
/// maneuvers.
#[inline]
pub(crate) fn advisory_command(advisory: Advisory, own_rate_fps: f64) -> Option<ManeuverCommand> {
    advisory.sense().map(|sense| ManeuverCommand {
        target_vertical_rate_fps: advisory
            .target_rate_fps(own_rate_fps)
            .expect("alerting advisories define a target"),
        sense,
        label: advisory.label(),
    })
}

/// The online ACAS XU-like collision avoidance system: wraps a solved
/// [`LogicTable`] behind the [`CollisionAvoider`] interface of the
/// simulation.
///
/// Each decision step it estimates τ from the intruder's ADS-B report,
/// checks the alerting entry criteria (τ within the table horizon and the
/// projected miss distance within the protection threshold), interpolates
/// the Q-table, applies coordination masking and hysteresis, and issues
/// the chosen advisory as a vertical-rate command.
#[derive(Debug, Clone)]
pub struct AcasXu {
    table: Arc<LogicTable>,
    previous: Advisory,
    /// Cached per-decision constants: the table horizon in seconds and the
    /// state-offset base of `previous`'s block, refreshed only when the
    /// advisory changes instead of being recomputed every `decide`.
    horizon_s: f64,
    prev_offset: usize,
    /// Q-value bonus retained by the current advisory (anti-chattering).
    hysteresis_bonus: f64,
    /// Projected-miss-distance alerting threshold, ft.
    hmd_threshold_ft: f64,
    /// Range-based protection volume ("modified tau" floor), ft.
    dmod_ft: f64,
    /// Optional α-β smoothing of the intruder track before τ estimation.
    tracker: Option<AlphaBetaTracker>,
}

impl AcasXu {
    /// Creates an avoider over a shared solved table with default online
    /// parameters (hysteresis 3 cost units, HMD threshold 1500 ft, DMOD
    /// 3000 ft, no track smoothing).
    pub fn new(table: Arc<LogicTable>) -> Self {
        let horizon_s = table.horizon_s();
        let prev_offset = table.prev_offset(Advisory::Coc);
        Self {
            table,
            previous: Advisory::Coc,
            horizon_s,
            prev_offset,
            hysteresis_bonus: 3.0,
            hmd_threshold_ft: 1500.0,
            dmod_ft: 3000.0,
            tracker: None,
        }
    }

    /// Enables α-β smoothing of the intruder's ADS-B track before τ
    /// estimation and table lookup — the state-estimation front end the
    /// deployed ACAS X systems interpose between surveillance and logic
    /// (paper Section IV's state-uncertainty concern).
    pub fn with_tracking(mut self, tracker: AlphaBetaTracker) -> Self {
        self.tracker = Some(tracker);
        self
    }

    /// Sets the hysteresis bonus (cost units).
    pub fn hysteresis_bonus(mut self, bonus: f64) -> Self {
        self.hysteresis_bonus = bonus;
        self
    }

    /// Sets the projected-miss-distance alerting threshold, ft.
    pub fn hmd_threshold_ft(mut self, ft: f64) -> Self {
        self.hmd_threshold_ft = ft;
        self
    }

    /// Sets the range protection volume, ft.
    pub fn dmod_ft(mut self, ft: f64) -> Self {
        self.dmod_ft = ft;
        self
    }

    /// The advisory currently in force.
    pub fn current_advisory(&self) -> Advisory {
        self.previous
    }

    /// The shared logic table.
    pub fn table(&self) -> &Arc<LogicTable> {
        &self.table
    }

    /// The full decision step under an explicit restriction set — the
    /// single body behind both [`CollisionAvoider::decide`] (pairwise,
    /// restriction from `ctx.forbidden_sense`) and
    /// [`CollisionAvoider::decide_multi`] (n-party, restriction passed
    /// in). Sharing the body is what makes the k = 2 multi path
    /// bit-identical to the pairwise path by construction.
    fn decide_masked(
        &mut self,
        ctx: &AvoiderContext<'_>,
        forbidden: SenseSet,
    ) -> Option<ManeuverCommand> {
        let (intruder_pos, intruder_vel) = match &mut self.tracker {
            Some(tracker) => tracker.update(ctx.intruder),
            None => (ctx.intruder.position, ctx.intruder.velocity),
        };
        let rel_pos = intruder_pos - ctx.own.position;
        let rel_vel = intruder_vel - ctx.own.velocity;
        let tau = estimate_tau(rel_pos.x, rel_pos.y, rel_vel.x, rel_vel.y, self.dmod_ft);

        let eligible = alerting_eligible(&tau, self.horizon_s, self.hmd_threshold_ft, self.dmod_ft);

        let advisory = if eligible {
            self.table.best_advisory_masked_with_offset(
                rel_pos.z,
                ctx.own.velocity.z,
                intruder_vel.z,
                tau.tau_s,
                self.previous,
                self.prev_offset,
                decision_mask_set(self.previous, forbidden),
                effective_hysteresis(self.previous, self.hysteresis_bonus),
            )
        } else {
            Advisory::Coc
        };
        if advisory != self.previous {
            self.previous = advisory;
            self.prev_offset = self.table.prev_offset(advisory);
        }

        advisory_command(advisory, ctx.own.velocity.z)
    }
}

impl CollisionAvoider for AcasXu {
    fn decide(&mut self, ctx: &AvoiderContext<'_>) -> Option<ManeuverCommand> {
        self.decide_masked(ctx, SenseSet::from_option(ctx.forbidden_sense))
    }

    fn decide_multi(
        &mut self,
        ctx: &AvoiderContext<'_>,
        forbidden: SenseSet,
    ) -> Option<ManeuverCommand> {
        // Unlike the trait's default bridge, this keeps the advisory
        // memory (previous advisory, hysteresis offset) advancing even
        // when both senses are forbidden: the mask collapses to COC and
        // the state machine records the stand-down.
        self.decide_masked(ctx, forbidden)
    }

    fn reset(&mut self) {
        self.previous = Advisory::Coc;
        self.prev_offset = self.table.prev_offset(Advisory::Coc);
        if let Some(tracker) = &mut self.tracker {
            tracker.reset();
        }
    }

    fn name(&self) -> &'static str {
        "acas-xu"
    }

    fn clone_boxed(&self) -> Box<dyn CollisionAvoider> {
        // Cheap: the logic table is shared behind an `Arc`; only the
        // advisory memory (previous advisory, hysteresis offset,
        // tracker filter state) is per-instance. This is the state
        // importance-splitting checkpoints must carry into branches.
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::test_support::coarse_table;
    use uavca_sim::{AdsbReport, Sense, UavState, Vec3};

    fn table() -> Arc<LogicTable> {
        Arc::new(coarse_table().clone())
    }

    fn ctx<'a>(
        own: &'a UavState,
        intruder: &'a AdsbReport,
        forbidden: Option<Sense>,
    ) -> AvoiderContext<'a> {
        AvoiderContext {
            own,
            intruder,
            forbidden_sense: forbidden,
            time_s: 0.0,
            dt_s: 1.0,
        }
    }

    fn report(position: Vec3, velocity: Vec3) -> AdsbReport {
        AdsbReport {
            sender: 1,
            position,
            velocity,
            time_s: 0.0,
        }
    }

    #[test]
    fn tau_estimate_head_on() {
        // 3000 ft ahead, closing at 300 ft/s: tau = 10 s, hmd = 0.
        let t = estimate_tau(3000.0, 0.0, -300.0, 0.0, 3000.0);
        assert!((t.tau_s - 10.0).abs() < 1e-9);
        assert!(t.hmd_ft < 1e-9);
        assert!(!t.diverging);
    }

    #[test]
    fn tau_estimate_offset_pass() {
        // Passing 1000 ft abeam: hmd = 1000 regardless of range.
        let t = estimate_tau(5000.0, 1000.0, -250.0, 0.0, 3000.0);
        assert!((t.hmd_ft - 1000.0).abs() < 1e-6);
        assert!((t.tau_s - 20.0).abs() < 1e-9);
    }

    #[test]
    fn tau_estimate_diverging_far_is_infinite() {
        let t = estimate_tau(5000.0, 0.0, 100.0, 0.0, 3000.0);
        assert!(t.tau_s.is_infinite());
        assert!(t.diverging);
    }

    #[test]
    fn tau_estimate_diverging_close_saturates_to_zero() {
        let t = estimate_tau(1000.0, 0.0, 50.0, 0.0, 3000.0);
        assert_eq!(t.tau_s, 0.0, "inside DMOD the logic still engages");
    }

    #[test]
    fn alerts_on_collision_course_and_stays_quiet_when_clear() {
        let mut acas = AcasXu::new(table());
        let own = UavState::new(Vec3::new(0.0, 0.0, 4000.0), Vec3::new(150.0, 0.0, 0.0));
        // Head-on co-altitude, 10 s out.
        let intr = report(Vec3::new(3000.0, 0.0, 4000.0), Vec3::new(-150.0, 0.0, 0.0));
        let cmd = acas.decide(&ctx(&own, &intr, None));
        assert!(cmd.is_some(), "collision course must alert");
        assert!(acas.current_advisory().is_alert());

        acas.reset();
        assert_eq!(acas.current_advisory(), Advisory::Coc);
        // Same range but passing 8000 ft abeam: no alert.
        let intr = report(
            Vec3::new(3000.0, 8000.0, 4000.0),
            Vec3::new(-150.0, 0.0, 0.0),
        );
        let cmd = acas.decide(&ctx(&own, &intr, None));
        assert!(cmd.is_none(), "large miss distance must not alert");
    }

    #[test]
    fn intruder_above_commands_down_sense() {
        let mut acas = AcasXu::new(table());
        let own = UavState::new(Vec3::new(0.0, 0.0, 4000.0), Vec3::new(150.0, 0.0, 0.0));
        let intr = report(Vec3::new(2400.0, 0.0, 4250.0), Vec3::new(-150.0, 0.0, 0.0));
        let cmd = acas
            .decide(&ctx(&own, &intr, None))
            .expect("conflict alerts");
        assert_eq!(cmd.sense, Sense::Down);
        assert!(cmd.target_vertical_rate_fps <= 0.0);
    }

    #[test]
    fn coordination_restriction_is_respected() {
        let mut acas = AcasXu::new(table());
        let own = UavState::new(Vec3::new(0.0, 0.0, 4000.0), Vec3::new(150.0, 0.0, 0.0));
        let intr = report(Vec3::new(2400.0, 0.0, 4000.0), Vec3::new(-150.0, 0.0, 0.0));
        // Peer took the up sense; we must not.
        let cmd = acas
            .decide(&ctx(&own, &intr, Some(Sense::Up)))
            .expect("conflict alerts");
        assert_eq!(cmd.sense, Sense::Down);
    }

    #[test]
    fn beyond_horizon_is_clear_of_conflict() {
        let mut acas = AcasXu::new(table());
        let own = UavState::new(Vec3::new(0.0, 0.0, 4000.0), Vec3::new(150.0, 0.0, 0.0));
        // Head-on but 200 s away (coarse horizon is 12 s).
        let intr = report(
            Vec3::new(60_000.0, 0.0, 4000.0),
            Vec3::new(-150.0, 0.0, 0.0),
        );
        assert!(acas.decide(&ctx(&own, &intr, None)).is_none());
    }

    #[test]
    fn advisory_label_reaches_the_command() {
        let mut acas = AcasXu::new(table());
        let own = UavState::new(Vec3::new(0.0, 0.0, 4000.0), Vec3::new(150.0, 0.0, 0.0));
        let intr = report(Vec3::new(2400.0, 0.0, 3900.0), Vec3::new(-150.0, 0.0, 0.0));
        let cmd = acas
            .decide(&ctx(&own, &intr, None))
            .expect("conflict alerts");
        assert_eq!(cmd.label, acas.current_advisory().label());
        assert_eq!(acas.name(), "acas-xu");
    }

    #[test]
    fn tracking_variant_still_alerts_and_resets() {
        let mut acas =
            AcasXu::new(table()).with_tracking(uavca_sim::AlphaBetaTracker::default_gains());
        let own = UavState::new(Vec3::new(0.0, 0.0, 4000.0), Vec3::new(150.0, 0.0, 0.0));
        let intr = report(Vec3::new(3000.0, 0.0, 4000.0), Vec3::new(-150.0, 0.0, 0.0));
        // Feed a couple of consistent reports; the smoothed track must
        // produce the same head-on alert as the raw one.
        assert!(acas.decide(&ctx(&own, &intr, None)).is_some());
        let mut intr2 = report(Vec3::new(2700.0, 0.0, 4000.0), Vec3::new(-150.0, 0.0, 0.0));
        intr2.time_s = 1.0;
        let mut ctx2 = ctx(&own, &intr2, None);
        ctx2.time_s = 1.0;
        assert!(acas.decide(&ctx2).is_some());
        acas.reset();
        assert_eq!(acas.current_advisory(), Advisory::Coc);
    }

    #[test]
    fn sense_lock_prevents_spontaneous_reversals() {
        let mut acas = AcasXu::new(table());
        let own = UavState::new(Vec3::new(0.0, 0.0, 4000.0), Vec3::new(150.0, 0.0, 0.0));
        // Perfectly symmetric conflict: whatever sense is chosen first must
        // be kept on subsequent (still symmetric) decisions.
        let intr = report(Vec3::new(2400.0, 0.0, 4000.0), Vec3::new(-150.0, 0.0, 0.0));
        let first = acas.decide(&ctx(&own, &intr, None)).expect("alerts");
        for _ in 0..5 {
            let again = acas
                .decide(&ctx(&own, &intr, None))
                .expect("still alerting");
            assert_eq!(again.sense, first.sense, "sense lock must hold");
        }
        // A coordination restriction against our sense forces the reversal.
        let forced = acas
            .decide(&ctx(&own, &intr, Some(first.sense)))
            .expect("conflict still present");
        assert_eq!(forced.sense, first.sense.opposite());
    }
}
