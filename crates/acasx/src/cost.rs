use serde::{Deserialize, Serialize};

use crate::Advisory;

/// The preference system of the MDP (paper Sections II–III: "reward or
/// punishment mechanism... which state or collision avoidance action is
/// good (/bad) and how good (/bad) it is").
///
/// All values are **costs** (the solver maximizes reward = −cost). The
/// relative magnitudes follow the published ACAS X cost structure: an NMAC
/// is catastrophically expensive, alerts and maneuvers are mildly
/// expensive, and disruptive advisory changes (strengthening, reversal)
/// cost extra. The paper's walk-through uses 10000 for a collision, which
/// we keep as the default.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Cost of an NMAC at τ = 0 (paper: 10000).
    pub nmac: f64,
    /// Per-step cost of a vertical-rate restriction (DNC/DND).
    pub restriction: f64,
    /// Per-step cost of a 1500 ft/min rate advisory.
    pub rate_advisory: f64,
    /// Per-step cost of a strengthened (2500 ft/min) advisory.
    pub strengthened_advisory: f64,
    /// One-off extra cost when a new alert is issued (COC → any advisory).
    pub new_alert: f64,
    /// One-off extra cost when an advisory is strengthened in-sense.
    pub strengthening: f64,
    /// One-off extra cost for a sense reversal.
    pub reversal: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            nmac: 10_000.0,
            restriction: 3.0,
            rate_advisory: 6.0,
            strengthened_advisory: 12.0,
            new_alert: 10.0,
            strengthening: 15.0,
            reversal: 25.0,
        }
    }
}

impl CostModel {
    /// Per-step cost of holding `advisory` (before transition extras).
    pub fn holding_cost(&self, advisory: Advisory) -> f64 {
        match advisory.strength() {
            0 => 0.0,
            1 => self.restriction,
            2 => self.rate_advisory,
            _ => self.strengthened_advisory,
        }
    }

    /// Total immediate cost of switching from `previous` to `next` for one
    /// step (holding cost plus any new-alert / strengthening / reversal
    /// surcharge).
    pub fn action_cost(&self, previous: Advisory, next: Advisory) -> f64 {
        let mut cost = self.holding_cost(next);
        if previous == Advisory::Coc && next.is_alert() {
            cost += self.new_alert;
        }
        if previous.strengthens_to(next) {
            cost += self.strengthening;
        }
        if previous.reverses_to(next) {
            cost += self.reversal;
        }
        cost
    }

    /// Terminal cost at τ = 0 given the relative altitude `h_ft`: the NMAC
    /// cost inside the ±`nmac_half_height_ft` band, 0 outside.
    pub fn terminal_cost(&self, h_ft: f64, nmac_half_height_ft: f64) -> f64 {
        if h_ft.abs() <= nmac_half_height_ft {
            self.nmac
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn holding_costs_grow_with_strength() {
        let c = CostModel::default();
        assert_eq!(c.holding_cost(Advisory::Coc), 0.0);
        assert!(c.holding_cost(Advisory::Dnc) < c.holding_cost(Advisory::Des1500));
        assert!(c.holding_cost(Advisory::Des1500) < c.holding_cost(Advisory::Sdes2500));
    }

    #[test]
    fn surcharges_apply_once_each() {
        let c = CostModel::default();
        // New alert from COC.
        assert!(
            (c.action_cost(Advisory::Coc, Advisory::Cl1500) - (c.rate_advisory + c.new_alert))
                .abs()
                < 1e-12
        );
        // Continuing the same advisory has only the holding cost.
        assert!(
            (c.action_cost(Advisory::Cl1500, Advisory::Cl1500) - c.rate_advisory).abs() < 1e-12
        );
        // Strengthening.
        assert!(
            (c.action_cost(Advisory::Cl1500, Advisory::Scl2500)
                - (c.strengthened_advisory + c.strengthening))
                .abs()
                < 1e-12
        );
        // Reversal.
        assert!(
            (c.action_cost(Advisory::Cl1500, Advisory::Des1500) - (c.rate_advisory + c.reversal))
                .abs()
                < 1e-12
        );
        // Weakening back to COC is free.
        assert_eq!(c.action_cost(Advisory::Cl1500, Advisory::Coc), 0.0);
    }

    #[test]
    fn terminal_cost_is_an_indicator_band() {
        let c = CostModel::default();
        assert_eq!(c.terminal_cost(0.0, 100.0), 10_000.0);
        assert_eq!(c.terminal_cost(-100.0, 100.0), 10_000.0);
        assert_eq!(c.terminal_cost(101.0, 100.0), 0.0);
        assert_eq!(c.terminal_cost(-5000.0, 100.0), 0.0);
    }

    #[test]
    fn nmac_dwarfs_everything_else() {
        let c = CostModel::default();
        let worst_operational =
            c.strengthened_advisory + c.strengthening + c.reversal + c.new_alert;
        assert!(c.nmac > 50.0 * worst_operational);
    }
}
