use serde::{Deserialize, Serialize};
use uavca_mdp::{RectGrid, RectGridBuilder};

use crate::{CostModel, VerticalDynamics};

/// Full configuration of the offline table generation: state-space
/// discretization, dynamics, costs and the alerting horizon.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AcasConfig {
    /// Relative altitude axis bound, ft (grid spans ±this).
    pub h_max_ft: f64,
    /// Number of grid points on the relative-altitude axis (odd keeps 0 on
    /// the grid).
    pub h_points: usize,
    /// Number of grid points on each vertical-rate axis (odd keeps 0 on
    /// the grid); rates span the dynamics envelope.
    pub rate_points: usize,
    /// Alerting horizon: the table covers τ = 0 ..= `tau_max_s` seconds in
    /// `dynamics.dt_s` stages.
    pub tau_max_s: usize,
    /// Half-height of the NMAC band used for the terminal cost, ft.
    pub nmac_half_height_ft: f64,
    /// Encounter dynamics model.
    pub dynamics: VerticalDynamics,
    /// Cost model (preferences).
    pub costs: CostModel,
}

impl Default for AcasConfig {
    /// The full-resolution table used by the experiments: h ∈ ±1200 ft at
    /// 25 points, rates at 13 points, 40 s horizon.
    fn default() -> Self {
        Self {
            h_max_ft: 1200.0,
            h_points: 25,
            rate_points: 13,
            tau_max_s: 40,
            nmac_half_height_ft: 100.0,
            dynamics: VerticalDynamics::default(),
            costs: CostModel::default(),
        }
    }
}

impl AcasConfig {
    /// A deliberately coarse configuration for fast tests and doctests:
    /// h at 13 points, rates at 5, 12 s horizon. The qualitative structure
    /// of the logic (alert near conflict, coordinate senses) survives the
    /// coarseness.
    pub fn coarse() -> Self {
        Self {
            h_points: 13,
            rate_points: 5,
            tau_max_s: 12,
            ..Self::default()
        }
    }

    /// Builds the 3-D interpolation grid over `(h, ḣ_own, ḣ_int)`.
    ///
    /// # Panics
    ///
    /// Panics if the configured axis sizes are degenerate (fewer than two
    /// points per axis) — configurations are code, not user input.
    pub fn build_grid(&self) -> RectGrid {
        let vmax = self.dynamics.max_rate_fps;
        RectGridBuilder::new()
            .axis_linspace(-self.h_max_ft, self.h_max_ft, self.h_points)
            .axis_linspace(-vmax, vmax, self.rate_points)
            .axis_linspace(-vmax, vmax, self.rate_points)
            .build()
            .expect("axes are non-degenerate by construction")
    }

    /// Number of decision stages (τ slices with decisions): `tau_max_s /
    /// dt`, rounded down, at least 1.
    pub fn num_stages(&self) -> usize {
        ((self.tau_max_s as f64 / self.dynamics.dt_s) as usize).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_grid_contains_origin_exactly() {
        let grid = AcasConfig::default().build_grid();
        let w = grid.interp_weights(&[0.0, 0.0, 0.0]).unwrap();
        assert_eq!(w.indices.len(), 1, "odd point counts keep (0,0,0) on-grid");
    }

    #[test]
    fn coarse_is_smaller_than_default() {
        let full = AcasConfig::default();
        let coarse = AcasConfig::coarse();
        assert!(coarse.build_grid().num_points() < full.build_grid().num_points());
        assert!(coarse.num_stages() < full.num_stages());
    }

    #[test]
    fn stage_count_follows_dt() {
        let mut c = AcasConfig::coarse();
        c.tau_max_s = 10;
        c.dynamics.dt_s = 1.0;
        assert_eq!(c.num_stages(), 10);
        c.dynamics.dt_s = 2.0;
        assert_eq!(c.num_stages(), 5);
    }

    #[test]
    fn serde_round_trip() {
        let c = AcasConfig::default();
        let json = serde_json::to_string(&c).unwrap();
        let back: AcasConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }
}
