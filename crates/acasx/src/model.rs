use uavca_mdp::{Mdp, RectGrid, Transition};

use crate::{AcasConfig, Advisory};

/// The encounter-evolution MDP of the vertical logic (paper Fig. 1, "MDP
/// model" box).
///
/// A state is `(previous advisory, h, ḣ_own, ḣ_int)` where the kinematic
/// part lives on the configuration's interpolation grid; flat indexing is
/// `sRA * grid_points + grid_flat`. Actions are the 7 advisories. Each
/// continuous stochastic successor from [`crate::VerticalDynamics`] is
/// projected back onto the grid by multilinear interpolation — the
/// "discretized state space + interpolation" construction whose accuracy
/// risks Section IV discusses.
///
/// τ is *not* part of the state: the model is solved stage-by-stage by
/// backward induction, so the decision index is the time to CPA.
#[derive(Debug, Clone)]
pub struct VerticalMdp {
    config: AcasConfig,
    grid: RectGrid,
}

impl VerticalMdp {
    /// Builds the model from a configuration.
    pub fn new(config: AcasConfig) -> Self {
        let grid = config.build_grid();
        Self { config, grid }
    }

    /// The configuration in use.
    pub fn config(&self) -> &AcasConfig {
        &self.config
    }

    /// The kinematic interpolation grid.
    pub fn grid(&self) -> &RectGrid {
        &self.grid
    }

    /// Number of kinematic grid points.
    pub fn grid_points(&self) -> usize {
        self.grid.num_points()
    }

    /// Flat state index of `(previous advisory, kinematic grid point)`.
    pub fn state_index(&self, previous: Advisory, grid_flat: usize) -> usize {
        previous.index() * self.grid_points() + grid_flat
    }

    /// Decodes a flat state index into `(previous advisory, grid point)`.
    pub fn decode_state(&self, state: usize) -> (Advisory, usize) {
        let gp = self.grid_points();
        (Advisory::from_index(state / gp), state % gp)
    }

    /// Terminal values at τ = 0 for every state: −NMAC cost inside the
    /// vertical NMAC band (the horizontal miss is zero at the CPA by
    /// construction of the stage indexing).
    pub fn terminal_values(&self) -> Vec<f64> {
        let gp = self.grid_points();
        let mut grid_terminal = Vec::with_capacity(gp);
        for (_, point) in self.grid.iter_points() {
            let h = point[0];
            grid_terminal.push(
                -self
                    .config
                    .costs
                    .terminal_cost(h, self.config.nmac_half_height_ft),
            );
        }
        let mut out = Vec::with_capacity(gp * Advisory::COUNT);
        for _ in 0..Advisory::COUNT {
            out.extend_from_slice(&grid_terminal);
        }
        out
    }
}

impl Mdp for VerticalMdp {
    fn num_states(&self) -> usize {
        self.grid_points() * Advisory::COUNT
    }

    fn num_actions(&self) -> usize {
        Advisory::COUNT
    }

    fn discount(&self) -> f64 {
        1.0
    }

    fn transitions_into(&self, state: usize, action: usize, out: &mut Vec<Transition>) {
        let (_previous, grid_flat) = self.decode_state(state);
        let point = self.grid.point(grid_flat).expect("state index in range");
        let advisory = Advisory::from_index(action);
        let successors = self
            .config
            .dynamics
            .successors(point[0], point[1], point[2], advisory);
        let next_sra_offset = advisory.index() * self.grid_points();
        let mut corners = uavca_mdp::InterpCorners::empty();
        for (h, own, intr, p) in successors {
            self.grid
                .interp_weights_into(&[h, own, intr], &mut corners)
                .expect("query arity matches grid");
            for (idx, w) in corners.iter() {
                if w > 0.0 {
                    out.push(Transition::new(next_sra_offset + idx, p * w));
                }
            }
        }
    }

    fn reward(&self, state: usize, action: usize) -> f64 {
        let (previous, _) = self.decode_state(state);
        -self
            .config
            .costs
            .action_cost(previous, Advisory::from_index(action))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> VerticalMdp {
        VerticalMdp::new(AcasConfig::coarse())
    }

    #[test]
    fn state_index_round_trip() {
        let m = model();
        for adv in Advisory::ALL {
            for gf in [0, 1, m.grid_points() - 1] {
                let s = m.state_index(adv, gf);
                assert_eq!(m.decode_state(s), (adv, gf));
            }
        }
        assert_eq!(m.num_states(), m.grid_points() * 7);
    }

    #[test]
    fn transition_mass_sums_to_one_everywhere_sampled() {
        let m = model();
        let mut buf = Vec::new();
        // Sample a spread of states and all actions.
        for s in (0..m.num_states()).step_by(97) {
            for a in 0..m.num_actions() {
                buf.clear();
                m.transitions_into(s, a, &mut buf);
                let mass: f64 = buf.iter().map(|t| t.probability).sum();
                assert!((mass - 1.0).abs() < 1e-9, "state {s} action {a}: {mass}");
                assert!(buf.iter().all(|t| t.next_state < m.num_states()));
            }
        }
    }

    #[test]
    fn successors_carry_the_action_as_next_sra() {
        let m = model();
        let s = m.state_index(Advisory::Coc, m.grid_points() / 2);
        let gp = m.grid_points();
        for a in 0..7 {
            let ts = m.transitions(s, a);
            for t in ts {
                assert_eq!(t.next_state / gp, a, "next sRA must equal the action taken");
            }
        }
    }

    #[test]
    fn rewards_are_negative_costs() {
        let m = model();
        let s_coc = m.state_index(Advisory::Coc, 0);
        assert_eq!(m.reward(s_coc, Advisory::Coc.index()), 0.0);
        assert!(m.reward(s_coc, Advisory::Cl1500.index()) < 0.0);
        let s_cl = m.state_index(Advisory::Cl1500, 0);
        // Reversal costs more than continuing.
        assert!(
            m.reward(s_cl, Advisory::Des1500.index()) < m.reward(s_cl, Advisory::Cl1500.index())
        );
    }

    #[test]
    fn terminal_values_penalize_the_nmac_band_only() {
        let m = model();
        let tv = m.terminal_values();
        assert_eq!(tv.len(), m.num_states());
        for (flat, point) in m.grid().iter_points() {
            let v = tv[m.state_index(Advisory::Coc, flat)];
            if point[0].abs() <= m.config().nmac_half_height_ft {
                assert!(v < 0.0, "h={} must be terminal-penalized", point[0]);
            } else {
                assert_eq!(v, 0.0, "h={} must be safe", point[0]);
            }
        }
    }

    #[test]
    fn model_validates_as_a_proper_mdp() {
        // Run the generic validator over a coarse model (it checks every
        // state-action pair's distribution).
        let mut cfg = AcasConfig::coarse();
        cfg.h_points = 7;
        cfg.rate_points = 3;
        let m = VerticalMdp::new(cfg);
        let vi = uavca_mdp::ValueIteration::new();
        // validate happens inside solve; tolerance loose, horizon via gamma<1
        // is not what we use in production, but validation is the point here.
        // Use a gamma hack: the model has gamma=1, so full VI may not
        // converge; instead validate directly through a 1-stage backward
        // induction which also exercises every backup.
        let bi = uavca_mdp::BackwardInduction::new();
        let sol = bi.solve(&m, 1, m.terminal_values()).unwrap();
        assert_eq!(sol.stage_values[1].len(), m.num_states());
        let _ = vi; // silence unused in case of refactor
    }
}
