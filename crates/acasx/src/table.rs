use std::io;
use std::path::Path;

use serde::{Deserialize, Serialize};
use uavca_mdp::{BackwardInduction, QTable, RectGrid};
use uavca_sim::Sense;

use crate::{AcasConfig, Advisory, VerticalMdp};

/// The offline product of the development process: the "logic table"
/// (paper Fig. 1) mapping discretized encounter states to advisory costs.
///
/// Stage `k` of the table answers "what does each advisory cost with `k`
/// decision steps left to the closest point of approach". Online lookups
/// interpolate multilinearly over the kinematic grid and linearly between
/// the two bracketing τ stages.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LogicTable {
    config: AcasConfig,
    grid: RectGrid,
    /// `stage_q[k - 1]` is the Q-table with `k` stages to go.
    stage_q: Vec<QTable>,
}

impl LogicTable {
    /// Generates the table by backward induction over the configured
    /// horizon — the "Optimization" arrow of the development-process
    /// figure. Runtime grows linearly in grid points × stages; the default
    /// configuration solves in seconds in release builds.
    pub fn solve(config: &AcasConfig) -> LogicTable {
        let model = VerticalMdp::new(config.clone());
        let terminal = model.terminal_values();
        let solution = BackwardInduction::new()
            .solve(&model, config.num_stages(), terminal)
            .expect("model construction guarantees a well-formed MDP");
        LogicTable {
            config: config.clone(),
            grid: model.grid().clone(),
            stage_q: solution.stage_q,
        }
    }

    /// The configuration the table was generated from.
    pub fn config(&self) -> &AcasConfig {
        &self.config
    }

    /// Number of decision stages in the table.
    pub fn num_stages(&self) -> usize {
        self.stage_q.len()
    }

    /// Approximate in-memory size of the Q data, bytes.
    pub fn q_bytes(&self) -> usize {
        self.stage_q.len() * self.grid.num_points() * Advisory::COUNT * 8
    }

    /// Interpolated Q-values (higher = better) of all 7 advisories at the
    /// continuous state `(h, ḣ_own, ḣ_int, τ, previous advisory)`.
    ///
    /// Kinematics are clamped to the grid box; τ is clamped to
    /// `[dt, horizon]` and blended linearly between the bracketing stages.
    pub fn q_values(
        &self,
        h_ft: f64,
        own_rate_fps: f64,
        intruder_rate_fps: f64,
        tau_s: f64,
        previous: Advisory,
    ) -> [f64; Advisory::COUNT] {
        let weights = self
            .grid
            .interp_weights(&[h_ft, own_rate_fps, intruder_rate_fps])
            .expect("arity matches the 3-D grid");
        let stages = self.num_stages() as f64;
        let dt = self.config.dynamics.dt_s;
        let t = (tau_s / dt).clamp(1.0, stages);
        let k_lo = t.floor() as usize;
        let k_hi = t.ceil() as usize;
        let frac = t - k_lo as f64;
        let offset = previous.index() * self.grid.num_points();

        let mut out = [0.0; Advisory::COUNT];
        for (a, slot) in out.iter_mut().enumerate() {
            let q_at = |k: usize| -> f64 {
                let q = &self.stage_q[k - 1];
                weights
                    .indices
                    .iter()
                    .zip(&weights.weights)
                    .map(|(&i, &w)| q.get(offset + i, a) * w)
                    .sum()
            };
            *slot = if k_lo == k_hi {
                q_at(k_lo)
            } else {
                q_at(k_lo) * (1.0 - frac) + q_at(k_hi) * frac
            };
        }
        out
    }

    /// The best advisory at a continuous state, with optional coordination
    /// masking (advisories whose sense equals `forbidden` are excluded;
    /// COC is always allowed) and advisory hysteresis: the previous
    /// advisory's Q-value receives `hysteresis_bonus` before comparison so
    /// marginal differences do not cause chattering.
    #[allow(clippy::too_many_arguments)]
    pub fn best_advisory(
        &self,
        h_ft: f64,
        own_rate_fps: f64,
        intruder_rate_fps: f64,
        tau_s: f64,
        previous: Advisory,
        forbidden: Option<Sense>,
        hysteresis_bonus: f64,
    ) -> Advisory {
        self.best_advisory_masked(
            h_ft,
            own_rate_fps,
            intruder_rate_fps,
            tau_s,
            previous,
            |adv| match (adv.sense(), forbidden) {
                (Some(s), Some(f)) => s != f,
                _ => true,
            },
            hysteresis_bonus,
        )
    }

    /// [`best_advisory`](Self::best_advisory) with an arbitrary advisory
    /// mask. COC is always considered even if the mask rejects it, so a
    /// decision always exists.
    #[allow(clippy::too_many_arguments)]
    pub fn best_advisory_masked(
        &self,
        h_ft: f64,
        own_rate_fps: f64,
        intruder_rate_fps: f64,
        tau_s: f64,
        previous: Advisory,
        mut allowed: impl FnMut(Advisory) -> bool,
        hysteresis_bonus: f64,
    ) -> Advisory {
        let mut q = self.q_values(h_ft, own_rate_fps, intruder_rate_fps, tau_s, previous);
        q[previous.index()] += hysteresis_bonus;
        let mut best = Advisory::Coc;
        let mut best_q = q[Advisory::Coc.index()];
        for adv in Advisory::ALL {
            if adv != Advisory::Coc && !allowed(adv) {
                continue;
            }
            let val = q[adv.index()];
            if val > best_q {
                best_q = val;
                best = adv;
            }
        }
        best
    }

    /// Renders an ASCII advisory map over relative altitude (rows, top =
    /// high) and τ (columns, left = far) for fixed vertical rates — the
    /// classic "policy plot" the ACAS X reports use to inspect generated
    /// logic.
    ///
    /// Legend: `.` COC, `^`/`v` climb/descend 1500, `N`/`U` do-not-climb /
    /// do-not-descend, `+`/`-` strengthened climb/descend.
    pub fn render_advisory_map(&self, own_rate_fps: f64, intruder_rate_fps: f64) -> String {
        let h_axis: Vec<f64> = self.grid.axis(0).to_vec();
        let mut out = format!(
            "advisory map (own rate {:.0} ft/s, intruder rate {:.0} ft/s); rows h, cols tau {}..1 s\n",
            own_rate_fps,
            intruder_rate_fps,
            self.num_stages()
        );
        for &h in h_axis.iter().rev() {
            out.push_str(&format!("{h:>7.0} ft |"));
            for k in (1..=self.num_stages()).rev() {
                let adv = self.best_advisory(
                    h,
                    own_rate_fps,
                    intruder_rate_fps,
                    k as f64 * self.config.dynamics.dt_s,
                    Advisory::Coc,
                    None,
                    0.0,
                );
                out.push(match adv {
                    Advisory::Coc => '.',
                    Advisory::Dnc => 'N',
                    Advisory::Dnd => 'U',
                    Advisory::Des1500 => 'v',
                    Advisory::Cl1500 => '^',
                    Advisory::Sdes2500 => '-',
                    Advisory::Scl2500 => '+',
                });
            }
            out.push('\n');
        }
        out
    }

    /// Serializes the table as JSON to `writer`.
    ///
    /// # Errors
    ///
    /// Returns any I/O or serialization error as `io::Error`.
    pub fn save<W: io::Write>(&self, writer: W) -> io::Result<()> {
        serde_json::to_writer(writer, self).map_err(io::Error::other)
    }

    /// Reads a table back from JSON. A mut reference can be passed as the
    /// reader.
    ///
    /// # Errors
    ///
    /// Returns any I/O or deserialization error as `io::Error`.
    pub fn load<R: io::Read>(reader: R) -> io::Result<LogicTable> {
        serde_json::from_reader(reader).map_err(io::Error::other)
    }

    /// Saves to a file path.
    ///
    /// # Errors
    ///
    /// Propagates file-creation and serialization errors.
    pub fn save_to_path<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        self.save(io::BufWriter::new(std::fs::File::create(path)?))
    }

    /// Loads from a file path.
    ///
    /// # Errors
    ///
    /// Propagates file-open and deserialization errors.
    pub fn load_from_path<P: AsRef<Path>>(path: P) -> io::Result<LogicTable> {
        Self::load(io::BufReader::new(std::fs::File::open(path)?))
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::*;
    use std::sync::OnceLock;

    /// A shared coarse table so the test-suite solves it only once.
    pub fn coarse_table() -> &'static LogicTable {
        static TABLE: OnceLock<LogicTable> = OnceLock::new();
        TABLE.get_or_init(|| LogicTable::solve(&AcasConfig::coarse()))
    }
}

#[cfg(test)]
mod tests {
    use super::test_support::coarse_table;
    use super::*;

    #[test]
    fn close_conflicts_alert_far_geometries_do_not() {
        let t = coarse_table();
        // Co-altitude, both level, 8 s out: must alert.
        let best = t.best_advisory(0.0, 0.0, 0.0, 8.0, Advisory::Coc, None, 0.0);
        assert_ne!(
            best,
            Advisory::Coc,
            "imminent co-altitude collision must alert"
        );
        // 1100 ft above and diverging rates, 8 s out: COC is fine.
        let best = t.best_advisory(1100.0, -5.0, 5.0, 8.0, Advisory::Coc, None, 0.0);
        assert_eq!(best, Advisory::Coc);
    }

    #[test]
    fn sense_matches_geometry() {
        let t = coarse_table();
        // Intruder 250 ft above: the own-ship should prefer a down-sense
        // advisory; 250 ft below: up-sense.
        let above = t.best_advisory(250.0, 0.0, 0.0, 6.0, Advisory::Coc, None, 0.0);
        let below = t.best_advisory(-250.0, 0.0, 0.0, 6.0, Advisory::Coc, None, 0.0);
        assert_eq!(above.sense(), Some(uavca_sim::Sense::Down), "got {above}");
        assert_eq!(below.sense(), Some(uavca_sim::Sense::Up), "got {below}");
    }

    #[test]
    fn logic_is_vertically_symmetric() {
        // Mirror symmetry holds at the Q-value level: Q(s, a) equals
        // Q(mirror(s), mirror(a)). (Argmax alone is not a fair check —
        // exactly symmetric states tie and tie-breaking is positional.)
        let t = coarse_table();
        for (h, own, intr, tau) in [
            (0.0, 0.0, 0.0, 6.0),
            (150.0, 5.0, -5.0, 9.0),
            (-300.0, -10.0, 3.0, 4.0),
        ] {
            for prev in Advisory::ALL {
                let q = t.q_values(h, own, intr, tau, prev);
                let qm = t.q_values(-h, -own, -intr, tau, prev.mirrored());
                for a in Advisory::ALL {
                    let lhs = q[a.index()];
                    let rhs = qm[a.mirrored().index()];
                    assert!(
                        (lhs - rhs).abs() < 1e-6,
                        "state ({h},{own},{intr},{tau}) prev {prev} action {a}: {lhs} vs {rhs}"
                    );
                }
            }
        }
    }

    #[test]
    fn coordination_mask_excludes_the_forbidden_sense() {
        let t = coarse_table();
        // Co-altitude conflict, but the peer already took the up sense.
        let best = t.best_advisory(
            0.0,
            0.0,
            0.0,
            6.0,
            Advisory::Coc,
            Some(uavca_sim::Sense::Up),
            0.0,
        );
        assert_ne!(best.sense(), Some(uavca_sim::Sense::Up));
        assert_ne!(
            best,
            Advisory::Coc,
            "must still resolve the conflict downward"
        );
    }

    #[test]
    fn hysteresis_retains_the_current_advisory_on_ties() {
        let t = coarse_table();
        // Find a state where CL1500 and DES1500 are nearly tied (h = 0,
        // symmetric) — with a hysteresis bonus the incumbent must win.
        let incumbent = Advisory::Cl1500;
        let best = t.best_advisory(0.0, 0.0, 0.0, 6.0, incumbent, None, 50.0);
        assert_eq!(best, incumbent);
    }

    #[test]
    fn tau_interpolation_is_monotone_near_conflict() {
        let t = coarse_table();
        // The value of COC (co-altitude, level) should not improve as tau
        // shrinks: less time means the collision is harder to escape.
        let q_far = t.q_values(0.0, 0.0, 0.0, 12.0, Advisory::Coc)[Advisory::Coc.index()];
        let q_near = t.q_values(0.0, 0.0, 0.0, 3.0, Advisory::Coc)[Advisory::Coc.index()];
        assert!(q_near <= q_far + 1e-9, "near {q_near} vs far {q_far}");
    }

    #[test]
    fn fractional_tau_blends_between_stages() {
        let t = coarse_table();
        let q4 = t.q_values(100.0, 0.0, 0.0, 4.0, Advisory::Coc);
        let q5 = t.q_values(100.0, 0.0, 0.0, 5.0, Advisory::Coc);
        let q45 = t.q_values(100.0, 0.0, 0.0, 4.5, Advisory::Coc);
        for a in 0..Advisory::COUNT {
            let mid = 0.5 * (q4[a] + q5[a]);
            assert!((q45[a] - mid).abs() < 1e-9, "action {a}");
        }
    }

    #[test]
    fn out_of_range_tau_clamps() {
        let t = coarse_table();
        let q_low = t.q_values(0.0, 0.0, 0.0, -3.0, Advisory::Coc);
        let q_dt = t.q_values(0.0, 0.0, 0.0, t.config().dynamics.dt_s, Advisory::Coc);
        assert_eq!(q_low, q_dt);
        let q_high = t.q_values(0.0, 0.0, 0.0, 1e9, Advisory::Coc);
        let q_max = t.q_values(0.0, 0.0, 0.0, t.num_stages() as f64, Advisory::Coc);
        assert_eq!(q_high, q_max);
    }

    #[test]
    fn advisory_map_has_alert_core_and_quiet_edges() {
        let t = coarse_table();
        let map = t.render_advisory_map(0.0, 0.0);
        let lines: Vec<&str> = map.lines().collect();
        assert_eq!(lines.len(), 1 + t.config().h_points);
        // The co-altitude row at small tau must alert; the extreme
        // altitude rows must be quiet everywhere.
        let mid = &lines[1 + t.config().h_points / 2];
        assert!(
            mid.ends_with(|c| "Nv^U+-".contains(c)),
            "co-altitude near tau=1 must alert: {mid}"
        );
        let top = lines[1];
        let body: String = top.chars().skip_while(|&c| c != '|').skip(1).collect();
        assert!(
            body.chars().all(|c| c == '.'),
            "h=+max must be COC everywhere: {top}"
        );
    }

    #[test]
    fn save_load_round_trip_preserves_lookups() {
        let t = coarse_table();
        let mut buf = Vec::new();
        t.save(&mut buf).unwrap();
        let back = LogicTable::load(buf.as_slice()).unwrap();
        assert_eq!(back.num_stages(), t.num_stages());
        for (h, tau) in [(0.0, 5.0), (200.0, 9.0), (-450.0, 2.5)] {
            let a = t.q_values(h, 0.0, 0.0, tau, Advisory::Coc);
            let b = back.q_values(h, 0.0, 0.0, tau, Advisory::Coc);
            for i in 0..Advisory::COUNT {
                // JSON float round-trips are not guaranteed bit-exact.
                assert!(
                    (a[i] - b[i]).abs() < 1e-9,
                    "action {i}: {} vs {}",
                    a[i],
                    b[i]
                );
            }
        }
        assert!(t.q_bytes() > 0);
    }
}
