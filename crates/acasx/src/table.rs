use std::io;
use std::path::Path;

use serde::{Deserialize, Serialize};
use uavca_mdp::{BackwardInduction, InterpCorners, QTable, RectGrid};
use uavca_sim::Sense;

use crate::{AcasConfig, Advisory, AdvisorySet, VerticalMdp};

/// Reusable working memory for the batched lookup paths
/// ([`LogicTable::q_values_batch`], [`LogicTable::best_advisory_batch`]).
///
/// One scratch per worker/avoider; the internal buffers are cleared and
/// refilled on every batch call but keep their capacity, so steady-state
/// batches perform zero heap allocation. A scratch carries no table state
/// and may be used with any [`LogicTable`].
#[derive(Debug, Clone, Default)]
pub struct LookupScratch {
    corners: Vec<InterpCorners>,
}

/// A structure-of-arrays view over a set of continuous lookup states: the
/// `i`-th query is `(h_ft[i], own_rate_fps[i], intruder_rate_fps[i],
/// tau_s[i], previous[i])`. All five slices must have equal length.
#[derive(Debug, Clone, Copy)]
pub struct StateBatch<'a> {
    /// Relative altitude (intruder minus own), ft.
    pub h_ft: &'a [f64],
    /// Own-ship vertical rate, ft/s.
    pub own_rate_fps: &'a [f64],
    /// Intruder vertical rate, ft/s.
    pub intruder_rate_fps: &'a [f64],
    /// Time to closest point of approach, s.
    pub tau_s: &'a [f64],
    /// Advisory currently in force.
    pub previous: &'a [Advisory],
}

impl StateBatch<'_> {
    /// Number of queries in the batch.
    pub fn len(&self) -> usize {
        self.h_ft.len()
    }

    /// Whether the batch holds no queries.
    pub fn is_empty(&self) -> bool {
        self.h_ft.is_empty()
    }

    fn assert_coherent(&self) {
        let n = self.len();
        assert!(
            self.own_rate_fps.len() == n
                && self.intruder_rate_fps.len() == n
                && self.tau_s.len() == n
                && self.previous.len() == n,
            "StateBatch slices must have equal lengths"
        );
    }
}

/// The offline product of the development process: the "logic table"
/// (paper Fig. 1) mapping discretized encounter states to advisory costs.
///
/// Stage `k` of the table answers "what does each advisory cost with `k`
/// decision steps left to the closest point of approach". Online lookups
/// interpolate multilinearly over the kinematic grid and linearly between
/// the two bracketing τ stages.
///
/// # Storage layout
///
/// The Q data is one contiguous stage-major buffer:
/// `q[((k - 1) * states_per_stage + s) * 7 + a]`, where
/// `s = previous.index() * grid_points + grid_flat` and `a` is the advisory
/// index. A lookup therefore reads, per interpolation corner, the full
/// 7-advisory row contiguously (corner-outer / action-inner accumulation) —
/// ~8 contiguous row FMAs per stage instead of an action-outer re-walk of
/// scattered per-stage tables. The serialized (JSON) representation keeps
/// the historical per-stage `QTable` format for compatibility.
#[derive(Debug, Clone)]
pub struct LogicTable {
    config: AcasConfig,
    grid: RectGrid,
    num_stages: usize,
    /// `Advisory::COUNT * grid.num_points()` — the state count of one stage.
    states_per_stage: usize,
    /// Stage-major contiguous Q buffer (see the layout note above).
    q: Vec<f64>,
}

/// The serialized (wire) shape of a [`LogicTable`]: the historical
/// per-stage representation, kept so tables saved before the
/// structure-of-arrays repack still load.
#[derive(Debug, Serialize, Deserialize)]
struct LogicTableRepr {
    config: AcasConfig,
    grid: RectGrid,
    /// `stage_q[k - 1]` is the Q-table with `k` stages to go.
    stage_q: Vec<QTable>,
}

impl LogicTable {
    /// Generates the table by backward induction over the configured
    /// horizon — the "Optimization" arrow of the development-process
    /// figure. Runtime grows linearly in grid points × stages; the default
    /// configuration solves in seconds in release builds.
    pub fn solve(config: &AcasConfig) -> LogicTable {
        let model = VerticalMdp::new(config.clone());
        let terminal = model.terminal_values();
        let solution = BackwardInduction::new()
            .solve(&model, config.num_stages(), terminal)
            .expect("model construction guarantees a well-formed MDP");
        Self::from_parts(config.clone(), model.grid().clone(), solution.stage_q)
            .expect("backward induction produces consistently shaped stages")
    }

    /// Packs per-stage Q-tables into the contiguous stage-major buffer,
    /// validating every shape against `config` first (the checks
    /// [`load`](Self::load) relies on to reject inconsistent files).
    fn from_parts(
        config: AcasConfig,
        grid: RectGrid,
        stage_q: Vec<QTable>,
    ) -> Result<LogicTable, String> {
        if grid != config.build_grid() {
            return Err(format!(
                "grid does not match the configuration (expected {} points over 3 axes, \
                 got {} points over {} axes)",
                config.build_grid().num_points(),
                grid.num_points(),
                grid.num_dims()
            ));
        }
        if stage_q.len() != config.num_stages() {
            return Err(format!(
                "stage count {} does not match the configured horizon ({} stages)",
                stage_q.len(),
                config.num_stages()
            ));
        }
        let states_per_stage = Advisory::COUNT * grid.num_points();
        let mut q = Vec::with_capacity(stage_q.len() * states_per_stage * Advisory::COUNT);
        for (k, stage) in stage_q.iter().enumerate() {
            if stage.num_states() != states_per_stage
                || stage.num_actions() != Advisory::COUNT
                || !stage.is_consistent()
            {
                return Err(format!(
                    "stage {} is {}x{} ({}consistent buffer), expected {}x{}",
                    k + 1,
                    stage.num_states(),
                    stage.num_actions(),
                    if stage.is_consistent() { "" } else { "in" },
                    states_per_stage,
                    Advisory::COUNT
                ));
            }
            for s in 0..states_per_stage {
                q.extend_from_slice(stage.row(s));
            }
        }
        Ok(LogicTable {
            config,
            grid,
            num_stages: stage_q.len(),
            states_per_stage,
            q,
        })
    }

    /// Unpacks the contiguous buffer back into per-stage Q-tables (the
    /// serialization shape). Cold path: allocates freely.
    fn to_stage_q(&self) -> Vec<QTable> {
        let stage_len = self.states_per_stage * Advisory::COUNT;
        self.q
            .chunks_exact(stage_len)
            .map(|chunk| {
                QTable::from_values(self.states_per_stage, Advisory::COUNT, chunk.to_vec())
                    .expect("stage chunk length matches by construction")
            })
            .collect()
    }

    /// The configuration the table was generated from.
    pub fn config(&self) -> &AcasConfig {
        &self.config
    }

    /// Number of decision stages in the table.
    pub fn num_stages(&self) -> usize {
        self.num_stages
    }

    /// The alerting horizon in seconds: `num_stages * dt`.
    pub fn horizon_s(&self) -> f64 {
        self.num_stages as f64 * self.config.dynamics.dt_s
    }

    /// Approximate in-memory size of the Q data, bytes.
    pub fn q_bytes(&self) -> usize {
        self.q.len() * 8
    }

    /// The state-offset base of `previous`'s block within a stage
    /// (`previous.index() * grid_points`) — cacheable by callers that hold
    /// an advisory across many lookups, e.g. [`crate::AcasXu`].
    #[inline]
    pub(crate) fn prev_offset(&self, previous: Advisory) -> usize {
        previous.index() * self.grid.num_points()
    }

    /// τ-stage blending: the two bracketing stages and the upper fraction.
    #[inline]
    fn tau_blend(&self, tau_s: f64) -> (usize, usize, f64) {
        let stages = self.num_stages as f64;
        let dt = self.config.dynamics.dt_s;
        let t = (tau_s / dt).clamp(1.0, stages);
        let k_lo = t.floor() as usize;
        let k_hi = t.ceil() as usize;
        (k_lo, k_hi, t - k_lo as f64)
    }

    /// The Q rows of stage `k` (1-based, as in the τ blend).
    #[inline]
    fn stage(&self, k: usize) -> &[f64] {
        let stage_len = self.states_per_stage * Advisory::COUNT;
        &self.q[(k - 1) * stage_len..k * stage_len]
    }

    /// The full lookup for one query whose kinematic corners are already
    /// interpolated — shared by the scalar and batched public paths, which
    /// is what makes them bit-identical.
    ///
    /// The corner-outer / action-inner accumulation is explicitly unrolled
    /// over the 7 contiguous advisory lanes (see [`fma_row`]) and split into
    /// two independent accumulator chains — by corner parity in the
    /// single-stage case, by τ stage in the blended case — so the FMAs of
    /// consecutive corners do not serialize on one dependency chain. Both
    /// cases sum the chains once at the end.
    #[inline]
    fn q_values_at(
        &self,
        corners: &InterpCorners,
        tau_s: f64,
        prev_offset: usize,
    ) -> [f64; Advisory::COUNT] {
        let (k_lo, k_hi, frac) = self.tau_blend(tau_s);
        let lo = self.stage(k_lo);
        let indices = corners.indices();
        let weights = corners.weights();
        let mut acc0 = [0.0; Advisory::COUNT];
        let mut acc1 = [0.0; Advisory::COUNT];
        if k_lo == k_hi {
            let mut i = 0;
            while i + 1 < indices.len() {
                fma_row(&mut acc0, row7(lo, prev_offset + indices[i]), weights[i]);
                fma_row(
                    &mut acc1,
                    row7(lo, prev_offset + indices[i + 1]),
                    weights[i + 1],
                );
                i += 2;
            }
            if i < indices.len() {
                fma_row(&mut acc0, row7(lo, prev_offset + indices[i]), weights[i]);
            }
        } else {
            let hi = self.stage(k_hi);
            let (w_lo, w_hi) = (1.0 - frac, frac);
            for (&idx, &w) in indices.iter().zip(weights) {
                let state = prev_offset + idx;
                fma_row(&mut acc0, row7(lo, state), w * w_lo);
                fma_row(&mut acc1, row7(hi, state), w * w_hi);
            }
        }
        let mut out = [0.0; Advisory::COUNT];
        for (slot, (a, b)) in out.iter_mut().zip(acc0.iter().zip(&acc1)) {
            *slot = a + b;
        }
        out
    }

    /// Interpolated Q-values (higher = better) of all 7 advisories at the
    /// continuous state `(h, ḣ_own, ḣ_int, τ, previous advisory)`.
    ///
    /// Kinematics are clamped to the grid box; τ is clamped to
    /// `[dt, horizon]` and blended linearly between the bracketing stages.
    /// Performs no heap allocation: the interpolation corners live on the
    /// stack and the Q rows are read contiguously.
    pub fn q_values(
        &self,
        h_ft: f64,
        own_rate_fps: f64,
        intruder_rate_fps: f64,
        tau_s: f64,
        previous: Advisory,
    ) -> [f64; Advisory::COUNT] {
        self.q_values_with_offset(
            h_ft,
            own_rate_fps,
            intruder_rate_fps,
            tau_s,
            self.prev_offset(previous),
        )
    }

    /// [`q_values`](Self::q_values) with the previous-advisory offset
    /// already resolved (see [`prev_offset`](Self::prev_offset)).
    #[inline]
    pub(crate) fn q_values_with_offset(
        &self,
        h_ft: f64,
        own_rate_fps: f64,
        intruder_rate_fps: f64,
        tau_s: f64,
        prev_offset: usize,
    ) -> [f64; Advisory::COUNT] {
        let mut corners = InterpCorners::empty();
        self.grid
            .interp_weights_into(&[h_ft, own_rate_fps, intruder_rate_fps], &mut corners)
            .expect("arity matches the 3-D grid");
        self.q_values_at(&corners, tau_s, prev_offset)
    }

    /// Batched [`q_values`](Self::q_values) over a structure-of-arrays
    /// query set: interpolation brackets each grid axis once per query set,
    /// Q rows are read contiguously per corner, and all working memory
    /// comes from `scratch`/`out` (cleared, capacity reused — zero
    /// steady-state allocation). Results are bit-identical to calling
    /// [`q_values`](Self::q_values) per element.
    ///
    /// # Panics
    ///
    /// Panics if the batch slices have unequal lengths.
    pub fn q_values_batch(
        &self,
        batch: &StateBatch<'_>,
        scratch: &mut LookupScratch,
        out: &mut Vec<[f64; Advisory::COUNT]>,
    ) {
        batch.assert_coherent();
        out.clear();
        out.reserve(batch.len());
        self.for_each_tile(batch, scratch, |table, corners, j| {
            out.push(table.q_values_at(
                corners,
                batch.tau_s[j],
                table.prev_offset(batch.previous[j]),
            ));
        });
    }

    /// Drives the tiled batch pipeline: queries are processed in
    /// cache-sized tiles — per tile the grid brackets each axis once over
    /// the whole tile (SoA, axis-major), then `consume(self, corners, j)`
    /// runs per query `j`. Tiling keeps the interpolation-corner working
    /// set L1-resident regardless of batch size; per-query results are
    /// independent of the tile size.
    #[inline]
    fn for_each_tile(
        &self,
        batch: &StateBatch<'_>,
        scratch: &mut LookupScratch,
        mut consume: impl FnMut(&Self, &InterpCorners, usize),
    ) {
        /// 64 queries × ~264 B of corner state ≈ 17 KB: comfortably inside
        /// L1 together with the Q rows the lookups pull in.
        const LOOKUP_TILE: usize = 64;
        let mut start = 0;
        while start < batch.len() {
            let end = (start + LOOKUP_TILE).min(batch.len());
            self.grid
                .interp_weights_batch_into(
                    &[
                        &batch.h_ft[start..end],
                        &batch.own_rate_fps[start..end],
                        &batch.intruder_rate_fps[start..end],
                    ],
                    &mut scratch.corners,
                )
                .expect("arity matches the 3-D grid");
            for (i, corners) in scratch.corners.iter().enumerate() {
                consume(self, corners, start + i);
            }
            start = end;
        }
    }

    /// The best advisory at a continuous state, with optional coordination
    /// masking (advisories whose sense equals `forbidden` are excluded;
    /// COC is always allowed) and advisory hysteresis: the previous
    /// advisory's Q-value receives `hysteresis_bonus` before comparison so
    /// marginal differences do not cause chattering.
    #[allow(clippy::too_many_arguments)]
    pub fn best_advisory(
        &self,
        h_ft: f64,
        own_rate_fps: f64,
        intruder_rate_fps: f64,
        tau_s: f64,
        previous: Advisory,
        forbidden: Option<Sense>,
        hysteresis_bonus: f64,
    ) -> Advisory {
        self.best_advisory_masked(
            h_ft,
            own_rate_fps,
            intruder_rate_fps,
            tau_s,
            previous,
            AdvisorySet::for_restriction(forbidden),
            hysteresis_bonus,
        )
    }

    /// [`best_advisory`](Self::best_advisory) with an arbitrary advisory
    /// mask. COC is a member of every [`AdvisorySet`], so a decision always
    /// exists.
    #[allow(clippy::too_many_arguments)]
    pub fn best_advisory_masked(
        &self,
        h_ft: f64,
        own_rate_fps: f64,
        intruder_rate_fps: f64,
        tau_s: f64,
        previous: Advisory,
        allowed: AdvisorySet,
        hysteresis_bonus: f64,
    ) -> Advisory {
        self.best_advisory_masked_with_offset(
            h_ft,
            own_rate_fps,
            intruder_rate_fps,
            tau_s,
            previous,
            self.prev_offset(previous),
            allowed,
            hysteresis_bonus,
        )
    }

    /// [`best_advisory_masked`](Self::best_advisory_masked) with the
    /// previous-advisory offset already resolved, so per-step callers
    /// (e.g. [`crate::AcasXu`]) can cache it across decisions.
    #[allow(clippy::too_many_arguments)]
    #[inline]
    pub(crate) fn best_advisory_masked_with_offset(
        &self,
        h_ft: f64,
        own_rate_fps: f64,
        intruder_rate_fps: f64,
        tau_s: f64,
        previous: Advisory,
        prev_offset: usize,
        allowed: AdvisorySet,
        hysteresis_bonus: f64,
    ) -> Advisory {
        let q =
            self.q_values_with_offset(h_ft, own_rate_fps, intruder_rate_fps, tau_s, prev_offset);
        argmax_masked(&q, previous, allowed, hysteresis_bonus)
    }

    /// Batched [`best_advisory`](Self::best_advisory) over a
    /// structure-of-arrays query set: `forbidden[i]` is the coordination
    /// restriction of query `i`. Element-for-element identical to the
    /// scalar path; all working memory comes from `scratch`/`out`.
    ///
    /// # Panics
    ///
    /// Panics if the batch slices or `forbidden` have unequal lengths.
    pub fn best_advisory_batch(
        &self,
        batch: &StateBatch<'_>,
        forbidden: &[Option<Sense>],
        hysteresis_bonus: f64,
        scratch: &mut LookupScratch,
        out: &mut Vec<Advisory>,
    ) {
        batch.assert_coherent();
        assert_eq!(
            forbidden.len(),
            batch.len(),
            "forbidden mask must have one entry per query"
        );
        out.clear();
        out.reserve(batch.len());
        self.for_each_tile(batch, scratch, |table, corners, j| {
            let previous = batch.previous[j];
            let q = table.q_values_at(corners, batch.tau_s[j], table.prev_offset(previous));
            out.push(argmax_masked(
                &q,
                previous,
                AdvisorySet::for_restriction(forbidden[j]),
                hysteresis_bonus,
            ));
        });
    }

    /// Batched [`best_advisory_masked`](Self::best_advisory_masked) with a
    /// per-query advisory mask and hysteresis bonus — the per-tick query of
    /// the cohort simulation engine, whose lanes each carry their own
    /// coordination/sense-lock mask and alert state. Element-for-element
    /// identical to the scalar path; all working memory comes from
    /// `scratch`/`out`.
    ///
    /// # Panics
    ///
    /// Panics if the batch slices, `allowed` or `hysteresis_bonus` have
    /// unequal lengths.
    pub fn best_advisory_batch_masked(
        &self,
        batch: &StateBatch<'_>,
        allowed: &[AdvisorySet],
        hysteresis_bonus: &[f64],
        scratch: &mut LookupScratch,
        out: &mut Vec<Advisory>,
    ) {
        batch.assert_coherent();
        assert!(
            allowed.len() == batch.len() && hysteresis_bonus.len() == batch.len(),
            "per-query mask and hysteresis slices must have one entry per query"
        );
        out.clear();
        out.reserve(batch.len());
        self.for_each_tile(batch, scratch, |table, corners, j| {
            let previous = batch.previous[j];
            let q = table.q_values_at(corners, batch.tau_s[j], table.prev_offset(previous));
            out.push(argmax_masked(&q, previous, allowed[j], hysteresis_bonus[j]));
        });
    }

    /// Renders an ASCII advisory map over relative altitude (rows, top =
    /// high) and τ (columns, left = far) for fixed vertical rates — the
    /// classic "policy plot" the ACAS X reports use to inspect generated
    /// logic. Allocates its own scratch; see
    /// [`render_advisory_map_with`](Self::render_advisory_map_with).
    ///
    /// Legend: `.` COC, `^`/`v` climb/descend 1500, `N`/`U` do-not-climb /
    /// do-not-descend, `+`/`-` strengthened climb/descend.
    pub fn render_advisory_map(&self, own_rate_fps: f64, intruder_rate_fps: f64) -> String {
        self.render_advisory_map_with(
            own_rate_fps,
            intruder_rate_fps,
            &mut LookupScratch::default(),
        )
    }

    /// [`render_advisory_map`](Self::render_advisory_map) reusing a caller
    /// scratch. Each altitude row is evaluated as one
    /// [`best_advisory_batch`](Self::best_advisory_batch) over the τ
    /// columns, so the per-row lookup buffers come from `scratch`; the
    /// constant column vectors (τ, rates, masks) are still built once per
    /// map render — a cold-path cost this method does not try to cache.
    pub fn render_advisory_map_with(
        &self,
        own_rate_fps: f64,
        intruder_rate_fps: f64,
        scratch: &mut LookupScratch,
    ) -> String {
        let cols = self.num_stages();
        let taus: Vec<f64> = (1..=cols)
            .rev()
            .map(|k| k as f64 * self.config.dynamics.dt_s)
            .collect();
        let own_rates = vec![own_rate_fps; cols];
        let intruder_rates = vec![intruder_rate_fps; cols];
        let previous = vec![Advisory::Coc; cols];
        let forbidden = vec![None; cols];
        let mut hs = vec![0.0; cols];
        let mut advisories = Vec::with_capacity(cols);

        let mut out = format!(
            "advisory map (own rate {:.0} ft/s, intruder rate {:.0} ft/s); rows h, cols tau {}..1 s\n",
            own_rate_fps, intruder_rate_fps, cols
        );
        for row in (0..self.grid.axis(0).len()).rev() {
            let h = self.grid.axis(0)[row];
            out.push_str(&format!("{h:>7.0} ft |"));
            hs.fill(h);
            self.best_advisory_batch(
                &StateBatch {
                    h_ft: &hs,
                    own_rate_fps: &own_rates,
                    intruder_rate_fps: &intruder_rates,
                    tau_s: &taus,
                    previous: &previous,
                },
                &forbidden,
                0.0,
                scratch,
                &mut advisories,
            );
            for &adv in &advisories {
                out.push(match adv {
                    Advisory::Coc => '.',
                    Advisory::Dnc => 'N',
                    Advisory::Dnd => 'U',
                    Advisory::Des1500 => 'v',
                    Advisory::Cl1500 => '^',
                    Advisory::Sdes2500 => '-',
                    Advisory::Scl2500 => '+',
                });
            }
            out.push('\n');
        }
        out
    }

    /// Serializes the table as JSON to `writer` (the historical per-stage
    /// format; see the struct-level layout note).
    ///
    /// # Errors
    ///
    /// Returns any I/O or serialization error as `io::Error`.
    pub fn save<W: io::Write>(&self, writer: W) -> io::Result<()> {
        let repr = LogicTableRepr {
            config: self.config.clone(),
            grid: self.grid.clone(),
            stage_q: self.to_stage_q(),
        };
        serde_json::to_writer(writer, &repr).map_err(io::Error::other)
    }

    /// Reads a table back from JSON. A mut reference can be passed as the
    /// reader.
    ///
    /// The stage/grid/action shapes of the file are validated against its
    /// embedded configuration: a file whose grid does not match the config,
    /// whose stage count disagrees with the horizon, or whose Q-tables have
    /// the wrong state/action arity is rejected here instead of panicking
    /// on a later lookup.
    ///
    /// # Errors
    ///
    /// Returns I/O and deserialization errors as `io::Error`, and shape
    /// inconsistencies as [`io::ErrorKind::InvalidData`].
    pub fn load<R: io::Read>(reader: R) -> io::Result<LogicTable> {
        let repr: LogicTableRepr = serde_json::from_reader(reader).map_err(io::Error::other)?;
        Self::from_parts(repr.config, repr.grid, repr.stage_q)
            .map_err(|msg| io::Error::new(io::ErrorKind::InvalidData, msg))
    }

    /// Saves to a file path.
    ///
    /// # Errors
    ///
    /// Propagates file-creation and serialization errors.
    pub fn save_to_path<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        self.save(io::BufWriter::new(std::fs::File::create(path)?))
    }

    /// Loads from a file path.
    ///
    /// # Errors
    ///
    /// Propagates file-open and deserialization errors.
    pub fn load_from_path<P: AsRef<Path>>(path: P) -> io::Result<LogicTable> {
        Self::load(io::BufReader::new(std::fs::File::open(path)?))
    }
}

/// A 7-advisory Q row viewed as a fixed-size array so the accumulation
/// kernel unrolls at the type level.
#[inline]
fn row7(stage: &[f64], state: usize) -> &[f64; Advisory::COUNT] {
    stage[state * Advisory::COUNT..][..Advisory::COUNT]
        .try_into()
        .expect("rows are exactly 7 advisories wide")
}

/// `acc += w * row`, explicitly unrolled over the 7 advisory lanes (the
/// widest vectorizable form available without target-feature dispatch:
/// 4+2+1 f64 lanes on AVX2, 2×3+1 on 128-bit SIMD).
#[inline(always)]
fn fma_row(acc: &mut [f64; Advisory::COUNT], row: &[f64; Advisory::COUNT], w: f64) {
    acc[0] += w * row[0];
    acc[1] += w * row[1];
    acc[2] += w * row[2];
    acc[3] += w * row[3];
    acc[4] += w * row[4];
    acc[5] += w * row[5];
    acc[6] += w * row[6];
}

/// The masked, hysteresis-biased argmax shared by every advisory-selection
/// path (scalar and batched), so all of them break ties identically. COC is
/// always in the [`AdvisorySet`], so a decision always exists.
///
/// Masked lanes are blended to `-∞` and the winner found by a fixed
/// comparison tournament instead of a data-dependent scan. Every pairwise
/// `pick` keeps the smaller index unless the larger one is *strictly*
/// greater, which reproduces the linear scan's lowest-index-wins tie-break
/// (the hysteresis bonus is applied before masking, so a masked-out
/// previous advisory stays at `-∞`).
#[inline]
fn argmax_masked(
    q: &[f64; Advisory::COUNT],
    previous: Advisory,
    allowed: AdvisorySet,
    hysteresis_bonus: f64,
) -> Advisory {
    let mut v = *q;
    v[previous.index()] += hysteresis_bonus;
    for adv in &Advisory::ALL[1..] {
        if !allowed.allows(*adv) {
            v[adv.index()] = f64::NEG_INFINITY;
        }
    }
    #[inline(always)]
    fn pick(v: &[f64; Advisory::COUNT], a: usize, b: usize) -> usize {
        // Callers keep `a < b`; strict `>` makes ties resolve low.
        if v[b] > v[a] {
            b
        } else {
            a
        }
    }
    let m01 = pick(&v, 0, 1);
    let m23 = pick(&v, 2, 3);
    let m45 = pick(&v, 4, 5);
    let quad = pick(&v, m01, m23);
    let hex = pick(&v, quad, m45);
    Advisory::from_index(pick(&v, hex, 6))
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::*;
    use std::sync::OnceLock;

    /// A shared coarse table so the test-suite solves it only once.
    pub fn coarse_table() -> &'static LogicTable {
        static TABLE: OnceLock<LogicTable> = OnceLock::new();
        TABLE.get_or_init(|| LogicTable::solve(&AcasConfig::coarse()))
    }
}

#[cfg(test)]
mod tests {
    use super::test_support::coarse_table;
    use super::*;

    #[test]
    fn close_conflicts_alert_far_geometries_do_not() {
        let t = coarse_table();
        // Co-altitude, both level, 8 s out: must alert.
        let best = t.best_advisory(0.0, 0.0, 0.0, 8.0, Advisory::Coc, None, 0.0);
        assert_ne!(
            best,
            Advisory::Coc,
            "imminent co-altitude collision must alert"
        );
        // 1100 ft above and diverging rates, 8 s out: COC is fine.
        let best = t.best_advisory(1100.0, -5.0, 5.0, 8.0, Advisory::Coc, None, 0.0);
        assert_eq!(best, Advisory::Coc);
    }

    #[test]
    fn sense_matches_geometry() {
        let t = coarse_table();
        // Intruder 250 ft above: the own-ship should prefer a down-sense
        // advisory; 250 ft below: up-sense.
        let above = t.best_advisory(250.0, 0.0, 0.0, 6.0, Advisory::Coc, None, 0.0);
        let below = t.best_advisory(-250.0, 0.0, 0.0, 6.0, Advisory::Coc, None, 0.0);
        assert_eq!(above.sense(), Some(uavca_sim::Sense::Down), "got {above}");
        assert_eq!(below.sense(), Some(uavca_sim::Sense::Up), "got {below}");
    }

    #[test]
    fn logic_is_vertically_symmetric() {
        // Mirror symmetry holds at the Q-value level: Q(s, a) equals
        // Q(mirror(s), mirror(a)). (Argmax alone is not a fair check —
        // exactly symmetric states tie and tie-breaking is positional.)
        let t = coarse_table();
        for (h, own, intr, tau) in [
            (0.0, 0.0, 0.0, 6.0),
            (150.0, 5.0, -5.0, 9.0),
            (-300.0, -10.0, 3.0, 4.0),
        ] {
            for prev in Advisory::ALL {
                let q = t.q_values(h, own, intr, tau, prev);
                let qm = t.q_values(-h, -own, -intr, tau, prev.mirrored());
                for a in Advisory::ALL {
                    let lhs = q[a.index()];
                    let rhs = qm[a.mirrored().index()];
                    assert!(
                        (lhs - rhs).abs() < 1e-6,
                        "state ({h},{own},{intr},{tau}) prev {prev} action {a}: {lhs} vs {rhs}"
                    );
                }
            }
        }
    }

    #[test]
    fn coordination_mask_excludes_the_forbidden_sense() {
        let t = coarse_table();
        // Co-altitude conflict, but the peer already took the up sense.
        let best = t.best_advisory(
            0.0,
            0.0,
            0.0,
            6.0,
            Advisory::Coc,
            Some(uavca_sim::Sense::Up),
            0.0,
        );
        assert_ne!(best.sense(), Some(uavca_sim::Sense::Up));
        assert_ne!(
            best,
            Advisory::Coc,
            "must still resolve the conflict downward"
        );
    }

    #[test]
    fn hysteresis_retains_the_current_advisory_on_ties() {
        let t = coarse_table();
        // Find a state where CL1500 and DES1500 are nearly tied (h = 0,
        // symmetric) — with a hysteresis bonus the incumbent must win.
        let incumbent = Advisory::Cl1500;
        let best = t.best_advisory(0.0, 0.0, 0.0, 6.0, incumbent, None, 50.0);
        assert_eq!(best, incumbent);
    }

    #[test]
    fn tau_interpolation_is_monotone_near_conflict() {
        let t = coarse_table();
        // The value of COC (co-altitude, level) should not improve as tau
        // shrinks: less time means the collision is harder to escape.
        let q_far = t.q_values(0.0, 0.0, 0.0, 12.0, Advisory::Coc)[Advisory::Coc.index()];
        let q_near = t.q_values(0.0, 0.0, 0.0, 3.0, Advisory::Coc)[Advisory::Coc.index()];
        assert!(q_near <= q_far + 1e-9, "near {q_near} vs far {q_far}");
    }

    #[test]
    fn fractional_tau_blends_between_stages() {
        let t = coarse_table();
        let q4 = t.q_values(100.0, 0.0, 0.0, 4.0, Advisory::Coc);
        let q5 = t.q_values(100.0, 0.0, 0.0, 5.0, Advisory::Coc);
        let q45 = t.q_values(100.0, 0.0, 0.0, 4.5, Advisory::Coc);
        for a in 0..Advisory::COUNT {
            let mid = 0.5 * (q4[a] + q5[a]);
            assert!((q45[a] - mid).abs() < 1e-9, "action {a}");
        }
    }

    #[test]
    fn out_of_range_tau_clamps() {
        let t = coarse_table();
        let q_low = t.q_values(0.0, 0.0, 0.0, -3.0, Advisory::Coc);
        let q_dt = t.q_values(0.0, 0.0, 0.0, t.config().dynamics.dt_s, Advisory::Coc);
        assert_eq!(q_low, q_dt);
        let q_high = t.q_values(0.0, 0.0, 0.0, 1e9, Advisory::Coc);
        let q_max = t.q_values(0.0, 0.0, 0.0, t.num_stages() as f64, Advisory::Coc);
        assert_eq!(q_high, q_max);
    }

    #[test]
    fn advisory_map_has_alert_core_and_quiet_edges() {
        let t = coarse_table();
        let map = t.render_advisory_map(0.0, 0.0);
        let lines: Vec<&str> = map.lines().collect();
        assert_eq!(lines.len(), 1 + t.config().h_points);
        // The co-altitude row at small tau must alert; the extreme
        // altitude rows must be quiet everywhere.
        let mid = &lines[1 + t.config().h_points / 2];
        assert!(
            mid.ends_with(|c| "Nv^U+-".contains(c)),
            "co-altitude near tau=1 must alert: {mid}"
        );
        let top = lines[1];
        let body: String = top.chars().skip_while(|&c| c != '|').skip(1).collect();
        assert!(
            body.chars().all(|c| c == '.'),
            "h=+max must be COC everywhere: {top}"
        );
    }

    #[test]
    fn save_load_round_trip_preserves_lookups() {
        let t = coarse_table();
        let mut buf = Vec::new();
        t.save(&mut buf).unwrap();
        let back = LogicTable::load(buf.as_slice()).unwrap();
        assert_eq!(back.num_stages(), t.num_stages());
        for (h, tau) in [(0.0, 5.0), (200.0, 9.0), (-450.0, 2.5)] {
            let a = t.q_values(h, 0.0, 0.0, tau, Advisory::Coc);
            let b = back.q_values(h, 0.0, 0.0, tau, Advisory::Coc);
            for i in 0..Advisory::COUNT {
                // JSON float round-trips are not guaranteed bit-exact.
                assert!(
                    (a[i] - b[i]).abs() < 1e-9,
                    "action {i}: {} vs {}",
                    a[i],
                    b[i]
                );
            }
        }
        assert!(t.q_bytes() > 0);
    }

    #[test]
    fn load_rejects_inconsistent_shapes() {
        let t = coarse_table();
        let mut json = Vec::new();
        t.save(&mut json).unwrap();
        let json = String::from_utf8(json).unwrap();

        // Pristine round trip loads.
        assert!(LogicTable::load(json.as_bytes()).is_ok());

        // A config whose horizon disagrees with the stored stage count.
        let wrong_horizon = json.replacen("\"tau_max_s\":12", "\"tau_max_s\":10", 1);
        assert_ne!(wrong_horizon, json, "substitution must hit");
        let err = LogicTable::load(wrong_horizon.as_bytes()).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("stage count"), "{err}");

        // A grid that no longer matches the config's axes.
        let wrong_grid = json.replacen("\"h_max_ft\":1200", "\"h_max_ft\":1300", 1);
        assert_ne!(wrong_grid, json, "substitution must hit");
        let err = LogicTable::load(wrong_grid.as_bytes()).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("grid"), "{err}");

        // A stage whose action arity is wrong: drop one value from the
        // first stage's buffer. QTable's own deserialization validates the
        // buffer length, so this surfaces as a parse error rather than a
        // lookup panic.
        let pos = json.find("\"values\":[").expect("stage values present");
        let comma = json[pos..].find(',').expect("more than one value") + pos;
        let mut truncated = json.clone();
        truncated.replace_range(pos + "\"values\":[".len()..=comma, "");
        assert!(LogicTable::load(truncated.as_bytes()).is_err());
    }

    #[test]
    fn batched_lookups_match_scalar_exactly() {
        let t = coarse_table();
        let h: Vec<f64> = vec![-1500.0, -300.0, 0.0, 150.0, 333.3, 1200.0, 4000.0];
        let own: Vec<f64> = vec![0.0, -20.0, 5.0, 12.5, -3.3, 40.0, 0.1];
        let intr: Vec<f64> = vec![10.0, 0.0, -5.0, 7.0, 21.0, -40.0, 0.2];
        let tau: Vec<f64> = vec![-2.0, 0.5, 3.0, 4.5, 6.0, 11.9, 500.0];
        let prev: Vec<Advisory> = (0..7).map(Advisory::from_index).collect();
        let batch = StateBatch {
            h_ft: &h,
            own_rate_fps: &own,
            intruder_rate_fps: &intr,
            tau_s: &tau,
            previous: &prev,
        };
        let mut scratch = LookupScratch::default();
        let mut q_out = Vec::new();
        t.q_values_batch(&batch, &mut scratch, &mut q_out);
        assert_eq!(q_out.len(), batch.len());
        for i in 0..batch.len() {
            let scalar = t.q_values(h[i], own[i], intr[i], tau[i], prev[i]);
            assert_eq!(q_out[i], scalar, "query {i}");
        }

        let forbidden = [
            None,
            Some(Sense::Up),
            Some(Sense::Down),
            None,
            Some(Sense::Up),
            None,
            Some(Sense::Down),
        ];
        let mut best_out = Vec::new();
        t.best_advisory_batch(&batch, &forbidden, 3.0, &mut scratch, &mut best_out);
        for i in 0..batch.len() {
            let scalar = t.best_advisory(h[i], own[i], intr[i], tau[i], prev[i], forbidden[i], 3.0);
            assert_eq!(best_out[i], scalar, "query {i}");
        }

        // Reusing the same scratch/outputs for a smaller batch leaves no
        // stale entries.
        let small = StateBatch {
            h_ft: &h[..2],
            own_rate_fps: &own[..2],
            intruder_rate_fps: &intr[..2],
            tau_s: &tau[..2],
            previous: &prev[..2],
        };
        t.q_values_batch(&small, &mut scratch, &mut q_out);
        assert_eq!(q_out.len(), 2);
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn ragged_batches_panic() {
        let t = coarse_table();
        let batch = StateBatch {
            h_ft: &[0.0, 1.0],
            own_rate_fps: &[0.0],
            intruder_rate_fps: &[0.0, 0.0],
            tau_s: &[5.0, 5.0],
            previous: &[Advisory::Coc, Advisory::Coc],
        };
        t.q_values_batch(&batch, &mut LookupScratch::default(), &mut Vec::new());
    }

    #[test]
    fn advisory_map_with_scratch_matches_plain_rendering() {
        let t = coarse_table();
        let mut scratch = LookupScratch::default();
        assert_eq!(
            t.render_advisory_map(5.0, -5.0),
            t.render_advisory_map_with(5.0, -5.0, &mut scratch)
        );
        assert_eq!(
            t.horizon_s(),
            t.num_stages() as f64 * t.config().dynamics.dt_s
        );
    }
}
