use serde::{Deserialize, Serialize};
use uavca_sim::Sense;

/// The advisory set of the vertical logic, modelled on the ACAS XU action
/// space of ATC-360/371: clear of conflict, two vertical-rate
/// *restrictions*, two 1500 ft/min rate advisories, and their 2500 ft/min
/// strengthenings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Advisory {
    /// Clear of conflict — no restriction, no alert.
    Coc,
    /// Do not climb (restrict vertical rate to ≤ 0).
    Dnc,
    /// Do not descend (restrict vertical rate to ≥ 0).
    Dnd,
    /// Descend at 1500 ft/min.
    Des1500,
    /// Climb at 1500 ft/min.
    Cl1500,
    /// Strengthened descend at 2500 ft/min.
    Sdes2500,
    /// Strengthened climb at 2500 ft/min.
    Scl2500,
}

impl Advisory {
    /// All advisories in their canonical action-index order.
    pub const ALL: [Advisory; 7] = [
        Advisory::Coc,
        Advisory::Dnc,
        Advisory::Dnd,
        Advisory::Des1500,
        Advisory::Cl1500,
        Advisory::Sdes2500,
        Advisory::Scl2500,
    ];

    /// Number of advisories.
    pub const COUNT: usize = 7;

    /// The canonical action index of this advisory (its discriminant — the
    /// variants are declared in `ALL` order).
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// The advisory with action index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 7`.
    pub fn from_index(i: usize) -> Advisory {
        Self::ALL[i]
    }

    /// Whether this advisory alerts the pilot (everything except COC).
    pub fn is_alert(self) -> bool {
        self != Advisory::Coc
    }

    /// The vertical sense of the advisory, used for coordination. `None`
    /// for COC.
    pub fn sense(self) -> Option<Sense> {
        match self {
            Advisory::Coc => None,
            Advisory::Dnc | Advisory::Des1500 | Advisory::Sdes2500 => Some(Sense::Down),
            Advisory::Dnd | Advisory::Cl1500 | Advisory::Scl2500 => Some(Sense::Up),
        }
    }

    /// Whether this advisory is permitted under a coordination restriction
    /// against `forbidden`: senseless advisories (COC) are always allowed,
    /// and a sensed advisory is allowed unless it matches the forbidden
    /// sense. The single definition of the restriction rule — every
    /// advisory-selection path (scalar, batched, online) routes through it.
    #[inline]
    pub fn sense_allowed(self, forbidden: Option<Sense>) -> bool {
        match (self.sense(), forbidden) {
            (Some(s), Some(f)) => s != f,
            _ => true,
        }
    }

    /// Alert strength for strengthening/weakening cost accounting:
    /// 0 = none, 1 = restriction, 2 = 1500 ft/min rate, 3 = 2500 ft/min.
    pub fn strength(self) -> u8 {
        match self {
            Advisory::Coc => 0,
            Advisory::Dnc | Advisory::Dnd => 1,
            Advisory::Des1500 | Advisory::Cl1500 => 2,
            Advisory::Sdes2500 | Advisory::Scl2500 => 3,
        }
    }

    /// The vertical-rate target the own-ship tracks under this advisory,
    /// ft/s, given its current vertical rate. Restrictions only bite when
    /// violated; `None` means "no commanded rate" (COC).
    pub fn target_rate_fps(self, current_rate_fps: f64) -> Option<f64> {
        const FPM1500: f64 = 1500.0 / 60.0;
        const FPM2500: f64 = 2500.0 / 60.0;
        match self {
            Advisory::Coc => None,
            Advisory::Dnc => Some(current_rate_fps.min(0.0)),
            Advisory::Dnd => Some(current_rate_fps.max(0.0)),
            Advisory::Des1500 => Some(-FPM1500),
            Advisory::Cl1500 => Some(FPM1500),
            Advisory::Sdes2500 => Some(-FPM2500),
            Advisory::Scl2500 => Some(FPM2500),
        }
    }

    /// A short label for traces ("COC", "CL1500", …).
    pub fn label(self) -> &'static str {
        match self {
            Advisory::Coc => "COC",
            Advisory::Dnc => "DNC",
            Advisory::Dnd => "DND",
            Advisory::Des1500 => "DES1500",
            Advisory::Cl1500 => "CL1500",
            Advisory::Sdes2500 => "SDES2500",
            Advisory::Scl2500 => "SCL2500",
        }
    }

    /// Whether switching from `self` to `next` is a sense reversal
    /// (down-family to up-family or vice versa).
    pub fn reverses_to(self, next: Advisory) -> bool {
        matches!(
            (self.sense(), next.sense()),
            (Some(a), Some(b)) if a != b
        )
    }

    /// Whether switching from `self` to `next` strengthens an existing
    /// advisory in the same sense.
    pub fn strengthens_to(self, next: Advisory) -> bool {
        self.sense().is_some() && self.sense() == next.sense() && next.strength() > self.strength()
    }

    /// The mirror advisory under a vertical flip (climb ↔ descend).
    pub fn mirrored(self) -> Advisory {
        match self {
            Advisory::Coc => Advisory::Coc,
            Advisory::Dnc => Advisory::Dnd,
            Advisory::Dnd => Advisory::Dnc,
            Advisory::Des1500 => Advisory::Cl1500,
            Advisory::Cl1500 => Advisory::Des1500,
            Advisory::Sdes2500 => Advisory::Scl2500,
            Advisory::Scl2500 => Advisory::Sdes2500,
        }
    }
}

impl std::fmt::Display for Advisory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A set of permitted advisories, packed as one bit per action index.
///
/// This is the branch-free form of the advisory masks the selection paths
/// take: a closure-based mask is evaluated once into an `AdvisorySet`, and
/// the argmax kernel then tests membership with a shift instead of a call.
/// COC is a member of every set — a decision must always exist — so
/// constructors force bit 0 on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AdvisorySet(u8);

impl AdvisorySet {
    /// The set containing all seven advisories.
    pub const ALL: AdvisorySet = AdvisorySet(0x7F);

    /// Builds a set from a predicate over the six non-COC advisories
    /// (COC is always included).
    #[inline]
    pub fn from_fn(mut allowed: impl FnMut(Advisory) -> bool) -> AdvisorySet {
        let mut bits = 1u8; // COC
        for adv in &Advisory::ALL[1..] {
            bits |= u8::from(allowed(*adv)) << adv.index();
        }
        AdvisorySet(bits)
    }

    /// The set permitted under a coordination restriction against
    /// `forbidden` (see [`Advisory::sense_allowed`]).
    #[inline]
    pub fn for_restriction(forbidden: Option<Sense>) -> AdvisorySet {
        Self::from_fn(|adv| adv.sense_allowed(forbidden))
    }

    /// Whether `advisory` is in the set.
    #[inline]
    pub fn allows(self, advisory: Advisory) -> bool {
        self.0 >> advisory.index() & 1 == 1
    }
}

impl Default for AdvisorySet {
    /// The all-permitted set.
    fn default() -> Self {
        Self::ALL
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trip() {
        for (i, &a) in Advisory::ALL.iter().enumerate() {
            assert_eq!(a.index(), i);
            assert_eq!(Advisory::from_index(i), a);
        }
        assert_eq!(Advisory::ALL.len(), Advisory::COUNT);
    }

    #[test]
    fn coc_is_the_only_non_alert() {
        for a in Advisory::ALL {
            assert_eq!(a.is_alert(), a != Advisory::Coc);
        }
    }

    #[test]
    fn senses_are_consistent_with_targets() {
        for a in Advisory::ALL {
            match a.sense() {
                None => assert_eq!(a.target_rate_fps(10.0), None),
                Some(Sense::Up) => {
                    let t = a.target_rate_fps(-10.0).unwrap();
                    assert!(t >= 0.0, "{a}: up-sense target must not descend, got {t}");
                }
                Some(Sense::Down) => {
                    let t = a.target_rate_fps(10.0).unwrap();
                    assert!(t <= 0.0, "{a}: down-sense target must not climb, got {t}");
                }
            }
        }
    }

    #[test]
    fn restrictions_only_bite_when_violated() {
        // Already descending: DNC leaves the rate alone.
        assert_eq!(Advisory::Dnc.target_rate_fps(-12.0), Some(-12.0));
        // Climbing: DNC caps at zero.
        assert_eq!(Advisory::Dnc.target_rate_fps(12.0), Some(0.0));
        assert_eq!(Advisory::Dnd.target_rate_fps(12.0), Some(12.0));
        assert_eq!(Advisory::Dnd.target_rate_fps(-12.0), Some(0.0));
    }

    #[test]
    fn reversal_and_strengthening_relations() {
        assert!(Advisory::Cl1500.reverses_to(Advisory::Des1500));
        assert!(Advisory::Des1500.reverses_to(Advisory::Scl2500));
        assert!(!Advisory::Cl1500.reverses_to(Advisory::Scl2500));
        assert!(!Advisory::Coc.reverses_to(Advisory::Cl1500));

        assert!(Advisory::Cl1500.strengthens_to(Advisory::Scl2500));
        assert!(Advisory::Dnd.strengthens_to(Advisory::Cl1500));
        assert!(
            !Advisory::Scl2500.strengthens_to(Advisory::Cl1500),
            "weakening"
        );
        assert!(
            !Advisory::Cl1500.strengthens_to(Advisory::Sdes2500),
            "reversal, not strengthening"
        );
        assert!(
            !Advisory::Coc.strengthens_to(Advisory::Cl1500),
            "initial alert, not strengthening"
        );
    }

    #[test]
    fn mirror_is_an_involution_and_flips_sense() {
        for a in Advisory::ALL {
            assert_eq!(a.mirrored().mirrored(), a);
            match a.sense() {
                None => assert_eq!(a.mirrored().sense(), None),
                Some(s) => assert_eq!(a.mirrored().sense(), Some(s.opposite())),
            }
            assert_eq!(a.strength(), a.mirrored().strength());
        }
    }

    #[test]
    fn advisory_set_matches_its_predicate() {
        for forbidden in [None, Some(Sense::Up), Some(Sense::Down)] {
            let set = AdvisorySet::for_restriction(forbidden);
            for a in Advisory::ALL {
                assert_eq!(set.allows(a), a.sense_allowed(forbidden), "{a}");
            }
        }
        // COC is forced on even when the predicate rejects everything.
        let none = AdvisorySet::from_fn(|_| false);
        assert!(none.allows(Advisory::Coc));
        for a in &Advisory::ALL[1..] {
            assert!(!none.allows(*a));
        }
        assert_eq!(AdvisorySet::default(), AdvisorySet::ALL);
        assert_eq!(AdvisorySet::for_restriction(None), AdvisorySet::ALL);
    }

    #[test]
    fn strength_ordering() {
        assert!(Advisory::Coc.strength() < Advisory::Dnc.strength());
        assert!(Advisory::Dnc.strength() < Advisory::Des1500.strength());
        assert!(Advisory::Des1500.strength() < Advisory::Sdes2500.strength());
    }
}
