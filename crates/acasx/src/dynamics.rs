use serde::{Deserialize, Serialize};

use crate::Advisory;

/// The own-ship response and intruder disturbance model used when building
/// the MDP ("aircraft dynamics modelling" in the paper's list of
/// engineering techniques).
///
/// Both vertical rates evolve in discrete `dt` steps. The own-ship tracks
/// its advisory's target rate under an acceleration limit; the intruder's
/// rate performs a bounded random walk. Both are perturbed by three-point
/// sigma noise `{−w, 0, +w}` with probabilities `{0.25, 0.5, 0.25}` — the
/// sampling scheme that keeps the transition fan-out small (paper Section
/// IV's "sampling techniques").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VerticalDynamics {
    /// Decision/integration step, s.
    pub dt_s: f64,
    /// Own-ship maximum vertical acceleration when following an advisory,
    /// ft/s².
    pub own_accel_fps2: f64,
    /// Vertical-rate envelope (magnitude bound) for both aircraft, ft/s.
    pub max_rate_fps: f64,
    /// Own-ship rate noise half-width `w`, ft/s per step.
    pub own_noise_fps: f64,
    /// Intruder rate noise half-width `w`, ft/s per step.
    pub intruder_noise_fps: f64,
}

impl Default for VerticalDynamics {
    fn default() -> Self {
        Self {
            dt_s: 1.0,
            own_accel_fps2: 8.0,
            max_rate_fps: 2500.0 / 60.0,
            own_noise_fps: 2.0,
            intruder_noise_fps: 4.0,
        }
    }
}

/// The deterministic part of the own-ship's next vertical rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OwnResponse {
    /// Next vertical rate before noise, ft/s.
    pub next_rate_fps: f64,
}

impl VerticalDynamics {
    /// Deterministic own-ship response: move the current rate toward the
    /// advisory's target under the acceleration limit (COC drifts).
    pub fn own_response(&self, current_rate_fps: f64, advisory: Advisory) -> OwnResponse {
        let next = match advisory.target_rate_fps(current_rate_fps) {
            None => current_rate_fps,
            Some(target) => {
                let max_dv = self.own_accel_fps2 * self.dt_s;
                current_rate_fps + (target - current_rate_fps).clamp(-max_dv, max_dv)
            }
        };
        OwnResponse {
            next_rate_fps: next.clamp(-self.max_rate_fps, self.max_rate_fps),
        }
    }

    /// The three-point sigma noise kernel `{(-w, ¼), (0, ½), (+w, ¼)}`.
    pub fn noise_kernel(half_width: f64) -> [(f64, f64); 3] {
        [(-half_width, 0.25), (0.0, 0.5), (half_width, 0.25)]
    }

    /// Enumerates the stochastic successor kinematics of one step: given
    /// relative altitude `h` (ft) and the two vertical rates (ft/s), and
    /// the advisory commanded this step, yields
    /// `(h', own_rate', intruder_rate', probability)` tuples (9 of them).
    ///
    /// Altitude integrates trapezoidally: the step uses the average of the
    /// old and new rates.
    pub fn successors(
        &self,
        h_ft: f64,
        own_rate_fps: f64,
        intruder_rate_fps: f64,
        advisory: Advisory,
    ) -> Vec<(f64, f64, f64, f64)> {
        let response = self.own_response(own_rate_fps, advisory);
        let mut out = Vec::with_capacity(9);
        for (w0, p0) in Self::noise_kernel(self.own_noise_fps) {
            let own_next =
                (response.next_rate_fps + w0).clamp(-self.max_rate_fps, self.max_rate_fps);
            for (w1, p1) in Self::noise_kernel(self.intruder_noise_fps) {
                let intr_next =
                    (intruder_rate_fps + w1).clamp(-self.max_rate_fps, self.max_rate_fps);
                let h_next = h_ft
                    + 0.5
                        * ((intruder_rate_fps + intr_next) - (own_rate_fps + own_next))
                        * self.dt_s;
                out.push((h_next, own_next, intr_next, p0 * p1));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coc_drifts_without_response() {
        let d = VerticalDynamics::default();
        assert_eq!(d.own_response(7.0, Advisory::Coc).next_rate_fps, 7.0);
    }

    #[test]
    fn advisory_tracking_is_accel_limited() {
        let d = VerticalDynamics::default();
        // From level toward 1500 fpm (25 ft/s): limited to 8 ft/s per step.
        assert!((d.own_response(0.0, Advisory::Cl1500).next_rate_fps - 8.0).abs() < 1e-12);
        assert!((d.own_response(20.0, Advisory::Cl1500).next_rate_fps - 25.0).abs() < 1e-12);
        // Descend advisory from a climb.
        assert!((d.own_response(10.0, Advisory::Des1500).next_rate_fps - 2.0).abs() < 1e-12);
    }

    #[test]
    fn restrictions_do_not_disturb_compliant_rates() {
        let d = VerticalDynamics::default();
        assert_eq!(d.own_response(-10.0, Advisory::Dnc).next_rate_fps, -10.0);
        assert!((d.own_response(10.0, Advisory::Dnc).next_rate_fps - 2.0).abs() < 1e-12);
    }

    #[test]
    fn envelope_is_enforced() {
        let d = VerticalDynamics::default();
        let r = d.own_response(41.0, Advisory::Scl2500).next_rate_fps;
        assert!(r <= d.max_rate_fps + 1e-12);
    }

    #[test]
    fn successor_probabilities_sum_to_one() {
        let d = VerticalDynamics::default();
        let succ = d.successors(500.0, 5.0, -10.0, Advisory::Cl1500);
        assert_eq!(succ.len(), 9);
        let mass: f64 = succ.iter().map(|s| s.3).sum();
        assert!((mass - 1.0).abs() < 1e-12);
    }

    #[test]
    fn expected_altitude_change_matches_rates() {
        let d = VerticalDynamics::default();
        // Both level, COC: expected Δh = 0 (noise is symmetric).
        let succ = d.successors(100.0, 0.0, 0.0, Advisory::Coc);
        let eh: f64 = succ.iter().map(|s| s.0 * s.3).sum();
        assert!((eh - 100.0).abs() < 1e-9);
        // Intruder climbing at 10 ft/s, own level: Δh ≈ +10·dt.
        let succ = d.successors(0.0, 0.0, 10.0, Advisory::Coc);
        let eh: f64 = succ.iter().map(|s| s.0 * s.3).sum();
        assert!((eh - 10.0).abs() < 1e-9);
    }

    #[test]
    fn climb_advisory_reduces_relative_altitude_growth() {
        let d = VerticalDynamics::default();
        // Intruder level above us; climbing reduces h = z_int − z_own.
        let coc: f64 = d
            .successors(300.0, 0.0, 0.0, Advisory::Coc)
            .iter()
            .map(|s| s.0 * s.3)
            .sum();
        let climb: f64 = d
            .successors(300.0, 0.0, 0.0, Advisory::Cl1500)
            .iter()
            .map(|s| s.0 * s.3)
            .sum();
        assert!(
            climb < coc,
            "climbing closes toward an intruder above: {climb} vs {coc}"
        );
    }

    #[test]
    fn successors_mirror_under_vertical_flip() {
        let d = VerticalDynamics::default();
        let up = d.successors(200.0, 3.0, -6.0, Advisory::Cl1500);
        let down = d.successors(-200.0, -3.0, 6.0, Advisory::Des1500);
        // The flipped problem must produce mirrored outcomes with the same
        // probabilities (noise kernel is symmetric).
        let mut up_sorted: Vec<_> = up
            .iter()
            .map(|&(h, o, i, p)| {
                (
                    (h * 1e6) as i64,
                    (o * 1e6) as i64,
                    (i * 1e6) as i64,
                    (p * 1e6) as i64,
                )
            })
            .collect();
        let mut down_flipped: Vec<_> = down
            .iter()
            .map(|&(h, o, i, p)| {
                (
                    (-h * 1e6) as i64,
                    (-o * 1e6) as i64,
                    (-i * 1e6) as i64,
                    (p * 1e6) as i64,
                )
            })
            .collect();
        up_sorted.sort();
        down_flipped.sort();
        assert_eq!(up_sorted, down_flipped);
    }
}
