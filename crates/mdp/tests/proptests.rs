//! Property-based tests for the MDP substrate: solver agreement, Bellman
//! optimality, and interpolation invariants on randomly generated inputs.

use proptest::prelude::*;
use uavca_mdp::{
    BackwardInduction, DenseMdp, DenseMdpBuilder, Mdp, PolicyIteration, RectGridBuilder,
    SweepOrder, ValueIteration,
};

/// Strategy: a random well-formed dense MDP with `n` states, `na` actions.
fn arb_mdp(max_states: usize, max_actions: usize) -> impl Strategy<Value = DenseMdp> {
    (2..=max_states, 1..=max_actions, 0u64..u64::MAX).prop_map(|(n, na, seed)| {
        // Deterministic construction from the seed keeps shrinking stable.
        let mut state = seed;
        let mut next = move || {
            // xorshift64*
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state = state.wrapping_mul(0x2545F4914F6CDD1D);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut b = DenseMdpBuilder::new(n, na, 0.9);
        for s in 0..n {
            for a in 0..na {
                let s1 = (next() * n as f64) as usize % n;
                let mut s2 = (next() * n as f64) as usize % n;
                if s2 == s1 {
                    s2 = (s2 + 1) % n;
                }
                let p = 0.05 + 0.9 * next();
                b.transition(s, a, s1, p);
                b.transition(s, a, s2, 1.0 - p);
                b.reward(s, a, next() * 2.0 - 1.0);
            }
        }
        b.build().expect("constructed mass sums to one")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The optimal values satisfy the Bellman optimality equation:
    /// V*(s) = max_a [ R(s,a) + γ Σ P(s'|s,a) V*(s') ].
    #[test]
    fn value_iteration_satisfies_bellman_optimality(m in arb_mdp(20, 4)) {
        let sol = ValueIteration::new().tolerance(1e-12).solve(&m).unwrap();
        for s in 0..m.num_states() {
            let mut best = f64::NEG_INFINITY;
            for a in 0..m.num_actions() {
                let q: f64 = m.reward(s, a)
                    + m.discount()
                        * m.transitions(s, a)
                            .iter()
                            .map(|t| t.probability * sol.values[t.next_state])
                            .sum::<f64>();
                best = best.max(q);
            }
            prop_assert!((best - sol.values[s]).abs() < 1e-6, "state {}", s);
        }
    }

    /// Gauss–Seidel and synchronous sweeps converge to the same fixed point.
    #[test]
    fn sweep_orders_agree(m in arb_mdp(16, 3)) {
        let a = ValueIteration::new().tolerance(1e-12).solve(&m).unwrap();
        let b = ValueIteration::new()
            .tolerance(1e-12)
            .sweep_order(SweepOrder::GaussSeidel)
            .solve(&m)
            .unwrap();
        for s in 0..m.num_states() {
            prop_assert!((a.values[s] - b.values[s]).abs() < 1e-7);
        }
    }

    /// Policy iteration reaches the same optimal value function as value
    /// iteration.
    #[test]
    fn policy_iteration_agrees_with_value_iteration(m in arb_mdp(14, 3)) {
        let vi = ValueIteration::new().tolerance(1e-12).solve(&m).unwrap();
        let (pi, _) = PolicyIteration::new().solve(&m).unwrap();
        for s in 0..m.num_states() {
            prop_assert!((vi.values[s] - pi.values[s]).abs() < 1e-6, "state {}", s);
        }
    }

    /// Backward induction over a long horizon approaches the discounted
    /// infinite-horizon fixed point (γ < 1 contracts the horizon tail).
    #[test]
    fn long_horizon_backward_induction_approaches_vi(m in arb_mdp(10, 2)) {
        let vi = ValueIteration::new().tolerance(1e-12).solve(&m).unwrap();
        let bi = BackwardInduction::new()
            .solve(&m, 400, vec![0.0; m.num_states()])
            .unwrap();
        let last = bi.stage_values.last().unwrap();
        for (s, &v) in last.iter().enumerate() {
            // gamma^400 * max|V| is astronomically small for gamma = 0.9.
            prop_assert!((vi.values[s] - v).abs() < 1e-6, "state {}", s);
        }
    }

    /// Interpolation weights are a convex combination for any query point.
    #[test]
    fn interp_weights_are_convex(
        q0 in -50.0f64..50.0,
        q1 in -50.0f64..50.0,
        q2 in -50.0f64..50.0,
    ) {
        let g = RectGridBuilder::new()
            .axis_linspace(-10.0, 10.0, 7)
            .axis(vec![-5.0, -1.0, 0.0, 2.0])
            .axis_linspace(0.0, 30.0, 4)
            .build()
            .unwrap();
        let w = g.interp_weights(&[q0, q1, q2]).unwrap();
        let total: f64 = w.weights.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        prop_assert!(w.weights.iter().all(|&x| x >= 0.0));
        prop_assert!(w.indices.iter().all(|&i| i < g.num_points()));

        // The zero-allocation and batched paths agree bit-for-bit with the
        // allocating one.
        let mut corners = uavca_mdp::InterpCorners::empty();
        g.interp_weights_into(&[q0, q1, q2], &mut corners).unwrap();
        prop_assert_eq!(corners.indices(), w.indices.as_slice());
        prop_assert_eq!(corners.weights(), w.weights.as_slice());
        let mut batch = Vec::new();
        g.interp_weights_batch_into(&[&[q0, q0], &[q1, q1], &[q2, q2]], &mut batch)
            .unwrap();
        prop_assert_eq!(batch.len(), 2);
        for b in &batch {
            prop_assert_eq!(b, &corners);
        }
    }

    /// Multilinear interpolation is exact on affine functions inside the box.
    #[test]
    fn interpolation_exact_on_affine(
        q0 in -10.0f64..10.0,
        q1 in -5.0f64..2.0,
        a in -3.0f64..3.0,
        b in -3.0f64..3.0,
        c in -3.0f64..3.0,
    ) {
        let g = RectGridBuilder::new()
            .axis_linspace(-10.0, 10.0, 9)
            .axis(vec![-5.0, -2.0, 0.5, 2.0])
            .build()
            .unwrap();
        let values: Vec<f64> = g.iter_points().map(|(_, p)| a * p[0] + b * p[1] + c).collect();
        let got = g.interpolate(&[q0, q1], &values).unwrap();
        let want = a * q0 + b * q1 + c;
        prop_assert!((got - want).abs() < 1e-7, "got {} want {}", got, want);
    }

    /// Grid index round trip for arbitrary shapes.
    #[test]
    fn grid_index_round_trip(n0 in 1usize..6, n1 in 1usize..6, n2 in 1usize..6) {
        let g = RectGridBuilder::new()
            .axis_linspace(0.0, 1.0, n0)
            .axis_linspace(0.0, 1.0, n1)
            .axis_linspace(0.0, 1.0, n2)
            .build()
            .unwrap();
        prop_assert_eq!(g.num_points(), n0 * n1 * n2);
        for flat in 0..g.num_points() {
            let multi = g.multi_index(flat).unwrap();
            prop_assert_eq!(g.flat_index(&multi).unwrap(), flat);
        }
    }
}
