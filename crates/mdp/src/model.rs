use crate::{MdpError, Result};

/// One stochastic outcome of taking an action: with probability
/// [`probability`](Transition::probability) the process moves to
/// [`next_state`](Transition::next_state).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Transition {
    /// Index of the successor state.
    pub next_state: usize,
    /// Probability of this outcome; the outcomes of one `(state, action)`
    /// pair must sum to one.
    pub probability: f64,
}

impl Transition {
    /// Creates a transition outcome.
    pub fn new(next_state: usize, probability: f64) -> Self {
        Self {
            next_state,
            probability,
        }
    }
}

/// A finite, discounted Markov decision process.
///
/// States and actions are dense indices `0..num_states()` and
/// `0..num_actions()`. Rewards are maximized by the solvers in this crate;
/// model costs (e.g. the collision penalty of an avoidance MDP) as negative
/// rewards.
///
/// The trait is object-safe so heterogeneous models can share solver code.
pub trait Mdp {
    /// Number of states in the model. Must be at least 1.
    fn num_states(&self) -> usize;

    /// Number of actions available in every state. Must be at least 1.
    ///
    /// Models where some actions are invalid in some states should make
    /// those actions harmless (self-loops) with a strongly negative reward,
    /// or mask them via [`Mdp::action_allowed`].
    fn num_actions(&self) -> usize;

    /// Discount factor γ ∈ (0, 1]. γ = 1 is only meaningful for models
    /// solved by finite-horizon backward induction.
    fn discount(&self) -> f64;

    /// Appends the stochastic outcomes of taking `action` in `state` to
    /// `out`. Implementations must clear nothing: callers pass a scratch
    /// buffer they have already cleared.
    ///
    /// The appended probabilities must be non-negative and sum to 1.
    fn transitions_into(&self, state: usize, action: usize, out: &mut Vec<Transition>);

    /// Expected immediate reward of taking `action` in `state`.
    fn reward(&self, state: usize, action: usize) -> f64;

    /// Whether `action` may be selected in `state`. Defaults to `true` for
    /// every pair; collision avoidance models override this to encode
    /// coordination masking or advisory reachability.
    fn action_allowed(&self, state: usize, action: usize) -> bool {
        let _ = (state, action);
        true
    }

    /// Convenience wrapper returning the transitions as a fresh vector.
    fn transitions(&self, state: usize, action: usize) -> Vec<Transition> {
        let mut out = Vec::new();
        self.transitions_into(state, action, &mut out);
        out
    }
}

/// Validates that a model's basic invariants hold; used by solvers before
/// they start and available to tests.
///
/// # Errors
///
/// Returns [`MdpError::EmptyModel`], [`MdpError::InvalidDiscount`] or
/// [`MdpError::InvalidDistribution`] when the corresponding invariant is
/// violated. Probability mass is checked to a tolerance of `1e-6`.
pub(crate) fn validate_model<M: Mdp + ?Sized>(model: &M) -> Result<()> {
    if model.num_states() == 0 || model.num_actions() == 0 {
        return Err(MdpError::EmptyModel);
    }
    let gamma = model.discount();
    if !(gamma > 0.0 && gamma <= 1.0) {
        return Err(MdpError::InvalidDiscount(gamma));
    }
    let mut scratch = Vec::new();
    for s in 0..model.num_states() {
        for a in 0..model.num_actions() {
            scratch.clear();
            model.transitions_into(s, a, &mut scratch);
            let mut mass = 0.0;
            for t in &scratch {
                if t.probability < 0.0 || !t.probability.is_finite() {
                    return Err(MdpError::InvalidDistribution {
                        state: s,
                        action: a,
                        mass: t.probability,
                    });
                }
                if t.next_state >= model.num_states() {
                    return Err(MdpError::StateOutOfRange {
                        state: t.next_state,
                        num_states: model.num_states(),
                    });
                }
                mass += t.probability;
            }
            if (mass - 1.0).abs() > 1e-6 {
                return Err(MdpError::InvalidDistribution {
                    state: s,
                    action: a,
                    mass,
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Chain;

    impl Mdp for Chain {
        fn num_states(&self) -> usize {
            3
        }
        fn num_actions(&self) -> usize {
            1
        }
        fn discount(&self) -> f64 {
            0.9
        }
        fn transitions_into(&self, state: usize, _action: usize, out: &mut Vec<Transition>) {
            out.push(Transition::new((state + 1).min(2), 1.0));
        }
        fn reward(&self, state: usize, _action: usize) -> f64 {
            if state == 2 {
                1.0
            } else {
                0.0
            }
        }
    }

    #[test]
    fn object_safety() {
        let boxed: Box<dyn Mdp> = Box::new(Chain);
        assert_eq!(boxed.num_states(), 3);
        assert_eq!(boxed.transitions(0, 0), vec![Transition::new(1, 1.0)]);
    }

    #[test]
    fn validation_accepts_well_formed_chain() {
        assert!(validate_model(&Chain).is_ok());
    }

    struct BadMass;

    impl Mdp for BadMass {
        fn num_states(&self) -> usize {
            1
        }
        fn num_actions(&self) -> usize {
            1
        }
        fn discount(&self) -> f64 {
            0.9
        }
        fn transitions_into(&self, _s: usize, _a: usize, out: &mut Vec<Transition>) {
            out.push(Transition::new(0, 0.5));
        }
        fn reward(&self, _s: usize, _a: usize) -> f64 {
            0.0
        }
    }

    #[test]
    fn validation_rejects_bad_mass() {
        match validate_model(&BadMass) {
            Err(MdpError::InvalidDistribution { mass, .. }) => {
                assert!((mass - 0.5).abs() < 1e-12)
            }
            other => panic!("expected InvalidDistribution, got {other:?}"),
        }
    }

    #[test]
    fn default_action_mask_allows_everything() {
        assert!(Chain.action_allowed(0, 0));
    }
}
