//! Finite Markov decision processes and the dynamic-programming machinery
//! used to synthesize collision avoidance logic by model-based optimization.
//!
//! The ACAS X development process described by Zou, Alexander & McDermid
//! (DSN 2016) — and by the MIT-LL reports it builds on — casts the evolution
//! of a two-aircraft encounter as a [Markov decision process](Mdp) and lets a
//! computer derive the avoidance logic as the *optimal policy* of that MDP.
//! This crate provides that substrate:
//!
//! * the [`Mdp`] trait describing a finite MDP (states, actions, stochastic
//!   transitions, rewards, discounting),
//! * concrete models: [`DenseMdp`] (tabular) and [`SparseMdp`] (CSR-style),
//! * solvers: [`ValueIteration`], [`PolicyIteration`] and the finite-horizon
//!   [`BackwardInduction`] used for τ-indexed collision avoidance tables,
//! * the resulting [`Policy`] / [`QTable`] artifacts, and
//! * [`RectGrid`], an N-dimensional rectilinear grid with multilinear
//!   interpolation, used to discretize continuous encounter state spaces.
//!
//! # Example
//!
//! Solve a tiny two-state MDP where action 1 is clearly better:
//!
//! ```
//! use uavca_mdp::{DenseMdpBuilder, ValueIteration};
//!
//! let mut b = DenseMdpBuilder::new(2, 2, 0.9);
//! // state 0: action 0 stays (reward 0), action 1 moves to state 1 (reward 1)
//! b.transition(0, 0, 0, 1.0).reward(0, 0, 0.0);
//! b.transition(0, 1, 1, 1.0).reward(0, 1, 1.0);
//! // state 1 is absorbing with reward 0
//! b.transition(1, 0, 1, 1.0);
//! b.transition(1, 1, 1, 1.0);
//! let mdp = b.build().expect("valid MDP");
//!
//! let solution = ValueIteration::new().tolerance(1e-9).solve(&mdp).expect("converges");
//! assert_eq!(solution.policy.action(0), 1);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod backward;
mod dense;
mod error;
mod grid;
mod model;
mod policy;
mod policy_iteration;
mod rollout;
mod sparse;
mod value_iteration;

pub use backward::{BackwardInduction, StagedSolution};
pub use dense::{DenseMdp, DenseMdpBuilder};
pub use error::MdpError;
pub use grid::{
    InterpCorners, InterpWeights, RectGrid, RectGridBuilder, MAX_INTERP_CORNERS, MAX_INTERP_DIMS,
};
pub use model::{Mdp, Transition};
pub use policy::{Policy, QTable};
pub use policy_iteration::{PolicyIteration, PolicyIterationStats};
pub use rollout::RolloutSimulator;
pub use sparse::{SparseMdp, SparseMdpBuilder};
pub use value_iteration::{Solution, SweepOrder, ValueIteration, ValueIterationStats};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, MdpError>;
