use serde::{Deserialize, Serialize};

use crate::{MdpError, Result};

/// Maximum grid dimensionality served by the zero-allocation interpolation
/// path ([`RectGrid::interp_weights_into`] and the batch variant). The
/// allocating [`RectGrid::interp_weights`] remains total for higher
/// dimensionalities.
pub const MAX_INTERP_DIMS: usize = 4;

/// Corner capacity of [`InterpCorners`]: `2^MAX_INTERP_DIMS`.
pub const MAX_INTERP_CORNERS: usize = 1 << MAX_INTERP_DIMS;

/// Interpolation support for one query point: up to `2^d` grid corners with
/// convex weights.
///
/// Produced by [`RectGrid::interp_weights`]. The weights are non-negative
/// and sum to one, so pushing them through any value table is a convex
/// combination — this is how a continuous encounter state is projected onto
/// the discretized MDP ("sampling and interpolation" in the paper's
/// challenge list).
#[derive(Debug, Clone, PartialEq)]
pub struct InterpWeights {
    /// Flat indices of the participating grid corners.
    pub indices: Vec<usize>,
    /// Convex weight of each corner, aligned with `indices`.
    pub weights: Vec<f64>,
}

impl InterpWeights {
    /// Applies the weights to a per-grid-point value table.
    ///
    /// # Panics
    ///
    /// Panics if any stored index is out of range for `values` — the weights
    /// are only meaningful for tables over the grid that produced them.
    pub fn apply(&self, values: &[f64]) -> f64 {
        self.indices
            .iter()
            .zip(&self.weights)
            .map(|(&i, &w)| values[i] * w)
            .sum()
    }
}

/// Fixed-capacity interpolation corner set: the zero-allocation counterpart
/// of [`InterpWeights`] for grids of up to [`MAX_INTERP_DIMS`] dimensions.
///
/// Filled in place by [`RectGrid::interp_weights_into`] /
/// [`RectGrid::interp_weights_batch_into`]; lives on the stack or inside a
/// caller-owned scratch buffer, so hot lookup loops never touch the heap.
/// Corner order, values and the zero-weight-skipping behaviour are
/// identical to [`RectGrid::interp_weights`].
#[derive(Debug, Clone, Copy)]
pub struct InterpCorners {
    indices: [usize; MAX_INTERP_CORNERS],
    weights: [f64; MAX_INTERP_CORNERS],
    len: usize,
}

impl PartialEq for InterpCorners {
    /// Compares only the live corners; slots beyond `len` are scratch space
    /// and may hold stale values.
    fn eq(&self, other: &Self) -> bool {
        self.indices() == other.indices() && self.weights() == other.weights()
    }
}

impl Default for InterpCorners {
    fn default() -> Self {
        Self::empty()
    }
}

impl InterpCorners {
    /// A corner set with no corners (the state before the first fill).
    pub const fn empty() -> Self {
        Self {
            indices: [0; MAX_INTERP_CORNERS],
            weights: [0.0; MAX_INTERP_CORNERS],
            len: 0,
        }
    }

    /// Number of participating corners (`1..=2^d`).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set holds no corners.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Flat grid indices of the participating corners.
    pub fn indices(&self) -> &[usize] {
        &self.indices[..self.len]
    }

    /// Convex weight of each corner, aligned with [`indices`](Self::indices).
    pub fn weights(&self) -> &[f64] {
        &self.weights[..self.len]
    }

    /// Iterates over `(flat_index, weight)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.indices()
            .iter()
            .zip(self.weights())
            .map(|(&i, &w)| (i, w))
    }

    /// Applies the weights to a per-grid-point value table.
    ///
    /// # Panics
    ///
    /// Panics if any stored index is out of range for `values`.
    pub fn apply(&self, values: &[f64]) -> f64 {
        self.iter().map(|(i, w)| values[i] * w).sum()
    }

    /// Copies into the allocating representation.
    pub fn to_weights(&self) -> InterpWeights {
        InterpWeights {
            indices: self.indices().to_vec(),
            weights: self.weights().to_vec(),
        }
    }
}

/// An N-dimensional rectilinear grid: the cartesian product of strictly
/// increasing coordinate axes.
///
/// Flat indices are row-major with the **last axis fastest**, matching the
/// layout used by the logic tables in `uavca-acasx`.
///
/// # Example
///
/// ```
/// use uavca_mdp::RectGridBuilder;
///
/// let grid = RectGridBuilder::new()
///     .axis_linspace(-1000.0, 1000.0, 5) // relative altitude, ft
///     .axis(vec![-20.0, 0.0, 20.0])      // vertical rate, ft/s
///     .build()?;
/// assert_eq!(grid.num_points(), 15);
/// let w = grid.interp_weights(&[250.0, 5.0])?;
/// let total: f64 = w.weights.iter().sum();
/// assert!((total - 1.0).abs() < 1e-12);
/// # Ok::<(), uavca_mdp::MdpError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RectGrid {
    axes: Vec<Vec<f64>>,
    /// Stride of each axis in the flat index (last axis has stride 1).
    strides: Vec<usize>,
    num_points: usize,
}

impl RectGrid {
    fn from_axes(axes: Vec<Vec<f64>>) -> Result<Self> {
        if axes.is_empty() {
            return Err(MdpError::InvalidGridAxis { axis: 0 });
        }
        for (i, axis) in axes.iter().enumerate() {
            // `!(a < b)` deliberately also rejects NaN coordinates.
            #[allow(clippy::neg_cmp_op_on_partial_ord)]
            if axis.is_empty() || axis.windows(2).any(|w| !(w[0] < w[1])) {
                return Err(MdpError::InvalidGridAxis { axis: i });
            }
        }
        let mut strides = vec![0; axes.len()];
        let mut acc = 1;
        for (i, axis) in axes.iter().enumerate().rev() {
            strides[i] = acc;
            acc *= axis.len();
        }
        Ok(Self {
            axes,
            strides,
            num_points: acc,
        })
    }

    /// Number of dimensions.
    pub fn num_dims(&self) -> usize {
        self.axes.len()
    }

    /// Total number of grid points.
    pub fn num_points(&self) -> usize {
        self.num_points
    }

    /// The coordinate values along axis `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is out of range.
    pub fn axis(&self, dim: usize) -> &[f64] {
        &self.axes[dim]
    }

    /// Converts per-axis indices to a flat index.
    ///
    /// # Errors
    ///
    /// Returns [`MdpError::DimensionMismatch`] for a wrong-arity index and
    /// [`MdpError::StateOutOfRange`] when a component exceeds its axis.
    pub fn flat_index(&self, multi: &[usize]) -> Result<usize> {
        if multi.len() != self.axes.len() {
            return Err(MdpError::DimensionMismatch {
                expected: self.axes.len(),
                got: multi.len(),
            });
        }
        let mut flat = 0;
        for ((&i, axis), &stride) in multi.iter().zip(&self.axes).zip(&self.strides) {
            if i >= axis.len() {
                return Err(MdpError::StateOutOfRange {
                    state: i,
                    num_states: axis.len(),
                });
            }
            flat += i * stride;
        }
        Ok(flat)
    }

    /// Converts a flat index back to per-axis indices.
    ///
    /// # Errors
    ///
    /// Returns [`MdpError::StateOutOfRange`] if `flat` exceeds
    /// [`num_points`](Self::num_points).
    pub fn multi_index(&self, flat: usize) -> Result<Vec<usize>> {
        if flat >= self.num_points {
            return Err(MdpError::StateOutOfRange {
                state: flat,
                num_states: self.num_points,
            });
        }
        let mut rem = flat;
        let mut multi = Vec::with_capacity(self.axes.len());
        for &stride in &self.strides {
            multi.push(rem / stride);
            rem %= stride;
        }
        Ok(multi)
    }

    /// The coordinates of the grid point with flat index `flat`.
    ///
    /// # Errors
    ///
    /// Returns [`MdpError::StateOutOfRange`] if `flat` is out of range.
    pub fn point(&self, flat: usize) -> Result<Vec<f64>> {
        let multi = self.multi_index(flat)?;
        Ok(multi
            .iter()
            .zip(&self.axes)
            .map(|(&i, axis)| axis[i])
            .collect())
    }

    /// Clamps `query` to the grid's bounding box, component-wise.
    ///
    /// # Errors
    ///
    /// Returns [`MdpError::DimensionMismatch`] for wrong arity.
    pub fn clamp(&self, query: &[f64]) -> Result<Vec<f64>> {
        if query.len() != self.axes.len() {
            return Err(MdpError::DimensionMismatch {
                expected: self.axes.len(),
                got: query.len(),
            });
        }
        Ok(query
            .iter()
            .zip(&self.axes)
            .map(|(&q, axis)| q.clamp(axis[0], *axis.last().expect("non-empty axis")))
            .collect())
    }

    /// Multilinear interpolation weights for `query`.
    ///
    /// The query is clamped to the grid bounds first (collision avoidance
    /// tables saturate at their edges rather than extrapolate). The result
    /// has up to `2^d` corners; axes where the query hits a grid line
    /// exactly contribute a single corner.
    ///
    /// This is the allocating convenience wrapper; hot paths should prefer
    /// [`interp_weights_into`](Self::interp_weights_into).
    ///
    /// # Errors
    ///
    /// Returns [`MdpError::DimensionMismatch`] for wrong arity.
    pub fn interp_weights(&self, query: &[f64]) -> Result<InterpWeights> {
        if self.num_dims() <= MAX_INTERP_DIMS {
            let mut corners = InterpCorners::empty();
            self.interp_weights_into(query, &mut corners)?;
            return Ok(corners.to_weights());
        }
        let q = self.clamp(query)?;
        // Per-axis: (lower index, weight of the *upper* neighbor).
        let mut lows = Vec::with_capacity(q.len());
        let mut fracs = Vec::with_capacity(q.len());
        for (x, axis) in q.iter().zip(&self.axes) {
            let (lo, frac) = bracket(axis, *x);
            lows.push(lo);
            fracs.push(frac);
        }
        let d = q.len();
        let mut indices = Vec::with_capacity(1 << d.min(20));
        let mut weights = Vec::with_capacity(1 << d.min(20));
        expand_corners_with(&self.strides, &lows, &fracs, |flat, w| {
            indices.push(flat);
            weights.push(w);
        });
        Ok(InterpWeights { indices, weights })
    }

    /// Zero-allocation multilinear interpolation weights for `query`,
    /// written into `out`.
    ///
    /// Semantics (clamping, corner order, zero-weight skipping) are
    /// identical to [`interp_weights`](Self::interp_weights); all working
    /// state lives in fixed-size stack arrays, so no heap allocation happens
    /// per call. Clamping is performed implicitly: the per-axis bracketing
    /// saturates at the axis ends, which yields exactly the clamped weights.
    ///
    /// # Errors
    ///
    /// Returns [`MdpError::DimensionMismatch`] for wrong query arity, or if
    /// the grid has more than [`MAX_INTERP_DIMS`] dimensions (use the
    /// allocating API for those).
    pub fn interp_weights_into(&self, query: &[f64], out: &mut InterpCorners) -> Result<()> {
        let d = self.check_interp_dims(query.len())?;
        let mut lows = [0usize; MAX_INTERP_DIMS];
        let mut fracs = [0.0f64; MAX_INTERP_DIMS];
        for (dim, (x, axis)) in query.iter().zip(&self.axes).enumerate() {
            let (lo, frac) = bracket(axis, *x);
            lows[dim] = lo;
            fracs[dim] = frac;
        }
        self.expand_corners(d, &lows, &fracs, out);
        Ok(())
    }

    /// Batched interpolation weights over a structure-of-arrays query set:
    /// `queries_by_axis[dim][i]` is the `dim`-th coordinate of query `i`.
    ///
    /// Each axis is bracketed once over the whole query set (one contiguous
    /// pass per axis — the axis stays in cache instead of being re-walked
    /// per query), then the corners of each query are expanded. `out` is
    /// cleared and refilled; its capacity is reused across calls, so
    /// steady-state batches allocate nothing. Per-query results are
    /// bit-identical to [`interp_weights_into`](Self::interp_weights_into).
    ///
    /// # Errors
    ///
    /// Returns [`MdpError::DimensionMismatch`] if the outer slice does not
    /// have one entry per grid axis or the grid exceeds
    /// [`MAX_INTERP_DIMS`] dimensions, and [`MdpError::RaggedBatch`] if the
    /// per-axis slices have unequal lengths.
    pub fn interp_weights_batch_into(
        &self,
        queries_by_axis: &[&[f64]],
        out: &mut Vec<InterpCorners>,
    ) -> Result<()> {
        let d = self.check_interp_dims(queries_by_axis.len())?;
        let n = queries_by_axis.first().map_or(0, |q| q.len());
        for (axis, qs) in queries_by_axis.iter().enumerate() {
            if qs.len() != n {
                return Err(MdpError::RaggedBatch {
                    axis,
                    expected: n,
                    got: qs.len(),
                });
            }
        }
        // Size without re-initializing surviving entries: every live slot of
        // every entry is overwritten below, and slots beyond `len` are
        // scratch space by contract.
        out.resize(n, InterpCorners::empty());
        // Pass 1, axis-major: bracket every query against one axis before
        // moving to the next. The per-axis (low, frac) pairs are stashed in
        // the first `d` corner slots of each output entry.
        for (dim, (qs, axis)) in queries_by_axis.iter().zip(&self.axes).enumerate() {
            for (x, corners) in qs.iter().zip(out.iter_mut()) {
                let (lo, frac) = bracket(axis, *x);
                corners.indices[dim] = lo;
                corners.weights[dim] = frac;
            }
        }
        // Pass 2, query-major: expand the stashed brackets into corners.
        for corners in out.iter_mut() {
            let mut lows = [0usize; MAX_INTERP_DIMS];
            let mut fracs = [0.0f64; MAX_INTERP_DIMS];
            lows[..d].copy_from_slice(&corners.indices[..d]);
            fracs[..d].copy_from_slice(&corners.weights[..d]);
            self.expand_corners(d, &lows, &fracs, corners);
        }
        Ok(())
    }

    /// Validates an interpolation arity against the grid and the fixed-size
    /// corner capacity, returning the dimensionality.
    fn check_interp_dims(&self, got: usize) -> Result<usize> {
        let d = self.num_dims();
        if got != d {
            return Err(MdpError::DimensionMismatch { expected: d, got });
        }
        if d > MAX_INTERP_DIMS {
            return Err(MdpError::DimensionMismatch {
                expected: MAX_INTERP_DIMS,
                got: d,
            });
        }
        Ok(d)
    }

    /// Expands per-axis `(low, frac)` brackets into weighted corners, in the
    /// same bitmask order (and with the same zero-weight skipping) as
    /// [`interp_weights`](Self::interp_weights).
    fn expand_corners(
        &self,
        d: usize,
        lows: &[usize; MAX_INTERP_DIMS],
        fracs: &[f64; MAX_INTERP_DIMS],
        out: &mut InterpCorners,
    ) {
        out.len = 0;
        expand_corners_with(&self.strides, &lows[..d], &fracs[..d], |flat, w| {
            out.indices[out.len] = flat;
            out.weights[out.len] = w;
            out.len += 1;
        });
    }

    /// Interpolates a value table at `query` (multilinear, clamped).
    ///
    /// # Errors
    ///
    /// Returns [`MdpError::DimensionMismatch`] for wrong arity or if
    /// `values` does not have one entry per grid point.
    pub fn interpolate(&self, query: &[f64], values: &[f64]) -> Result<f64> {
        if values.len() != self.num_points {
            return Err(MdpError::DimensionMismatch {
                expected: self.num_points,
                got: values.len(),
            });
        }
        Ok(self.interp_weights(query)?.apply(values))
    }

    /// Flat index of the grid point nearest to `query` (Euclidean per-axis,
    /// clamped).
    ///
    /// # Errors
    ///
    /// Returns [`MdpError::DimensionMismatch`] for wrong arity.
    pub fn nearest(&self, query: &[f64]) -> Result<usize> {
        let q = self.clamp(query)?;
        let mut flat = 0;
        for ((x, axis), &stride) in q.iter().zip(&self.axes).zip(&self.strides) {
            let (lo, frac) = bracket(axis, *x);
            let idx = if frac > 0.5 { lo + 1 } else { lo };
            flat += idx * stride;
        }
        Ok(flat)
    }

    /// Iterates over all grid points as `(flat_index, coordinates)`.
    pub fn iter_points(&self) -> impl Iterator<Item = (usize, Vec<f64>)> + '_ {
        (0..self.num_points).map(move |i| (i, self.point(i).expect("index in range")))
    }
}

/// Enumerates the weighted corners spanned by per-axis `(low, frac)`
/// brackets: bitmask order, with zero-weight corners skipped so exact hits
/// collapse to fewer points. The single corner-expansion algorithm behind
/// every interpolation path (allocating, in-place and batched) — keep the
/// semantics here so the paths cannot diverge.
#[inline]
fn expand_corners_with(
    strides: &[usize],
    lows: &[usize],
    fracs: &[f64],
    mut push: impl FnMut(usize, f64),
) {
    let d = lows.len();
    'corner: for mask in 0u64..(1u64 << d) {
        let mut w = 1.0;
        let mut flat = 0;
        for dim in 0..d {
            let hi = mask >> dim & 1 == 1;
            let frac = fracs[dim];
            let wd = if hi { frac } else { 1.0 - frac };
            if wd == 0.0 {
                continue 'corner;
            }
            w *= wd;
            let idx = lows[dim] + usize::from(hi);
            flat += idx * strides[dim];
        }
        push(flat, w);
    }
}

/// Returns `(lower_index, fraction)` such that
/// `x ≈ axis[lower] * (1 - fraction) + axis[lower + 1] * fraction`,
/// with `fraction ∈ [0, 1)` except at the very top of the axis.
fn bracket(axis: &[f64], x: f64) -> (usize, f64) {
    debug_assert!(!axis.is_empty());
    if axis.len() == 1 || x <= axis[0] {
        return (0, 0.0);
    }
    let last = axis.len() - 1;
    if x >= axis[last] {
        return (last - 1, 1.0);
    }
    // partition_point: first index with axis[i] > x; lower bracket is i - 1.
    let hi = axis.partition_point(|&a| a <= x);
    let lo = hi - 1;
    let span = axis[hi] - axis[lo];
    ((lo), (x - axis[lo]) / span)
}

/// Builder for [`RectGrid`].
#[derive(Debug, Clone, Default)]
pub struct RectGridBuilder {
    axes: Vec<Vec<f64>>,
}

impl RectGridBuilder {
    /// Starts an empty grid.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an axis with explicit, strictly increasing coordinates.
    pub fn axis(mut self, coords: Vec<f64>) -> Self {
        self.axes.push(coords);
        self
    }

    /// Adds an axis of `n` evenly spaced points spanning `[lo, hi]`.
    pub fn axis_linspace(mut self, lo: f64, hi: f64, n: usize) -> Self {
        let coords = if n <= 1 {
            vec![lo]
        } else {
            (0..n)
                .map(|i| lo + (hi - lo) * i as f64 / (n - 1) as f64)
                .collect()
        };
        self.axes.push(coords);
        self
    }

    /// Finalizes the grid.
    ///
    /// # Errors
    ///
    /// Returns [`MdpError::InvalidGridAxis`] if the grid has no axes or an
    /// axis is empty / not strictly increasing.
    pub fn build(self) -> Result<RectGrid> {
        RectGrid::from_axes(self.axes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid2() -> RectGrid {
        RectGridBuilder::new()
            .axis(vec![0.0, 1.0, 3.0])
            .axis(vec![-1.0, 1.0])
            .build()
            .unwrap()
    }

    #[test]
    fn index_round_trip() {
        let g = grid2();
        assert_eq!(g.num_points(), 6);
        for flat in 0..6 {
            let multi = g.multi_index(flat).unwrap();
            assert_eq!(g.flat_index(&multi).unwrap(), flat);
        }
        assert_eq!(g.flat_index(&[2, 1]).unwrap(), 5);
        assert_eq!(g.point(5).unwrap(), vec![3.0, 1.0]);
    }

    #[test]
    fn rejects_bad_axes() {
        assert!(RectGridBuilder::new().build().is_err());
        assert!(RectGridBuilder::new().axis(vec![]).build().is_err());
        assert!(RectGridBuilder::new().axis(vec![1.0, 1.0]).build().is_err());
        assert!(RectGridBuilder::new().axis(vec![2.0, 1.0]).build().is_err());
    }

    #[test]
    fn weights_sum_to_one_and_are_convex() {
        let g = grid2();
        for q in [
            [0.5, 0.0],
            [0.0, -1.0],
            [3.0, 1.0],
            [-5.0, 9.0],
            [2.9, 0.99],
        ] {
            let w = g.interp_weights(&q).unwrap();
            let total: f64 = w.weights.iter().sum();
            assert!((total - 1.0).abs() < 1e-12, "{q:?}");
            assert!(w.weights.iter().all(|&x| (0.0..=1.0 + 1e-12).contains(&x)));
        }
    }

    #[test]
    fn exact_hits_collapse_to_single_corner() {
        let g = grid2();
        let w = g.interp_weights(&[1.0, 1.0]).unwrap();
        assert_eq!(w.indices.len(), 1);
        assert_eq!(w.indices[0], g.flat_index(&[1, 1]).unwrap());
    }

    #[test]
    fn interpolation_reproduces_linear_functions() {
        // f(x, y) = 2x - 3y + 1 must be reproduced exactly inside each cell.
        let g = grid2();
        let values: Vec<f64> = g
            .iter_points()
            .map(|(_, p)| 2.0 * p[0] - 3.0 * p[1] + 1.0)
            .collect();
        for q in [[0.25, -0.5], [2.0, 0.0], [0.0, 1.0], [2.999, 0.999]] {
            let got = g.interpolate(&q, &values).unwrap();
            let want = 2.0 * q[0] - 3.0 * q[1] + 1.0;
            assert!((got - want).abs() < 1e-9, "{q:?}: got {got} want {want}");
        }
    }

    #[test]
    fn clamping_saturates_at_edges() {
        let g = grid2();
        let values: Vec<f64> = g.iter_points().map(|(_, p)| p[0]).collect();
        let inside = g.interpolate(&[3.0, 0.0], &values).unwrap();
        let outside = g.interpolate(&[100.0, 0.0], &values).unwrap();
        assert!((inside - outside).abs() < 1e-12);
    }

    #[test]
    fn nearest_picks_closest_axis_point() {
        let g = grid2();
        assert_eq!(
            g.nearest(&[0.4, -1.0]).unwrap(),
            g.flat_index(&[0, 0]).unwrap()
        );
        assert_eq!(
            g.nearest(&[0.6, -1.0]).unwrap(),
            g.flat_index(&[1, 0]).unwrap()
        );
        assert_eq!(
            g.nearest(&[99.0, 99.0]).unwrap(),
            g.flat_index(&[2, 1]).unwrap()
        );
    }

    #[test]
    fn single_point_axis_is_allowed() {
        let g = RectGridBuilder::new()
            .axis(vec![5.0])
            .axis_linspace(0.0, 1.0, 3)
            .build()
            .unwrap();
        assert_eq!(g.num_points(), 3);
        let w = g.interp_weights(&[5.0, 0.5]).unwrap();
        let total: f64 = w.weights.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn interp_weights_into_matches_allocating_path() {
        let g = grid2();
        let mut corners = InterpCorners::empty();
        for q in [
            [0.5, 0.0],
            [0.0, -1.0],
            [3.0, 1.0],
            [-5.0, 9.0],
            [2.9, 0.99],
            [1.0, 1.0],
        ] {
            let alloc = g.interp_weights(&q).unwrap();
            g.interp_weights_into(&q, &mut corners).unwrap();
            assert_eq!(corners.indices(), alloc.indices.as_slice(), "{q:?}");
            assert_eq!(corners.weights(), alloc.weights.as_slice(), "{q:?}");
            let values: Vec<f64> = (0..g.num_points()).map(|i| i as f64).collect();
            assert_eq!(corners.apply(&values), alloc.apply(&values));
        }
        assert!(g.interp_weights_into(&[0.0], &mut corners).is_err());
    }

    #[test]
    fn batch_interp_matches_scalar_bit_for_bit() {
        let g = RectGridBuilder::new()
            .axis_linspace(-10.0, 10.0, 7)
            .axis(vec![-5.0, -1.0, 0.0, 2.0])
            .axis_linspace(0.0, 30.0, 4)
            .build()
            .unwrap();
        let q0 = [-11.0, 0.3, 4.9, 10.0, 7.7];
        let q1 = [-5.0, -0.5, 1.9, 99.0, 0.0];
        let q2 = [0.0, 29.9, 15.0, -3.0, 30.0];
        let mut batch = Vec::new();
        g.interp_weights_batch_into(&[&q0, &q1, &q2], &mut batch)
            .unwrap();
        assert_eq!(batch.len(), q0.len());
        let mut scalar = InterpCorners::empty();
        for (i, corners) in batch.iter().enumerate() {
            g.interp_weights_into(&[q0[i], q1[i], q2[i]], &mut scalar)
                .unwrap();
            assert_eq!(corners, &scalar, "query {i}");
        }
        // Capacity is reused: refilling a smaller batch leaves no stale
        // entries behind.
        g.interp_weights_batch_into(&[&q0[..2], &q1[..2], &q2[..2]], &mut batch)
            .unwrap();
        assert_eq!(batch.len(), 2);
    }

    #[test]
    fn batch_interp_rejects_ragged_and_wrong_arity_inputs() {
        let g = grid2();
        let mut out = Vec::new();
        assert!(g.interp_weights_batch_into(&[&[0.0]], &mut out).is_err());
        assert!(g
            .interp_weights_batch_into(&[&[0.0, 1.0], &[0.0]], &mut out)
            .is_err());
        assert!(g
            .interp_weights_batch_into(&[&[][..], &[][..]], &mut out)
            .is_ok());
        assert!(out.is_empty());
    }

    #[test]
    fn high_dimensional_grids_fall_back_to_the_allocating_path() {
        let g = RectGridBuilder::new()
            .axis(vec![0.0, 1.0])
            .axis(vec![0.0, 1.0])
            .axis(vec![0.0, 1.0])
            .axis(vec![0.0, 1.0])
            .axis(vec![0.0, 1.0])
            .build()
            .unwrap();
        assert_eq!(g.num_dims(), MAX_INTERP_DIMS + 1);
        let q = [0.5; 5];
        let w = g.interp_weights(&q).unwrap();
        assert_eq!(w.indices.len(), 32);
        let mut corners = InterpCorners::empty();
        assert!(g.interp_weights_into(&q, &mut corners).is_err());
        assert!(g
            .interp_weights_batch_into(&[&q, &q, &q, &q, &q], &mut Vec::new())
            .is_err());
    }

    #[test]
    fn linspace_endpoints_are_exact() {
        let g = RectGridBuilder::new()
            .axis_linspace(-2.0, 2.0, 5)
            .build()
            .unwrap();
        assert_eq!(g.axis(0), &[-2.0, -1.0, 0.0, 1.0, 2.0]);
    }
}
