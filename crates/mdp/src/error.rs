use std::error::Error;
use std::fmt;

/// Errors produced while constructing or solving an MDP.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum MdpError {
    /// A state index was outside `0..num_states`.
    StateOutOfRange {
        /// The offending state index.
        state: usize,
        /// The number of states in the model.
        num_states: usize,
    },
    /// An action index was outside `0..num_actions`.
    ActionOutOfRange {
        /// The offending action index.
        action: usize,
        /// The number of actions in the model.
        num_actions: usize,
    },
    /// The outgoing transition probabilities of a state/action pair do not
    /// sum to one (within tolerance), or a probability was negative/NaN.
    InvalidDistribution {
        /// State whose distribution is invalid.
        state: usize,
        /// Action whose distribution is invalid.
        action: usize,
        /// The probability mass that was found.
        mass: f64,
    },
    /// The discount factor was not in `(0, 1]`.
    InvalidDiscount(f64),
    /// The model has zero states or zero actions.
    EmptyModel,
    /// An iterative solver exhausted its iteration budget before reaching
    /// the requested tolerance.
    NotConverged {
        /// Number of iterations performed.
        iterations: usize,
        /// Bellman residual when the solver gave up.
        residual: f64,
        /// Residual the caller asked for.
        tolerance: f64,
    },
    /// A grid axis was empty or not strictly increasing.
    InvalidGridAxis {
        /// Index of the offending axis.
        axis: usize,
    },
    /// A query point or index had the wrong number of dimensions.
    DimensionMismatch {
        /// Dimensions expected by the grid.
        expected: usize,
        /// Dimensions supplied by the caller.
        got: usize,
    },
    /// The per-axis slices of a batched grid query had unequal lengths.
    RaggedBatch {
        /// Index of the offending axis slice.
        axis: usize,
        /// Query count of the first axis slice.
        expected: usize,
        /// Query count of the offending axis slice.
        got: usize,
    },
}

impl fmt::Display for MdpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MdpError::StateOutOfRange { state, num_states } => {
                write!(
                    f,
                    "state index {state} out of range (model has {num_states} states)"
                )
            }
            MdpError::ActionOutOfRange {
                action,
                num_actions,
            } => {
                write!(
                    f,
                    "action index {action} out of range (model has {num_actions} actions)"
                )
            }
            MdpError::InvalidDistribution {
                state,
                action,
                mass,
            } => write!(
                f,
                "transition probabilities for state {state}, action {action} sum to {mass}, not 1"
            ),
            MdpError::InvalidDiscount(gamma) => {
                write!(f, "discount factor {gamma} is not in (0, 1]")
            }
            MdpError::EmptyModel => write!(f, "model has no states or no actions"),
            MdpError::NotConverged {
                iterations,
                residual,
                tolerance,
            } => write!(
                f,
                "solver stopped after {iterations} iterations with residual {residual:.3e} \
                 (tolerance {tolerance:.3e})"
            ),
            MdpError::InvalidGridAxis { axis } => {
                write!(f, "grid axis {axis} is empty or not strictly increasing")
            }
            MdpError::DimensionMismatch { expected, got } => {
                write!(f, "expected {expected} dimensions, got {got}")
            }
            MdpError::RaggedBatch {
                axis,
                expected,
                got,
            } => write!(
                f,
                "batched query axis {axis} has {got} entries, expected {expected}"
            ),
        }
    }
}

impl Error for MdpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = MdpError::StateOutOfRange {
            state: 7,
            num_states: 3,
        };
        assert!(e.to_string().contains('7'));
        assert!(e.to_string().contains('3'));
        let e = MdpError::NotConverged {
            iterations: 10,
            residual: 0.5,
            tolerance: 1e-6,
        };
        assert!(e.to_string().contains("10"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MdpError>();
    }
}
