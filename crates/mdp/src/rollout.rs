use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{Mdp, MdpError, Policy, Result};

/// Monte-Carlo rollout simulation of a policy on an MDP.
///
/// The development process of the paper closes its loop with "Simulation
/// Evaluation" (Fig. 1): the optimized logic is evaluated by sampling the
/// very stochastic process it was optimized against. This simulator is
/// that loop at the MDP level — and doubles as an independent check that
/// the dynamic-programming solvers are correct, since sampled discounted
/// returns must converge to the analytic value function.
#[derive(Debug)]
pub struct RolloutSimulator<'a, M: Mdp + ?Sized> {
    model: &'a M,
    rng: StdRng,
}

impl<'a, M: Mdp + ?Sized> RolloutSimulator<'a, M> {
    /// Creates a simulator over `model` seeded with `seed`.
    pub fn new(model: &'a M, seed: u64) -> Self {
        Self {
            model,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Samples one transition: returns `(next_state, reward)`.
    ///
    /// # Errors
    ///
    /// Returns [`MdpError::StateOutOfRange`] / [`MdpError::ActionOutOfRange`]
    /// for invalid indices.
    pub fn step(&mut self, state: usize, action: usize) -> Result<(usize, f64)> {
        if state >= self.model.num_states() {
            return Err(MdpError::StateOutOfRange {
                state,
                num_states: self.model.num_states(),
            });
        }
        if action >= self.model.num_actions() {
            return Err(MdpError::ActionOutOfRange {
                action,
                num_actions: self.model.num_actions(),
            });
        }
        let reward = self.model.reward(state, action);
        let transitions = self.model.transitions(state, action);
        let mut u: f64 = self.rng.gen();
        let mut next = transitions.last().map(|t| t.next_state).unwrap_or(state);
        for t in &transitions {
            u -= t.probability;
            if u <= 0.0 {
                next = t.next_state;
                break;
            }
        }
        Ok((next, reward))
    }

    /// Rolls out `policy` from `start` for `steps` decisions and returns
    /// the discounted return.
    ///
    /// # Errors
    ///
    /// Propagates invalid-index errors from [`step`](Self::step).
    pub fn rollout(&mut self, policy: &Policy, start: usize, steps: usize) -> Result<f64> {
        let gamma = self.model.discount();
        let mut state = start;
        let mut total = 0.0;
        let mut discount = 1.0;
        for _ in 0..steps {
            let action = policy.action(state);
            let (next, reward) = self.step(state, action)?;
            total += discount * reward;
            discount *= gamma;
            state = next;
        }
        Ok(total)
    }

    /// Averages `episodes` rollouts of `policy` from `start` — a
    /// Monte-Carlo estimate of `V^π(start)` (truncated at `steps`).
    ///
    /// # Errors
    ///
    /// Propagates invalid-index errors.
    pub fn estimate_value(
        &mut self,
        policy: &Policy,
        start: usize,
        steps: usize,
        episodes: usize,
    ) -> Result<f64> {
        let mut total = 0.0;
        for _ in 0..episodes {
            total += self.rollout(policy, start, steps)?;
        }
        Ok(total / episodes.max(1) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DenseMdpBuilder, ValueIteration};

    /// Two-state stochastic MDP with known analytic values.
    fn model() -> crate::DenseMdp {
        let mut b = DenseMdpBuilder::new(2, 2, 0.9);
        // State 0: action 0 loops (r=0), action 1 moves to 1 w.p. 0.8 (r=1).
        b.transition(0, 0, 0, 1.0);
        b.transition(0, 1, 1, 0.8);
        b.transition(0, 1, 0, 0.2);
        b.reward(0, 1, 1.0);
        // State 1 absorbs with r=0.5 per step.
        b.transition(1, 0, 1, 1.0).reward(1, 0, 0.5);
        b.transition(1, 1, 1, 1.0).reward(1, 1, 0.5);
        b.build().unwrap()
    }

    #[test]
    fn sampled_returns_converge_to_analytic_values() {
        let m = model();
        let solution = ValueIteration::new().tolerance(1e-12).solve(&m).unwrap();
        let mut sim = RolloutSimulator::new(&m, 42);
        for start in 0..2 {
            let estimate = sim
                .estimate_value(&solution.policy, start, 400, 3000)
                .unwrap();
            assert!(
                (estimate - solution.values[start]).abs() < 0.1,
                "state {start}: sampled {estimate:.3} vs analytic {:.3}",
                solution.values[start]
            );
        }
    }

    #[test]
    fn rollouts_are_deterministic_per_seed() {
        let m = model();
        let policy = Policy::from_actions(vec![1, 0]);
        let a = RolloutSimulator::new(&m, 7)
            .rollout(&policy, 0, 50)
            .unwrap();
        let b = RolloutSimulator::new(&m, 7)
            .rollout(&policy, 0, 50)
            .unwrap();
        assert_eq!(a, b);
        let c = RolloutSimulator::new(&m, 8)
            .rollout(&policy, 0, 50)
            .unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn invalid_indices_are_rejected() {
        let m = model();
        let mut sim = RolloutSimulator::new(&m, 0);
        assert!(matches!(
            sim.step(5, 0),
            Err(MdpError::StateOutOfRange { .. })
        ));
        assert!(matches!(
            sim.step(0, 9),
            Err(MdpError::ActionOutOfRange { .. })
        ));
    }

    #[test]
    fn zero_episodes_is_total() {
        let m = model();
        let policy = Policy::from_actions(vec![0, 0]);
        let mut sim = RolloutSimulator::new(&m, 0);
        assert_eq!(sim.estimate_value(&policy, 0, 10, 0).unwrap(), 0.0);
    }
}
