use crate::policy::backup;
use crate::{Mdp, MdpError, Policy, QTable, Result};

/// Per-stage output of [`BackwardInduction`].
///
/// Stage `k` holds the optimal Q-table and greedy policy when `k` decision
/// epochs remain — for collision avoidance tables, "`k` seconds to closest
/// point of approach".
#[derive(Debug, Clone)]
pub struct StagedSolution {
    /// `stage_values[k]` are the optimal values with `k` stages to go;
    /// `stage_values[0]` is the supplied terminal value vector.
    pub stage_values: Vec<Vec<f64>>,
    /// `stage_q[k - 1]` is the Q-table with `k` stages to go (no decisions
    /// are taken at the terminal stage, hence one fewer entry).
    pub stage_q: Vec<QTable>,
    /// `stage_policies[k - 1]` is the greedy policy with `k` stages to go.
    pub stage_policies: Vec<Policy>,
}

impl StagedSolution {
    /// Number of decision stages (the horizon).
    pub fn horizon(&self) -> usize {
        self.stage_q.len()
    }

    /// The policy to follow when `to_go` stages remain.
    ///
    /// # Panics
    ///
    /// Panics if `to_go` is zero or exceeds the horizon.
    pub fn policy_at(&self, to_go: usize) -> &Policy {
        &self.stage_policies[to_go - 1]
    }

    /// The Q-table when `to_go` stages remain.
    ///
    /// # Panics
    ///
    /// Panics if `to_go` is zero or exceeds the horizon.
    pub fn q_at(&self, to_go: usize) -> &QTable {
        &self.stage_q[to_go - 1]
    }
}

/// Finite-horizon dynamic programming by backward induction.
///
/// ACAS X-style logic tables index their cost tables by time-to-CPA τ; the
/// natural solve is a single backward pass from τ = 0 (terminal) out to the
/// alerting horizon, rather than iterating a discounted fixed point. This
/// solver performs exactly one exact backup per stage, so γ = 1 models are
/// fine.
#[derive(Debug, Clone, Default)]
pub struct BackwardInduction {
    _private: (),
}

impl BackwardInduction {
    /// Creates a backward-induction solver.
    pub fn new() -> Self {
        Self::default()
    }

    /// Solves `model` over `horizon` stages starting from `terminal_values`
    /// (the value of each state when no stages remain).
    ///
    /// # Errors
    ///
    /// Returns [`MdpError::DimensionMismatch`] if `terminal_values` does not
    /// have one entry per state, or [`MdpError::EmptyModel`] for a zero
    /// horizon.
    pub fn solve<M: Mdp + ?Sized>(
        &self,
        model: &M,
        horizon: usize,
        terminal_values: Vec<f64>,
    ) -> Result<StagedSolution> {
        if horizon == 0 {
            return Err(MdpError::EmptyModel);
        }
        let n = model.num_states();
        let na = model.num_actions();
        if terminal_values.len() != n {
            return Err(MdpError::DimensionMismatch {
                expected: n,
                got: terminal_values.len(),
            });
        }
        let gamma = model.discount();
        let mut stage_values = Vec::with_capacity(horizon + 1);
        let mut stage_q = Vec::with_capacity(horizon);
        let mut stage_policies = Vec::with_capacity(horizon);
        stage_values.push(terminal_values);

        let mut scratch = Vec::new();
        for _k in 1..=horizon {
            let prev = stage_values.last().expect("at least terminal values");
            let mut q = QTable::zeros(n, na);
            for s in 0..n {
                for a in 0..na {
                    scratch.clear();
                    model.transitions_into(s, a, &mut scratch);
                    q.set(s, a, backup(model.reward(s, a), gamma, &scratch, prev));
                }
            }
            let policy = q.to_policy();
            let values = q.to_state_values();
            stage_q.push(q);
            stage_policies.push(policy);
            stage_values.push(values);
        }
        Ok(StagedSolution {
            stage_values,
            stage_q,
            stage_policies,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DenseMdpBuilder;

    /// Random walk toward a cliff at state 0: terminal value is -100 at the
    /// cliff, 0 elsewhere; action 0 drifts left, action 1 holds. Reward -1
    /// for action 1 ("maneuver cost"). With enough stages to go, states near
    /// the cliff must pay the maneuver cost; far states need not.
    fn cliff(n: usize) -> crate::DenseMdp {
        let mut b = DenseMdpBuilder::new(n, 2, 1.0);
        for s in 0..n {
            b.transition(s, 0, s.saturating_sub(1), 1.0);
            b.transition(s, 1, s, 1.0);
            b.reward(s, 1, -1.0);
        }
        b.build().unwrap()
    }

    fn terminal(n: usize) -> Vec<f64> {
        let mut t = vec![0.0; n];
        t[0] = -100.0;
        t
    }

    #[test]
    fn horizon_zero_is_rejected() {
        let m = cliff(4);
        assert!(BackwardInduction::new().solve(&m, 0, terminal(4)).is_err());
    }

    #[test]
    fn terminal_len_is_checked() {
        let m = cliff(4);
        assert!(matches!(
            BackwardInduction::new().solve(&m, 3, vec![0.0; 3]),
            Err(MdpError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn near_cliff_states_maneuver_far_states_do_not() {
        let n = 10;
        let m = cliff(n);
        let sol = BackwardInduction::new().solve(&m, 5, terminal(n)).unwrap();
        assert_eq!(sol.horizon(), 5);
        // With 5 stages to go, state 1 drifting left hits the cliff; holding
        // costs only 5. Must hold.
        assert_eq!(sol.policy_at(5).action(1), 1);
        // State 9 can never reach the cliff within 5 stages; drifting is free.
        assert_eq!(sol.policy_at(5).action(9), 0);
        // With 1 stage to go, state 2 drifts to 1 (value 0): free beats hold.
        assert_eq!(sol.policy_at(1).action(2), 0);
    }

    #[test]
    fn values_propagate_backward_one_stage_per_sweep() {
        let n = 6;
        let m = cliff(n);
        let sol = BackwardInduction::new().solve(&m, 3, terminal(n)).unwrap();
        // With k stages to go, only states within k of the cliff see it.
        for k in 1..=3usize {
            for s in 0..n {
                let v = sol.stage_values[k][s];
                if s > k {
                    assert!((0.0 - v).abs() < 1e-12, "k={k} s={s} v={v}");
                } else {
                    assert!(v < 0.0, "k={k} s={s} v={v}");
                }
            }
        }
    }

    #[test]
    fn q_at_matches_policy_at() {
        let n = 8;
        let m = cliff(n);
        let sol = BackwardInduction::new().solve(&m, 4, terminal(n)).unwrap();
        for k in 1..=4usize {
            let q = sol.q_at(k);
            let p = sol.policy_at(k);
            for s in 0..n {
                assert_eq!(q.greedy(s), p.action(s));
            }
        }
    }
}
