use crate::model::validate_model;
use crate::{Mdp, MdpError, Result, Transition};

/// A memory-compact MDP using CSR-style (compressed sparse row) transition
/// storage.
///
/// All outcomes live in two flat arrays indexed by a per-`(state, action)`
/// offset table, which keeps large discretized models (hundreds of thousands
/// of states with a handful of successors each) cache-friendly during value
/// iteration sweeps.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseMdp {
    num_states: usize,
    num_actions: usize,
    discount: f64,
    /// `offsets[state * num_actions + action]..offsets[.. + 1]` indexes into
    /// `next_states` / `probabilities`.
    offsets: Vec<u32>,
    next_states: Vec<u32>,
    probabilities: Vec<f64>,
    rewards: Vec<f64>,
}

impl SparseMdp {
    /// Materializes any [`Mdp`] implementation into CSR storage.
    ///
    /// Useful when an implicit model (computed transitions) is iterated
    /// many times — e.g. repeated solves during a cost-model sweep — and
    /// the memory trade is worth the per-backup savings.
    ///
    /// # Errors
    ///
    /// Propagates the validation errors of [`SparseMdpBuilder::build`].
    pub fn from_model<M: Mdp + ?Sized>(model: &M) -> crate::Result<SparseMdp> {
        let mut builder =
            SparseMdpBuilder::new(model.num_states(), model.num_actions(), model.discount());
        let mut scratch = Vec::new();
        for s in 0..model.num_states() {
            for a in 0..model.num_actions() {
                scratch.clear();
                model.transitions_into(s, a, &mut scratch);
                builder.push_row(&scratch, model.reward(s, a));
            }
        }
        builder.build()
    }

    /// Number of stored transition outcomes across the whole model.
    pub fn num_outcomes(&self) -> usize {
        self.next_states.len()
    }

    /// Approximate heap footprint in bytes, useful when sizing models.
    pub fn heap_bytes(&self) -> usize {
        self.offsets.len() * 4
            + self.next_states.len() * 4
            + self.probabilities.len() * 8
            + self.rewards.len() * 8
    }

    #[inline]
    fn range(&self, state: usize, action: usize) -> std::ops::Range<usize> {
        let idx = state * self.num_actions + action;
        self.offsets[idx] as usize..self.offsets[idx + 1] as usize
    }
}

impl Mdp for SparseMdp {
    fn num_states(&self) -> usize {
        self.num_states
    }

    fn num_actions(&self) -> usize {
        self.num_actions
    }

    fn discount(&self) -> f64 {
        self.discount
    }

    fn transitions_into(&self, state: usize, action: usize, out: &mut Vec<Transition>) {
        for i in self.range(state, action) {
            out.push(Transition::new(
                self.next_states[i] as usize,
                self.probabilities[i],
            ));
        }
    }

    fn reward(&self, state: usize, action: usize) -> f64 {
        self.rewards[state * self.num_actions + action]
    }
}

/// Builder that assembles a [`SparseMdp`] row by row.
///
/// Rows **must** be pushed in lexicographic `(state, action)` order via
/// [`push_row`](Self::push_row); this is what lets the builder write the CSR
/// arrays directly without a sort.
#[derive(Debug, Clone)]
pub struct SparseMdpBuilder {
    num_states: usize,
    num_actions: usize,
    discount: f64,
    offsets: Vec<u32>,
    next_states: Vec<u32>,
    probabilities: Vec<f64>,
    rewards: Vec<f64>,
    rows_pushed: usize,
}

impl SparseMdpBuilder {
    /// Starts a sparse model with the given dimensions and discount.
    pub fn new(num_states: usize, num_actions: usize, discount: f64) -> Self {
        let pairs = num_states * num_actions;
        let mut offsets = Vec::with_capacity(pairs + 1);
        offsets.push(0);
        Self {
            num_states,
            num_actions,
            discount,
            offsets,
            next_states: Vec::new(),
            probabilities: Vec::new(),
            rewards: Vec::with_capacity(pairs),
            rows_pushed: 0,
        }
    }

    /// Reserves capacity for `n` total outcomes, avoiding reallocation when
    /// the caller knows the successor fan-out in advance.
    pub fn reserve_outcomes(&mut self, n: usize) -> &mut Self {
        self.next_states.reserve(n);
        self.probabilities.reserve(n);
        self
    }

    /// Appends the outcomes and reward for the next `(state, action)` pair in
    /// lexicographic order.
    ///
    /// # Panics
    ///
    /// Panics if more rows are pushed than the model has `(state, action)`
    /// pairs, or if a successor index is out of range.
    pub fn push_row(&mut self, outcomes: &[Transition], reward: f64) -> &mut Self {
        assert!(
            self.rows_pushed < self.num_states * self.num_actions,
            "pushed more rows than state-action pairs"
        );
        for t in outcomes {
            assert!(
                t.next_state < self.num_states,
                "successor {} out of range",
                t.next_state
            );
            self.next_states.push(t.next_state as u32);
            self.probabilities.push(t.probability);
        }
        self.offsets.push(self.next_states.len() as u32);
        self.rewards.push(reward);
        self.rows_pushed += 1;
        self
    }

    /// Finalizes and validates the model.
    ///
    /// # Errors
    ///
    /// Returns [`MdpError::EmptyModel`] if not every row was pushed, plus the
    /// distribution/discount errors of [`crate::Mdp`] validation.
    pub fn build(self) -> Result<SparseMdp> {
        if self.num_states == 0 || self.num_actions == 0 {
            return Err(MdpError::EmptyModel);
        }
        if self.rows_pushed != self.num_states * self.num_actions {
            return Err(MdpError::EmptyModel);
        }
        let mdp = SparseMdp {
            num_states: self.num_states,
            num_actions: self.num_actions,
            discount: self.discount,
            offsets: self.offsets,
            next_states: self.next_states,
            probabilities: self.probabilities,
            rewards: self.rewards,
        };
        validate_model(&mdp)?;
        Ok(mdp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DenseMdpBuilder, ValueIteration};

    fn chain_sparse(n: usize) -> SparseMdp {
        let mut b = SparseMdpBuilder::new(n, 1, 0.9);
        for s in 0..n {
            let next = (s + 1).min(n - 1);
            let r = if s == n - 1 { 1.0 } else { 0.0 };
            b.push_row(&[Transition::new(next, 1.0)], r);
        }
        b.build().unwrap()
    }

    #[test]
    fn round_trips_transitions() {
        let m = chain_sparse(4);
        assert_eq!(m.transitions(0, 0), vec![Transition::new(1, 1.0)]);
        assert_eq!(m.transitions(3, 0), vec![Transition::new(3, 1.0)]);
        assert_eq!(m.num_outcomes(), 4);
        assert!(m.heap_bytes() > 0);
    }

    #[test]
    fn sparse_and_dense_agree_under_value_iteration() {
        let sparse = chain_sparse(5);
        let mut d = DenseMdpBuilder::new(5, 1, 0.9);
        for s in 0..5 {
            d.transition(s, 0, (s + 1).min(4), 1.0);
            d.reward(s, 0, if s == 4 { 1.0 } else { 0.0 });
        }
        let dense = d.build().unwrap();
        let mut vi = ValueIteration::new();
        vi.tolerance(1e-10);
        let vs = vi.solve(&sparse).unwrap();
        let vd = vi.solve(&dense).unwrap();
        for s in 0..5 {
            assert!((vs.values[s] - vd.values[s]).abs() < 1e-8, "state {s}");
        }
    }

    #[test]
    fn from_model_preserves_solution() {
        let mut d = DenseMdpBuilder::new(6, 2, 0.9);
        for s in 0..6 {
            d.transition(s, 0, (s + 1) % 6, 0.7);
            d.transition(s, 0, s, 0.3);
            d.transition(s, 1, s.saturating_sub(1), 1.0);
            d.reward(s, 0, if s == 5 { 2.0 } else { -0.1 });
        }
        let dense = d.build().unwrap();
        let sparse = SparseMdp::from_model(&dense).unwrap();
        let mut vi = ValueIteration::new();
        vi.tolerance(1e-10);
        let a = vi.solve(&dense).unwrap();
        let b = vi.solve(&sparse).unwrap();
        for s in 0..6 {
            assert!((a.values[s] - b.values[s]).abs() < 1e-8);
            assert_eq!(a.policy.action(s), b.policy.action(s));
        }
    }

    #[test]
    fn incomplete_rows_are_rejected() {
        let mut b = SparseMdpBuilder::new(2, 1, 0.9);
        b.push_row(&[Transition::new(0, 1.0)], 0.0);
        assert!(b.build().is_err());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_successor_panics() {
        let mut b = SparseMdpBuilder::new(1, 1, 0.9);
        b.push_row(&[Transition::new(3, 1.0)], 0.0);
    }
}
