use crate::model::validate_model;
use crate::policy::backup;
use crate::{Mdp, MdpError, Policy, QTable, Result};

/// Order in which value iteration sweeps states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SweepOrder {
    /// Jacobi-style synchronous sweeps: each iteration reads only the
    /// previous iteration's values. Deterministic and parallelizable.
    #[default]
    Synchronous,
    /// Gauss–Seidel sweeps: updates are visible within the same sweep,
    /// typically converging in fewer sweeps at the cost of parallelism.
    GaussSeidel,
}

/// Convergence statistics reported by [`ValueIteration::solve`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ValueIterationStats {
    /// Number of full sweeps performed.
    pub iterations: usize,
    /// Final sup-norm Bellman residual.
    pub residual: f64,
    /// Number of Q-value backups computed in total.
    pub backups: u64,
}

/// The output of a solver: optimal values, Q-table, greedy policy, stats.
#[derive(Debug, Clone)]
pub struct Solution {
    /// Optimal state values `V*(s)`.
    pub values: Vec<f64>,
    /// Optimal state-action values `Q*(s, a)`.
    pub q: QTable,
    /// Greedy policy extracted from `q`.
    pub policy: Policy,
    /// Convergence statistics.
    pub stats: ValueIterationStats,
}

/// Value iteration — the dynamic-programming optimizer at the heart of the
/// model-based development process (paper Sections II–III).
///
/// Maximizes discounted expected reward. Construction follows the
/// non-consuming builder pattern:
///
/// ```
/// use uavca_mdp::{DenseMdpBuilder, SweepOrder, ValueIteration};
///
/// let mut b = DenseMdpBuilder::new(1, 1, 0.9);
/// b.transition(0, 0, 0, 1.0).reward(0, 0, 1.0);
/// let mdp = b.build()?;
/// let solution = ValueIteration::new()
///     .tolerance(1e-8)
///     .max_iterations(10_000)
///     .sweep_order(SweepOrder::GaussSeidel)
///     .solve(&mdp)?;
/// assert!((solution.values[0] - 10.0).abs() < 1e-5);
/// # Ok::<(), uavca_mdp::MdpError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ValueIteration {
    tolerance: f64,
    max_iterations: usize,
    sweep_order: SweepOrder,
    parallel_threads: usize,
    validate: bool,
}

impl Default for ValueIteration {
    fn default() -> Self {
        Self::new()
    }
}

impl ValueIteration {
    /// Creates a solver with tolerance `1e-6`, a 100 000-sweep budget,
    /// synchronous sweeps and no parallelism.
    pub fn new() -> Self {
        Self {
            tolerance: 1e-6,
            max_iterations: 100_000,
            sweep_order: SweepOrder::Synchronous,
            parallel_threads: 1,
            validate: true,
        }
    }

    /// Sets the sup-norm Bellman residual below which the solver stops.
    pub fn tolerance(&mut self, tol: f64) -> &mut Self {
        self.tolerance = tol;
        self
    }

    /// Sets the maximum number of sweeps before giving up.
    pub fn max_iterations(&mut self, n: usize) -> &mut Self {
        self.max_iterations = n;
        self
    }

    /// Chooses the sweep order. [`SweepOrder::GaussSeidel`] forces
    /// single-threaded execution.
    pub fn sweep_order(&mut self, order: SweepOrder) -> &mut Self {
        self.sweep_order = order;
        self
    }

    /// Number of worker threads for synchronous sweeps. `0` selects the
    /// available hardware parallelism.
    pub fn threads(&mut self, n: usize) -> &mut Self {
        self.parallel_threads = n;
        self
    }

    /// Disables up-front model validation (an `O(S·A)` pass); use for large
    /// models whose construction already guarantees validity.
    pub fn skip_validation(&mut self) -> &mut Self {
        self.validate = false;
        self
    }

    /// Runs value iteration on `model`.
    ///
    /// # Errors
    ///
    /// Returns [`MdpError::NotConverged`] if the iteration budget is
    /// exhausted first, plus any model validation error.
    pub fn solve<M: Mdp + Sync + ?Sized>(&self, model: &M) -> Result<Solution> {
        if self.validate {
            validate_model(model)?;
        }
        let n = model.num_states();
        let gamma = model.discount();
        let mut values = vec![0.0; n];
        let mut backups: u64 = 0;
        let mut residual = f64::INFINITY;
        let mut iterations = 0;

        let threads = effective_threads(self.parallel_threads, n);
        while iterations < self.max_iterations {
            iterations += 1;
            residual = match self.sweep_order {
                SweepOrder::GaussSeidel => {
                    sweep_gauss_seidel(model, gamma, &mut values, &mut backups)
                }
                SweepOrder::Synchronous if threads <= 1 => {
                    sweep_synchronous(model, gamma, &mut values, &mut backups)
                }
                SweepOrder::Synchronous => {
                    sweep_parallel(model, gamma, &mut values, &mut backups, threads)
                }
            };
            if residual < self.tolerance {
                let (q, policy) = extract(model, &values, &mut backups);
                return Ok(Solution {
                    values,
                    q,
                    policy,
                    stats: ValueIterationStats {
                        iterations,
                        residual,
                        backups,
                    },
                });
            }
        }
        Err(MdpError::NotConverged {
            iterations,
            residual,
            tolerance: self.tolerance,
        })
    }
}

fn effective_threads(requested: usize, num_states: usize) -> usize {
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let t = if requested == 0 { hw } else { requested };
    // Parallelism does not pay off for tiny models.
    if num_states < 4096 {
        1
    } else {
        t.min(hw)
    }
}

fn best_action_value<M: Mdp + ?Sized>(
    model: &M,
    state: usize,
    gamma: f64,
    values: &[f64],
    scratch: &mut Vec<crate::Transition>,
    backups: &mut u64,
) -> f64 {
    let mut best = f64::NEG_INFINITY;
    for a in 0..model.num_actions() {
        scratch.clear();
        model.transitions_into(state, a, scratch);
        let q = backup(model.reward(state, a), gamma, scratch, values);
        *backups += 1;
        if q > best {
            best = q;
        }
    }
    best
}

fn sweep_synchronous<M: Mdp + ?Sized>(
    model: &M,
    gamma: f64,
    values: &mut Vec<f64>,
    backups: &mut u64,
) -> f64 {
    let mut next = vec![0.0; values.len()];
    let mut scratch = Vec::new();
    let mut delta: f64 = 0.0;
    for s in 0..values.len() {
        let v = best_action_value(model, s, gamma, values, &mut scratch, backups);
        delta = delta.max((v - values[s]).abs());
        next[s] = v;
    }
    *values = next;
    delta
}

fn sweep_gauss_seidel<M: Mdp + ?Sized>(
    model: &M,
    gamma: f64,
    values: &mut [f64],
    backups: &mut u64,
) -> f64 {
    let mut scratch = Vec::new();
    let mut delta: f64 = 0.0;
    for s in 0..values.len() {
        let v = best_action_value(model, s, gamma, values, &mut scratch, backups);
        delta = delta.max((v - values[s]).abs());
        values[s] = v;
    }
    delta
}

fn sweep_parallel<M: Mdp + Sync + ?Sized>(
    model: &M,
    gamma: f64,
    values: &mut Vec<f64>,
    backups: &mut u64,
    threads: usize,
) -> f64 {
    let n = values.len();
    let old: &[f64] = values;
    let executor = uavca_exec::Executor::new(threads);
    // Blocks of states keep the per-job overhead negligible while still
    // letting the pool balance uneven transition fan-outs.
    let workers = executor.resolved_threads(n);
    let block = n.div_ceil(workers * 8).max(1);
    let blocks: Vec<(usize, usize)> = (0..n)
        .step_by(block)
        .map(|lo| (lo, (lo + block).min(n)))
        .collect();
    let results = executor.map_with(&blocks, Vec::new, |scratch, &(lo, hi)| {
        let mut vs = Vec::with_capacity(hi - lo);
        let mut delta: f64 = 0.0;
        let mut block_backups = 0u64;
        for s in lo..hi {
            let v = best_action_value(model, s, gamma, old, scratch, &mut block_backups);
            delta = delta.max((v - old[s]).abs());
            vs.push(v);
        }
        (vs, delta, block_backups)
    });
    let mut next = Vec::with_capacity(n);
    let mut delta: f64 = 0.0;
    for (vs, block_delta, block_backups) in results {
        next.extend(vs);
        delta = delta.max(block_delta);
        *backups += block_backups;
    }
    *values = next;
    delta
}

fn extract<M: Mdp + ?Sized>(model: &M, values: &[f64], backups: &mut u64) -> (QTable, Policy) {
    let n = model.num_states();
    let na = model.num_actions();
    let gamma = model.discount();
    let mut q = QTable::zeros(n, na);
    let mut scratch = Vec::new();
    for s in 0..n {
        for a in 0..na {
            scratch.clear();
            model.transitions_into(s, a, &mut scratch);
            q.set(s, a, backup(model.reward(s, a), gamma, &scratch, values));
            *backups += 1;
        }
    }
    let policy = q.to_policy();
    (q, policy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DenseMdpBuilder;

    /// Deterministic 1-D corridor: states 0..n-1, reach the right end for
    /// reward. Optimal policy is "go right" everywhere.
    fn corridor(n: usize, gamma: f64) -> crate::DenseMdp {
        let mut b = DenseMdpBuilder::new(n, 2, gamma);
        for s in 0..n {
            let left = s.saturating_sub(1);
            let right = (s + 1).min(n - 1);
            b.transition(s, 0, left, 1.0);
            b.transition(s, 1, right, 1.0);
            b.reward(
                s,
                1,
                if right == n - 1 && s != n - 1 {
                    1.0
                } else {
                    0.0
                },
            );
        }
        b.build().unwrap()
    }

    #[test]
    fn corridor_policy_goes_right() {
        let m = corridor(6, 0.9);
        let sol = ValueIteration::new().tolerance(1e-10).solve(&m).unwrap();
        for s in 0..5 {
            assert_eq!(sol.policy.action(s), 1, "state {s}");
        }
        // Values increase toward the goal.
        for s in 0..4 {
            assert!(sol.values[s] < sol.values[s + 1] + 1e-12);
        }
    }

    #[test]
    fn gauss_seidel_matches_synchronous() {
        let m = corridor(10, 0.95);
        let a = ValueIteration::new().tolerance(1e-12).solve(&m).unwrap();
        let b = ValueIteration::new()
            .tolerance(1e-12)
            .sweep_order(SweepOrder::GaussSeidel)
            .solve(&m)
            .unwrap();
        for s in 0..10 {
            assert!((a.values[s] - b.values[s]).abs() < 1e-8, "state {s}");
        }
        assert!(b.stats.iterations <= a.stats.iterations);
    }

    #[test]
    fn parallel_matches_serial() {
        // Big enough to actually engage the parallel path (>= 4096 states).
        let m = corridor(5000, 0.9);
        let serial = ValueIteration::new()
            .tolerance(1e-8)
            .skip_validation()
            .solve(&m)
            .unwrap();
        let par = ValueIteration::new()
            .tolerance(1e-8)
            .threads(4)
            .skip_validation()
            .solve(&m)
            .unwrap();
        for s in (0..5000).step_by(371) {
            assert!((serial.values[s] - par.values[s]).abs() < 1e-9, "state {s}");
        }
        assert_eq!(serial.stats.iterations, par.stats.iterations);
    }

    #[test]
    fn reports_non_convergence() {
        let m = corridor(50, 0.999);
        let err = ValueIteration::new()
            .tolerance(1e-14)
            .max_iterations(3)
            .solve(&m);
        match err {
            Err(MdpError::NotConverged { iterations, .. }) => assert_eq!(iterations, 3),
            other => panic!("expected NotConverged, got {other:?}"),
        }
    }

    #[test]
    fn discounted_self_loop_closed_form() {
        // V = r / (1 - gamma)
        for gamma in [0.5, 0.9, 0.99] {
            let mut b = DenseMdpBuilder::new(1, 1, gamma);
            b.transition(0, 0, 0, 1.0).reward(0, 0, 2.0);
            let m = b.build().unwrap();
            let sol = ValueIteration::new().tolerance(1e-12).solve(&m).unwrap();
            assert!(
                (sol.values[0] - 2.0 / (1.0 - gamma)).abs() < 1e-6,
                "gamma {gamma}"
            );
        }
    }

    #[test]
    fn stochastic_expectation_is_respected() {
        // Action 0: 50/50 between reward-1 absorbing and reward-0 absorbing.
        let mut b = DenseMdpBuilder::new(3, 1, 0.5);
        b.transition(0, 0, 1, 0.5);
        b.transition(0, 0, 2, 0.5);
        b.transition(1, 0, 1, 1.0).reward(1, 0, 1.0);
        b.transition(2, 0, 2, 1.0);
        let m = b.build().unwrap();
        let sol = ValueIteration::new().tolerance(1e-12).solve(&m).unwrap();
        // V(1) = 1/(1-0.5) = 2, V(2) = 0, V(0) = 0 + 0.5*(0.5*2 + 0.5*0) = 0.5
        assert!((sol.values[1] - 2.0).abs() < 1e-9);
        assert!((sol.values[2] - 0.0).abs() < 1e-9);
        assert!((sol.values[0] - 0.5).abs() < 1e-9);
    }
}
