use crate::model::validate_model;
use crate::policy::{backup, evaluate_policy};
use crate::value_iteration::Solution;
use crate::{Mdp, MdpError, Policy, QTable, Result, ValueIterationStats};

/// Statistics reported by [`PolicyIteration::solve`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PolicyIterationStats {
    /// Number of policy improvement rounds until the policy was stable.
    pub improvement_rounds: usize,
    /// Total policy-evaluation sweeps across all rounds.
    pub evaluation_sweeps: usize,
}

/// Howard-style policy iteration: alternate iterative policy evaluation with
/// greedy policy improvement until the policy is stable.
///
/// Produces the same optimal policy as [`crate::ValueIteration`] (a standard
/// cross-check used in this crate's test-suite) and often needs far fewer
/// full backups on models with long effective horizons.
#[derive(Debug, Clone)]
pub struct PolicyIteration {
    eval_tolerance: f64,
    eval_max_sweeps: usize,
    max_rounds: usize,
    validate: bool,
}

impl Default for PolicyIteration {
    fn default() -> Self {
        Self::new()
    }
}

impl PolicyIteration {
    /// Creates a solver with evaluation tolerance `1e-9`, 10 000 evaluation
    /// sweeps per round and a 1 000-round budget.
    pub fn new() -> Self {
        Self {
            eval_tolerance: 1e-9,
            eval_max_sweeps: 10_000,
            max_rounds: 1_000,
            validate: true,
        }
    }

    /// Sets the tolerance used when evaluating the current policy.
    pub fn eval_tolerance(&mut self, tol: f64) -> &mut Self {
        self.eval_tolerance = tol;
        self
    }

    /// Sets the evaluation sweep budget per improvement round.
    pub fn eval_max_sweeps(&mut self, n: usize) -> &mut Self {
        self.eval_max_sweeps = n;
        self
    }

    /// Sets the maximum number of improvement rounds.
    pub fn max_rounds(&mut self, n: usize) -> &mut Self {
        self.max_rounds = n;
        self
    }

    /// Disables up-front model validation.
    pub fn skip_validation(&mut self) -> &mut Self {
        self.validate = false;
        self
    }

    /// Runs policy iteration on `model`.
    ///
    /// # Errors
    ///
    /// Returns [`MdpError::NotConverged`] if the policy is still changing
    /// after the round budget, plus any model validation error.
    pub fn solve<M: Mdp + ?Sized>(&self, model: &M) -> Result<(Solution, PolicyIterationStats)> {
        if self.validate {
            validate_model(model)?;
        }
        let n = model.num_states();
        let na = model.num_actions();
        let gamma = model.discount();
        let mut policy = Policy::from_actions(vec![0; n]);
        let mut evaluation_sweeps = 0;
        let mut scratch = Vec::new();
        for round in 1..=self.max_rounds {
            let values = evaluate_policy(model, &policy, self.eval_tolerance, self.eval_max_sweeps);
            // We cannot observe the exact sweep count of evaluate_policy;
            // count rounds' budgets conservatively for reporting purposes.
            evaluation_sweeps += self.eval_max_sweeps.min(n.max(1));

            let mut q = QTable::zeros(n, na);
            let mut stable = true;
            let mut new_actions = Vec::with_capacity(n);
            for s in 0..n {
                for a in 0..na {
                    scratch.clear();
                    model.transitions_into(s, a, &mut scratch);
                    q.set(s, a, backup(model.reward(s, a), gamma, &scratch, &values));
                }
                let greedy = q.greedy(s);
                if greedy != policy.action(s) {
                    // Only switch on a strict improvement to avoid livelock
                    // between equal-valued actions.
                    if q.get(s, greedy) > q.get(s, policy.action(s)) + 1e-12 {
                        stable = false;
                        new_actions.push(greedy);
                        continue;
                    }
                }
                new_actions.push(policy.action(s));
            }
            policy = Policy::from_actions(new_actions);
            if stable {
                let values = q.to_state_values();
                return Ok((
                    Solution {
                        values,
                        policy,
                        q,
                        stats: ValueIterationStats {
                            iterations: round,
                            residual: 0.0,
                            backups: 0,
                        },
                    },
                    PolicyIterationStats {
                        improvement_rounds: round,
                        evaluation_sweeps,
                    },
                ));
            }
        }
        Err(MdpError::NotConverged {
            iterations: self.max_rounds,
            residual: f64::NAN,
            tolerance: self.eval_tolerance,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DenseMdpBuilder, ValueIteration};
    use rand::prelude::*;

    fn random_mdp(seed: u64, n: usize, na: usize, gamma: f64) -> crate::DenseMdp {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = DenseMdpBuilder::new(n, na, gamma);
        for s in 0..n {
            for a in 0..na {
                // Two random successors with a random split.
                let s1 = rng.gen_range(0..n);
                let mut s2 = rng.gen_range(0..n);
                if s2 == s1 {
                    s2 = (s2 + 1) % n;
                }
                let p = rng.gen_range(0.05..0.95);
                b.transition(s, a, s1, p);
                b.transition(s, a, s2, 1.0 - p);
                b.reward(s, a, rng.gen_range(-1.0..1.0));
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn agrees_with_value_iteration_on_random_models() {
        for seed in 0..8 {
            let m = random_mdp(seed, 24, 3, 0.9);
            let vi = ValueIteration::new().tolerance(1e-12).solve(&m).unwrap();
            let (pi, stats) = PolicyIteration::new().solve(&m).unwrap();
            assert!(stats.improvement_rounds >= 1);
            for s in 0..24 {
                assert!(
                    (vi.values[s] - pi.values[s]).abs() < 1e-6,
                    "seed {seed} state {s}: vi={} pi={}",
                    vi.values[s],
                    pi.values[s]
                );
                // Policies may differ only where values tie; check value of
                // chosen actions instead of action identity.
                let qa = vi.q.get(s, pi.policy.action(s));
                let qb = vi.q.get(s, vi.policy.action(s));
                assert!((qa - qb).abs() < 1e-6, "seed {seed} state {s}");
            }
        }
    }

    #[test]
    fn round_budget_is_enforced() {
        let m = random_mdp(3, 16, 2, 0.9);
        // One round is generally not enough for a random model.
        let r = PolicyIteration::new().max_rounds(1).solve(&m);
        // Either it legitimately converged in one round or it reports the
        // budget; both are acceptable, but an infinite loop is not.
        if let Err(e) = r {
            assert!(matches!(e, MdpError::NotConverged { iterations: 1, .. }));
        }
    }
}
