use serde::{Deserialize, Serialize};

use crate::{Mdp, MdpError, Result, Transition};

/// A deterministic stationary policy: one action index per state.
///
/// This is the "logic table" of the model-based optimization process — the
/// artifact that, for ACAS XU, maps each discretized encounter state to an
/// advisory.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Policy {
    actions: Vec<usize>,
}

impl Policy {
    /// Wraps a per-state action table.
    pub fn from_actions(actions: Vec<usize>) -> Self {
        Self { actions }
    }

    /// The action prescribed in `state`.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    pub fn action(&self, state: usize) -> usize {
        self.actions[state]
    }

    /// Number of states the policy covers.
    pub fn num_states(&self) -> usize {
        self.actions.len()
    }

    /// Iterates over `(state, action)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.actions.iter().copied().enumerate()
    }

    /// Read-only view of the underlying action table.
    pub fn as_slice(&self) -> &[usize] {
        &self.actions
    }

    /// Fraction of states on which `self` and `other` prescribe the same
    /// action — a quick structural similarity metric between two logic
    /// tables (e.g. before and after a model revision).
    ///
    /// # Errors
    ///
    /// Returns [`MdpError::DimensionMismatch`] if the policies cover a
    /// different number of states.
    pub fn agreement(&self, other: &Policy) -> Result<f64> {
        if self.num_states() != other.num_states() {
            return Err(MdpError::DimensionMismatch {
                expected: self.num_states(),
                got: other.num_states(),
            });
        }
        if self.actions.is_empty() {
            return Ok(1.0);
        }
        let same = self
            .actions
            .iter()
            .zip(&other.actions)
            .filter(|(a, b)| a == b)
            .count();
        Ok(same as f64 / self.actions.len() as f64)
    }
}

/// State-action value table `Q(s, a)` produced by the solvers.
///
/// Exposes both the raw values and greedy extraction; the online logic keeps
/// the full Q-table (not just the argmax) so it can apply coordination
/// masking at lookup time, exactly as ACAS X interrogates its cost table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QTable {
    num_states: usize,
    num_actions: usize,
    values: Vec<f64>,
}

impl QTable {
    /// Creates a zero-initialized table.
    pub fn zeros(num_states: usize, num_actions: usize) -> Self {
        Self {
            num_states,
            num_actions,
            values: vec![0.0; num_states * num_actions],
        }
    }

    /// Wraps a row-major `num_states × num_actions` value buffer.
    ///
    /// # Errors
    ///
    /// Returns [`MdpError::DimensionMismatch`] if the buffer length is not
    /// `num_states * num_actions`.
    pub fn from_values(num_states: usize, num_actions: usize, values: Vec<f64>) -> Result<Self> {
        if values.len() != num_states * num_actions {
            return Err(MdpError::DimensionMismatch {
                expected: num_states * num_actions,
                got: values.len(),
            });
        }
        Ok(Self {
            num_states,
            num_actions,
            values,
        })
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// Whether the value buffer length matches `num_states * num_actions`.
    /// Always true for tables built through this API; can be false for a
    /// hand-edited serialized table, so loaders should check it before
    /// indexing.
    pub fn is_consistent(&self) -> bool {
        self.values.len() == self.num_states * self.num_actions
    }

    /// Number of actions.
    pub fn num_actions(&self) -> usize {
        self.num_actions
    }

    /// `Q(state, action)`.
    #[inline]
    pub fn get(&self, state: usize, action: usize) -> f64 {
        self.values[state * self.num_actions + action]
    }

    /// Sets `Q(state, action)`.
    #[inline]
    pub fn set(&mut self, state: usize, action: usize, value: f64) {
        self.values[state * self.num_actions + action] = value;
    }

    /// The Q-values of one state as a slice.
    #[inline]
    pub fn row(&self, state: usize) -> &[f64] {
        &self.values[state * self.num_actions..(state + 1) * self.num_actions]
    }

    /// Greedy action in `state`, restricted to actions where `allowed`
    /// returns `true`. Returns `None` if no action is allowed.
    ///
    /// Ties break toward the lowest action index, which by convention is the
    /// "do nothing" / clear-of-conflict action in avoidance models, biasing
    /// the logic away from spurious alerts.
    pub fn greedy_masked(
        &self,
        state: usize,
        mut allowed: impl FnMut(usize) -> bool,
    ) -> Option<usize> {
        let row = self.row(state);
        let mut best: Option<(usize, f64)> = None;
        for (a, &q) in row.iter().enumerate() {
            if !allowed(a) {
                continue;
            }
            match best {
                Some((_, bq)) if q <= bq => {}
                _ => best = Some((a, q)),
            }
        }
        best.map(|(a, _)| a)
    }

    /// Greedy action in `state` over all actions.
    pub fn greedy(&self, state: usize) -> usize {
        self.greedy_masked(state, |_| true)
            .expect("num_actions >= 1")
    }

    /// Extracts the greedy deterministic policy.
    pub fn to_policy(&self) -> Policy {
        Policy::from_actions((0..self.num_states).map(|s| self.greedy(s)).collect())
    }

    /// State values `V(s) = max_a Q(s, a)`.
    pub fn to_state_values(&self) -> Vec<f64> {
        (0..self.num_states)
            .map(|s| {
                self.row(s)
                    .iter()
                    .copied()
                    .fold(f64::NEG_INFINITY, f64::max)
            })
            .collect()
    }
}

/// Evaluates `policy` on `model` by iterative policy evaluation, returning
/// the per-state value function.
///
/// Runs until the sup-norm change is below `tolerance` or `max_iterations`
/// sweeps have been performed (whichever is first); the latter bound makes
/// the function total even for γ = 1 models.
pub fn evaluate_policy<M: Mdp + ?Sized>(
    model: &M,
    policy: &Policy,
    tolerance: f64,
    max_iterations: usize,
) -> Vec<f64> {
    let n = model.num_states();
    let gamma = model.discount();
    let mut values = vec![0.0; n];
    let mut scratch = Vec::new();
    for _ in 0..max_iterations {
        let mut delta: f64 = 0.0;
        for s in 0..n {
            let a = policy.action(s);
            scratch.clear();
            model.transitions_into(s, a, &mut scratch);
            let v = backup(model.reward(s, a), gamma, &scratch, &values);
            delta = delta.max((v - values[s]).abs());
            values[s] = v;
        }
        if delta < tolerance {
            break;
        }
    }
    values
}

#[inline]
pub(crate) fn backup(reward: f64, gamma: f64, transitions: &[Transition], values: &[f64]) -> f64 {
    let mut acc = 0.0;
    for t in transitions {
        acc += t.probability * values[t.next_state];
    }
    reward + gamma * acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DenseMdpBuilder;

    #[test]
    fn greedy_ties_break_low() {
        let mut q = QTable::zeros(1, 3);
        q.set(0, 0, 5.0);
        q.set(0, 2, 5.0);
        assert_eq!(q.greedy(0), 0);
    }

    #[test]
    fn greedy_masked_skips_disallowed() {
        let mut q = QTable::zeros(1, 3);
        q.set(0, 0, 10.0);
        q.set(0, 1, 5.0);
        q.set(0, 2, 1.0);
        assert_eq!(q.greedy_masked(0, |a| a != 0), Some(1));
        assert_eq!(q.greedy_masked(0, |_| false), None);
    }

    #[test]
    fn state_values_are_row_maxima() {
        let mut q = QTable::zeros(2, 2);
        q.set(0, 0, 1.0);
        q.set(0, 1, 3.0);
        q.set(1, 0, -2.0);
        q.set(1, 1, -5.0);
        assert_eq!(q.to_state_values(), vec![3.0, -2.0]);
    }

    #[test]
    fn agreement_counts_matches() {
        let p = Policy::from_actions(vec![0, 1, 2, 0]);
        let q = Policy::from_actions(vec![0, 1, 0, 0]);
        assert!((p.agreement(&q).unwrap() - 0.75).abs() < 1e-12);
        let r = Policy::from_actions(vec![0]);
        assert!(p.agreement(&r).is_err());
    }

    #[test]
    fn policy_evaluation_matches_closed_form() {
        // Single state, self-loop, reward 1, gamma 0.5 => V = 1 / (1 - 0.5) = 2.
        let mut b = DenseMdpBuilder::new(1, 1, 0.5);
        b.transition(0, 0, 0, 1.0).reward(0, 0, 1.0);
        let m = b.build().unwrap();
        let v = evaluate_policy(&m, &Policy::from_actions(vec![0]), 1e-12, 10_000);
        assert!((v[0] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn qtable_from_values_validates_len() {
        assert!(QTable::from_values(2, 2, vec![0.0; 3]).is_err());
        assert!(QTable::from_values(2, 2, vec![0.0; 4]).is_ok());
    }

    #[test]
    fn serde_round_trip() {
        let p = Policy::from_actions(vec![0, 2, 1]);
        let json = serde_json::to_string(&p).unwrap();
        let back: Policy = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
