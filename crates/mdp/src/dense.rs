use crate::model::validate_model;
use crate::{Mdp, MdpError, Result, Transition};

/// A tabular MDP with explicitly stored transitions and rewards.
///
/// Suitable for small models such as the 2-D teaching example of the paper's
/// Section III, where every `(state, action)` pair enumerates a handful of
/// successor states. Large discretized models should prefer [`crate::SparseMdp`]
/// or implement [`Mdp`] directly over an implicit representation.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMdp {
    num_states: usize,
    num_actions: usize,
    discount: f64,
    /// `transitions[state * num_actions + action]` lists the outcomes.
    transitions: Vec<Vec<Transition>>,
    /// `rewards[state * num_actions + action]`.
    rewards: Vec<f64>,
}

impl DenseMdp {
    fn index(&self, state: usize, action: usize) -> usize {
        state * self.num_actions + action
    }
}

impl Mdp for DenseMdp {
    fn num_states(&self) -> usize {
        self.num_states
    }

    fn num_actions(&self) -> usize {
        self.num_actions
    }

    fn discount(&self) -> f64 {
        self.discount
    }

    fn transitions_into(&self, state: usize, action: usize, out: &mut Vec<Transition>) {
        out.extend_from_slice(&self.transitions[self.index(state, action)]);
    }

    fn reward(&self, state: usize, action: usize) -> f64 {
        self.rewards[self.index(state, action)]
    }
}

/// Incremental builder for [`DenseMdp`].
///
/// Unspecified `(state, action)` pairs default to a deterministic self-loop
/// with reward 0, so absorbing states need no boilerplate.
///
/// # Example
///
/// ```
/// use uavca_mdp::DenseMdpBuilder;
///
/// let mut b = DenseMdpBuilder::new(2, 1, 0.95);
/// b.transition(0, 0, 1, 1.0).reward(0, 0, -1.0);
/// let mdp = b.build()?;
/// # Ok::<(), uavca_mdp::MdpError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DenseMdpBuilder {
    num_states: usize,
    num_actions: usize,
    discount: f64,
    transitions: Vec<Vec<Transition>>,
    rewards: Vec<f64>,
}

impl DenseMdpBuilder {
    /// Starts a model with the given dimensions and discount factor.
    pub fn new(num_states: usize, num_actions: usize, discount: f64) -> Self {
        Self {
            num_states,
            num_actions,
            discount,
            transitions: vec![Vec::new(); num_states * num_actions],
            rewards: vec![0.0; num_states * num_actions],
        }
    }

    /// Adds one stochastic outcome: taking `action` in `state` reaches
    /// `next_state` with probability `p`.
    ///
    /// Outcomes accumulate; add one call per successor. Duplicate successors
    /// are merged at [`build`](Self::build) time.
    ///
    /// # Panics
    ///
    /// Panics if `state`, `action` or `next_state` are out of range — these
    /// are programming errors in model construction code, not runtime
    /// conditions.
    pub fn transition(
        &mut self,
        state: usize,
        action: usize,
        next_state: usize,
        p: f64,
    ) -> &mut Self {
        assert!(state < self.num_states, "state {state} out of range");
        assert!(action < self.num_actions, "action {action} out of range");
        assert!(
            next_state < self.num_states,
            "next_state {next_state} out of range"
        );
        let idx = state * self.num_actions + action;
        self.transitions[idx].push(Transition::new(next_state, p));
        self
    }

    /// Sets the expected immediate reward of `(state, action)`.
    ///
    /// # Panics
    ///
    /// Panics if `state` or `action` are out of range.
    pub fn reward(&mut self, state: usize, action: usize, r: f64) -> &mut Self {
        assert!(state < self.num_states, "state {state} out of range");
        assert!(action < self.num_actions, "action {action} out of range");
        self.rewards[state * self.num_actions + action] = r;
        self
    }

    /// Finalizes the model.
    ///
    /// Pairs with no recorded outcome become deterministic self-loops.
    /// Duplicate successors are merged and distributions validated.
    ///
    /// # Errors
    ///
    /// Returns [`MdpError::InvalidDistribution`] if any recorded distribution
    /// does not sum to one, [`MdpError::InvalidDiscount`] for a discount
    /// outside `(0, 1]`, or [`MdpError::EmptyModel`] for zero states/actions.
    pub fn build(mut self) -> Result<DenseMdp> {
        if self.num_states == 0 || self.num_actions == 0 {
            return Err(MdpError::EmptyModel);
        }
        for (idx, outs) in self.transitions.iter_mut().enumerate() {
            if outs.is_empty() {
                let state = idx / self.num_actions;
                outs.push(Transition::new(state, 1.0));
                continue;
            }
            outs.sort_by_key(|t| t.next_state);
            let mut merged: Vec<Transition> = Vec::with_capacity(outs.len());
            for t in outs.iter() {
                match merged.last_mut() {
                    Some(last) if last.next_state == t.next_state => {
                        last.probability += t.probability
                    }
                    _ => merged.push(*t),
                }
            }
            *outs = merged;
        }
        let mdp = DenseMdp {
            num_states: self.num_states,
            num_actions: self.num_actions,
            discount: self.discount,
            transitions: self.transitions,
            rewards: self.rewards,
        };
        validate_model(&mdp)?;
        Ok(mdp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unspecified_pairs_become_self_loops() {
        let mdp = DenseMdpBuilder::new(3, 2, 0.9).build().unwrap();
        for s in 0..3 {
            for a in 0..2 {
                assert_eq!(mdp.transitions(s, a), vec![Transition::new(s, 1.0)]);
                assert_eq!(mdp.reward(s, a), 0.0);
            }
        }
    }

    #[test]
    fn duplicate_successors_merge() {
        let mut b = DenseMdpBuilder::new(2, 1, 0.9);
        b.transition(0, 0, 1, 0.25);
        b.transition(0, 0, 1, 0.25);
        b.transition(0, 0, 0, 0.5);
        let mdp = b.build().unwrap();
        let ts = mdp.transitions(0, 0);
        assert_eq!(ts.len(), 2);
        assert!((ts.iter().map(|t| t.probability).sum::<f64>() - 1.0).abs() < 1e-12);
        let to1 = ts.iter().find(|t| t.next_state == 1).unwrap();
        assert!((to1.probability - 0.5).abs() < 1e-12);
    }

    #[test]
    fn bad_mass_is_rejected() {
        let mut b = DenseMdpBuilder::new(2, 1, 0.9);
        b.transition(0, 0, 1, 0.7);
        assert!(matches!(
            b.build(),
            Err(MdpError::InvalidDistribution { .. })
        ));
    }

    #[test]
    fn bad_discount_is_rejected() {
        let b = DenseMdpBuilder::new(1, 1, 0.0);
        assert!(matches!(b.build(), Err(MdpError::InvalidDiscount(_))));
        let b = DenseMdpBuilder::new(1, 1, 1.5);
        assert!(matches!(b.build(), Err(MdpError::InvalidDiscount(_))));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_state_panics() {
        DenseMdpBuilder::new(1, 1, 0.9).transition(5, 0, 0, 1.0);
    }

    #[test]
    fn empty_model_is_rejected() {
        assert!(matches!(
            DenseMdpBuilder::new(0, 1, 0.9).build(),
            Err(MdpError::EmptyModel)
        ));
        assert!(matches!(
            DenseMdpBuilder::new(1, 0, 0.9).build(),
            Err(MdpError::EmptyModel)
        ));
    }
}
