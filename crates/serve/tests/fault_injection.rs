//! Fault injection against the sharded merge layer: shards that die
//! mid-round, shards that deliver results out of order or duplicated,
//! and fleets that lose every member.
//!
//! The contract under test is the strong one the crate documents:
//! faults affect *bookkeeping only*. Jobs from a lost shard are
//! requeued (same seeds, same bits), duplicates are rejected with a
//! typed [`ShardFault`], stale re-deliveries are ignored — and the
//! final [`StratifiedEstimate`] stays **byte-identical** to the
//! in-process run through all of it.

use std::sync::{Arc, OnceLock};

use uavca_acasx::{AcasConfig, LogicTable};
use uavca_serve::{
    channel_pair, recv_msg, send_msg, ChannelTransport, ServeError, ShardEvent, ShardFault,
    ShardRequest, ShardedBackend, Transport,
};
use uavca_validation::{
    BatchRunner, CampaignConfig, CampaignPlanner, EncounterRunner, PairedJob, PairedOutcome,
};

fn runner() -> EncounterRunner {
    static TABLE: OnceLock<Arc<LogicTable>> = OnceLock::new();
    let table = TABLE.get_or_init(|| Arc::new(LogicTable::solve(&AcasConfig::coarse())));
    EncounterRunner::new(table.clone())
}

fn config() -> CampaignConfig {
    CampaignConfig {
        seed: 42,
        pilot_per_stratum: 6,
        round_runs: 60,
        max_rounds: 3,
        target_half_width: f64::INFINITY,
        threads: 1,
    }
}

/// How a rigged shard misbehaves.
enum Rig {
    /// Compute every job, then deliver the results reversed, with an
    /// extra duplicate of the first delivery injected mid-stream and a
    /// trailing duplicate of the last delivery left to straggle into
    /// the next round.
    ReverseAndDuplicate,
    /// Deliver only the first `n` results of the first batch, then
    /// close the transport (a crash mid-round). Subsequent requests are
    /// never served.
    DieAfter(usize),
    /// Accept the request, then go silent *without closing the
    /// transport* — a wedged process behind a healthy socket. Invisible
    /// to closure-based loss detection; only a coordinator armed with
    /// [`ShardedBackend::with_loss_timeout`] can write this shard off.
    Hang,
}

/// A shard endpoint with full control over its delivery schedule: runs
/// jobs on a real [`BatchRunner`] (outcomes must be the true ones — the
/// point is that *delivery* faults cannot corrupt the merge) but
/// delivers them according to the rig.
fn rigged_shard(mut transport: ChannelTransport, rig: Rig) {
    let batch = BatchRunner::serial(runner());
    loop {
        let request = match recv_msg::<ShardRequest>(&mut transport) {
            Ok(Some(request)) => request,
            _ => return,
        };
        let ShardRequest::RunPaired { batch: id, jobs } = request else {
            return;
        };
        let plain: Vec<PairedJob> = jobs.iter().map(|j| j.job).collect();
        let outcomes = batch.run_paired(&plain);
        let mut events: Vec<ShardEvent> = jobs
            .iter()
            .zip(outcomes)
            .map(|(job, outcome)| ShardEvent::Paired {
                batch: id,
                index: job.index,
                outcome,
            })
            .collect();
        match &rig {
            Rig::ReverseAndDuplicate => {
                events.reverse();
                if events.len() >= 2 {
                    // Mid-stream duplicate: rejected inside this round.
                    events.insert(1, events[0].clone());
                    // Trailing duplicate: straggles into the next round
                    // and must be rejected as stale there.
                    events.push(events.last().expect("non-empty").clone());
                }
                for event in &events {
                    if send_msg(&mut transport, event).is_err() {
                        return;
                    }
                }
            }
            Rig::DieAfter(n) => {
                for event in events.iter().take(*n) {
                    if send_msg(&mut transport, event).is_err() {
                        return;
                    }
                }
                return; // drop the transport: the shard is gone
            }
            Rig::Hang => {
                // Say nothing, but keep both channel ends alive so the
                // coordinator never sees a closed transport; block on
                // further requests until the coordinator drops its end.
                drop(events);
                loop {
                    match recv_msg::<ShardRequest>(&mut transport) {
                        Ok(Some(_)) => continue,
                        _ => return,
                    }
                }
            }
        }
    }
}

/// Spawns one honest local shard and one rigged shard, returning the
/// backend over both.
fn backend_with_rig(rig: Rig) -> ShardedBackend {
    // Shard 0 is rigged; shard 1 is an honest worker.
    let (coord0, shard0) = channel_pair();
    std::thread::spawn(move || rigged_shard(shard0, rig));
    let (coord1, shard1) = channel_pair();
    std::thread::spawn(move || {
        let _ = uavca_serve::serve_shard(shard1, BatchRunner::serial(runner()));
    });
    ShardedBackend::from_transports(vec![
        Box::new(coord0) as Box<dyn Transport>,
        Box::new(coord1) as Box<dyn Transport>,
    ])
}

#[test]
fn shard_lost_mid_round_requeues_and_stays_bit_identical() {
    let planner = CampaignPlanner::new(runner(), config());
    let reference = planner.run().expect("valid config");

    let backend = backend_with_rig(Rig::DieAfter(3));
    let outcome = planner.run_with(&backend).expect("valid config");

    assert_eq!(outcome, reference, "shard loss must not change a number");
    assert_eq!(
        serde_json::to_string(&outcome.estimate).unwrap(),
        serde_json::to_string(&reference.estimate).unwrap(),
        "byte-identical serialized estimate across a mid-round shard loss"
    );

    let faults = backend.take_faults();
    let requeued: usize = faults
        .iter()
        .filter_map(|f| match f {
            ShardFault::ShardLost {
                shard: 0, requeued, ..
            } => Some(*requeued),
            _ => None,
        })
        .sum();
    assert!(
        requeued > 0,
        "the dead shard had unfinished jobs to requeue: {faults:?}"
    );

    let usage = backend.usage();
    assert!(usage[0].lost, "shard 0 is recorded lost");
    assert_eq!(usage[0].jobs_completed, 3, "only the pre-crash deliveries");
    assert_eq!(usage[0].jobs_requeued, requeued);
    // Work conservation: everything the campaign ran was completed by
    // exactly one shard.
    let completed: usize = usage.iter().map(|u| u.jobs_completed).sum();
    assert_eq!(completed, outcome.total_runs());
}

#[test]
fn out_of_order_and_duplicated_deliveries_are_rejected_and_bit_identical() {
    let planner = CampaignPlanner::new(runner(), config());
    let reference = planner.run().expect("valid config");

    let backend = backend_with_rig(Rig::ReverseAndDuplicate);
    let outcome = planner.run_with(&backend).expect("valid config");

    assert_eq!(outcome, reference);
    assert_eq!(
        serde_json::to_string(&outcome.estimate).unwrap(),
        serde_json::to_string(&reference.estimate).unwrap(),
        "byte-identical serialized estimate under reordering + duplication"
    );

    let faults = backend.take_faults();
    let duplicates = faults
        .iter()
        .filter(|f| matches!(f, ShardFault::DuplicateResult { shard: 0, .. }))
        .count();
    let stale = faults
        .iter()
        .filter(|f| matches!(f, ShardFault::StaleBatch { shard: 0, .. }))
        .count();
    assert!(
        duplicates > 0,
        "mid-stream duplicates must be rejected with the typed error: {faults:?}"
    );
    assert!(
        stale > 0,
        "trailing duplicates straggling into the next round must be \
         rejected as stale: {faults:?}"
    );
    assert!(
        !faults
            .iter()
            .any(|f| matches!(f, ShardFault::ShardLost { .. })),
        "no shard was lost in this rig: {faults:?}"
    );
    let usage = backend.usage();
    assert_eq!(usage[0].duplicates_rejected, duplicates);
    // Every duplicate renders a usable message (it is an error type).
    for fault in &faults {
        assert!(!fault.to_string().is_empty());
    }
}

#[test]
fn hung_shard_times_out_is_requeued_and_stays_bit_identical() {
    let planner = CampaignPlanner::new(runner(), config());
    let reference = planner.run().expect("valid config");

    // The rigged shard wedges with its transport open: without the
    // timeout this campaign would block forever on its silence.
    let backend = backend_with_rig(Rig::Hang).with_loss_timeout(std::time::Duration::from_secs(2));
    let outcome = planner.run_with(&backend).expect("valid config");

    assert_eq!(outcome, reference, "a hung shard must not change a number");
    assert_eq!(
        serde_json::to_string(&outcome.estimate).unwrap(),
        serde_json::to_string(&reference.estimate).unwrap(),
        "byte-identical serialized estimate across a hung-shard write-off"
    );

    let faults = backend.take_faults();
    let requeued: usize = faults
        .iter()
        .filter_map(|f| match f {
            ShardFault::ShardTimedOut {
                shard: 0, requeued, ..
            } => Some(*requeued),
            _ => None,
        })
        .sum();
    assert!(
        requeued > 0,
        "the hung shard's entire assignment is requeued: {faults:?}"
    );
    assert!(
        !faults
            .iter()
            .any(|f| matches!(f, ShardFault::ShardLost { .. })),
        "silence is a timeout fault, not a closure fault: {faults:?}"
    );

    let usage = backend.usage();
    assert!(usage[0].lost, "the timed-out shard is written off");
    assert_eq!(usage[0].jobs_completed, 0, "it never delivered anything");
    assert_eq!(usage[0].jobs_requeued, requeued);
    // Work conservation: the honest shard completed the whole campaign.
    assert_eq!(usage[1].jobs_completed, outcome.total_runs());
}

#[test]
fn losing_every_shard_is_a_typed_error_not_a_hang() {
    // Both ends of both transports dropped: the fleet is dead on
    // arrival, and dispatch must say so instead of blocking.
    let (coord0, shard0) = channel_pair();
    let (coord1, shard1) = channel_pair();
    drop(shard0);
    drop(shard1);
    let backend = ShardedBackend::from_transports(vec![
        Box::new(coord0) as Box<dyn Transport>,
        Box::new(coord1) as Box<dyn Transport>,
    ]);
    let jobs = BatchRunner::repeated_paired_jobs(
        &uavca_encounter::EncounterParams::head_on_template(),
        4,
        7,
    );
    let err = backend.try_run_pairs(&jobs).unwrap_err();
    assert_eq!(err, ServeError::AllShardsLost { outstanding: 4 });
    // The faults log documents both losses.
    let faults = backend.take_faults();
    assert!(faults.len() >= 2, "{faults:?}");
}

#[test]
fn empty_batches_complete_without_touching_shards() {
    let (coord0, shard0) = channel_pair();
    drop(shard0); // even a dead fleet serves the empty batch
    let backend = ShardedBackend::from_transports(vec![Box::new(coord0) as Box<dyn Transport>]);
    let outcomes: Vec<PairedOutcome> = backend.try_run_pairs(&[]).expect("empty batch is trivial");
    assert!(outcomes.is_empty());
    assert!(backend.take_faults().is_empty());
}
