//! Property-based round trips of **every** wire-protocol message,
//! through the same line framing the sockets use.
//!
//! The oracle is the serialized fixed-point: for a message `m`,
//! `encode(decode(encode(m))) == encode(m)` byte for byte. Comparing
//! serialized forms (rather than values) is deliberate — the undefined
//! statistics markers are `NaN` in memory, where `PartialEq` cannot see
//! that a round trip preserved them, but their serialized form (`null`)
//! is exact. The generated messages are biased to include the PR-4
//! undefined-estimate cases: event-free arms (NaN rates, infinite
//! `ci_high`/`se_log`), infinite half-widths, and the `INFINITY`
//! no-early-stop sentinel in `CampaignConfig`. Every encoded line is
//! also checked to be *strict* JSON — no bare `NaN`/`Infinity` literal
//! may reach the wire.

use std::sync::{Arc, OnceLock};

use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use serde::{Deserialize, Serialize};
use uavca_acasx::{AcasConfig, LogicTable};
use uavca_encounter::{EncounterParams, MultiEncounterModel, Stratification};
use uavca_serve::{
    encode, read_frame, write_frame, CampaignId, CampaignRequest, CampaignResult, CampaignSpec,
    CampaignState, CampaignStatus, Checkpoint, Event, IndexedMultiJob, IndexedPairedJob,
    IndexedSimJob, IndexedSplitJob, Request, RoundEvent, ShardEvent, ShardRequest,
    SplitCampaignRequest, TcpTransport, Transport,
};
use uavca_sim::{EncounterOutcome, MultiEncounterOutcome, MultiMode, PairOutcome};
use uavca_validation::{
    jackknife_ratio, paired_covariance, CampaignCheckpoint, CampaignConfig, CampaignConfigError,
    CampaignOutcome, EncounterRunner, Equipage, MultiJob, MultiPairedOutcome, PairTable, PairedJob,
    PairedOutcome, RateEstimate, RatioEstimate, RoundSummary, SimJob, SplitConfig, SplitJob,
    SplitOutcome, SplitPlanner, SplitSource, StratifiedEstimate, StratumEstimate, StratumTally,
    WeightedRate,
};

fn runner() -> EncounterRunner {
    static TABLE: OnceLock<Arc<LogicTable>> = OnceLock::new();
    let table = TABLE.get_or_init(|| Arc::new(LogicTable::solve(&AcasConfig::coarse())));
    EncounterRunner::new(table.clone())
}

/// No bare extended float literal may cross the wire: strict-JSON
/// consumers on the other end would reject the whole line.
fn assert_strict_json(line: &str) {
    assert!(!line.contains("NaN"), "bare NaN in wire line: {line}");
    assert!(
        !line.contains("Infinity"),
        "bare Infinity in wire line: {line}"
    );
}

/// The round-trip oracle: through the byte-stream framing and back,
/// the serialized form is a fixed point.
fn roundtrip<T: Serialize + Deserialize>(msg: &T) {
    let line = encode(msg);
    assert_strict_json(&line);
    let mut buf = Vec::new();
    write_frame(&mut buf, msg).expect("in-memory framing");
    let mut reader = buf.as_slice();
    let back: T = read_frame(&mut reader)
        .expect("framed message reads back")
        .expect("stream did not end early");
    assert_eq!(
        encode(&back),
        line,
        "serialized form must be a round-trip fixed point"
    );
}

/// Encounter parameters from six draws (the remaining three fields
/// reuse draws — coverage of the *protocol* does not need nine degrees
/// of freedom).
fn params(d: (f64, f64, f64, f64, f64, f64)) -> EncounterParams {
    EncounterParams {
        own_ground_speed_kt: 40.0 + d.0,
        own_vertical_speed_fpm: d.1,
        time_to_cpa_s: 10.0 + d.2,
        cpa_horizontal_ft: d.3,
        cpa_angle_rad: d.4,
        cpa_vertical_ft: d.5,
        intruder_ground_speed_kt: 40.0 + d.1,
        intruder_bearing_rad: d.4 * 0.5,
        intruder_vertical_speed_fpm: d.2,
    }
}

fn outcome(d: (f64, f64, f64, usize, usize, u64)) -> EncounterOutcome {
    let nmac = d.3.is_multiple_of(2);
    EncounterOutcome {
        nmac,
        first_nmac_time_s: if nmac { Some(d.0) } else { None },
        min_separation_ft: d.1,
        min_horizontal_ft: d.1 * 0.9,
        min_vertical_ft: d.2,
        time_of_min_s: d.0,
        own_alert_steps: d.3,
        intruder_alert_steps: d.4,
        first_alert_time_s: if d.4.is_multiple_of(3) {
            None
        } else {
            Some(d.2)
        },
        own_reversals: d.4 % 3,
        duration_s: 60.0 + d.0,
    }
}

fn equipage(k: usize) -> Equipage {
    match k % 3 {
        0 => Equipage::Both,
        1 => Equipage::OwnOnly,
        _ => Equipage::Neither,
    }
}

/// A stratified estimate built from drawn per-stratum 2×2 cells through
/// the real estimator stack, so every statistical field (including the
/// undefined ones on event-free draws) is a value the campaign can
/// actually emit.
fn estimate(cells: &[(usize, usize, usize, usize)]) -> StratifiedEstimate {
    let strata = Stratification::default().strata();
    let tables: Vec<PairTable> = strata
        .iter()
        .enumerate()
        .map(|(i, _)| {
            let (b, e, u, n) = cells[i % cells.len()];
            PairTable {
                both_nmac: b,
                equipped_only: e,
                unequipped_only: u,
                neither: n,
            }
        })
        .collect();
    let weights: Vec<f64> = vec![1.0 / strata.len() as f64; strata.len()];
    let combine = |pick: &dyn Fn(&PairTable) -> usize| {
        WeightedRate::combine(
            &weights
                .iter()
                .zip(&tables)
                .map(|(&w, t)| (w, pick(t), t.runs()))
                .collect::<Vec<_>>(),
        )
    };
    let equipped = combine(&|t| t.equipped_nmac());
    let unequipped = combine(&|t| t.unequipped_nmac());
    let covariance = paired_covariance(&weights, &tables);
    StratifiedEstimate {
        strata: strata
            .iter()
            .zip(&weights)
            .zip(&tables)
            .map(|((&stratum, &weight), &pairs)| StratumEstimate {
                stratum,
                weight,
                runs: pairs.runs(),
                pairs,
                equipped_nmac: RateEstimate::wilson(pairs.equipped_nmac(), pairs.runs()),
                unequipped_nmac: RateEstimate::wilson(pairs.unequipped_nmac(), pairs.runs()),
                disagreement: RateEstimate::wilson(pairs.disagree(), pairs.runs()),
                alert: RateEstimate::wilson(pairs.both_nmac, pairs.runs()),
                false_alert: RateEstimate::wilson(pairs.equipped_only, pairs.runs()),
            })
            .collect(),
        total_runs: tables.iter().map(PairTable::runs).sum(),
        equipped_nmac: equipped,
        unequipped_nmac: unequipped,
        disagreement: combine(&|t| t.disagree()),
        alert: combine(&|t| t.both_nmac),
        false_alert: combine(&|t| t.equipped_only),
        covariance,
        risk_ratio: RatioEstimate::paired(&equipped, &unequipped, covariance),
        risk_ratio_unpaired: RatioEstimate::from_rates(&equipped, &unequipped),
        risk_ratio_jackknife: jackknife_ratio(&weights, &tables),
    }
}

fn round_summary(est: &StratifiedEstimate, round: usize) -> RoundSummary {
    RoundSummary {
        round,
        allocated: est.strata.iter().map(|s| s.runs).collect(),
        runs_this_round: est.total_runs,
        total_runs: est.total_runs,
        equipped_nmac: est.equipped_nmac,
        unequipped_nmac: est.unequipped_nmac,
        risk_ratio: est.risk_ratio,
        risk_ratio_unpaired: est.risk_ratio_unpaired,
    }
}

/// Deterministic fake splitting outcomes: pure hashes of the root seed
/// with ladder-consistent stage vectors, so real steppers can emit
/// checkpoint/round/result values for the wire without simulation cost.
struct RiggedSplits;

impl SplitSource for RiggedSplits {
    fn run_splits(&self, jobs: &[SplitJob]) -> Vec<SplitOutcome> {
        jobs.iter()
            .map(|j| {
                let h = j.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                let stages = j.levels.len() + 1;
                SplitOutcome {
                    weight: (h % 5) as f64 / 8.0,
                    level_trials: (0..stages).map(|s| 1 + (h >> s) % 7).collect(),
                    level_crossings: (0..stages)
                        .map(|s| ((h >> (s + 3)) % 3).min(1 + (h >> s) % 7))
                        .collect(),
                    equipped_steps: h % 1000,
                    unequipped_steps: h % 800,
                    unequipped: outcome((
                        (h % 60) as f64,
                        (h % 5000) as f64,
                        (h % 900) as f64,
                        (h % 5) as usize,
                        (h % 4) as usize,
                        h % 97,
                    )),
                }
            })
            .collect()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn job_batch_requests_round_trip(
        draw in (
            (0.0f64..500.0, -2000.0f64..2000.0, 0.0f64..60.0,
             0.0f64..20_000.0, -3.1f64..3.1, -800.0f64..800.0),
            0u64..u64::MAX,
            0usize..64,
        )
    ) {
        let (p, seed, k) = draw;
        let sim_jobs: Vec<SimJob> = (0..k % 5)
            .map(|i| SimJob {
                params: params(p),
                seed: seed.wrapping_add(i as u64),
                equipage: equipage(k + i),
            })
            .collect();
        roundtrip(&Request::RunBatch { jobs: sim_jobs.clone() });
        let paired_jobs: Vec<PairedJob> = (0..k % 5)
            .map(|i| PairedJob { params: params(p), seed: seed.wrapping_add(i as u64) })
            .collect();
        roundtrip(&Request::RunPaired { jobs: paired_jobs.clone() });
        roundtrip(&Request::Shutdown);

        // The shard-level framing of the same jobs.
        roundtrip(&ShardRequest::RunSims {
            batch: seed,
            jobs: sim_jobs
                .iter()
                .enumerate()
                .map(|(index, &job)| IndexedSimJob { index, job })
                .collect(),
        });
        roundtrip(&ShardRequest::RunPaired {
            batch: seed,
            jobs: paired_jobs
                .iter()
                .enumerate()
                .map(|(index, &job)| IndexedPairedJob { index, job })
                .collect(),
        });
        roundtrip(&ShardRequest::Shutdown);
    }

    /// The k-aircraft shard dialect: [`ShardRequest::RunMultis`] with
    /// real sampled per-aircraft parameter vectors, and the chunked
    /// [`ShardEvent::MultiChunk`] flush with per-pair records that
    /// exercise the `Option` time fields (`None` serializes as `null`).
    #[test]
    fn multi_batch_messages_round_trip(
        draw in (0u64..u64::MAX, 0usize..5, 0usize..6)
    ) {
        let (seed, count, stratum_shift) = draw;
        let model = MultiEncounterModel::default();
        let strata = model.strata();
        let jobs: Vec<MultiJob> = (0..count)
            .map(|i| {
                let stratum = strata[(i + stratum_shift) % strata.len()];
                let base = seed.wrapping_add(i as u64);
                MultiJob {
                    params: model.sample_in(stratum, &mut StdRng::seed_from_u64(base)),
                    seed: base,
                    mode: if (i + stratum_shift) % 2 == 0 {
                        MultiMode::Pairwise
                    } else {
                        MultiMode::Coordinated
                    },
                }
            })
            .collect();
        roundtrip(&ShardRequest::RunMultis {
            batch: seed,
            jobs: jobs
                .iter()
                .enumerate()
                .map(|(index, job)| IndexedMultiJob { index, job: job.clone() })
                .collect(),
        });

        // Rigged outcomes shaped by the jobs themselves, biased to cover
        // NMAC/no-NMAC pairs and present/absent alert times.
        let rig = |job: &MultiJob, salt: u64| -> MultiEncounterOutcome {
            let k = job.params.num_aircraft();
            let h = job.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ salt;
            let mut pair_records = Vec::new();
            for a in 0..k {
                for b in (a + 1)..k {
                    let nmac = (h >> (a + b)).is_multiple_of(3);
                    pair_records.push(PairOutcome {
                        a,
                        b,
                        nmac,
                        first_nmac_time_s: nmac.then_some((h % 60) as f64),
                        min_separation_ft: (h % 5000) as f64,
                        min_horizontal_ft: (h % 4000) as f64,
                        min_vertical_ft: (h % 900) as f64,
                        time_of_min_s: (h % 120) as f64,
                    });
                }
            }
            MultiEncounterOutcome {
                pairs: pair_records,
                alert_steps: (0..k).map(|i| (h >> i) as usize % 40).collect(),
                reversals: (0..k).map(|i| (h >> i) as usize % 3).collect(),
                first_alert_time_s: h.is_multiple_of(2).then_some((h % 30) as f64),
                duration_s: 60.0 + (h % 60) as f64,
            }
        };
        roundtrip(&ShardEvent::MultiChunk {
            batch: seed,
            indices: (0..jobs.len()).map(|i| i * 3 + 1).collect(),
            outcomes: jobs
                .iter()
                .map(|job| MultiPairedOutcome {
                    equipped: rig(job, 1),
                    unequipped: rig(job, 2),
                })
                .collect(),
        });
    }

    #[test]
    fn campaign_requests_round_trip_including_the_no_early_stop_sentinel(
        draw in (0u64..u64::MAX, 1usize..200, 1usize..2000, 1usize..50, 0.0f64..1.0, 0usize..4)
    ) {
        let (seed, pilot, round_runs, rounds, target, bins) = draw;
        // Finite target and the documented INFINITY sentinel both cross
        // the wire; the sentinel must become `null`, not `Infinity`.
        for target in [target + 1e-6, f64::INFINITY] {
            let request = CampaignRequest {
                config: CampaignConfig {
                    seed,
                    pilot_per_stratum: pilot,
                    round_runs,
                    max_rounds: rounds,
                    target_half_width: target,
                    threads: bins,
                },
                model: Default::default(),
                cpa_bins: bins + 1,
                uniform: seed % 2 == 0,
            };
            let line = encode(&Request::RunCampaign { request });
            if target.is_infinite() {
                prop_assert!(line.contains("\"target_half_width\":null"), "{line}");
            }
            roundtrip(&Request::RunCampaign { request });
        }
    }

    #[test]
    fn outcome_events_round_trip(
        draw in (
            (0.0f64..120.0, 0.0f64..5000.0, 0.0f64..2000.0, 0usize..7, 0usize..9, 0u64..1000),
            0usize..6,
        )
    ) {
        let (d, k) = draw;
        let outcomes: Vec<EncounterOutcome> = (0..k)
            .map(|i| outcome((d.0, d.1, d.2, d.3 + i, d.4, d.5)))
            .collect();
        roundtrip(&Event::BatchDone { outcomes: outcomes.clone() });
        let paired: Vec<PairedOutcome> = outcomes
            .iter()
            .map(|&equipped| PairedOutcome {
                equipped,
                unequipped: outcome((d.0, d.1 * 0.5, d.2, d.3 + 1, d.4, d.5)),
            })
            .collect();
        roundtrip(&Event::PairedDone { outcomes: paired.clone() });
        roundtrip(&Event::Error { message: "shard fleet \"lost\"\nentirely".to_string() });
        roundtrip(&Event::ShutdownAck);
        if let Some(&first) = outcomes.first() {
            roundtrip(&ShardEvent::Sim { batch: d.5, index: k, outcome: first });
            roundtrip(&ShardEvent::Paired { batch: d.5, index: k, outcome: paired[0] });
        }
        // The per-chunk flush forms, non-contiguous indices included
        // (round-robin partitioning strides a shard's slice).
        roundtrip(&ShardEvent::SimChunk {
            batch: d.5,
            indices: (0..k).map(|i| i * 3 + 1).collect(),
            outcomes: outcomes.clone(),
        });
        roundtrip(&ShardEvent::PairedChunk {
            batch: d.5,
            indices: (0..k).map(|i| i * 2).collect(),
            outcomes: paired.clone(),
        });
    }

    #[test]
    fn campaign_events_round_trip_with_undefined_estimates(
        draw in ((0usize..3, 0usize..3, 0usize..3, 0usize..40), 0usize..20)
    ) {
        let (cell, round) = draw;
        // A healthy table, the drawn table, and the all-zero table that
        // forces every undefined marker (NaN rates, [0, ∞) ratio CIs,
        // infinite se_log) through the wire.
        for cells in [[(3, 1, 4, 40)], [cell], [(0, 0, 0, 0)]] {
            let est = estimate(&cells);
            let summary = round_summary(&est, round);
            let line = encode(&Event::Round { summary: summary.clone() });
            if cells[0] == (0, 0, 0, 0) {
                prop_assert!(line.contains("null"), "undefined markers must be null: {line}");
            }
            roundtrip(&Event::Round { summary: summary.clone() });
            roundtrip(&Event::CampaignDone {
                outcome: CampaignOutcome {
                    estimate: est,
                    rounds: vec![summary],
                    reached_target: round % 2 == 0,
                },
            });
        }
    }

    #[test]
    fn rejection_events_round_trip(draw in 0usize..4) {
        let error = [
            CampaignConfigError::ZeroPilotBudget,
            CampaignConfigError::ZeroRoundRuns,
            CampaignConfigError::ZeroRounds,
            CampaignConfigError::NonPositiveTargetHalfWidth,
        ][draw];
        roundtrip(&Event::Rejected { error });
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every lifecycle message of the control-plane API round-trips
    /// through the framing: campaign-addressed requests, checkpoints of
    /// both families (the splitting ones emitted by a *real* stepper,
    /// kill point included), tagged round/terminal events, and statuses
    /// in every lifecycle state.
    #[test]
    fn lifecycle_messages_round_trip(
        draw in (
            0u64..u64::MAX,
            (1usize..3, 4usize..16, 1usize..3),
            0usize..4,
            (0usize..3, 0usize..3, 0usize..3, 0usize..40),
            0usize..5,
        )
    ) {
        let (seed, (pilot, round_roots, max_rounds), kill, cell, state_ix) = draw;
        let id = CampaignId(seed);

        roundtrip(&Request::Status { id });
        roundtrip(&Request::Stream { id });
        roundtrip(&Request::Pause { id });
        roundtrip(&Request::Resume { id });
        roundtrip(&Request::Cancel { id });

        // Splitting roots through the batch path (satellite: RunSplits
        // finally exists on the client-facing protocol).
        let jobs: Vec<SplitJob> = (0..kill)
            .map(|i| SplitJob {
                params: params((100.0, 0.0, 30.0, 500.0, 1.0, 100.0)),
                seed: seed.wrapping_add(i as u64),
                levels: vec![2000.0, 900.0],
                branches: vec![2, 3],
            })
            .collect();
        roundtrip(&Request::RunSplits { jobs: jobs.clone() });
        roundtrip(&Event::SplitsDone { outcomes: RiggedSplits.run_splits(&jobs) });

        // The shard-level framing of the same split jobs, and the
        // chunked flush of their outcomes — non-contiguous indices, as
        // round-robin partitioning strides a shard's slice.
        roundtrip(&ShardRequest::RunSplits {
            batch: seed,
            jobs: jobs
                .iter()
                .enumerate()
                .map(|(index, job)| IndexedSplitJob { index, job: job.clone() })
                .collect(),
        });
        roundtrip(&ShardEvent::SplitChunk {
            batch: seed,
            indices: (0..jobs.len()).map(|i| i * 3 + 2).collect(),
            outcomes: RiggedSplits.run_splits(&jobs),
        });

        // A paired checkpoint from the drawn cells through the real
        // estimator stack — all-zero draws push the NaN/∞ markers
        // (serialized `null`) through every nested field.
        let est = estimate(&[cell]);
        let summary = round_summary(&est, kill);
        let paired_request = CampaignRequest {
            config: CampaignConfig {
                seed,
                pilot_per_stratum: pilot,
                round_runs: round_roots,
                max_rounds,
                target_half_width: f64::INFINITY,
                threads: 1,
            },
            model: Default::default(),
            cpa_bins: 2,
            uniform: seed % 2 == 0,
        };
        let paired_ckpt = Checkpoint::Paired {
            checkpoint: CampaignCheckpoint {
                next_round: kill,
                adaptive: seed % 2 != 0,
                tallies: (0..2)
                    .map(|_| StratumTally {
                        pairs: PairTable {
                            both_nmac: cell.0,
                            equipped_only: cell.1,
                            unequipped_only: cell.2,
                            neither: cell.3,
                        },
                        alerts: cell.0 + cell.1,
                        false_alerts: cell.1,
                    })
                    .collect(),
                rounds: vec![summary.clone()],
                reached_target: kill % 2 == 0,
            },
        };
        roundtrip(&Request::Create {
            spec: CampaignSpec::Paired { request: paired_request },
            checkpoint: Some(paired_ckpt.clone()),
        });
        roundtrip(&Event::CampaignRound {
            id,
            round: RoundEvent::Paired { summary: summary.clone() },
        });
        roundtrip(&Event::CampaignFinished {
            id,
            result: CampaignResult::Paired {
                outcome: CampaignOutcome {
                    estimate: est,
                    rounds: vec![summary],
                    reached_target: false,
                },
            },
        });

        // Splitting checkpoint/rounds/result emitted by a real stepper
        // over rigged outcomes, checkpointed at the drawn kill point.
        let split_request = SplitCampaignRequest {
            config: SplitConfig {
                seed,
                levels: 2,
                max_branch: 3,
                pilot_roots_per_stratum: pilot,
                round_roots,
                max_rounds,
                target_half_width: f64::INFINITY,
                threads: 1,
            },
            model: Default::default(),
            cpa_bins: 2,
        };
        let planner = SplitPlanner::new(runner(), split_request.config)
            .stratification(Stratification::new(2));
        let mut stepper = planner.stepper().expect("valid config");
        for _ in 0..kill {
            let Some(planned) = stepper.plan_round() else { break };
            let outcomes = RiggedSplits.run_splits(&planned.jobs);
            stepper.complete_round(&planned, &outcomes);
        }
        let split_ckpt = Checkpoint::Splitting { checkpoint: stepper.checkpoint() };
        roundtrip(&Request::Create {
            spec: CampaignSpec::Splitting { request: split_request },
            checkpoint: Some(split_ckpt.clone()),
        });
        while let Some(planned) = stepper.plan_round() {
            let outcomes = RiggedSplits.run_splits(&planned.jobs);
            let summary = stepper.complete_round(&planned, &outcomes);
            roundtrip(&Event::CampaignRound {
                id,
                round: RoundEvent::Splitting { summary },
            });
        }
        roundtrip(&Event::CampaignFinished {
            id,
            result: CampaignResult::Splitting { outcome: stepper.outcome() },
        });

        let state = [
            CampaignState::Running,
            CampaignState::Paused,
            CampaignState::Failed,
            CampaignState::Finished,
            CampaignState::Cancelled,
        ][state_ix];
        roundtrip(&Event::CampaignStatus {
            status: CampaignStatus {
                id,
                state,
                rounds_completed: kill,
                jobs_done: round_roots * max_rounds,
                restarts: state_ix,
                last_error: (state_ix % 2 == 0)
                    .then(|| String::from("every shard was lost with 3 jobs outstanding")),
                checkpoint: split_ckpt,
            },
        });
        roundtrip(&Event::CampaignCreated { id });
        roundtrip(&Event::CampaignPaused { id });
        roundtrip(&Event::CampaignResumed { id });
        roundtrip(&Event::CampaignFailed {
            id,
            message: "fleet \"lost\"\nmid-round".to_string(),
        });
        roundtrip(&Event::CampaignCancelled { id, checkpoint: paired_ckpt });
    }
}

/// The same fixed-point oracle through a real TCP socket: what the
/// framing writes, a socket peer reads back byte-identically.
#[test]
fn every_message_kind_survives_a_real_socket() {
    let est = estimate(&[(2, 1, 3, 30), (0, 0, 0, 0)]);
    // A splitting campaign checkpointed after its pilot round — real
    // stepper state for the lifecycle messages below.
    let split_request = SplitCampaignRequest {
        config: SplitConfig {
            seed: 17,
            levels: 2,
            max_branch: 3,
            pilot_roots_per_stratum: 2,
            round_roots: 6,
            max_rounds: 1,
            target_half_width: f64::INFINITY,
            threads: 1,
        },
        model: Default::default(),
        cpa_bins: 2,
    };
    let mut stepper = SplitPlanner::new(runner(), split_request.config)
        .stratification(Stratification::new(2))
        .stepper()
        .expect("valid config");
    let planned = stepper.plan_round().expect("pilot round plans");
    let outcomes = RiggedSplits.run_splits(&planned.jobs);
    let split_summary = stepper.complete_round(&planned, &outcomes);
    let split_ckpt = Checkpoint::Splitting {
        checkpoint: stepper.checkpoint(),
    };
    let lines: Vec<String> = vec![
        encode(&Request::RunPaired {
            jobs: vec![PairedJob {
                params: params((100.0, 0.0, 30.0, 500.0, 1.0, 100.0)),
                seed: u64::MAX,
            }],
        }),
        encode(&Request::RunCampaign {
            request: CampaignRequest {
                config: CampaignConfig {
                    target_half_width: f64::INFINITY,
                    ..CampaignConfig::default()
                },
                model: Default::default(),
                cpa_bins: 3,
                uniform: false,
            },
        }),
        encode(&Event::Round {
            summary: round_summary(&est, 0),
        }),
        encode(&Event::CampaignDone {
            outcome: CampaignOutcome {
                estimate: est,
                rounds: Vec::new(),
                reached_target: false,
            },
        }),
        encode(&Event::Rejected {
            error: CampaignConfigError::ZeroRounds,
        }),
        encode(&ShardRequest::Shutdown),
        encode(&ShardEvent::Sim {
            batch: 7,
            index: 0,
            outcome: outcome((1.0, 2.0, 3.0, 4, 5, 6)),
        }),
        encode(&ShardEvent::SimChunk {
            batch: 8,
            indices: vec![1, 4, 7],
            outcomes: vec![
                outcome((1.0, 2.0, 3.0, 4, 5, 6)),
                outcome((0.5, 0.0, 9.0, 1, 0, 2)),
                outcome((7.0, 1.5, 0.25, 0, 3, 1)),
            ],
        }),
        // The control-plane lifecycle dialect.
        encode(&Request::Create {
            spec: CampaignSpec::Splitting {
                request: split_request,
            },
            checkpoint: Some(split_ckpt.clone()),
        }),
        encode(&Request::Stream { id: CampaignId(3) }),
        encode(&Request::Cancel { id: CampaignId(3) }),
        encode(&Event::CampaignCreated { id: CampaignId(3) }),
        encode(&Event::CampaignRound {
            id: CampaignId(3),
            round: RoundEvent::Splitting {
                summary: split_summary,
            },
        }),
        encode(&Event::CampaignCancelled {
            id: CampaignId(3),
            checkpoint: split_ckpt,
        }),
        encode(&Event::CampaignStatus {
            status: CampaignStatus {
                id: CampaignId(3),
                state: CampaignState::Paused,
                rounds_completed: 1,
                jobs_done: 4,
                restarts: 1,
                last_error: Some(String::from("every shard was lost with 4 jobs outstanding")),
                checkpoint: Checkpoint::Paired {
                    checkpoint: CampaignCheckpoint {
                        next_round: 0,
                        adaptive: true,
                        tallies: Vec::new(),
                        rounds: Vec::new(),
                        reached_target: false,
                    },
                },
            },
        }),
    ];

    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let sent = lines.clone();
    let server = std::thread::spawn(move || {
        let (stream, _) = listener.accept().unwrap();
        let mut t = TcpTransport::from_stream(stream).unwrap();
        for line in &sent {
            t.send(line).unwrap();
        }
    });
    let mut client = TcpTransport::connect(addr).unwrap();
    for expected in &lines {
        assert_strict_json(expected);
        let got = client.recv().unwrap().expect("line arrives");
        assert_eq!(&got, expected, "socket framing is byte-transparent");
    }
    assert_eq!(
        client.recv().unwrap(),
        None,
        "clean close after the last line"
    );
    server.join().unwrap();
}
