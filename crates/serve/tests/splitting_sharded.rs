//! Splitting campaigns over the shard fleet: the branch-tree jobs carry
//! their ladder and schedule, so a requeued root replays bit-identically
//! on any shard — the whole campaign must be byte-identical to local
//! execution for any shard count and through a mid-round shard crash.

use std::sync::{Arc, OnceLock};

use uavca_acasx::{AcasConfig, LogicTable};
use uavca_encounter::{StatisticalEncounterModel, Stratification};
use uavca_serve::{
    channel_pair, recv_msg, send_msg, ChannelTransport, ShardEvent, ShardFault, ShardRequest,
    ShardedBackend, Transport,
};
use uavca_validation::{BatchRunner, EncounterRunner, SplitConfig, SplitJob, SplitPlanner};

fn runner() -> EncounterRunner {
    static TABLE: OnceLock<Arc<LogicTable>> = OnceLock::new();
    let table = TABLE.get_or_init(|| Arc::new(LogicTable::solve(&AcasConfig::coarse())));
    EncounterRunner::new(table.clone())
}

fn enriched() -> StatisticalEncounterModel {
    StatisticalEncounterModel {
        max_cpa_horizontal_ft: 2500.0,
        max_cpa_vertical_ft: 500.0,
        ..StatisticalEncounterModel::default()
    }
}

fn planner() -> SplitPlanner {
    SplitPlanner::new(
        runner(),
        SplitConfig {
            seed: 42,
            levels: 2,
            max_branch: 4,
            pilot_roots_per_stratum: 3,
            round_roots: 24,
            max_rounds: 1,
            target_half_width: f64::INFINITY,
            threads: 1,
        },
    )
    .model(enriched())
    .stratification(Stratification::new(3))
}

#[test]
fn sharded_splitting_campaign_matches_local_for_any_shard_count() {
    let reference = planner().run().expect("valid config");
    for shards in [1usize, 2, 8] {
        let backend = ShardedBackend::spawn_local(runner(), shards, 1);
        let outcome = planner().run_with(&backend).expect("valid config");
        assert_eq!(outcome, reference, "shards = {shards}");
        assert_eq!(
            serde_json::to_string(&outcome.estimate).unwrap(),
            serde_json::to_string(&reference.estimate).unwrap(),
            "byte-identical serialized estimate at {shards} shards"
        );
        assert!(backend.take_faults().is_empty(), "clean run, no faults");
    }
}

/// A shard that serves the first splitting batch by delivering only one
/// chunk of results, then closes mid-round.
fn dying_split_shard(mut transport: ChannelTransport) {
    let batch = BatchRunner::serial(runner());
    let Ok(Some(ShardRequest::RunSplits { batch: id, jobs })) =
        recv_msg::<ShardRequest>(&mut transport)
    else {
        return;
    };
    let first: Vec<_> = jobs.iter().take(2).collect();
    let plain: Vec<SplitJob> = first.iter().map(|j| j.job.clone()).collect();
    let outcomes = batch.run_splits(&plain);
    let _ = send_msg(
        &mut transport,
        &ShardEvent::SplitChunk {
            batch: id,
            indices: first.iter().map(|j| j.index).collect(),
            outcomes,
        },
    );
    // Dropping the transport here is the crash: everything undelivered
    // must be requeued onto the survivor with identical seeds.
}

#[test]
fn splitting_shard_lost_mid_round_requeues_and_stays_bit_identical() {
    let reference = planner().run().expect("valid config");

    let (coord0, shard0) = channel_pair();
    std::thread::spawn(move || dying_split_shard(shard0));
    let (coord1, shard1) = channel_pair();
    std::thread::spawn(move || {
        let _ = uavca_serve::serve_shard(shard1, BatchRunner::serial(runner()));
    });
    let backend = ShardedBackend::from_transports(vec![
        Box::new(coord0) as Box<dyn Transport>,
        Box::new(coord1) as Box<dyn Transport>,
    ]);
    let outcome = planner().run_with(&backend).expect("valid config");

    assert_eq!(
        outcome, reference,
        "a mid-round shard crash must not change a number"
    );
    assert_eq!(
        serde_json::to_string(&outcome.estimate).unwrap(),
        serde_json::to_string(&reference.estimate).unwrap(),
        "byte-identical serialized splitting estimate across the crash"
    );

    let faults = backend.take_faults();
    let requeued: usize = faults
        .iter()
        .filter_map(|f| match f {
            ShardFault::ShardLost {
                shard: 0, requeued, ..
            } => Some(*requeued),
            _ => None,
        })
        .sum();
    assert!(requeued > 0, "the dead shard left work behind: {faults:?}");

    let usage = backend.usage();
    assert!(usage[0].lost);
    assert_eq!(usage[0].jobs_completed, 2, "only the pre-crash chunk");
    let completed: usize = usage.iter().map(|u| u.jobs_completed).sum();
    assert_eq!(
        completed, outcome.estimate.total_roots,
        "work conservation: every root ran on exactly one shard"
    );
}
