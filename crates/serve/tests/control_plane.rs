//! Control-plane battery: concurrent campaigns of mixed families over
//! one shared shard fleet must be **byte-identical** to serial runs —
//! through fair-share interleaving, cancel + resume-from-checkpoint
//! over the wire, and supervisor restarts after backend faults — and
//! the event log must surface the session incidents the old blocking
//! server silently swallowed.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use uavca_acasx::{AcasConfig, LogicTable};
use uavca_encounter::{EncounterParams, StatisticalEncounterModel, Stratification};
use uavca_serve::{
    channel_pair, recv_msg, send_msg, spawn_in_process, CampaignBackend, CampaignClient,
    CampaignId, CampaignNotice, CampaignRequest, CampaignResult, CampaignServer, CampaignSpec,
    CampaignState, Checkpoint, ControlEvent, ControlPlane, Event, Request, ServeError, SessionEnd,
    ShardedBackend, SplitCampaignRequest, TcpTransport, Transport,
};
use uavca_validation::{
    BatchRunner, CampaignConfig, CampaignOutcome, CampaignPlanner, EncounterRunner, PairSource,
    PairedJob, PairedOutcome, SplitCampaignOutcome, SplitConfig, SplitJob, SplitOutcome,
    SplitPlanner,
};

fn runner() -> EncounterRunner {
    static TABLE: OnceLock<Arc<LogicTable>> = OnceLock::new();
    let table = TABLE.get_or_init(|| Arc::new(LogicTable::solve(&AcasConfig::coarse())));
    EncounterRunner::new(table.clone())
}

/// A conflict-enriched model so tiny splitting budgets still see NMACs.
fn enriched() -> StatisticalEncounterModel {
    StatisticalEncounterModel {
        max_cpa_horizontal_ft: 2500.0,
        max_cpa_vertical_ft: 500.0,
        ..StatisticalEncounterModel::default()
    }
}

/// The byte-identity oracle: serialized JSON, where every float is
/// shortest-round-trip and the undefined markers (`NaN`/`∞`) are exact.
fn json<T: serde::Serialize>(v: &T) -> String {
    serde_json::to_string(v).expect("serializes")
}

fn adaptive_request() -> CampaignRequest {
    CampaignRequest {
        config: CampaignConfig {
            seed: 11,
            pilot_per_stratum: 3,
            round_runs: 16,
            max_rounds: 2,
            target_half_width: f64::INFINITY,
            threads: 1,
        },
        model: Default::default(),
        cpa_bins: 2,
        uniform: false,
    }
}

fn uniform_request() -> CampaignRequest {
    CampaignRequest {
        config: CampaignConfig {
            seed: 23,
            pilot_per_stratum: 2,
            round_runs: 12,
            max_rounds: 2,
            target_half_width: f64::INFINITY,
            threads: 1,
        },
        model: Default::default(),
        cpa_bins: 3,
        uniform: true,
    }
}

fn split_request() -> SplitCampaignRequest {
    SplitCampaignRequest {
        config: SplitConfig {
            seed: 42,
            levels: 2,
            max_branch: 3,
            pilot_roots_per_stratum: 2,
            round_roots: 9,
            max_rounds: 1,
            target_half_width: f64::INFINITY,
            threads: 1,
        },
        model: enriched(),
        cpa_bins: 3,
    }
}

/// The serial (single-campaign, in-process) baseline for a paired spec.
fn paired_reference(request: &CampaignRequest) -> CampaignOutcome {
    let planner = CampaignPlanner::new(runner(), request.config)
        .model(request.model)
        .stratification(Stratification::new(request.cpa_bins));
    if request.uniform {
        planner.run_uniform().expect("valid config")
    } else {
        planner.run().expect("valid config")
    }
}

/// The serial baseline for a splitting spec.
fn split_reference(request: &SplitCampaignRequest) -> SplitCampaignOutcome {
    SplitPlanner::new(runner(), request.config)
        .model(request.model)
        .stratification(Stratification::new(request.cpa_bins))
        .run()
        .expect("valid config")
}

#[test]
fn three_mixed_campaigns_over_one_fleet_match_their_serial_runs() {
    let (client, server) = spawn_in_process(runner(), 2, 1);

    let adaptive = adaptive_request();
    let uniform = uniform_request();
    let splitting = split_request();
    let a = client
        .create_campaign(&CampaignSpec::Paired { request: adaptive }, None)
        .expect("adaptive campaign creates");
    let b = client
        .create_campaign(&CampaignSpec::Paired { request: uniform }, None)
        .expect("uniform campaign creates");
    let c = client
        .create_campaign(&CampaignSpec::Splitting { request: splitting }, None)
        .expect("splitting campaign creates");
    assert!(a != b && b != c, "ids are distinct: {a} {b} {c}");

    // Stream in reverse creation order: whatever completed while we
    // were not subscribed arrives as replay, the rest live — the
    // subscriber cannot tell, and the totals must be exact either way.
    let mut streamed = 0usize;
    let c_result = client
        .stream_campaign(c, |_| streamed += 1)
        .expect("splitting campaign finishes");
    let CampaignResult::Splitting { outcome } = &c_result else {
        panic!("a splitting campaign yields a splitting result, got {c_result:?}");
    };
    assert_eq!(streamed, outcome.rounds.len(), "every round streams once");
    assert_eq!(json(outcome), json(&split_reference(&splitting)));

    for (id, request) in [(b, &uniform), (a, &adaptive)] {
        let mut streamed = 0usize;
        let result = client
            .stream_campaign(id, |_| streamed += 1)
            .expect("paired campaign finishes");
        let CampaignResult::Paired { outcome } = &result else {
            panic!("a paired campaign yields a paired result, got {result:?}");
        };
        assert_eq!(streamed, outcome.rounds.len(), "every round streams once");
        assert_eq!(json(outcome), json(&paired_reference(request)));

        let status = client.campaign_status(id).expect("status answers");
        assert_eq!(status.state, CampaignState::Finished);
        assert_eq!(status.rounds_completed, outcome.rounds.len());
        assert_eq!(status.restarts, 0);
        assert_eq!(status.last_error, None);
    }

    client.shutdown().expect("orderly shutdown");
    assert_eq!(
        server.join().expect("clean session end"),
        SessionEnd::ShutdownRequested
    );
}

#[test]
fn cancel_mid_campaign_then_resume_from_the_checkpoint_is_byte_identical() {
    let server = CampaignServer::new(runner(), ShardedBackend::spawn_local(runner(), 2, 1));
    let log = server.log();
    let server_thread = server.clone();
    let (mut client_end, mut server_end) = channel_pair();
    let handle = std::thread::spawn(move || server_thread.serve(&mut server_end));

    let config = CampaignConfig {
        seed: 7,
        pilot_per_stratum: 4,
        round_runs: 96,
        max_rounds: 6,
        target_half_width: f64::INFINITY,
        threads: 1,
    };
    let request = CampaignRequest {
        config,
        model: Default::default(),
        cpa_bins: 2,
        uniform: false,
    };
    let spec = CampaignSpec::Paired { request };

    // Queue Create and Pause back to back. The readiness loop reads one
    // request per session per sweep and dispatches at most 16 quanta
    // (16 × 32 = 512 paired jobs) in between; the campaign totals
    // 8 + 6×96 = 584 pairs, so the pause lands while it is live — the
    // kill point is mid-flight by construction, not by luck. The first
    // campaign of a session is always id 0 (dense assignment).
    send_msg(
        &mut client_end,
        &Request::Create {
            spec: spec.clone(),
            checkpoint: None,
        },
    )
    .unwrap();
    send_msg(&mut client_end, &Request::Pause { id: CampaignId(0) }).unwrap();

    let id = match recv_msg::<Event>(&mut client_end).unwrap().unwrap() {
        Event::CampaignCreated { id } => id,
        other => panic!("expected CampaignCreated, got {other:?}"),
    };
    assert_eq!(id, CampaignId(0));
    match recv_msg::<Event>(&mut client_end).unwrap().unwrap() {
        Event::CampaignPaused { id: got } => assert_eq!(got, id),
        other => panic!("expected CampaignPaused, got {other:?}"),
    }

    send_msg(&mut client_end, &Request::Status { id }).unwrap();
    let status = match recv_msg::<Event>(&mut client_end).unwrap().unwrap() {
        Event::CampaignStatus { status } => status,
        other => panic!("expected CampaignStatus, got {other:?}"),
    };
    assert_eq!(status.state, CampaignState::Paused);
    assert!(
        status.rounds_completed >= 1 && status.rounds_completed < 7,
        "paused mid-campaign, got {} completed rounds",
        status.rounds_completed
    );

    send_msg(&mut client_end, &Request::Cancel { id }).unwrap();
    let checkpoint = match recv_msg::<Event>(&mut client_end).unwrap().unwrap() {
        Event::CampaignCancelled {
            id: got,
            checkpoint,
        } => {
            assert_eq!(got, id);
            checkpoint
        }
        other => panic!("expected CampaignCancelled, got {other:?}"),
    };
    let Checkpoint::Paired { checkpoint: inner } = &checkpoint else {
        panic!("a paired campaign yields a paired checkpoint");
    };
    assert!(
        !inner.rounds.is_empty(),
        "the kill point is at round ≥ 1, so the checkpoint carries rounds"
    );

    // Resume: a fresh campaign created *from the returned checkpoint*
    // replays the round trail and finishes exactly where the serial
    // run does.
    send_msg(
        &mut client_end,
        &Request::Create {
            spec,
            checkpoint: Some(checkpoint),
        },
    )
    .unwrap();
    let resumed = match recv_msg::<Event>(&mut client_end).unwrap().unwrap() {
        Event::CampaignCreated { id } => id,
        other => panic!("expected CampaignCreated, got {other:?}"),
    };
    send_msg(&mut client_end, &Request::Stream { id: resumed }).unwrap();
    let mut rounds = 0usize;
    let result = loop {
        match recv_msg::<Event>(&mut client_end).unwrap().unwrap() {
            Event::CampaignRound { id: got, .. } => {
                assert_eq!(got, resumed);
                rounds += 1;
            }
            Event::CampaignFinished { id: got, result } => {
                assert_eq!(got, resumed);
                break result;
            }
            other => panic!("expected a stream event, got {other:?}"),
        }
    };
    assert_eq!(rounds, 7, "pilot + 6 rounds, replayed trail included");
    let CampaignResult::Paired { outcome } = &result else {
        panic!("a paired campaign yields a paired result");
    };
    assert_eq!(
        json(outcome),
        json(&paired_reference(&request)),
        "kill + resume must not move a single bit of the estimate"
    );

    send_msg(&mut client_end, &Request::Shutdown).unwrap();
    match recv_msg::<Event>(&mut client_end).unwrap().unwrap() {
        Event::ShutdownAck => {}
        other => panic!("expected ShutdownAck, got {other:?}"),
    }
    assert_eq!(
        handle.join().expect("server thread must not panic"),
        Ok(SessionEnd::ShutdownRequested)
    );

    let events = log.snapshot();
    assert!(
        events
            .iter()
            .any(|e| matches!(e, ControlEvent::CampaignPaused { id: got } if *got == id)),
        "{events:?}"
    );
    assert!(
        events
            .iter()
            .any(|e| matches!(e, ControlEvent::CampaignCancelled { id: got } if *got == id)),
        "{events:?}"
    );
}

#[test]
fn fair_share_interleaves_rounds_and_stays_byte_identical_to_serial() {
    let backend = Arc::new(ShardedBackend::spawn_local(runner(), 2, 1));
    let mut plane = ControlPlane::new(runner(), backend);

    let adaptive = adaptive_request();
    let uniform = uniform_request();
    let splitting = split_request();
    let a = plane
        .create(CampaignSpec::Paired { request: adaptive }, None, true)
        .unwrap();
    let b = plane
        .create(CampaignSpec::Paired { request: uniform }, None, true)
        .unwrap();
    let c = plane
        .create(CampaignSpec::Splitting { request: splitting }, None, true)
        .unwrap();

    let mut order = Vec::new();
    for _ in 0..10_000 {
        if !plane.has_runnable() {
            break;
        }
        for notice in plane.tick() {
            if let CampaignNotice::Round { id, .. } = notice {
                order.push(id);
            }
        }
    }
    assert!(
        !plane.has_runnable(),
        "every campaign must run to completion"
    );
    for id in [a, b, c] {
        assert_eq!(
            plane.status(id).expect("known campaign").state,
            CampaignState::Finished
        );
    }

    // Fair share means the round completions of different campaigns
    // interleave rather than running each campaign to exhaustion.
    let transitions = order.windows(2).filter(|w| w[0] != w[1]).count();
    assert!(
        transitions >= 3,
        "rounds must interleave across campaigns, got {order:?}"
    );

    let CampaignResult::Paired { outcome } = plane.result(a).expect("finished") else {
        panic!("paired result expected");
    };
    assert_eq!(json(outcome), json(&paired_reference(&adaptive_request())));
    let CampaignResult::Paired { outcome } = plane.result(b).expect("finished") else {
        panic!("paired result expected");
    };
    assert_eq!(json(outcome), json(&paired_reference(&uniform_request())));
    let CampaignResult::Splitting { outcome } = plane.result(c).expect("finished") else {
        panic!("splitting result expected");
    };
    assert_eq!(json(outcome), json(&split_reference(&splitting)));
}

/// A backend that reports a typed fleet-loss fault for the first
/// `failures_left` batches, then executes locally — the supervisor's
/// sparring partner.
struct FlakyBackend {
    inner: BatchRunner,
    failures_left: AtomicUsize,
}

impl FlakyBackend {
    fn new(failures: usize) -> Self {
        FlakyBackend {
            inner: BatchRunner::serial(runner()),
            failures_left: AtomicUsize::new(failures),
        }
    }

    fn fault<T>(&self, outstanding: usize) -> Option<Result<T, ServeError>> {
        let left = self.failures_left.load(Ordering::SeqCst);
        if left > 0 {
            self.failures_left.store(left - 1, Ordering::SeqCst);
            Some(Err(ServeError::AllShardsLost { outstanding }))
        } else {
            None
        }
    }
}

impl CampaignBackend for FlakyBackend {
    fn run_pair_jobs(&self, jobs: &[PairedJob]) -> Result<Vec<PairedOutcome>, ServeError> {
        self.fault(jobs.len())
            .unwrap_or_else(|| Ok(self.inner.run_pairs(jobs)))
    }

    fn run_split_jobs(&self, jobs: &[SplitJob]) -> Result<Vec<SplitOutcome>, ServeError> {
        self.fault(jobs.len())
            .unwrap_or_else(|| Ok(self.inner.run_splits(jobs)))
    }
}

#[test]
fn the_supervisor_restarts_a_faulting_campaign_without_moving_a_bit() {
    let mut plane = ControlPlane::new(runner(), Arc::new(FlakyBackend::new(2)));
    let log = plane.log();
    let adaptive = adaptive_request();
    let id = plane
        .create(CampaignSpec::Paired { request: adaptive }, None, true)
        .unwrap();

    let mut restarts_seen = 0usize;
    for _ in 0..10_000 {
        if !plane.has_runnable() {
            break;
        }
        for notice in plane.tick() {
            if matches!(notice, CampaignNotice::Restarted { .. }) {
                restarts_seen += 1;
            }
        }
    }
    let status = plane.status(id).expect("known campaign");
    assert_eq!(status.state, CampaignState::Finished);
    assert_eq!(status.restarts, 2, "both faults consumed restart budget");
    assert_eq!(restarts_seen, 2);
    let CampaignResult::Paired { outcome } = plane.result(id).expect("finished") else {
        panic!("paired result expected");
    };
    assert_eq!(
        json(outcome),
        json(&paired_reference(&adaptive_request())),
        "crash recovery replays the identical jobs — the estimate cannot move"
    );
    // Satellite fix: the event log carries the *typed* fault detail, not
    // a generic "campaign execution panicked".
    let events = log.snapshot();
    assert!(
        events.iter().any(|e| matches!(
            e,
            ControlEvent::CampaignFailed { error, .. } if error.contains("every shard was lost")
        )),
        "{events:?}"
    );
    assert!(events
        .iter()
        .any(|e| matches!(e, ControlEvent::CampaignRestarted { attempt: 2, .. })));
}

#[test]
fn a_persistent_fault_exhausts_the_restart_budget_and_fails_terminally() {
    let mut plane =
        ControlPlane::new(runner(), Arc::new(FlakyBackend::new(usize::MAX))).with_max_restarts(2);
    let adaptive = adaptive_request();
    let id = plane
        .create(CampaignSpec::Paired { request: adaptive }, None, true)
        .unwrap();

    let mut terminal_failures = Vec::new();
    for _ in 0..100 {
        if !plane.has_runnable() {
            break;
        }
        for notice in plane.tick() {
            if let CampaignNotice::Failed { id: got, error } = notice {
                assert_eq!(got, id);
                terminal_failures.push(error);
            }
        }
    }
    assert!(
        !plane.has_runnable(),
        "a dead campaign must stop dispatching"
    );
    assert_eq!(
        terminal_failures.len(),
        1,
        "exactly one terminal failure notice"
    );
    assert!(
        terminal_failures[0].contains("every shard was lost"),
        "the typed fault survives to the terminal notice: {terminal_failures:?}"
    );
    let status = plane.status(id).expect("known campaign");
    assert_eq!(status.state, CampaignState::Failed);
    assert_eq!(status.restarts, 2, "the whole budget was spent");
    assert!(!plane.restart_pending(id));
    assert!(status.last_error.is_some());
}

#[test]
fn a_garbage_request_is_logged_and_the_other_session_keeps_working() {
    let server = CampaignServer::new(runner(), ShardedBackend::spawn_local(runner(), 1, 1));
    let log = server.log();
    let (good_client_end, good_server_end) = channel_pair();
    let (mut bad_client_end, bad_server_end) = channel_pair();
    let server_thread = server.clone();
    let handle = std::thread::spawn(move || {
        server_thread.serve_sessions(vec![Box::new(good_server_end), Box::new(bad_server_end)])
    });

    // Session 1 breaches the protocol and vanishes.
    bad_client_end
        .send("this is not a protocol message")
        .unwrap();
    drop(bad_client_end);

    // Session 0 runs a full legacy campaign, undisturbed.
    let client = CampaignClient::new(good_client_end);
    let request = adaptive_request();
    let outcome = client
        .run_campaign(&request, |_| {})
        .expect("the healthy session is unaffected");
    assert_eq!(json(&outcome), json(&paired_reference(&request)));
    client.shutdown().expect("orderly shutdown");
    handle
        .join()
        .expect("server thread must not panic")
        .expect("the loop survives a bad session");

    let events = log.snapshot();
    assert!(
        events
            .iter()
            .any(|e| matches!(e, ControlEvent::SessionError { session: 1, .. })),
        "the protocol breach must be in the event log, got {events:?}"
    );
    assert!(events
        .iter()
        .any(|e| matches!(e, ControlEvent::SessionOpened { session: 0 })));
    assert!(events
        .iter()
        .any(|e| matches!(e, ControlEvent::SessionOpened { session: 1 })));
}

#[test]
fn the_tcp_server_survives_a_garbage_client_and_logs_the_incident() {
    let server = CampaignServer::new(runner(), ShardedBackend::spawn_local(runner(), 1, 1));
    let log = server.log();
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server_thread = server.clone();
    let handle = std::thread::spawn(move || server_thread.serve_tcp(listener));

    // A client that speaks garbage and hangs up before the reply.
    {
        let mut bad = TcpTransport::connect(addr).unwrap();
        bad.send("garbage over tcp").unwrap();
    }

    // A well-behaved client multiplexed on the same loop.
    let client = CampaignClient::connect_tcp(addr).expect("tcp connect");
    let request = uniform_request();
    let id = client
        .create_campaign(&CampaignSpec::Paired { request }, None)
        .expect("campaign creates over tcp");
    let result = client
        .stream_campaign(id, |_| {})
        .expect("campaign finishes over tcp");
    let CampaignResult::Paired { outcome } = &result else {
        panic!("paired result expected");
    };
    assert_eq!(json(outcome), json(&paired_reference(&uniform_request())));
    client.shutdown().expect("orderly shutdown");
    handle
        .join()
        .expect("server thread must not panic")
        .expect("the accept loop survives a bad client");

    let events = log.snapshot();
    assert!(
        events
            .iter()
            .any(|e| matches!(e, ControlEvent::SessionError { .. })),
        "the garbage line must be in the event log, got {events:?}"
    );
}

#[test]
fn run_splits_round_trips_and_a_split_planner_drives_the_remote_service() {
    let (client, server) = spawn_in_process(runner(), 2, 1);
    let local = BatchRunner::serial(runner());

    // Raw splitting roots through the wire agree with local execution.
    let params = EncounterParams::head_on_template();
    let jobs: Vec<SplitJob> = (0..5)
        .map(|k| SplitJob {
            params,
            seed: 900 + k,
            levels: vec![2000.0, 900.0],
            branches: vec![2, 3],
        })
        .collect();
    let remote = client.run_splits(&jobs).expect("service runs the roots");
    assert_eq!(remote, local.run_splits(&jobs));
    assert_eq!(json(&remote), json(&local.run_splits(&jobs)));

    // And a *local* splitting planner can use the remote service as its
    // SplitSource — same estimate, bit for bit.
    let request = split_request();
    let planner = SplitPlanner::new(runner(), request.config)
        .model(request.model)
        .stratification(Stratification::new(request.cpa_bins));
    let reference = planner.run().expect("valid config");
    let through_service = planner.run_with(&client).expect("valid config");
    assert_eq!(json(&through_service), json(&reference));

    client.shutdown().expect("orderly shutdown");
    assert_eq!(
        server.join().expect("clean session end"),
        SessionEnd::ShutdownRequested
    );
}
