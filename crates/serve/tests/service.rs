//! End-to-end service behaviour: batch requests against the in-process
//! client/server stack agree with a local [`BatchRunner`] seed for seed,
//! degenerate campaign configurations come back as the same typed error
//! the in-process planner returns, and a *local* planner can drive the
//! *remote* service as its [`PairSource`] — the contracts are
//! interchangeable by construction.

use std::sync::{Arc, OnceLock};

use uavca_acasx::{AcasConfig, LogicTable};
use uavca_serve::{spawn_in_process, CampaignRequest, ServeError};
use uavca_validation::{
    BatchRunner, CampaignConfig, CampaignConfigError, CampaignPlanner, EncounterRunner, Equipage,
    SimJob,
};

fn runner() -> EncounterRunner {
    static TABLE: OnceLock<Arc<LogicTable>> = OnceLock::new();
    let table = TABLE.get_or_init(|| Arc::new(LogicTable::solve(&AcasConfig::coarse())));
    EncounterRunner::new(table.clone())
}

#[test]
fn batch_requests_agree_with_local_execution_seed_for_seed() {
    let (client, server) = spawn_in_process(runner(), 2, 1);
    let local = BatchRunner::serial(runner());
    let params = uavca_encounter::EncounterParams::head_on_template();

    let sim_jobs: Vec<SimJob> = (0..9)
        .map(|k| SimJob {
            params,
            seed: 50 + k,
            equipage: if k % 2 == 0 {
                Equipage::Both
            } else {
                Equipage::Neither
            },
        })
        .collect();
    assert_eq!(
        client.run_batch(&sim_jobs).expect("service runs the batch"),
        local.run_batch(&sim_jobs)
    );

    let paired = BatchRunner::repeated_paired_jobs(&params, 7, 99);
    assert_eq!(
        client.run_paired(&paired).expect("service runs the pairs"),
        local.run_paired(&paired)
    );

    client.shutdown().expect("orderly shutdown");
    server.join().expect("clean session end");
}

#[test]
fn degenerate_campaign_config_returns_the_typed_error_over_the_wire() {
    let (client, server) = spawn_in_process(runner(), 1, 1);
    let request = CampaignRequest {
        config: CampaignConfig {
            max_rounds: 0,
            ..CampaignConfig::default()
        },
        model: Default::default(),
        cpa_bins: 2,
        uniform: false,
    };
    let mut rounds_seen = 0usize;
    let err = client
        .run_campaign(&request, |_| rounds_seen += 1)
        .expect_err("a degenerate config must be rejected");
    assert_eq!(err, ServeError::Rejected(CampaignConfigError::ZeroRounds));
    assert_eq!(rounds_seen, 0, "no round may run on a rejected config");
    client.shutdown().expect("the session survives a rejection");
    server.join().expect("clean session end");
}

#[test]
fn uniform_campaigns_stream_rounds_like_adaptive_ones() {
    let (client, server) = spawn_in_process(runner(), 2, 1);
    let config = CampaignConfig {
        seed: 11,
        pilot_per_stratum: 3,
        round_runs: 16,
        max_rounds: 2,
        target_half_width: f64::INFINITY,
        threads: 1,
    };
    let request = CampaignRequest {
        config,
        model: Default::default(),
        cpa_bins: 2,
        uniform: true,
    };
    let mut streamed = Vec::new();
    let outcome = client
        .run_campaign(&request, |round| streamed.push(round.clone()))
        .expect("uniform campaign runs");
    assert_eq!(
        streamed, outcome.rounds,
        "every uniform round is streamed, in order"
    );
    assert_eq!(streamed.len(), config.max_rounds + 1, "pilot + rounds");
    // Same numbers as the in-process uniform baseline.
    let reference = CampaignPlanner::new(runner(), config)
        .stratification(uavca_encounter::Stratification::new(2))
        .run_uniform()
        .expect("valid config");
    assert_eq!(outcome, reference);
    client.shutdown().expect("orderly shutdown");
    server.join().expect("clean session end");
}

#[test]
fn campaign_on_a_dead_fleet_is_a_typed_server_error_and_the_session_survives() {
    use uavca_serve::{
        channel_pair, CampaignClient, CampaignServer, SessionEnd, ShardedBackend, Transport,
    };

    // A fleet that is dead on arrival: the campaign cannot run, but the
    // session must report that as an Event::Error (ServeError::Server on
    // the client) and keep serving — not unwind the server thread.
    let (coordinator_end, shard_end) = channel_pair();
    drop(shard_end);
    let backend =
        ShardedBackend::from_transports(vec![Box::new(coordinator_end) as Box<dyn Transport>]);
    let server = CampaignServer::new(runner(), backend);
    let (client_end, mut server_end) = channel_pair();
    let handle = std::thread::spawn(move || server.serve(&mut server_end));
    let client = CampaignClient::new(client_end);

    let request = CampaignRequest {
        config: CampaignConfig {
            pilot_per_stratum: 2,
            round_runs: 8,
            max_rounds: 1,
            ..CampaignConfig::default()
        },
        model: Default::default(),
        cpa_bins: 2,
        uniform: false,
    };
    let err = client
        .run_campaign(&request, |_| {})
        .expect_err("a dead fleet cannot run a campaign");
    assert!(
        matches!(err, ServeError::Server(_)),
        "fleet loss must surface as a typed server error, got {err:?}"
    );
    // The session is still alive and answers further requests.
    client
        .shutdown()
        .expect("session survives the failed campaign");
    assert_eq!(
        handle.join().expect("server thread must not panic"),
        Ok(SessionEnd::ShutdownRequested)
    );
}

#[test]
fn client_disconnect_mid_campaign_aborts_instead_of_burning_the_budget() {
    use uavca_serve::{
        channel_pair, CampaignServer, Request, ServeError, ShardedBackend, TransportError,
    };
    use uavca_validation::RoundSummary;

    let server = CampaignServer::new(runner(), ShardedBackend::spawn_local(runner(), 1, 1));
    let server_for_thread = server.clone();
    let (mut client_end, mut server_end) = channel_pair();
    let handle = std::thread::spawn(move || server_for_thread.serve(&mut server_end));

    let config = CampaignConfig {
        seed: 3,
        pilot_per_stratum: 3,
        round_runs: 16,
        max_rounds: 3,
        target_half_width: f64::INFINITY,
        threads: 1,
    };
    let request = CampaignRequest {
        config,
        model: Default::default(),
        cpa_bins: 2,
        uniform: false,
    };
    // Raw protocol drive (CampaignClient would block until CampaignDone):
    // submit the campaign, take one streamed round, then vanish — drop
    // the transport like a crashed client.
    uavca_serve::send_msg(&mut client_end, &Request::RunCampaign { request }).unwrap();
    let _first: RoundSummary = match uavca_serve::recv_msg::<uavca_serve::Event>(&mut client_end)
        .unwrap()
        .expect("the pilot round streams")
    {
        uavca_serve::Event::Round { summary } => summary,
        other => panic!("expected a Round event first, got {other:?}"),
    };
    drop(client_end); // the client crashes here
    let session = handle.join().expect("server thread must not panic");
    assert_eq!(
        session,
        Err(ServeError::Transport(TransportError::Closed)),
        "the session ends with the transport error, not a panic"
    );

    // The abort is the point: the fleet must not have executed the full
    // schedule (pilot 3×8 strata + 3×16 rounds = 72 pairs) for a client
    // that was gone after the pilot round.
    let completed: usize = server
        .backend()
        .usage()
        .iter()
        .map(|u| u.jobs_completed)
        .sum();
    assert!(
        completed < 72,
        "campaign must abort after the client vanished; fleet ran {completed}/72 jobs"
    );
}

#[test]
fn a_local_planner_can_drive_the_remote_service_as_its_pair_source() {
    let config = CampaignConfig {
        seed: 5,
        pilot_per_stratum: 4,
        round_runs: 24,
        max_rounds: 2,
        target_half_width: f64::INFINITY,
        threads: 1,
    };
    let planner = CampaignPlanner::new(runner(), config);
    let reference = planner.run().expect("valid config");

    let (client, server) = spawn_in_process(runner(), 2, 1);
    let remote = planner.run_with(&client).expect("valid config");
    assert_eq!(remote, reference);
    assert_eq!(
        serde_json::to_string(&remote.estimate).unwrap(),
        serde_json::to_string(&reference.estimate).unwrap()
    );
    client.shutdown().expect("orderly shutdown");
    server.join().expect("clean session end");
}
