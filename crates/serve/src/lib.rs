//! Sharded campaign service: the batch engine and campaign planner
//! behind a long-running, wire-addressable service.
//!
//! The validation argument of the source paper rests on Monte-Carlo
//! campaigns large enough to bound rare NMAC rates; one process is not
//! where such campaigns end. This crate turns the in-process seams the
//! workspace already has — [`PairSource`]/[`SimSource`] job batches and
//! the [`CampaignPlanner`] round loop — into a service:
//!
//! * **Wire protocol** ([`protocol`]): line-delimited JSON messages, one
//!   message per line. Jobs, outcomes, round summaries and campaign
//!   results are the same serde types the rest of the workspace uses, so
//!   the PR-4 undefined-estimate mappings (`NaN`/`∞` → `null`) hold on
//!   the wire too.
//! * **Transports** ([`transport`]): one [`Transport`] trait with an
//!   in-process channel implementation and a std-TCP implementation —
//!   no external dependencies, consistent with `crates/support`.
//! * **Shard workers** ([`shard`]): each shard hosts a
//!   [`BatchRunner`](uavca_validation::BatchRunner) and serves indexed
//!   job batches; the coordinator-side [`ShardedBackend`] satisfies the
//!   same [`PairSource`]/[`SimSource`] contracts as `BatchRunner`, so a
//!   [`CampaignPlanner`] drives a shard fleet exactly as it drives a
//!   local worker pool.
//! * **Service** ([`server`], [`client`]): a [`CampaignServer`] whose
//!   readiness loop multiplexes many client sessions over one shared
//!   shard fleet — the legacy one-shot dialect
//!   ([`SimJob`](uavca_validation::SimJob)/
//!   [`PairedJob`](uavca_validation::PairedJob) batches,
//!   streamed `RunCampaign`) answered inline, unchanged.
//! * **Control plane** ([`control`]): the campaign lifecycle API —
//!   [`Create`](protocol::Request::Create) (optionally from a
//!   [`Checkpoint`]) / `Status` / `Stream` / `Pause` / `Resume` /
//!   `Cancel` — over a fair-share quantum dispatcher
//!   ([`ControlPlane`]), with a supervisor that restarts faulted
//!   campaigns from their checkpoints and an [`EventLog`] recording
//!   the session and campaign incidents the old blocking server
//!   silently swallowed. Checkpoints are tiny and exact: by the seed
//!   rule below, (config, round index, merged tallies) is a campaign's
//!   full state, so kill-and-resume is byte-identical to never having
//!   stopped.
//!
//! # Bit-identity
//!
//! The service is held to the strongest oracle available: a campaign run
//! through N shards must produce a [`StratifiedEstimate`] **byte-identical**
//! (serialized form compared) to `CampaignPlanner::run` in one process —
//! for any shard count, any shard scheduling order, and across mid-round
//! shard loss. The guarantee composes from three facts:
//!
//! 1. every job's seed derives from `(campaign_seed, stratum, round,
//!    index)` — never from where or when it runs;
//! 2. outcomes are pure functions of their job, and the coordinator
//!    merges them **by job index**, so requeued jobs land in the same
//!    slot with the same bits;
//! 3. per-stratum tallies are integer counts merged by addition
//!    ([`PairTable::merge`](uavca_validation::PairTable::merge)), which
//!    is partition-independent.
//!
//! Faults therefore affect only *bookkeeping* ([`ShardFault`], the
//! [`ShardUsage`](uavca_validation::ShardUsage) table), never the
//! estimate. Enforced by `crates/core/tests/campaign_determinism.rs`
//! (shard × thread matrix) and this crate's fault-injection tests.
//!
//! [`PairSource`]: uavca_validation::PairSource
//! [`SimSource`]: uavca_validation::SimSource
//! [`CampaignPlanner`]: uavca_validation::CampaignPlanner
//! [`StratifiedEstimate`]: uavca_validation::StratifiedEstimate

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod client;
pub mod control;
pub mod protocol;
pub mod server;
pub mod shard;
pub mod transport;

pub use client::{spawn_in_process, CampaignClient, InProcessServer};
pub use control::{
    CampaignBackend, CampaignId, CampaignNotice, CampaignResult, CampaignSpec, CampaignState,
    CampaignStatus, Checkpoint, ControlEvent, ControlPlane, EventLog, RoundEvent,
};
pub use protocol::{
    decode, encode, read_frame, write_frame, CampaignRequest, Event, IndexedMultiJob,
    IndexedPairedJob, IndexedSimJob, IndexedSplitJob, Request, ShardEvent, ShardRequest,
    SplitCampaignRequest,
};
pub use server::{CampaignServer, SessionEnd};
pub use shard::{serve_shard, serve_shard_tcp, ShardFault, ShardedBackend};
pub use transport::{
    channel_pair, recv_msg, send_msg, ChannelTransport, RecvOutcome, TcpTransport, Transport,
    TransportError,
};

use uavca_validation::CampaignConfigError;

/// Any failure of the service stack: transport breakdowns, undecodable
/// messages, server-side rejections, or a shard fleet that lost every
/// member with work outstanding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The underlying transport failed.
    Transport(TransportError),
    /// A received line failed to decode into the expected message type.
    Protocol(String),
    /// The peer closed the connection while a reply was still expected.
    ConnectionClosed,
    /// The server rejected a campaign configuration (typed, so clients
    /// can distinguish config bugs from infrastructure failures).
    Rejected(CampaignConfigError),
    /// The server reported an execution error.
    Server(String),
    /// A syntactically valid message arrived that is wrong for the
    /// current protocol state (e.g. a batch reply to a campaign request).
    Unexpected(String),
    /// Every shard was lost while `outstanding` jobs still had no
    /// result; the batch cannot complete.
    AllShardsLost {
        /// Jobs with no merged outcome when the last shard died.
        outstanding: usize,
    },
}

impl From<TransportError> for ServeError {
    fn from(e: TransportError) -> Self {
        ServeError::Transport(e)
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Transport(e) => write!(f, "transport error: {e}"),
            ServeError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ServeError::ConnectionClosed => {
                write!(f, "connection closed while a reply was still expected")
            }
            ServeError::Rejected(e) => write!(f, "campaign rejected: {e}"),
            ServeError::Server(msg) => write!(f, "server error: {msg}"),
            ServeError::Unexpected(msg) => write!(f, "unexpected message: {msg}"),
            ServeError::AllShardsLost { outstanding } => write!(
                f,
                "every shard was lost with {outstanding} jobs outstanding"
            ),
        }
    }
}

impl std::error::Error for ServeError {}
