//! Message transports: how wire lines move between peers.
//!
//! A [`Transport`] is a bidirectional, blocking pipe of already-framed
//! lines (see [`crate::protocol`] for the framing). Two implementations
//! ship, matching the two deployment shapes:
//!
//! * [`ChannelTransport`] — `std::sync::mpsc` string channels for
//!   in-process shards and servers (zero-copy of the line, no sockets);
//! * [`TcpTransport`] — a std `TcpStream` with line framing, for shards
//!   and clients on other machines.
//!
//! Test rigs implement [`Transport`] too: fault-injection wrappers that
//! drop a peer mid-round or deliver lines out of order / duplicated live
//! in this crate's test suite, which is exactly why the seam is at the
//! line level — every fault a real network can produce is expressible as
//! a line-stream transformation.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::time::Duration;

use serde::{Deserialize, Serialize};

use crate::protocol::{decode, encode};
use crate::ServeError;

/// A transport-layer failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// The peer is gone: channel disconnected or socket closed.
    Closed,
    /// An I/O failure distinct from orderly closure.
    Io(String),
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Closed => write!(f, "peer closed the transport"),
            TransportError::Io(msg) => write!(f, "I/O failure: {msg}"),
        }
    }
}

impl std::error::Error for TransportError {}

/// What one bounded receive attempt observed.
///
/// The third state — [`RecvOutcome::TimedOut`] — is what separates a
/// *silent* peer from a *gone* one: a transport can only report it from
/// [`Transport::recv_deadline`], and the sharded coordinator turns it
/// into a typed timeout fault instead of blocking forever on a hung
/// shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecvOutcome {
    /// A complete framed line arrived.
    Line(String),
    /// The peer closed cleanly (EOF at a frame boundary, channel peer
    /// dropped).
    Closed,
    /// No complete line arrived within the deadline. The transport
    /// remains usable: any partial frame already received is retained
    /// and the next receive resumes it.
    TimedOut,
}

/// A bidirectional, blocking pipe of framed wire lines.
///
/// `recv` blocks until a line arrives; `Ok(None)` reports an *orderly*
/// close (the peer finished and hung up), while `Err(Closed)` reports a
/// broken pipe. The sharded coordinator treats both as shard loss — a
/// shard that closed with work outstanding gets its jobs requeued either
/// way.
pub trait Transport: Send {
    /// Sends one framed line.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError`] when the peer is gone or I/O fails.
    fn send(&mut self, line: &str) -> Result<(), TransportError>;

    /// Blocks for the next line; `Ok(None)` means the peer closed
    /// cleanly.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError`] on broken pipes or I/O failure.
    fn recv(&mut self) -> Result<Option<String>, TransportError>;

    /// Waits for the next line at most `timeout`; a transport that can
    /// bound its wait reports [`RecvOutcome::TimedOut`] when the
    /// deadline passes with no complete line.
    ///
    /// The default implementation cannot bound the wait — it delegates
    /// to the blocking [`Transport::recv`] and never times out. Both
    /// shipped transports override it; a rig that deliberately hangs
    /// should too, or a timeout-armed coordinator will block on it.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError`] on broken pipes or I/O failure.
    fn recv_deadline(&mut self, timeout: Duration) -> Result<RecvOutcome, TransportError> {
        let _ = timeout;
        Ok(match self.recv()? {
            Some(line) => RecvOutcome::Line(line),
            None => RecvOutcome::Closed,
        })
    }
}

/// A mutable borrow of a transport is itself a transport — what lets
/// the multiplexed server loop adopt a caller-owned transport (the
/// [`crate::CampaignServer::serve`] entry point) as one of its
/// sessions without taking ownership.
impl<T: Transport + ?Sized> Transport for &mut T {
    fn send(&mut self, line: &str) -> Result<(), TransportError> {
        (**self).send(line)
    }

    fn recv(&mut self) -> Result<Option<String>, TransportError> {
        (**self).recv()
    }

    fn recv_deadline(&mut self, timeout: Duration) -> Result<RecvOutcome, TransportError> {
        (**self).recv_deadline(timeout)
    }
}

/// Sends a typed message over any transport.
///
/// # Errors
///
/// Propagates the transport failure.
pub fn send_msg<T: Serialize>(
    transport: &mut dyn Transport,
    msg: &T,
) -> Result<(), TransportError> {
    transport.send(&encode(msg))
}

/// Receives and decodes a typed message; `Ok(None)` means the peer
/// closed cleanly.
///
/// # Errors
///
/// Returns [`ServeError::Transport`] on transport failure and
/// [`ServeError::Protocol`] when the line does not decode as `T`.
pub fn recv_msg<T: Deserialize>(transport: &mut dyn Transport) -> Result<Option<T>, ServeError> {
    match transport.recv() {
        Ok(Some(line)) => decode(&line).map(Some),
        Ok(None) => Ok(None),
        Err(e) => Err(ServeError::Transport(e)),
    }
}

/// In-process transport over a pair of `mpsc` string channels.
#[derive(Debug)]
pub struct ChannelTransport {
    tx: Sender<String>,
    rx: Receiver<String>,
}

/// Creates the two connected ends of an in-process transport.
pub fn channel_pair() -> (ChannelTransport, ChannelTransport) {
    let (a_tx, b_rx) = channel();
    let (b_tx, a_rx) = channel();
    (
        ChannelTransport { tx: a_tx, rx: a_rx },
        ChannelTransport { tx: b_tx, rx: b_rx },
    )
}

impl Transport for ChannelTransport {
    fn send(&mut self, line: &str) -> Result<(), TransportError> {
        self.tx
            .send(line.to_string())
            .map_err(|_| TransportError::Closed)
    }

    fn recv(&mut self) -> Result<Option<String>, TransportError> {
        // A disconnected sender is an orderly close for channels: the
        // peer end was dropped, which is how channel peers hang up.
        Ok(self.rx.recv().ok())
    }

    fn recv_deadline(&mut self, timeout: Duration) -> Result<RecvOutcome, TransportError> {
        Ok(match self.rx.recv_timeout(timeout) {
            Ok(line) => RecvOutcome::Line(line),
            Err(RecvTimeoutError::Timeout) => RecvOutcome::TimedOut,
            Err(RecvTimeoutError::Disconnected) => RecvOutcome::Closed,
        })
    }
}

/// TCP transport: line-framed messages over a std `TcpStream`.
///
/// `TCP_NODELAY` is enabled — the protocol is request/streamed-reply and
/// every message is latency-sensitive relative to its size.
#[derive(Debug)]
pub struct TcpTransport {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    /// Bytes of a frame whose newline has not arrived yet. Lives on the
    /// transport, not the read call, so a deadline that expires
    /// mid-frame loses nothing: the next receive resumes exactly where
    /// the timed-out one stopped.
    pending: Vec<u8>,
}

impl TcpTransport {
    /// Connects to a listening peer.
    ///
    /// # Errors
    ///
    /// Returns the connection error.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Self> {
        Self::from_stream(TcpStream::connect(addr)?)
    }

    /// Wraps an accepted stream.
    ///
    /// # Errors
    ///
    /// Returns the error of cloning the stream handle.
    pub fn from_stream(stream: TcpStream) -> std::io::Result<Self> {
        stream.set_nodelay(true).ok();
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Self {
            reader,
            writer: stream,
            pending: Vec::new(),
        })
    }

    /// Arms or disarms the socket read timeout around one receive.
    fn set_read_timeout(&mut self, timeout: Option<Duration>) -> Result<(), TransportError> {
        // `set_read_timeout(Some(0))` is an invalid argument; the
        // coordinator's floor is milliseconds anyway, so clamp.
        let timeout = timeout.map(|t| t.max(Duration::from_millis(1)));
        self.reader
            .get_ref()
            .set_read_timeout(timeout)
            .map_err(|e| TransportError::Io(e.to_string()))
    }
}

/// The one line-framing writer: `line` + `\n` onto a byte stream. Both
/// [`TcpTransport::send`] and the typed [`crate::protocol::write_frame`]
/// go through here, so the framing cannot diverge between them.
pub(crate) fn write_framed_line<W: Write>(
    writer: &mut W,
    line: &str,
) -> Result<(), TransportError> {
    let mut framed = String::with_capacity(line.len() + 1);
    framed.push_str(line);
    framed.push('\n');
    writer
        .write_all(framed.as_bytes())
        .and_then(|()| writer.flush())
        .map_err(|e| match e.kind() {
            std::io::ErrorKind::BrokenPipe | std::io::ErrorKind::ConnectionReset => {
                TransportError::Closed
            }
            _ => TransportError::Io(e.to_string()),
        })
}

/// Hard cap on one frame's bytes: far above any legitimate message (a
/// 100 000-job round assignment is ~50 MiB), but it bounds what a peer
/// that never sends a newline can make this side buffer — an accepted
/// TCP connection must not be able to grow the coordinator's memory
/// without limit.
const MAX_FRAME_BYTES: usize = 256 << 20;

/// The one line-framing reader: `Ok(None)` on EOF at a frame boundary,
/// [`TransportError::Closed`] on EOF mid-frame (the peer died while
/// sending), [`TransportError::Io`] past the frame-size cap. Shared by
/// [`TcpTransport::recv`] and the typed [`crate::protocol::read_frame`].
pub(crate) fn read_framed_line<R: BufRead>(
    reader: &mut R,
) -> Result<Option<String>, TransportError> {
    read_framed_line_capped(reader, MAX_FRAME_BYTES)
}

fn read_framed_line_capped<R: BufRead>(
    reader: &mut R,
    max_bytes: usize,
) -> Result<Option<String>, TransportError> {
    let mut pending = Vec::new();
    match read_framed_line_pending(reader, &mut pending, max_bytes)? {
        RecvOutcome::Line(line) => Ok(Some(line)),
        RecvOutcome::Closed => Ok(None),
        // Only a reader armed with a read timeout produces this; a
        // blocking reader that surfaces `WouldBlock` anyway has lost the
        // partial frame held in the local `pending`, which is an I/O
        // failure, not a retryable wait.
        RecvOutcome::TimedOut => Err(TransportError::Io(
            "read timed out on a transport without timeout support".to_string(),
        )),
    }
}

/// The resumable frame reader behind both receive paths: accumulates
/// into `pending` until a newline, so a timeout (`WouldBlock` /
/// `TimedOut` from an armed socket) can return without losing the bytes
/// of a frame caught mid-flight.
fn read_framed_line_pending<R: BufRead>(
    reader: &mut R,
    pending: &mut Vec<u8>,
    max_bytes: usize,
) -> Result<RecvOutcome, TransportError> {
    loop {
        let (newline_at, available) = {
            let chunk = match reader.fill_buf() {
                Ok(chunk) => chunk,
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    return Ok(RecvOutcome::TimedOut);
                }
                Err(e) => return Err(TransportError::Io(e.to_string())),
            };
            if chunk.is_empty() {
                if pending.is_empty() {
                    return Ok(RecvOutcome::Closed);
                }
                return Err(TransportError::Closed);
            }
            let pos = chunk.iter().position(|&b| b == b'\n');
            let take = pos.map_or(chunk.len(), |p| p);
            pending.extend_from_slice(&chunk[..take]);
            (pos, chunk.len())
        };
        match newline_at {
            Some(pos) => {
                reader.consume(pos + 1);
                let line = String::from_utf8(std::mem::take(pending))
                    .map_err(|_| TransportError::Io("frame is not valid UTF-8".to_string()))?;
                return Ok(RecvOutcome::Line(line));
            }
            None => {
                reader.consume(available);
                if pending.len() > max_bytes {
                    return Err(TransportError::Io(format!(
                        "frame exceeds the {max_bytes}-byte cap without a newline"
                    )));
                }
            }
        }
    }
}

impl Transport for TcpTransport {
    fn send(&mut self, line: &str) -> Result<(), TransportError> {
        write_framed_line(&mut self.writer, line)
    }

    fn recv(&mut self) -> Result<Option<String>, TransportError> {
        // Disarm any timeout a previous `recv_deadline` left on the
        // socket, then resume whatever partial frame it retained.
        self.set_read_timeout(None)?;
        match read_framed_line_pending(&mut self.reader, &mut self.pending, MAX_FRAME_BYTES)? {
            RecvOutcome::Line(line) => Ok(Some(line)),
            RecvOutcome::Closed => Ok(None),
            RecvOutcome::TimedOut => Err(TransportError::Io(
                "socket timed out with no timeout armed".to_string(),
            )),
        }
    }

    fn recv_deadline(&mut self, timeout: Duration) -> Result<RecvOutcome, TransportError> {
        // The socket timeout bounds each read, not the whole receive;
        // for the coordinator's loss detector — "has this shard said
        // anything lately" — a per-read bound is exactly the question.
        self.set_read_timeout(Some(timeout))?;
        read_framed_line_pending(&mut self.reader, &mut self.pending, MAX_FRAME_BYTES)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_pair_is_bidirectional() {
        let (mut a, mut b) = channel_pair();
        a.send("ping").unwrap();
        assert_eq!(b.recv().unwrap().as_deref(), Some("ping"));
        b.send("pong").unwrap();
        assert_eq!(a.recv().unwrap().as_deref(), Some("pong"));
    }

    #[test]
    fn dropping_one_end_reads_as_orderly_close() {
        let (mut a, b) = channel_pair();
        drop(b);
        assert_eq!(a.recv().unwrap(), None);
        assert_eq!(a.send("into the void"), Err(TransportError::Closed));
    }

    #[test]
    fn oversized_frames_are_rejected_instead_of_buffered_forever() {
        // A peer that streams bytes with no newline must hit the cap,
        // not grow this side's buffer without bound.
        let endless = vec![b'x'; 1024];
        let mut reader = std::io::BufReader::with_capacity(64, endless.as_slice());
        let err = read_framed_line_capped(&mut reader, 100).unwrap_err();
        assert!(matches!(err, TransportError::Io(_)), "{err}");
        // A frame within the cap still reads normally.
        let mut ok = std::io::BufReader::with_capacity(8, "hello\nrest".as_bytes());
        assert_eq!(
            read_framed_line_capped(&mut ok, 100).unwrap().as_deref(),
            Some("hello")
        );
    }

    #[test]
    fn channel_recv_deadline_times_out_then_delivers() {
        let (mut a, mut b) = channel_pair();
        assert_eq!(
            a.recv_deadline(Duration::from_millis(10)).unwrap(),
            RecvOutcome::TimedOut
        );
        // The transport stays usable after a timeout.
        b.send("late").unwrap();
        assert_eq!(
            a.recv_deadline(Duration::from_secs(5)).unwrap(),
            RecvOutcome::Line("late".to_string())
        );
        drop(b);
        assert_eq!(
            a.recv_deadline(Duration::from_millis(10)).unwrap(),
            RecvOutcome::Closed
        );
    }

    #[test]
    fn tcp_recv_deadline_preserves_partial_frames_across_timeouts() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let (go_tx, go_rx) = channel::<()>();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            // Half a frame, then silence until the client has timed out.
            stream.write_all(b"hel").unwrap();
            stream.flush().unwrap();
            go_rx.recv().unwrap();
            stream.write_all(b"lo\n").unwrap();
            stream.flush().unwrap();
        });
        let mut client = TcpTransport::connect(addr).unwrap();
        assert_eq!(
            client.recv_deadline(Duration::from_millis(50)).unwrap(),
            RecvOutcome::TimedOut
        );
        go_tx.send(()).unwrap();
        // The blocking receive resumes the frame the timeout caught
        // mid-flight: nothing of "hel" was lost.
        assert_eq!(client.recv().unwrap().as_deref(), Some("hello"));
        server.join().unwrap();
    }

    #[test]
    fn tcp_round_trip_on_loopback() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut t = TcpTransport::from_stream(stream).unwrap();
            let line = t.recv().unwrap().unwrap();
            t.send(&format!("echo:{line}")).unwrap();
            // Returning drops the stream: the client sees a clean close.
        });
        let mut client = TcpTransport::connect(addr).unwrap();
        client.send("hello").unwrap();
        assert_eq!(client.recv().unwrap().as_deref(), Some("echo:hello"));
        assert_eq!(client.recv().unwrap(), None);
        server.join().unwrap();
    }
}
