//! The campaign client: drives a [`CampaignServer`] over any transport,
//! and satisfies the same job-level contracts as a local
//! [`BatchRunner`](uavca_validation::BatchRunner) — a remote fleet
//! behind [`PairSource`]/[`SimSource`], indistinguishable to consumers.

use std::sync::Mutex;

use uavca_sim::EncounterOutcome;
use uavca_validation::{
    CampaignOutcome, EncounterRunner, PairSource, PairedJob, PairedOutcome, RoundSummary, SimJob,
    SimSource,
};

use crate::protocol::{CampaignRequest, Event, Request};
use crate::transport::{recv_msg, send_msg, TcpTransport, Transport};
use crate::{channel_pair, CampaignServer, ServeError, SessionEnd, ShardedBackend};

/// A connection to a [`CampaignServer`].
///
/// Interior-mutable (the transport sits behind a mutex) so the client
/// can serve the shared-reference [`PairSource`]/[`SimSource`] contracts;
/// requests are serialized per connection either way, matching the
/// server's one-session loop.
pub struct CampaignClient {
    transport: Mutex<Box<dyn Transport>>,
}

impl std::fmt::Debug for CampaignClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CampaignClient").finish_non_exhaustive()
    }
}

impl CampaignClient {
    /// A client over an already-connected transport.
    pub fn new(transport: impl Transport + 'static) -> Self {
        Self {
            transport: Mutex::new(Box::new(transport)),
        }
    }

    /// Connects to a TCP server (one serving
    /// [`CampaignServer::serve_tcp`]).
    ///
    /// # Errors
    ///
    /// Returns the connection error.
    pub fn connect_tcp<A: std::net::ToSocketAddrs>(addr: A) -> std::io::Result<Self> {
        Ok(Self::new(TcpTransport::connect(addr)?))
    }

    /// Runs a batch of single simulation jobs on the service; outcomes
    /// in job order.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError`] on transport/protocol failure or a
    /// server-side execution error.
    pub fn run_batch(&self, jobs: &[SimJob]) -> Result<Vec<EncounterOutcome>, ServeError> {
        let mut transport = self.transport.lock().expect("client transport lock");
        send_msg(
            &mut **transport,
            &Request::RunBatch {
                jobs: jobs.to_vec(),
            },
        )?;
        match Self::expect_event(&mut **transport)? {
            Event::BatchDone { outcomes } => Ok(outcomes),
            other => Err(Self::fail(other)),
        }
    }

    /// Runs a batch of paired jobs on the service; outcomes in job
    /// order.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError`] on transport/protocol failure or a
    /// server-side execution error.
    pub fn run_paired(&self, jobs: &[PairedJob]) -> Result<Vec<PairedOutcome>, ServeError> {
        let mut transport = self.transport.lock().expect("client transport lock");
        send_msg(
            &mut **transport,
            &Request::RunPaired {
                jobs: jobs.to_vec(),
            },
        )?;
        match Self::expect_event(&mut **transport)? {
            Event::PairedDone { outcomes } => Ok(outcomes),
            other => Err(Self::fail(other)),
        }
    }

    /// Runs a full campaign on the service, invoking `on_round` with
    /// each [`RoundSummary`] as the server streams it, and returning the
    /// final outcome.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Rejected`] for degenerate configurations
    /// (typed, same error the in-process planner returns) and
    /// transport/protocol failures otherwise.
    pub fn run_campaign(
        &self,
        request: &CampaignRequest,
        mut on_round: impl FnMut(&RoundSummary),
    ) -> Result<CampaignOutcome, ServeError> {
        let mut transport = self.transport.lock().expect("client transport lock");
        send_msg(
            &mut **transport,
            &Request::RunCampaign { request: *request },
        )?;
        loop {
            match Self::expect_event(&mut **transport)? {
                Event::Round { summary } => on_round(&summary),
                Event::CampaignDone { outcome } => return Ok(outcome),
                Event::Rejected { error } => return Err(ServeError::Rejected(error)),
                other => return Err(Self::fail(other)),
            }
        }
    }

    /// Asks the server to shut down and waits for the acknowledgement.
    ///
    /// # Errors
    ///
    /// Returns transport/protocol failures; the server may already be
    /// gone by the time the acknowledgement would arrive.
    pub fn shutdown(self) -> Result<(), ServeError> {
        let mut transport = self.transport.lock().expect("client transport lock");
        send_msg(&mut **transport, &Request::Shutdown)?;
        match Self::expect_event(&mut **transport)? {
            Event::ShutdownAck => Ok(()),
            other => Err(Self::fail(other)),
        }
    }

    fn expect_event(transport: &mut dyn Transport) -> Result<Event, ServeError> {
        recv_msg::<Event>(transport)?.ok_or(ServeError::ConnectionClosed)
    }

    fn fail(event: Event) -> ServeError {
        match event {
            Event::Error { message } => ServeError::Server(message),
            other => ServeError::Unexpected(format!("{other:?}")),
        }
    }
}

impl PairSource for CampaignClient {
    /// # Panics
    ///
    /// The [`PairSource`] contract is infallible; this panics on
    /// service failure. Use [`CampaignClient::run_paired`] to handle
    /// failures as values.
    fn run_pairs(&self, jobs: &[PairedJob]) -> Vec<PairedOutcome> {
        self.run_paired(jobs).expect("campaign service failed")
    }
}

impl SimSource for CampaignClient {
    /// # Panics
    ///
    /// Panics on service failure; see [`CampaignClient::run_batch`].
    fn run_sims(&self, jobs: &[SimJob]) -> Vec<EncounterOutcome> {
        self.run_batch(jobs).expect("campaign service failed")
    }
}

/// A handle on an in-process server thread; join it after the client's
/// [`CampaignClient::shutdown`] to observe the session's end state.
#[derive(Debug)]
pub struct InProcessServer {
    handle: std::thread::JoinHandle<Result<SessionEnd, ServeError>>,
}

impl InProcessServer {
    /// Waits for the server thread to finish its session.
    ///
    /// # Errors
    ///
    /// Propagates the session's [`ServeError`], if any.
    ///
    /// # Panics
    ///
    /// Panics if the server thread itself panicked.
    pub fn join(self) -> Result<SessionEnd, ServeError> {
        self.handle.join().expect("campaign server thread panicked")
    }
}

/// Spawns a complete in-process service — `shards` local shard workers
/// with `threads_per_shard` executor threads each, a [`CampaignServer`]
/// thread over a channel transport — and returns the connected client.
///
/// The whole stack (protocol, framing, sharded merge) runs exactly as it
/// would across machines; only the transports are channels. This is the
/// deployment the determinism matrix and the example exercise.
pub fn spawn_in_process(
    runner: EncounterRunner,
    shards: usize,
    threads_per_shard: usize,
) -> (CampaignClient, InProcessServer) {
    let backend = ShardedBackend::spawn_local(runner.clone(), shards, threads_per_shard);
    let server = CampaignServer::new(runner, backend);
    let (client_end, mut server_end) = channel_pair();
    let handle = std::thread::Builder::new()
        .name("uavca-campaign-server".to_string())
        .spawn(move || server.serve(&mut server_end))
        .expect("spawning the campaign server thread");
    (CampaignClient::new(client_end), InProcessServer { handle })
}
