//! The campaign client: drives a [`CampaignServer`] over any transport,
//! and satisfies the same job-level contracts as a local
//! [`BatchRunner`](uavca_validation::BatchRunner) — a remote fleet
//! behind [`PairSource`]/[`SimSource`], indistinguishable to consumers.

use std::collections::VecDeque;
use std::sync::Mutex;

use uavca_sim::EncounterOutcome;
use uavca_validation::{
    CampaignOutcome, EncounterRunner, PairSource, PairedJob, PairedOutcome, RoundSummary, SimJob,
    SimSource, SplitJob, SplitOutcome, SplitSource,
};

use crate::control::{
    CampaignId, CampaignResult, CampaignSpec, CampaignStatus, Checkpoint, RoundEvent,
};
use crate::protocol::{CampaignRequest, Event, Request};
use crate::transport::{recv_msg, send_msg, TcpTransport, Transport};
use crate::{channel_pair, CampaignServer, ServeError, SessionEnd, ShardedBackend};

/// A connection to a [`CampaignServer`].
///
/// Interior-mutable (the transport sits behind a mutex) so the client
/// can serve the shared-reference [`PairSource`]/[`SimSource`]/
/// [`SplitSource`] contracts; requests are serialized per connection
/// either way.
///
/// A session subscribed to campaign streams can receive stream events
/// interleaved with request replies (the server pushes rounds as they
/// complete); the client buffers out-of-turn stream events so every
/// request method stays a clean call-and-reply.
pub struct CampaignClient {
    transport: Mutex<Box<dyn Transport>>,
    pending: Mutex<VecDeque<Event>>,
}

impl std::fmt::Debug for CampaignClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CampaignClient").finish_non_exhaustive()
    }
}

impl CampaignClient {
    /// A client over an already-connected transport.
    pub fn new(transport: impl Transport + 'static) -> Self {
        Self {
            transport: Mutex::new(Box::new(transport)),
            pending: Mutex::new(VecDeque::new()),
        }
    }

    /// Connects to a TCP server (one serving
    /// [`CampaignServer::serve_tcp`]).
    ///
    /// # Errors
    ///
    /// Returns the connection error.
    pub fn connect_tcp<A: std::net::ToSocketAddrs>(addr: A) -> std::io::Result<Self> {
        Ok(Self::new(TcpTransport::connect(addr)?))
    }

    /// Runs a batch of single simulation jobs on the service; outcomes
    /// in job order.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError`] on transport/protocol failure or a
    /// server-side execution error.
    pub fn run_batch(&self, jobs: &[SimJob]) -> Result<Vec<EncounterOutcome>, ServeError> {
        // audit: allow(panic_policy, transport lock poisoning propagates a prior panic)
        let mut transport = self.transport.lock().expect("client transport lock");
        send_msg(
            &mut **transport,
            &Request::RunBatch {
                jobs: jobs.to_vec(),
            },
        )?;
        match Self::expect_event(&mut **transport)? {
            Event::BatchDone { outcomes } => Ok(outcomes),
            other => Err(Self::fail(other)),
        }
    }

    /// Runs a batch of paired jobs on the service; outcomes in job
    /// order.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError`] on transport/protocol failure or a
    /// server-side execution error.
    pub fn run_paired(&self, jobs: &[PairedJob]) -> Result<Vec<PairedOutcome>, ServeError> {
        // audit: allow(panic_policy, transport lock poisoning propagates a prior panic)
        let mut transport = self.transport.lock().expect("client transport lock");
        send_msg(
            &mut **transport,
            &Request::RunPaired {
                jobs: jobs.to_vec(),
            },
        )?;
        match Self::expect_event(&mut **transport)? {
            Event::PairedDone { outcomes } => Ok(outcomes),
            other => Err(Self::fail(other)),
        }
    }

    /// Runs a full campaign on the service, invoking `on_round` with
    /// each [`RoundSummary`] as the server streams it, and returning the
    /// final outcome.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Rejected`] for degenerate configurations
    /// (typed, same error the in-process planner returns) and
    /// transport/protocol failures otherwise.
    pub fn run_campaign(
        &self,
        request: &CampaignRequest,
        mut on_round: impl FnMut(&RoundSummary),
    ) -> Result<CampaignOutcome, ServeError> {
        // audit: allow(panic_policy, transport lock poisoning propagates a prior panic)
        let mut transport = self.transport.lock().expect("client transport lock");
        send_msg(
            &mut **transport,
            &Request::RunCampaign { request: *request },
        )?;
        loop {
            match Self::expect_event(&mut **transport)? {
                Event::Round { summary } => on_round(&summary),
                Event::CampaignDone { outcome } => return Ok(outcome),
                Event::Rejected { error } => return Err(ServeError::Rejected(error)),
                other if Self::is_stream_event(&other) => self.buffer(other),
                other => return Err(Self::fail(other)),
            }
        }
    }

    /// Runs a batch of multilevel-splitting roots on the service;
    /// outcomes in job order.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError`] on transport/protocol failure or a
    /// server-side execution error.
    pub fn run_splits(&self, jobs: &[SplitJob]) -> Result<Vec<SplitOutcome>, ServeError> {
        self.request_reply(
            &Request::RunSplits {
                jobs: jobs.to_vec(),
            },
            |event| match event {
                Event::SplitsDone { outcomes } => Ok(outcomes),
                other => Err(Box::new(other)),
            },
        )
    }

    /// Creates a campaign on the server's control plane, optionally
    /// resuming from a checkpoint, and returns its id.
    ///
    /// The campaign runs server-side whether or not anyone streams it;
    /// follow with [`CampaignClient::stream_campaign`],
    /// [`CampaignClient::campaign_status`] and friends.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Server`] when the server rejects the spec
    /// or checkpoint, and transport/protocol failures otherwise.
    pub fn create_campaign(
        &self,
        spec: &CampaignSpec,
        checkpoint: Option<&Checkpoint>,
    ) -> Result<CampaignId, ServeError> {
        self.request_reply(
            &Request::Create {
                spec: spec.clone(),
                checkpoint: checkpoint.cloned(),
            },
            |event| match event {
                Event::CampaignCreated { id } => Ok(id),
                other => Err(Box::new(other)),
            },
        )
    }

    /// Asks for a campaign's current status (state, progress, restart
    /// count, and its exact resume checkpoint).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Server`] for unknown campaigns, and
    /// transport/protocol failures otherwise.
    pub fn campaign_status(&self, id: CampaignId) -> Result<CampaignStatus, ServeError> {
        self.request_reply(&Request::Status { id }, |event| match event {
            Event::CampaignStatus { status } if status.id == id => Ok(status),
            other => Err(Box::new(other)),
        })
    }

    /// Holds a running campaign.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Server`] when the campaign is unknown or
    /// not running, and transport/protocol failures otherwise.
    pub fn pause_campaign(&self, id: CampaignId) -> Result<(), ServeError> {
        self.request_reply(&Request::Pause { id }, |event| match event {
            Event::CampaignPaused { id: got } if got == id => Ok(()),
            other => Err(Box::new(other)),
        })
    }

    /// Releases a paused campaign (or manually revives a failed one).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Server`] when the campaign is unknown or
    /// not resumable, and transport/protocol failures otherwise.
    pub fn resume_campaign(&self, id: CampaignId) -> Result<(), ServeError> {
        self.request_reply(&Request::Resume { id }, |event| match event {
            Event::CampaignResumed { id: got } if got == id => Ok(()),
            other => Err(Box::new(other)),
        })
    }

    /// Cancels a campaign, returning the exact checkpoint a later
    /// [`CampaignClient::create_campaign`] can resume from.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Server`] when the campaign is unknown or
    /// already terminal, and transport/protocol failures otherwise.
    pub fn cancel_campaign(&self, id: CampaignId) -> Result<Checkpoint, ServeError> {
        self.request_reply(&Request::Cancel { id }, |event| match event {
            Event::CampaignCancelled {
                id: got,
                checkpoint,
            } if got == id => Ok(checkpoint),
            other => Err(Box::new(other)),
        })
    }

    /// Subscribes to a campaign: the server replays every completed
    /// round, then streams new ones into `on_round` until the campaign
    /// reaches a terminal state.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Server`] when the campaign is unknown,
    /// failed, or cancelled (the failure message carries the typed
    /// fault detail), and transport/protocol failures otherwise.
    pub fn stream_campaign(
        &self,
        id: CampaignId,
        mut on_round: impl FnMut(&RoundEvent),
    ) -> Result<CampaignResult, ServeError> {
        // audit: allow(panic_policy, transport lock poisoning propagates a prior panic)
        let mut transport = self.transport.lock().expect("client transport lock");
        // The subscription replays the campaign's full round trail, so
        // any stream events buffered from a prior subscription to the
        // same campaign are superseded.
        self.pending
            .lock()
            // audit: allow(panic_policy, event buffer lock poisoning propagates a prior panic)
            .expect("client event buffer lock")
            .retain(|e| Self::stream_campaign_id(e) != Some(id));
        send_msg(&mut **transport, &Request::Stream { id })?;
        loop {
            match Self::expect_event(&mut **transport)? {
                Event::CampaignRound { id: got, round } if got == id => on_round(&round),
                Event::CampaignFinished { id: got, result } if got == id => return Ok(result),
                Event::CampaignFailed { id: got, message } if got == id => {
                    return Err(ServeError::Server(message));
                }
                Event::CampaignCancelled { id: got, .. } if got == id => {
                    return Err(ServeError::Server(format!("{got} was cancelled")));
                }
                other if Self::is_stream_event(&other) => self.buffer(other),
                other => return Err(Self::fail(other)),
            }
        }
    }

    /// Asks the server to shut down and waits for the acknowledgement.
    ///
    /// # Errors
    ///
    /// Returns transport/protocol failures; the server may already be
    /// gone by the time the acknowledgement would arrive.
    pub fn shutdown(self) -> Result<(), ServeError> {
        // audit: allow(panic_policy, transport lock poisoning propagates a prior panic)
        let mut transport = self.transport.lock().expect("client transport lock");
        send_msg(&mut **transport, &Request::Shutdown)?;
        loop {
            match Self::expect_event(&mut **transport)? {
                Event::ShutdownAck => return Ok(()),
                other if Self::is_stream_event(&other) => {} // shutting down anyway
                other => return Err(Self::fail(other)),
            }
        }
    }

    /// One request, one matched reply; out-of-turn stream events are
    /// buffered instead of failing the exchange. Unmatched events come
    /// back boxed so the closures' `Err` variant stays pointer-sized.
    fn request_reply<R>(
        &self,
        request: &Request,
        mut matcher: impl FnMut(Event) -> Result<R, Box<Event>>,
    ) -> Result<R, ServeError> {
        // audit: allow(panic_policy, transport lock poisoning propagates a prior panic)
        let mut transport = self.transport.lock().expect("client transport lock");
        send_msg(&mut **transport, request)?;
        loop {
            let event = Self::expect_event(&mut **transport)?;
            match matcher(event) {
                Ok(reply) => return Ok(reply),
                Err(other) if Self::is_stream_event(&other) => self.buffer(*other),
                Err(other) => return Err(Self::fail(*other)),
            }
        }
    }

    /// Whether an event can arrive unsolicited on a subscribed session.
    fn is_stream_event(event: &Event) -> bool {
        Self::stream_campaign_id(event).is_some()
    }

    /// The campaign a pushed stream event belongs to, if it is one.
    fn stream_campaign_id(event: &Event) -> Option<CampaignId> {
        match event {
            Event::CampaignRound { id, .. }
            | Event::CampaignFinished { id, .. }
            | Event::CampaignFailed { id, .. }
            | Event::CampaignCancelled { id, .. } => Some(*id),
            _ => None,
        }
    }

    fn buffer(&self, event: Event) {
        self.pending
            .lock()
            // audit: allow(panic_policy, event buffer lock poisoning propagates a prior panic)
            .expect("client event buffer lock")
            .push_back(event);
    }

    fn expect_event(transport: &mut dyn Transport) -> Result<Event, ServeError> {
        recv_msg::<Event>(transport)?.ok_or(ServeError::ConnectionClosed)
    }

    fn fail(event: Event) -> ServeError {
        match event {
            Event::Error { message } => ServeError::Server(message),
            other => ServeError::Unexpected(format!("{other:?}")),
        }
    }
}

impl PairSource for CampaignClient {
    /// # Panics
    ///
    /// The [`PairSource`] contract is infallible; this panics on
    /// service failure. Use [`CampaignClient::run_paired`] to handle
    /// failures as values.
    fn run_pairs(&self, jobs: &[PairedJob]) -> Vec<PairedOutcome> {
        // audit: allow(panic_policy, JobSource is infallible by contract; panic is documented)
        self.run_paired(jobs).expect("campaign service failed")
    }
}

impl SimSource for CampaignClient {
    /// # Panics
    ///
    /// Panics on service failure; see [`CampaignClient::run_batch`].
    fn run_sims(&self, jobs: &[SimJob]) -> Vec<EncounterOutcome> {
        // audit: allow(panic_policy, JobSource is infallible by contract; panic is documented)
        self.run_batch(jobs).expect("campaign service failed")
    }
}

impl SplitSource for CampaignClient {
    /// # Panics
    ///
    /// Panics on service failure; see [`CampaignClient::run_splits`].
    fn run_splits(&self, jobs: &[SplitJob]) -> Vec<SplitOutcome> {
        // audit: allow(panic_policy, SplitSource is infallible by contract; panic is documented)
        self.run_splits(jobs).expect("campaign service failed")
    }
}

/// A handle on an in-process server thread; join it after the client's
/// [`CampaignClient::shutdown`] to observe the session's end state.
#[derive(Debug)]
pub struct InProcessServer {
    handle: std::thread::JoinHandle<Result<SessionEnd, ServeError>>,
}

impl InProcessServer {
    /// Waits for the server thread to finish its session.
    ///
    /// # Errors
    ///
    /// Propagates the session's [`ServeError`], if any.
    ///
    /// # Panics
    ///
    /// Panics if the server thread itself panicked.
    pub fn join(self) -> Result<SessionEnd, ServeError> {
        // audit: allow(panic_policy, join re-raises the server thread panic as documented)
        self.handle.join().expect("campaign server thread panicked")
    }
}

/// Spawns a complete in-process service — `shards` local shard workers
/// with `threads_per_shard` executor threads each, a [`CampaignServer`]
/// thread over a channel transport — and returns the connected client.
///
/// The whole stack (protocol, framing, sharded merge) runs exactly as it
/// would across machines; only the transports are channels. This is the
/// deployment the determinism matrix and the example exercise.
pub fn spawn_in_process(
    runner: EncounterRunner,
    shards: usize,
    threads_per_shard: usize,
) -> (CampaignClient, InProcessServer) {
    let backend = ShardedBackend::spawn_local(runner.clone(), shards, threads_per_shard);
    let server = CampaignServer::new(runner, backend);
    let (client_end, mut server_end) = channel_pair();
    let handle = std::thread::Builder::new()
        .name("uavca-campaign-server".to_string())
        .spawn(move || server.serve(&mut server_end))
        // audit: allow(panic_policy, thread spawn fails only on OS resource exhaustion)
        .expect("spawning the campaign server thread");
    (CampaignClient::new(client_end), InProcessServer { handle })
}
