//! The wire protocol: every message exchanged by the campaign service,
//! plus the line-delimited JSON framing they travel in.
//!
//! # Framing
//!
//! One message per line: a message is its serde JSON rendering followed
//! by `\n`. The workspace's JSON writer never emits a raw newline (it is
//! escaped inside strings and absent everywhere else), so the framing is
//! unambiguous and a reader can resynchronize on line boundaries. Floats
//! print via shortest-round-trip formatting, so every finite `f64`
//! crosses the wire bit-exactly — the precondition for the service's
//! bit-identity guarantee. Undefined statistics (`NaN` rates, infinite
//! half-widths, the `target_half_width = ∞` no-early-stop sentinel)
//! serialize as `null` exactly as they do in reports, and deserialize
//! back to their in-memory markers (covered by this crate's proptests).
//!
//! # Message families
//!
//! * [`Request`]/[`Event`] — client ↔ server: submit job batches or a
//!   full campaign; receive outcomes, streamed per-round summaries, and
//!   typed rejections.
//! * [`ShardRequest`]/[`ShardEvent`] — coordinator ↔ shard worker:
//!   indexed job batches tagged with a `batch` id, answered by one event
//!   per job. The `batch` tag is what lets the coordinator reject stale
//!   or duplicated deliveries with a typed fault instead of corrupting a
//!   later round's merge.

use std::io::{BufRead, Write};

use serde::{Deserialize, Serialize};
use uavca_encounter::StatisticalEncounterModel;
use uavca_sim::EncounterOutcome;
use uavca_validation::{
    CampaignConfig, CampaignConfigError, CampaignOutcome, MultiJob, MultiPairedOutcome, PairedJob,
    PairedOutcome, RoundSummary, SimJob, SplitConfig, SplitJob, SplitOutcome,
};

use crate::control::{
    CampaignId, CampaignResult, CampaignSpec, CampaignStatus, Checkpoint, RoundEvent,
};
use crate::ServeError;

/// A full campaign specification as submitted over the wire: the
/// [`CampaignConfig`] plus the statistical model and stratification
/// the server should plan over.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CampaignRequest {
    /// The campaign schedule, seed and early-stop target. Its
    /// `threads` field is ignored server-side: parallelism is the
    /// shard fleet's, and the estimate is bit-identical regardless.
    pub config: CampaignConfig,
    /// The statistical encounter model to stratify and sample.
    pub model: StatisticalEncounterModel,
    /// CPA bands per geometry class (the [`uavca_encounter::Stratification`]
    /// resolution).
    pub cpa_bins: usize,
    /// `true` runs the mass-proportional uniform baseline instead of
    /// Neyman reallocation.
    pub uniform: bool,
}

/// A multilevel-splitting campaign specification as submitted over the
/// wire — the splitting twin of [`CampaignRequest`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SplitCampaignRequest {
    /// The splitting schedule, seed, ladder shape and early-stop
    /// target. Its `threads` field is ignored server-side.
    pub config: SplitConfig,
    /// The statistical encounter model to stratify and sample.
    pub model: StatisticalEncounterModel,
    /// CPA bands per geometry class (the [`uavca_encounter::Stratification`]
    /// resolution).
    pub cpa_bins: usize,
}

/// A client-to-server request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Run a batch of single simulation jobs.
    RunBatch {
        /// The jobs, each carrying its own seed and equipage.
        jobs: Vec<SimJob>,
    },
    /// Run a batch of paired (equipped + unequipped) jobs.
    RunPaired {
        /// The paired jobs, each replaying one seed in both arms.
        jobs: Vec<PairedJob>,
    },
    /// Run a batch of multilevel-splitting roots.
    RunSplits {
        /// The jobs, each a self-contained branch-tree description.
        jobs: Vec<SplitJob>,
    },
    /// Plan and run a full campaign, streaming per-round events. The
    /// legacy single-campaign path: equivalent to `Create` + `Stream`
    /// with no supervisor restarts.
    RunCampaign {
        /// The campaign specification.
        request: CampaignRequest,
    },
    /// Create a campaign on the control plane, optionally resuming it
    /// from a checkpoint. Replied to with [`Event::CampaignCreated`].
    Create {
        /// What to run.
        spec: CampaignSpec,
        /// Exact resume point from a prior [`Event::CampaignCancelled`]
        /// or [`CampaignStatus::checkpoint`]; `None` starts fresh.
        checkpoint: Option<Checkpoint>,
    },
    /// Ask for a campaign's current status.
    Status {
        /// The campaign.
        id: CampaignId,
    },
    /// Subscribe to a campaign's rounds: the server replays every
    /// completed round as [`Event::CampaignRound`], then streams new
    /// ones until a terminal event.
    Stream {
        /// The campaign.
        id: CampaignId,
    },
    /// Hold a running campaign.
    Pause {
        /// The campaign.
        id: CampaignId,
    },
    /// Release a paused campaign (or manually revive a failed one).
    Resume {
        /// The campaign.
        id: CampaignId,
    },
    /// Cancel a campaign, collecting its exact resume point.
    Cancel {
        /// The campaign.
        id: CampaignId,
    },
    /// Ask the server to acknowledge and stop serving.
    Shutdown,
}

/// A server-to-client event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Event {
    /// Reply to [`Request::RunBatch`]: outcomes in job order.
    BatchDone {
        /// One outcome per submitted job, in submission order.
        outcomes: Vec<EncounterOutcome>,
    },
    /// Reply to [`Request::RunPaired`]: outcomes in job order.
    PairedDone {
        /// One paired outcome per submitted job, in submission order.
        outcomes: Vec<PairedOutcome>,
    },
    /// A campaign round completed (streamed as it happens).
    Round {
        /// The round's convergence snapshot.
        summary: RoundSummary,
    },
    /// The campaign finished; the terminal event of a
    /// [`Request::RunCampaign`] exchange.
    CampaignDone {
        /// The full outcome, estimate and convergence trail included.
        outcome: CampaignOutcome,
    },
    /// The campaign configuration was rejected before any simulation.
    Rejected {
        /// The typed validation error.
        error: CampaignConfigError,
    },
    /// Reply to [`Request::RunSplits`]: outcomes in job order.
    SplitsDone {
        /// One outcome per submitted root, in submission order.
        outcomes: Vec<SplitOutcome>,
    },
    /// Reply to [`Request::Create`]: the campaign is registered.
    CampaignCreated {
        /// The new campaign's id, unique within this server.
        id: CampaignId,
    },
    /// Reply to [`Request::Status`].
    CampaignStatus {
        /// The campaign's current status, checkpoint included.
        status: CampaignStatus,
    },
    /// One completed round of a control-plane campaign (replayed on
    /// subscribe, then streamed as rounds complete).
    CampaignRound {
        /// The campaign.
        id: CampaignId,
        /// The completed round.
        round: RoundEvent,
    },
    /// A control-plane campaign finished; terminal for its stream.
    CampaignFinished {
        /// The campaign.
        id: CampaignId,
        /// Its terminal result.
        result: CampaignResult,
    },
    /// A control-plane campaign failed terminally; the message carries
    /// the typed backend fault (e.g. "every shard was lost …").
    CampaignFailed {
        /// The campaign.
        id: CampaignId,
        /// The typed fault detail.
        message: String,
    },
    /// Reply to [`Request::Pause`].
    CampaignPaused {
        /// The campaign.
        id: CampaignId,
    },
    /// Reply to [`Request::Resume`].
    CampaignResumed {
        /// The campaign.
        id: CampaignId,
    },
    /// Reply to [`Request::Cancel`] (also fanned out to subscribed
    /// streams): the campaign stopped at an exact resume point.
    CampaignCancelled {
        /// The campaign.
        id: CampaignId,
        /// The checkpoint a later [`Request::Create`] can resume from.
        checkpoint: Checkpoint,
    },
    /// Request execution failed server-side.
    Error {
        /// Human-readable failure description.
        message: String,
    },
    /// The server acknowledges [`Request::Shutdown`] and will close.
    ShutdownAck,
}

/// A [`PairedJob`] tagged with its index in the submitted batch, so
/// results can be merged by position whatever shard ran them.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IndexedPairedJob {
    /// Position of this job in the coordinator's batch.
    pub index: usize,
    /// The job itself.
    pub job: PairedJob,
}

/// A [`SimJob`] tagged with its index in the submitted batch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IndexedSimJob {
    /// Position of this job in the coordinator's batch.
    pub index: usize,
    /// The job itself.
    pub job: SimJob,
}

/// A [`SplitJob`] tagged with its index in the submitted batch. Not
/// `Copy` (the job carries its severity ladder and branch schedule), but
/// cheap to clone relative to simulating a branch tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IndexedSplitJob {
    /// Position of this job in the coordinator's batch.
    pub index: usize,
    /// The job itself.
    pub job: SplitJob,
}

/// A [`MultiJob`] tagged with its index in the submitted batch. Not
/// `Copy` (the job carries its per-aircraft parameter vector), but cheap
/// to clone relative to flying a k-aircraft pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IndexedMultiJob {
    /// Position of this job in the coordinator's batch.
    pub index: usize,
    /// The job itself.
    pub job: MultiJob,
}

/// A coordinator-to-shard request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ShardRequest {
    /// Run the indexed paired jobs, answering one
    /// [`ShardEvent::Paired`] per job.
    RunPaired {
        /// The coordinator's batch id; echoed in every reply.
        batch: u64,
        /// The shard's slice of the batch.
        jobs: Vec<IndexedPairedJob>,
    },
    /// Run the indexed single jobs, answering one [`ShardEvent::Sim`]
    /// per job.
    RunSims {
        /// The coordinator's batch id; echoed in every reply.
        batch: u64,
        /// The shard's slice of the batch.
        jobs: Vec<IndexedSimJob>,
    },
    /// Run the indexed multilevel-splitting jobs, answering
    /// [`ShardEvent::SplitChunk`] events. Each job is a pure function of
    /// its fields (the branch-seed rule rides in the job), so splitting
    /// batches shard exactly like plain pairs.
    RunSplits {
        /// The coordinator's batch id; echoed in every reply.
        batch: u64,
        /// The shard's slice of the batch.
        jobs: Vec<IndexedSplitJob>,
    },
    /// Run the indexed k-aircraft jobs, answering
    /// [`ShardEvent::MultiChunk`] events. Each job is a pure function of
    /// its fields (params, seed, equipage mode), so multi-aircraft
    /// batches shard exactly like plain pairs.
    RunMultis {
        /// The coordinator's batch id; echoed in every reply.
        batch: u64,
        /// The shard's slice of the batch.
        jobs: Vec<IndexedMultiJob>,
    },
    /// Stop serving (orderly shard shutdown).
    Shutdown,
}

/// A shard-to-coordinator event: one or more completed jobs.
///
/// Shards flush results per execution sub-batch as a single *chunk*
/// event ([`PairedChunk`](ShardEvent::PairedChunk) /
/// [`SimChunk`](ShardEvent::SimChunk)): one framed line per chunk
/// instead of one per job, which divides the per-result
/// framing/serialization overhead by the chunk size. `indices` and
/// `outcomes` are parallel vectors (round-robin partitioning means a
/// shard's indices are not contiguous); a length mismatch is rejected by
/// the coordinator as a malformed event. The single-job
/// [`Paired`](ShardEvent::Paired) / [`Sim`](ShardEvent::Sim) forms
/// remain valid deliveries — the merge layer accepts either — so old
/// shards and per-job test rigs interoperate with chunking coordinators.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ShardEvent {
    /// A paired job finished.
    Paired {
        /// The batch id of the request this answers.
        batch: u64,
        /// The job's index in the coordinator's batch.
        index: usize,
        /// Both arms' outcomes.
        outcome: PairedOutcome,
    },
    /// A single simulation job finished.
    Sim {
        /// The batch id of the request this answers.
        batch: u64,
        /// The job's index in the coordinator's batch.
        index: usize,
        /// The run's outcome.
        outcome: EncounterOutcome,
    },
    /// A sub-batch of paired jobs finished (the per-chunk flush).
    PairedChunk {
        /// The batch id of the request this answers.
        batch: u64,
        /// The jobs' indices in the coordinator's batch, parallel to
        /// `outcomes`.
        indices: Vec<usize>,
        /// Both arms' outcomes, parallel to `indices`.
        outcomes: Vec<PairedOutcome>,
    },
    /// A sub-batch of single simulation jobs finished.
    SimChunk {
        /// The batch id of the request this answers.
        batch: u64,
        /// The jobs' indices in the coordinator's batch, parallel to
        /// `outcomes`.
        indices: Vec<usize>,
        /// The runs' outcomes, parallel to `indices`.
        outcomes: Vec<EncounterOutcome>,
    },
    /// A sub-batch of multilevel-splitting jobs finished.
    SplitChunk {
        /// The batch id of the request this answers.
        batch: u64,
        /// The jobs' indices in the coordinator's batch, parallel to
        /// `outcomes`.
        indices: Vec<usize>,
        /// The roots' outcomes, parallel to `indices`.
        outcomes: Vec<SplitOutcome>,
    },
    /// A sub-batch of k-aircraft paired jobs finished.
    MultiChunk {
        /// The batch id of the request this answers.
        batch: u64,
        /// The jobs' indices in the coordinator's batch, parallel to
        /// `outcomes`.
        indices: Vec<usize>,
        /// Both arms' outcomes, parallel to `indices`.
        outcomes: Vec<MultiPairedOutcome>,
    },
}

/// Encodes a message as one wire line (JSON, no trailing newline).
pub fn encode<T: Serialize>(msg: &T) -> String {
    // audit: allow(panic_policy, the stand-in JSON writer has no fallible path)
    let line = serde_json::to_string(msg).expect("the stand-in JSON writer is infallible");
    debug_assert!(
        !line.contains('\n'),
        "the JSON writer escapes newlines; a raw one would break framing"
    );
    line
}

/// Decodes one wire line into a message.
///
/// # Errors
///
/// Returns [`ServeError::Protocol`] when the line is not valid JSON or
/// does not match `T`'s shape.
pub fn decode<T: Deserialize>(line: &str) -> Result<T, ServeError> {
    serde_json::from_str(line).map_err(|e| ServeError::Protocol(e.to_string()))
}

/// Writes one framed message (line + `\n`) to a byte stream — the same
/// framing writer [`crate::TcpTransport`] uses (one shared
/// implementation, so the two cannot diverge); channel transports move
/// the same lines without the byte layer.
///
/// # Errors
///
/// Returns [`ServeError::Transport`] on I/O failure.
pub fn write_frame<W: Write, T: Serialize>(writer: &mut W, msg: &T) -> Result<(), ServeError> {
    crate::transport::write_framed_line(writer, &encode(msg)).map_err(ServeError::Transport)
}

/// Reads one framed message from a buffered byte stream via the same
/// framing reader [`crate::TcpTransport`] uses. `Ok(None)` means the
/// stream ended cleanly on a frame boundary.
///
/// # Errors
///
/// Returns [`ServeError::Protocol`] on malformed frames,
/// [`ServeError::Transport`] on I/O failure, and
/// [`ServeError::ConnectionClosed`] on EOF inside a frame.
pub fn read_frame<R: BufRead, T: Deserialize>(reader: &mut R) -> Result<Option<T>, ServeError> {
    match crate::transport::read_framed_line(reader) {
        Ok(Some(line)) => decode(&line).map(Some),
        Ok(None) => Ok(None),
        Err(crate::TransportError::Closed) => Err(ServeError::ConnectionClosed),
        Err(e) => Err(ServeError::Transport(e)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shutdown_round_trips_through_framing() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Request::Shutdown).unwrap();
        write_frame(&mut buf, &Event::ShutdownAck).unwrap();
        let mut reader = buf.as_slice();
        let req: Request = read_frame(&mut reader).unwrap().unwrap();
        assert_eq!(req, Request::Shutdown);
        let ev: Event = read_frame(&mut reader).unwrap().unwrap();
        assert_eq!(ev, Event::ShutdownAck);
        assert!(read_frame::<_, Event>(&mut reader).unwrap().is_none());
    }

    #[test]
    fn truncated_frame_is_a_closed_connection_not_a_parse_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Request::Shutdown).unwrap();
        buf.pop(); // strip the newline: an interrupted send
        let mut reader = buf.as_slice();
        assert_eq!(
            read_frame::<_, Request>(&mut reader).unwrap_err(),
            ServeError::ConnectionClosed
        );
    }

    #[test]
    fn wrong_shape_is_a_typed_protocol_error() {
        let line = encode(&Event::ShutdownAck);
        let err = decode::<ShardEvent>(&line).unwrap_err();
        assert!(matches!(err, ServeError::Protocol(_)), "{err}");
    }
}
