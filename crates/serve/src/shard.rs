//! Shard workers and the coordinator-side [`ShardedBackend`].
//!
//! A shard is a worker loop ([`serve_shard`]) hosting a
//! [`BatchRunner`]: it receives indexed job batches, runs them on its
//! local executor in sub-batches, and streams one chunked [`ShardEvent`]
//! back per sub-batch (per-job events remain accepted deliveries). The
//! coordinator ([`ShardedBackend`]) partitions every batch across its
//! shards, merges results **by job index**, requeues the unfinished jobs
//! of a lost shard onto the survivors, and rejects duplicate or stale
//! deliveries with a typed [`ShardFault`] — all without any effect on
//! the merged results, which are pure functions of the jobs.
//!
//! `ShardedBackend` satisfies the same job-level contracts as
//! `BatchRunner` — [`PairSource`] and [`SimSource`] — so a
//! `CampaignPlanner` (or any other batch consumer) cannot tell a shard
//! fleet from a local worker pool except by wall clock. The closure-level
//! [`uavca_exec::Backend`] seam is deliberately *not* implemented here:
//! closures do not serialize, so distribution happens at the job level,
//! where jobs and outcomes are plain data.

use std::sync::Mutex;

use uavca_exec::{Backend, Executor};
use uavca_sim::EncounterOutcome;
use uavca_validation::{
    BatchRunner, EncounterRunner, MultiJob, MultiPairedOutcome, MultiSource, PairSource, PairedJob,
    PairedOutcome, ShardUsage, SimJob, SimSource, SplitJob, SplitOutcome, SplitSource,
};

use crate::protocol::{
    IndexedMultiJob, IndexedPairedJob, IndexedSimJob, IndexedSplitJob, ShardEvent, ShardRequest,
};
use crate::transport::{recv_msg, send_msg, RecvOutcome, TcpTransport, Transport};
use crate::{channel_pair, ServeError};

/// Jobs per sub-batch a shard runs between result flushes: small enough
/// that a lost shard forfeits little finished work (everything sent
/// before the loss is merged; only unsent jobs are requeued), large
/// enough to amortize the executor's fan-out.
const SHARD_CHUNK: usize = 16;

/// A fault observed and absorbed by the sharded merge layer.
///
/// Faults are bookkeeping, not failures: each one is recorded (see
/// [`ShardedBackend::take_faults`]) and the batch continues, because
/// none of them can change merged results — a duplicate is rejected, a
/// stale delivery is ignored, and a lost shard's unfinished jobs rerun
/// elsewhere with identical seeds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardFault {
    /// A result arrived for a job whose outcome was already merged; the
    /// duplicate was rejected.
    DuplicateResult {
        /// Shard that delivered the duplicate.
        shard: usize,
        /// Batch id the delivery was tagged with.
        batch: u64,
        /// Index of the already-merged job.
        index: usize,
    },
    /// A result arrived for an index outside the current batch.
    UnknownJob {
        /// Shard that delivered it.
        shard: usize,
        /// Batch id the delivery was tagged with.
        batch: u64,
        /// The out-of-range index.
        index: usize,
    },
    /// A result arrived tagged with a previous batch id (a straggler
    /// from before a requeue or a rigged re-delivery); ignored.
    StaleBatch {
        /// Shard that delivered it.
        shard: usize,
        /// The stale batch id.
        batch: u64,
        /// Index the stale delivery carried.
        index: usize,
    },
    /// A delivery that was not a decodable [`ShardEvent`] of the kind
    /// the batch expects; ignored.
    MalformedEvent {
        /// Shard that delivered it.
        shard: usize,
    },
    /// A shard's transport closed with jobs outstanding; they were
    /// requeued onto the surviving shards.
    ShardLost {
        /// The lost shard.
        shard: usize,
        /// Batch id in flight when it died.
        batch: u64,
        /// Jobs requeued away from it.
        requeued: usize,
    },
    /// A shard stayed silent past the coordinator's loss timeout (see
    /// [`ShardedBackend::with_loss_timeout`]) with jobs outstanding; it
    /// was written off and its unfinished jobs requeued onto the
    /// survivors exactly as for [`ShardFault::ShardLost`].
    ShardTimedOut {
        /// The unresponsive shard.
        shard: usize,
        /// Batch id in flight when it went silent.
        batch: u64,
        /// Jobs requeued away from it.
        requeued: usize,
    },
}

impl std::fmt::Display for ShardFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardFault::DuplicateResult {
                shard,
                batch,
                index,
            } => write!(
                f,
                "shard {shard} re-delivered job {index} of batch {batch}; duplicate rejected"
            ),
            ShardFault::UnknownJob {
                shard,
                batch,
                index,
            } => write!(
                f,
                "shard {shard} delivered unknown job {index} for batch {batch}"
            ),
            ShardFault::StaleBatch {
                shard,
                batch,
                index,
            } => write!(
                f,
                "shard {shard} delivered job {index} of stale batch {batch}; ignored"
            ),
            ShardFault::MalformedEvent { shard } => {
                write!(f, "shard {shard} delivered a malformed event; ignored")
            }
            ShardFault::ShardLost {
                shard,
                batch,
                requeued,
            } => write!(
                f,
                "shard {shard} lost during batch {batch}; {requeued} jobs requeued"
            ),
            ShardFault::ShardTimedOut {
                shard,
                batch,
                requeued,
            } => write!(
                f,
                "shard {shard} timed out during batch {batch}; {requeued} jobs requeued"
            ),
        }
    }
}

impl std::error::Error for ShardFault {}

/// The shard worker loop: serves [`ShardRequest`]s until the
/// coordinator shuts it down or disconnects.
///
/// Jobs run in small sub-batches (16 jobs) on the hosted
/// [`BatchRunner`], each sub-batch's results flushed as **one** chunked
/// [`ShardEvent`] before the next starts — one framed line per chunk
/// instead of per job — so a coordinator observing this shard's stream
/// sees progress at chunk granularity and loses at most one unsent chunk
/// if the shard dies.
///
/// # Errors
///
/// Returns [`ServeError`] when a request fails to decode or the
/// transport back to the coordinator fails; an orderly coordinator
/// disconnect returns `Ok(())`.
pub fn serve_shard<B: Backend, T: Transport>(
    mut transport: T,
    batch: BatchRunner<B>,
) -> Result<(), ServeError> {
    loop {
        let Some(request) = recv_msg::<ShardRequest>(&mut transport)? else {
            return Ok(());
        };
        match request {
            ShardRequest::RunPaired { batch: id, jobs } => {
                for chunk in jobs.chunks(SHARD_CHUNK) {
                    let plain: Vec<PairedJob> = chunk.iter().map(|j| j.job).collect();
                    let outcomes = batch.run_paired(&plain);
                    send_msg(
                        &mut transport,
                        &ShardEvent::PairedChunk {
                            batch: id,
                            indices: chunk.iter().map(|j| j.index).collect(),
                            outcomes,
                        },
                    )?;
                }
            }
            ShardRequest::RunSims { batch: id, jobs } => {
                for chunk in jobs.chunks(SHARD_CHUNK) {
                    let plain: Vec<SimJob> = chunk.iter().map(|j| j.job).collect();
                    let outcomes = batch.run_batch(&plain);
                    send_msg(
                        &mut transport,
                        &ShardEvent::SimChunk {
                            batch: id,
                            indices: chunk.iter().map(|j| j.index).collect(),
                            outcomes,
                        },
                    )?;
                }
            }
            ShardRequest::RunSplits { batch: id, jobs } => {
                for chunk in jobs.chunks(SHARD_CHUNK) {
                    let plain: Vec<SplitJob> = chunk.iter().map(|j| j.job.clone()).collect();
                    let outcomes = batch.run_splits(&plain);
                    send_msg(
                        &mut transport,
                        &ShardEvent::SplitChunk {
                            batch: id,
                            indices: chunk.iter().map(|j| j.index).collect(),
                            outcomes,
                        },
                    )?;
                }
            }
            ShardRequest::RunMultis { batch: id, jobs } => {
                for chunk in jobs.chunks(SHARD_CHUNK) {
                    let plain: Vec<MultiJob> = chunk.iter().map(|j| j.job.clone()).collect();
                    let outcomes = batch.run_multis(&plain);
                    send_msg(
                        &mut transport,
                        &ShardEvent::MultiChunk {
                            batch: id,
                            indices: chunk.iter().map(|j| j.index).collect(),
                            outcomes,
                        },
                    )?;
                }
            }
            ShardRequest::Shutdown => return Ok(()),
        }
    }
}

/// Serves one shard over TCP: accepts a single coordinator connection on
/// `listener` and runs [`serve_shard`] on it. The blocking entry point a
/// shard host process calls (see `examples/campaign_server.rs`).
///
/// # Errors
///
/// Returns accept/transport failures as [`ServeError`].
pub fn serve_shard_tcp<B: Backend>(
    listener: std::net::TcpListener,
    batch: BatchRunner<B>,
) -> Result<(), ServeError> {
    let (stream, _) = listener
        .accept()
        .map_err(|e| ServeError::Transport(crate::TransportError::Io(e.to_string())))?;
    let transport = TcpTransport::from_stream(stream)
        .map_err(|e| ServeError::Transport(crate::TransportError::Io(e.to_string())))?;
    serve_shard(transport, batch)
}

/// One shard as the coordinator sees it.
struct ShardSlot {
    transport: Box<dyn Transport>,
    alive: bool,
    usage: ShardUsage,
}

impl std::fmt::Debug for ShardSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardSlot")
            .field("alive", &self.alive)
            .field("usage", &self.usage)
            .finish_non_exhaustive()
    }
}

/// Coordinator state behind one mutex: batches must be serialized
/// anyway (the wire conversations interleave otherwise), and one lock
/// keeps slot, fault and counter updates consistent.
#[derive(Debug)]
struct Coordinator {
    slots: Vec<ShardSlot>,
    faults: Vec<ShardFault>,
    next_batch: u64,
}

/// A fleet of shard workers behind the same job-level contracts as
/// [`BatchRunner`]: [`PairSource`] and [`SimSource`].
///
/// Every batch is partitioned round-robin across live shards, executed
/// remotely, and merged by job index, so the result vector is
/// bit-identical to local execution for any shard count and any
/// interleaving of deliveries. A shard lost mid-batch has its
/// unfinished jobs requeued onto the survivors (same jobs, same seeds —
/// same bits); duplicated or stale deliveries are rejected with a typed
/// [`ShardFault`]. If *every* shard is lost with jobs outstanding the
/// batch cannot complete: the fallible entry points return
/// [`ServeError::AllShardsLost`] and the trait impls (whose contracts
/// are infallible) panic.
#[derive(Debug)]
pub struct ShardedBackend {
    coordinator: Mutex<Coordinator>,
    /// Worker threads for locally spawned shards; joined on drop.
    locals: Vec<std::thread::JoinHandle<()>>,
    /// How long a shard that owes results may stay silent before the
    /// coordinator writes it off; `None` waits forever.
    loss_timeout: Option<std::time::Duration>,
}

impl ShardedBackend {
    /// A backend over already-connected shard transports (TCP peers,
    /// rigged test transports, or hand-wired channels).
    pub fn from_transports(transports: Vec<Box<dyn Transport>>) -> Self {
        let slots = transports
            .into_iter()
            .enumerate()
            .map(|(shard, transport)| ShardSlot {
                transport,
                alive: true,
                usage: ShardUsage {
                    shard,
                    jobs_completed: 0,
                    jobs_requeued: 0,
                    duplicates_rejected: 0,
                    lost: false,
                },
            })
            .collect();
        Self {
            coordinator: Mutex::new(Coordinator {
                slots,
                faults: Vec::new(),
                next_batch: 0,
            }),
            locals: Vec::new(),
            loss_timeout: None,
        }
    }

    /// Arms timeout-based loss detection: a shard that owes results and
    /// stays silent for `timeout` is treated exactly like a closed one —
    /// marked dead, faulted as [`ShardFault::ShardTimedOut`], its
    /// unfinished jobs requeued onto the survivors. Because requeued
    /// jobs rerun with identical seeds, the merged results stay
    /// byte-identical to a run with no timeout at all; late deliveries
    /// from a written-off shard are never read (its transport is dead to
    /// the coordinator).
    ///
    /// Without this, loss detection is purely *closure*-based: a shard
    /// whose process wedges while its socket stays open stalls the
    /// campaign forever.
    #[must_use]
    pub fn with_loss_timeout(mut self, timeout: std::time::Duration) -> Self {
        self.loss_timeout = Some(timeout);
        self
    }

    /// Spawns `shards` in-process shard workers over channel transports,
    /// each hosting a [`BatchRunner`] on its own [`Executor`] with
    /// `threads_per_shard` workers (`0` = hardware parallelism).
    ///
    /// The zero-infrastructure deployment: same protocol, same merge
    /// layer, no sockets. Workers shut down when the backend drops.
    pub fn spawn_local(
        runner: EncounterRunner,
        shards: usize,
        threads_per_shard: usize,
    ) -> ShardedBackend {
        let mut transports: Vec<Box<dyn Transport>> = Vec::with_capacity(shards);
        let mut locals = Vec::with_capacity(shards);
        for k in 0..shards {
            let (coordinator_end, shard_end) = channel_pair();
            let batch = BatchRunner::new(runner.clone(), Executor::new(threads_per_shard));
            let handle = std::thread::Builder::new()
                .name(format!("uavca-shard-{k}"))
                .spawn(move || {
                    // A coordinator that vanishes mid-batch is this
                    // worker's shutdown signal, not a failure to report.
                    let _ = serve_shard(shard_end, batch);
                })
                // audit: allow(panic_policy, thread spawn fails only on OS resource exhaustion)
                .expect("spawning a shard worker thread");
            transports.push(Box::new(coordinator_end) as Box<dyn Transport>);
            locals.push(handle);
        }
        let mut backend = Self::from_transports(transports);
        backend.locals = locals;
        backend
    }

    /// Connects to shard workers listening on `addrs` (each serving
    /// [`serve_shard_tcp`]).
    ///
    /// # Errors
    ///
    /// Returns the first connection error.
    pub fn connect_tcp<A: std::net::ToSocketAddrs>(addrs: &[A]) -> std::io::Result<Self> {
        let mut transports: Vec<Box<dyn Transport>> = Vec::with_capacity(addrs.len());
        for addr in addrs {
            transports.push(Box::new(TcpTransport::connect(addr)?) as Box<dyn Transport>);
        }
        Ok(Self::from_transports(transports))
    }

    /// Per-shard usage counters (jobs completed, requeues, rejected
    /// duplicates) — the rows of
    /// [`uavca_validation::campaign_shard_table`].
    pub fn usage(&self) -> Vec<ShardUsage> {
        // audit: allow(panic_policy, coordinator lock poisoning propagates a prior panic)
        let coordinator = self.coordinator.lock().expect("coordinator lock");
        coordinator.slots.iter().map(|s| s.usage).collect()
    }

    /// Drains the faults recorded since the last call. An empty result
    /// after a campaign is the clean-run certificate; a non-empty one
    /// documents exactly which deliveries were rejected or requeued
    /// (none of which can have affected the merged results).
    pub fn take_faults(&self) -> Vec<ShardFault> {
        // audit: allow(panic_policy, coordinator lock poisoning propagates a prior panic)
        let mut coordinator = self.coordinator.lock().expect("coordinator lock");
        std::mem::take(&mut coordinator.faults)
    }

    /// Runs a paired batch across the fleet; outcomes in job order.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::AllShardsLost`] when no live shard remains
    /// with jobs still outstanding.
    pub fn try_run_pairs(&self, jobs: &[PairedJob]) -> Result<Vec<PairedOutcome>, ServeError> {
        self.run_indexed(
            jobs,
            |batch, slice| ShardRequest::RunPaired {
                batch,
                jobs: slice
                    .iter()
                    .map(|&(index, job)| IndexedPairedJob { index, job })
                    .collect(),
            },
            |event| match event {
                ShardEvent::Paired {
                    batch,
                    index,
                    outcome,
                } => Some((batch, vec![(index, outcome)])),
                ShardEvent::PairedChunk {
                    batch,
                    indices,
                    outcomes,
                } if indices.len() == outcomes.len() => {
                    Some((batch, indices.into_iter().zip(outcomes).collect()))
                }
                _ => None,
            },
        )
    }

    /// Runs a single-simulation batch across the fleet; outcomes in job
    /// order.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::AllShardsLost`] when no live shard remains
    /// with jobs still outstanding.
    pub fn try_run_sims(&self, jobs: &[SimJob]) -> Result<Vec<EncounterOutcome>, ServeError> {
        self.run_indexed(
            jobs,
            |batch, slice| ShardRequest::RunSims {
                batch,
                jobs: slice
                    .iter()
                    .map(|&(index, job)| IndexedSimJob { index, job })
                    .collect(),
            },
            |event| match event {
                ShardEvent::Sim {
                    batch,
                    index,
                    outcome,
                } => Some((batch, vec![(index, outcome)])),
                ShardEvent::SimChunk {
                    batch,
                    indices,
                    outcomes,
                } if indices.len() == outcomes.len() => {
                    Some((batch, indices.into_iter().zip(outcomes).collect()))
                }
                _ => None,
            },
        )
    }

    /// Runs a splitting batch across the fleet; outcomes in job order.
    ///
    /// Splitting jobs carry their stratum's level ladder and branch
    /// schedule, so shards replay each root's depth-first branch tree
    /// from `(root seed, level, node, branch)` alone — a requeued job
    /// reruns bit-identically on any survivor.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::AllShardsLost`] when no live shard remains
    /// with jobs still outstanding.
    pub fn try_run_splits(&self, jobs: &[SplitJob]) -> Result<Vec<SplitOutcome>, ServeError> {
        self.run_indexed(
            jobs,
            |batch, slice| ShardRequest::RunSplits {
                batch,
                jobs: slice
                    .iter()
                    .map(|(index, job)| IndexedSplitJob {
                        index: *index,
                        job: job.clone(),
                    })
                    .collect(),
            },
            |event| match event {
                ShardEvent::SplitChunk {
                    batch,
                    indices,
                    outcomes,
                } if indices.len() == outcomes.len() => {
                    Some((batch, indices.into_iter().zip(outcomes).collect()))
                }
                _ => None,
            },
        )
    }

    /// Runs a k-aircraft paired batch across the fleet; outcomes in job
    /// order.
    ///
    /// Multi jobs are pure functions of their fields (sampled encounter
    /// parameters, simulation seed, equipage mode), so a requeued job
    /// reruns bit-identically on any survivor, exactly as for plain
    /// pairs.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::AllShardsLost`] when no live shard remains
    /// with jobs still outstanding.
    pub fn try_run_multis(&self, jobs: &[MultiJob]) -> Result<Vec<MultiPairedOutcome>, ServeError> {
        self.run_indexed(
            jobs,
            |batch, slice| ShardRequest::RunMultis {
                batch,
                jobs: slice
                    .iter()
                    .map(|(index, job)| IndexedMultiJob {
                        index: *index,
                        job: job.clone(),
                    })
                    .collect(),
            },
            |event| match event {
                ShardEvent::MultiChunk {
                    batch,
                    indices,
                    outcomes,
                } if indices.len() == outcomes.len() => {
                    Some((batch, indices.into_iter().zip(outcomes).collect()))
                }
                _ => None,
            },
        )
    }

    /// The shared dispatch/merge loop: partition, send, drain, requeue.
    ///
    /// Determinism does not depend on any choice made here — results are
    /// keyed by job index and jobs are pure — so the partitioning
    /// (round-robin) and drain order (lowest live shard first) are
    /// chosen for balance and simplicity, not reproducibility.
    /// `extract` turns one delivery into its `(batch, entries)` payload —
    /// a single-entry vector for the per-job event forms, the whole
    /// parallel-vector payload for chunk events (`None` for wrong-family
    /// or length-mismatched deliveries, recorded as malformed). Every
    /// entry then passes the stale/unknown/duplicate checks individually,
    /// so a chunk straggling in from a previous batch records one typed
    /// fault per job exactly as per-job deliveries would.
    fn run_indexed<J: Clone, O>(
        &self,
        jobs: &[J],
        make_request: impl Fn(u64, &[(usize, J)]) -> ShardRequest,
        extract: impl Fn(ShardEvent) -> Option<(u64, Vec<(usize, O)>)>,
    ) -> Result<Vec<O>, ServeError> {
        // audit: allow(panic_policy, coordinator lock poisoning propagates a prior panic)
        let mut co = self.coordinator.lock().expect("coordinator lock");
        let co = &mut *co;
        let batch_id = co.next_batch;
        co.next_batch += 1;
        if jobs.is_empty() {
            return Ok(Vec::new());
        }

        // Round-robin partition over live shards; `owner[i]` tracks which
        // shard is currently responsible for job i.
        let live: Vec<usize> = (0..co.slots.len()).filter(|&s| co.slots[s].alive).collect();
        if live.is_empty() {
            return Err(ServeError::AllShardsLost {
                outstanding: jobs.len(),
            });
        }
        let mut owner: Vec<usize> = (0..jobs.len()).map(|i| live[i % live.len()]).collect();
        let mut results: Vec<Option<O>> = jobs.iter().map(|_| None).collect();
        let mut filled = 0usize;
        // Unfilled jobs currently owed by each shard, kept incrementally
        // so the drain loop's shard pick is O(shards), not a scan of the
        // whole job list per event. Counters of dead shards are stale by
        // design — every read is guarded by `alive`.
        let mut outstanding: Vec<usize> = vec![0; co.slots.len()];
        for &o in &owner {
            outstanding[o] += 1;
        }

        // A failed send is a shard loss like any other: mark the shard
        // dead and record the fault; the jobs of the failed assignment
        // stay unowned-by-a-live-shard and the requeue pass picks them
        // up.
        let send_assignment = |co: &mut Coordinator, shard: usize, slice: &[(usize, J)]| -> bool {
            let request = make_request(batch_id, slice);
            let line = crate::protocol::encode(&request);
            if co.slots[shard].transport.send(&line).is_ok() {
                return true;
            }
            co.slots[shard].alive = false;
            co.slots[shard].usage.lost = true;
            co.slots[shard].usage.jobs_requeued += slice.len();
            co.faults.push(ShardFault::ShardLost {
                shard,
                batch: batch_id,
                requeued: slice.len(),
            });
            false
        };
        let assignment_of = |owner: &[usize], shard: usize, jobs: &[J]| -> Vec<(usize, J)> {
            owner
                .iter()
                .enumerate()
                .filter(|&(_, &o)| o == shard)
                .map(|(i, _)| (i, jobs[i].clone()))
                .collect()
        };

        // Initial dispatch. A send failure marks the shard lost inside
        // `send_assignment`; the requeue pass below redistributes.
        for &shard in &live {
            let slice = assignment_of(&owner, shard, jobs);
            if !slice.is_empty() {
                send_assignment(co, shard, &slice);
            }
        }

        // Drain loop: always service the lowest-indexed live shard that
        // still owes results. Outcomes land by index, so servicing order
        // cannot influence the merged vector.
        while filled < results.len() {
            let Some(shard) =
                (0..co.slots.len()).find(|&s| co.slots[s].alive && outstanding[s] > 0)
            else {
                // Jobs owed only by dead shards: requeue them onto the
                // survivors, or give up if there are none.
                let pending: Vec<usize> =
                    (0..jobs.len()).filter(|&i| results[i].is_none()).collect();
                let live: Vec<usize> = (0..co.slots.len()).filter(|&s| co.slots[s].alive).collect();
                if live.is_empty() {
                    return Err(ServeError::AllShardsLost {
                        outstanding: pending.len(),
                    });
                }
                for (k, &i) in pending.iter().enumerate() {
                    owner[i] = live[k % live.len()];
                }
                for &shard in &live {
                    let slice: Vec<(usize, J)> = pending
                        .iter()
                        .filter(|&&i| owner[i] == shard)
                        .map(|&i| (i, jobs[i].clone()))
                        .collect();
                    if !slice.is_empty() {
                        outstanding[shard] += slice.len();
                        send_assignment(co, shard, &slice);
                    }
                }
                // Loop back: drain whoever took the requeue, or fail
                // above once nobody is left alive.
                continue;
            };

            // With a loss timeout armed, the wait on a silent shard is
            // bounded; the default blocking receive otherwise.
            let delivery = match self.loss_timeout {
                Some(timeout) => co.slots[shard].transport.recv_deadline(timeout),
                None => co.slots[shard].transport.recv().map(|line| match line {
                    Some(line) => RecvOutcome::Line(line),
                    None => RecvOutcome::Closed,
                }),
            };
            match delivery {
                Ok(RecvOutcome::Line(line)) => {
                    let Ok(event) = crate::protocol::decode::<ShardEvent>(&line) else {
                        co.faults.push(ShardFault::MalformedEvent { shard });
                        continue;
                    };
                    let Some((batch, entries)) = extract(event) else {
                        co.faults.push(ShardFault::MalformedEvent { shard });
                        continue;
                    };
                    for (index, outcome) in entries {
                        if batch != batch_id {
                            co.faults.push(ShardFault::StaleBatch {
                                shard,
                                batch,
                                index,
                            });
                            continue;
                        }
                        if index >= results.len() {
                            co.faults.push(ShardFault::UnknownJob {
                                shard,
                                batch,
                                index,
                            });
                            continue;
                        }
                        if results[index].is_some() {
                            co.faults.push(ShardFault::DuplicateResult {
                                shard,
                                batch,
                                index,
                            });
                            co.slots[shard].usage.duplicates_rejected += 1;
                            continue;
                        }
                        results[index] = Some(outcome);
                        filled += 1;
                        co.slots[shard].usage.jobs_completed += 1;
                        outstanding[owner[index]] -= 1;
                    }
                }
                outcome @ (Ok(RecvOutcome::Closed | RecvOutcome::TimedOut) | Err(_)) => {
                    // Shard loss — orderly close, broken pipe, and
                    // timeout expiry alike: requeue its unfinished jobs
                    // onto the survivors. The timeout differs only in
                    // the fault it records; the requeue path (and so the
                    // merged results) is byte-identical.
                    let timed_out = matches!(outcome, Ok(RecvOutcome::TimedOut));
                    co.slots[shard].alive = false;
                    co.slots[shard].usage.lost = true;
                    let pending: Vec<usize> = (0..jobs.len())
                        .filter(|&i| owner[i] == shard && results[i].is_none())
                        .collect();
                    co.slots[shard].usage.jobs_requeued += pending.len();
                    co.faults.push(if timed_out {
                        ShardFault::ShardTimedOut {
                            shard,
                            batch: batch_id,
                            requeued: pending.len(),
                        }
                    } else {
                        ShardFault::ShardLost {
                            shard,
                            batch: batch_id,
                            requeued: pending.len(),
                        }
                    });
                    let live: Vec<usize> =
                        (0..co.slots.len()).filter(|&s| co.slots[s].alive).collect();
                    if live.is_empty() {
                        return Err(ServeError::AllShardsLost {
                            outstanding: results.iter().filter(|r| r.is_none()).count(),
                        });
                    }
                    outstanding[shard] = 0;
                    for (k, &i) in pending.iter().enumerate() {
                        owner[i] = live[k % live.len()];
                    }
                    for &survivor in &live {
                        let slice: Vec<(usize, J)> = pending
                            .iter()
                            .filter(|&&i| owner[i] == survivor)
                            .map(|&i| (i, jobs[i].clone()))
                            .collect();
                        if !slice.is_empty() {
                            outstanding[survivor] += slice.len();
                            send_assignment(co, survivor, &slice);
                        }
                    }
                }
            }
        }

        Ok(results
            .into_iter()
            // audit: allow(panic_policy, filled == len guarantees every slot is Some)
            .map(|r| r.expect("filled == len ensures every slot is Some"))
            .collect())
    }
}

impl PairSource for ShardedBackend {
    /// # Panics
    ///
    /// The [`PairSource`] contract is infallible; this panics if every
    /// shard is lost with jobs outstanding. Use
    /// [`ShardedBackend::try_run_pairs`] to handle fleet loss as a
    /// value.
    fn run_pairs(&self, jobs: &[PairedJob]) -> Vec<PairedOutcome> {
        self.try_run_pairs(jobs)
            // audit: allow(panic_policy, JobSource is infallible by contract; panic is documented)
            .expect("shard fleet lost every member mid-batch")
    }
}

impl SimSource for ShardedBackend {
    /// # Panics
    ///
    /// Panics if every shard is lost with jobs outstanding; see
    /// [`ShardedBackend::try_run_sims`].
    fn run_sims(&self, jobs: &[SimJob]) -> Vec<EncounterOutcome> {
        self.try_run_sims(jobs)
            // audit: allow(panic_policy, JobSource is infallible by contract; panic is documented)
            .expect("shard fleet lost every member mid-batch")
    }
}

impl SplitSource for ShardedBackend {
    /// # Panics
    ///
    /// Panics if every shard is lost with jobs outstanding; see
    /// [`ShardedBackend::try_run_splits`].
    fn run_splits(&self, jobs: &[SplitJob]) -> Vec<SplitOutcome> {
        self.try_run_splits(jobs)
            // audit: allow(panic_policy, SplitSource is infallible by contract; panic is documented)
            .expect("shard fleet lost every member mid-batch")
    }
}

impl MultiSource for ShardedBackend {
    /// # Panics
    ///
    /// Panics if every shard is lost with jobs outstanding; see
    /// [`ShardedBackend::try_run_multis`].
    fn run_multis(&self, jobs: &[MultiJob]) -> Vec<MultiPairedOutcome> {
        self.try_run_multis(jobs)
            // audit: allow(panic_policy, MultiSource is infallible by contract; panic is documented)
            .expect("shard fleet lost every member mid-batch")
    }
}

impl Drop for ShardedBackend {
    fn drop(&mut self) {
        {
            // audit: allow(panic_policy, coordinator lock poisoning propagates a prior panic)
            let mut co = self.coordinator.lock().expect("coordinator lock");
            for slot in co.slots.iter_mut().filter(|s| s.alive) {
                let _ = slot
                    .transport
                    .send(&crate::protocol::encode(&ShardRequest::Shutdown));
            }
            // Dropping the transports below also disconnects channel
            // workers whose Shutdown send raced their own exit.
            co.slots.clear();
        }
        for handle in self.locals.drain(..) {
            let _ = handle.join();
        }
    }
}
