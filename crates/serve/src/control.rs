//! The campaign control plane: many concurrent campaigns over one
//! shared shard fleet.
//!
//! [`ControlPlane`] owns a set of campaigns — paired stratified
//! ([`uavca_validation::CampaignPlanner`]) or multilevel-splitting
//! ([`uavca_validation::SplitPlanner`]) — and advances them one
//! *quantum* at a time through a [`CampaignBackend`]. Each call to
//! [`ControlPlane::tick`] picks the runnable campaign with the least
//! accumulated cost (fair share), dispatches the next slice of its
//! current round, and completes the round when every outcome is back.
//!
//! Determinism is the whole design: a round's jobs are a pure function
//! of `(config, round index, merged tallies)` via the campaign seed
//! rule, outcomes are pure functions of jobs, and rounds are absorbed
//! in job order. Slicing a round into quanta, interleaving campaigns,
//! or killing and resuming a campaign from a [`Checkpoint`] therefore
//! cannot change a single bit of any estimate — the concurrent service
//! is byte-identical to running each campaign serially, which the
//! control-plane test battery and the `multi_campaign` example enforce.
//!
//! Failure handling is supervisor-style: when the backend reports a
//! typed fault (e.g. [`ServeError::AllShardsLost`]) the campaign is
//! marked failed with the *typed* message preserved, and — if created
//! supervised — restarted from its last checkpoint on the next tick,
//! up to a restart budget. The restart path really does round-trip
//! through [`Checkpoint`] so crash recovery exercises the same code as
//! an operator resume.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, Mutex};

use serde::{Deserialize, Serialize, Value};
use uavca_encounter::Stratification;
use uavca_validation::{
    CampaignCheckpoint, CampaignOutcome, CampaignPlanner, CampaignStepper, EncounterRunner,
    PairedJob, PairedOutcome, PlannedRound, PlannedSplitRound, RoundSummary, SplitCampaignOutcome,
    SplitCheckpoint, SplitJob, SplitOutcome, SplitPlanner, SplitRoundSummary, SplitStepper,
};

use crate::protocol::{CampaignRequest, SplitCampaignRequest};
use crate::{ServeError, ShardedBackend};

/// Paired jobs dispatched per scheduling quantum. Small enough that
/// three interleaved campaigns visibly share the fleet within a round,
/// large enough to amortize one coordinator round-trip per slice.
pub const PAIR_QUANTUM: usize = 32;

/// Splitting roots dispatched per quantum — fewer, because each root
/// fans out into a branch tree worth many plain simulations.
pub const SPLIT_QUANTUM: usize = 8;

/// Nominal fair-share cost of one paired job (two simulations).
const PAIR_COST: u64 = 2;

/// Nominal fair-share cost of one splitting root (a branch tree).
const SPLIT_COST: u64 = 16;

/// Most recent control events retained before the oldest are dropped.
const EVENT_LOG_CAP: usize = 4096;

/// Identifier of one campaign within a [`ControlPlane`] (and over the
/// wire, within one server). Dense and monotonically assigned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CampaignId(pub u64);

impl fmt::Display for CampaignId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "campaign-{}", self.0)
    }
}

impl Serialize for CampaignId {
    fn serialize(&self) -> Value {
        self.0.serialize()
    }
}

impl Deserialize for CampaignId {
    fn deserialize(v: &Value) -> Result<Self, serde::Error> {
        Ok(CampaignId(u64::deserialize(v)?))
    }
}

/// What kind of campaign to run — the create-time specification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CampaignSpec {
    /// A paired stratified campaign (adaptive Neyman reallocation, or
    /// uniform when `request.uniform` is set).
    Paired {
        /// The campaign request, as in the legacy `RunCampaign` path.
        request: CampaignRequest,
    },
    /// A multilevel-splitting rare-event campaign.
    Splitting {
        /// The splitting campaign request.
        request: SplitCampaignRequest,
    },
}

/// An exact, tiny snapshot of a campaign between rounds.
///
/// Thanks to the deterministic seed rule this is a campaign's *full*
/// state: resuming from it and replaying is byte-identical to never
/// having stopped (property-tested in `core/tests/checkpoint_resume.rs`
/// and end-to-end in `tests/control_plane.rs`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Checkpoint {
    /// Snapshot of a paired stratified campaign.
    Paired {
        /// The planner-level checkpoint.
        checkpoint: CampaignCheckpoint,
    },
    /// Snapshot of a multilevel-splitting campaign.
    Splitting {
        /// The planner-level checkpoint.
        checkpoint: SplitCheckpoint,
    },
}

/// Terminal result of a finished campaign, either family.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CampaignResult {
    /// Outcome of a paired stratified campaign.
    Paired {
        /// The full campaign outcome.
        outcome: CampaignOutcome,
    },
    /// Outcome of a multilevel-splitting campaign.
    Splitting {
        /// The full splitting campaign outcome.
        outcome: SplitCampaignOutcome,
    },
}

/// One completed round of either campaign family, as streamed to
/// subscribed clients.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RoundEvent {
    /// A paired campaign round.
    Paired {
        /// The round summary.
        summary: RoundSummary,
    },
    /// A splitting campaign round.
    Splitting {
        /// The round summary.
        summary: SplitRoundSummary,
    },
}

/// Lifecycle state of a campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CampaignState {
    /// Eligible for dispatch.
    Running,
    /// Held by an operator; keeps its in-flight partial round.
    Paused,
    /// The backend faulted. Supervised campaigns with restart budget
    /// left are revived from their checkpoint on the next tick.
    Failed,
    /// Reached its target or round budget; result available.
    Finished,
    /// Cancelled by an operator; final checkpoint available.
    Cancelled,
}

impl fmt::Display for CampaignState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CampaignState::Running => "running",
            CampaignState::Paused => "paused",
            CampaignState::Failed => "failed",
            CampaignState::Finished => "finished",
            CampaignState::Cancelled => "cancelled",
        };
        f.write_str(s)
    }
}

/// A point-in-time status report for one campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignStatus {
    /// The campaign.
    pub id: CampaignId,
    /// Current lifecycle state.
    pub state: CampaignState,
    /// Rounds fully completed so far.
    pub rounds_completed: usize,
    /// Paired runs or splitting roots absorbed so far.
    pub jobs_done: usize,
    /// Supervisor restarts consumed so far.
    pub restarts: usize,
    /// Last backend fault, if the campaign ever failed.
    pub last_error: Option<String>,
    /// Exact resume point at the last completed round.
    pub checkpoint: Checkpoint,
}

/// One entry in the control-plane event log — the diagnosable record
/// of session-level and campaign-level incidents that the old blocking
/// server silently swallowed.
#[derive(Debug, Clone, PartialEq)]
pub enum ControlEvent {
    /// A session connected (or was handed to the server).
    SessionOpened {
        /// Server-local session number.
        session: u64,
    },
    /// A session closed cleanly.
    SessionClosed {
        /// Server-local session number.
        session: u64,
    },
    /// A session died with a transport or protocol error.
    SessionError {
        /// Server-local session number.
        session: u64,
        /// What went wrong.
        error: String,
    },
    /// An accepted TCP client never became a session.
    HandshakeFailed {
        /// What went wrong.
        error: String,
    },
    /// A campaign was created.
    CampaignCreated {
        /// The campaign.
        id: CampaignId,
    },
    /// A campaign reached its target or budget.
    CampaignFinished {
        /// The campaign.
        id: CampaignId,
    },
    /// The backend faulted while running a campaign. The message
    /// preserves the typed fault (e.g. "every shard was lost …").
    CampaignFailed {
        /// The campaign.
        id: CampaignId,
        /// The typed fault detail.
        error: String,
    },
    /// The supervisor revived a failed campaign from its checkpoint.
    CampaignRestarted {
        /// The campaign.
        id: CampaignId,
        /// Which restart this is (1-based).
        attempt: usize,
    },
    /// An operator paused a campaign.
    CampaignPaused {
        /// The campaign.
        id: CampaignId,
    },
    /// An operator resumed a campaign.
    CampaignResumed {
        /// The campaign.
        id: CampaignId,
    },
    /// An operator cancelled a campaign.
    CampaignCancelled {
        /// The campaign.
        id: CampaignId,
    },
}

impl fmt::Display for ControlEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ControlEvent::SessionOpened { session } => write!(f, "session {session}: opened"),
            ControlEvent::SessionClosed { session } => write!(f, "session {session}: closed"),
            ControlEvent::SessionError { session, error } => {
                write!(f, "session {session}: error: {error}")
            }
            ControlEvent::HandshakeFailed { error } => write!(f, "handshake failed: {error}"),
            ControlEvent::CampaignCreated { id } => write!(f, "{id}: created"),
            ControlEvent::CampaignFinished { id } => write!(f, "{id}: finished"),
            ControlEvent::CampaignFailed { id, error } => write!(f, "{id}: failed: {error}"),
            ControlEvent::CampaignRestarted { id, attempt } => {
                write!(f, "{id}: restarted from checkpoint (attempt {attempt})")
            }
            ControlEvent::CampaignPaused { id } => write!(f, "{id}: paused"),
            ControlEvent::CampaignResumed { id } => write!(f, "{id}: resumed"),
            ControlEvent::CampaignCancelled { id } => write!(f, "{id}: cancelled"),
        }
    }
}

/// A shared, bounded, append-only log of [`ControlEvent`]s.
///
/// Clone handles freely — all clones view the same log. The server
/// records into it from its readiness loop; tests and operators drain
/// it to diagnose misbehaving clients and supervisor activity.
#[derive(Debug, Clone, Default)]
pub struct EventLog {
    inner: Arc<Mutex<Vec<ControlEvent>>>,
}

impl EventLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one event, dropping the oldest past the retention cap.
    pub fn record(&self, event: ControlEvent) {
        // audit: allow(panic_policy, event log lock poisoning propagates a prior panic)
        let mut log = self.inner.lock().expect("event log poisoned");
        if log.len() >= EVENT_LOG_CAP {
            log.remove(0);
        }
        log.push(event);
    }

    /// Removes and returns every retained event, oldest first.
    pub fn drain(&self) -> Vec<ControlEvent> {
        // audit: allow(panic_policy, event log lock poisoning propagates a prior panic)
        let mut log = self.inner.lock().expect("event log poisoned");
        std::mem::take(&mut *log)
    }

    /// Returns a copy of every retained event without clearing the log.
    pub fn snapshot(&self) -> Vec<ControlEvent> {
        // audit: allow(panic_policy, event log lock poisoning propagates a prior panic)
        self.inner.lock().expect("event log poisoned").clone()
    }
}

/// Anything that can run campaign jobs *fallibly* for the control
/// plane: the sharded fleet in production, or a rigged backend in
/// supervisor-restart tests.
///
/// Errors are typed ([`ServeError`]), never panics — this is what lets
/// the control plane carry fault detail like
/// [`ServeError::AllShardsLost`] into the event log and wire events
/// instead of a generic "campaign execution panicked" string.
pub trait CampaignBackend: Send + Sync {
    /// Runs paired jobs, returning outcomes in job order.
    fn run_pair_jobs(&self, jobs: &[PairedJob]) -> Result<Vec<PairedOutcome>, ServeError>;
    /// Runs splitting roots, returning outcomes in job order.
    fn run_split_jobs(&self, jobs: &[SplitJob]) -> Result<Vec<SplitOutcome>, ServeError>;
}

impl CampaignBackend for ShardedBackend {
    fn run_pair_jobs(&self, jobs: &[PairedJob]) -> Result<Vec<PairedOutcome>, ServeError> {
        self.try_run_pairs(jobs)
    }

    fn run_split_jobs(&self, jobs: &[SplitJob]) -> Result<Vec<SplitOutcome>, ServeError> {
        self.try_run_splits(jobs)
    }
}

/// What [`ControlPlane::tick`] reports back to the caller (the server
/// fans these out to streaming sessions).
#[derive(Debug, Clone, PartialEq)]
pub enum CampaignNotice {
    /// A campaign completed a round.
    Round {
        /// The campaign.
        id: CampaignId,
        /// The completed round.
        round: RoundEvent,
    },
    /// A campaign finished.
    Finished {
        /// The campaign.
        id: CampaignId,
        /// Its terminal result.
        result: CampaignResult,
    },
    /// A campaign failed terminally (restart budget exhausted, or
    /// unsupervised).
    Failed {
        /// The campaign.
        id: CampaignId,
        /// The typed fault detail.
        error: String,
    },
    /// The supervisor restarted a campaign from its checkpoint.
    Restarted {
        /// The campaign.
        id: CampaignId,
        /// Which restart this is (1-based).
        attempt: usize,
    },
}

/// Either campaign family's stepper, erased behind one dispatch point.
enum Engine {
    Paired(Box<CampaignStepper>),
    Splitting(Box<SplitStepper>),
}

impl fmt::Debug for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Engine::Paired(_) => f.write_str("Engine::Paired"),
            Engine::Splitting(_) => f.write_str("Engine::Splitting"),
        }
    }
}

/// A round in flight: the immutable plan plus the outcomes collected
/// so far (the cursor is `outcomes.len()`).
#[derive(Debug)]
enum Inflight {
    Paired {
        planned: PlannedRound,
        outcomes: Vec<PairedOutcome>,
    },
    Splitting {
        planned: PlannedSplitRound,
        outcomes: Vec<SplitOutcome>,
    },
}

/// One managed campaign.
#[derive(Debug)]
struct Campaign {
    id: CampaignId,
    spec: CampaignSpec,
    engine: Engine,
    state: CampaignState,
    inflight: Option<Inflight>,
    /// Nominal work dispatched so far — the fair-share key.
    cost: u64,
    restarts: usize,
    supervised: bool,
    last_error: Option<String>,
    result: Option<CampaignResult>,
}

/// The multiplexing coordinator: owns every campaign, advances them
/// fairly over one shared backend, and supervises failures.
pub struct ControlPlane {
    runner: EncounterRunner,
    backend: Arc<dyn CampaignBackend>,
    log: EventLog,
    campaigns: BTreeMap<u64, Campaign>,
    next_id: u64,
    max_restarts: usize,
}

impl fmt::Debug for ControlPlane {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ControlPlane")
            .field("campaigns", &self.campaigns.len())
            .field("next_id", &self.next_id)
            .field("max_restarts", &self.max_restarts)
            .finish_non_exhaustive()
    }
}

impl ControlPlane {
    /// Creates a control plane over `backend`, with a fresh event log
    /// and the default restart budget of 3.
    pub fn new(runner: EncounterRunner, backend: Arc<dyn CampaignBackend>) -> Self {
        ControlPlane {
            runner,
            backend,
            log: EventLog::new(),
            campaigns: BTreeMap::new(),
            next_id: 0,
            max_restarts: 3,
        }
    }

    /// Shares `log` instead of the plane's own (the server passes its
    /// log so session and campaign events interleave in one record).
    pub fn with_log(mut self, log: EventLog) -> Self {
        self.log = log;
        self
    }

    /// Overrides the per-campaign supervisor restart budget.
    pub fn with_max_restarts(mut self, max_restarts: usize) -> Self {
        self.max_restarts = max_restarts;
        self
    }

    /// A handle to the event log.
    pub fn log(&self) -> EventLog {
        self.log.clone()
    }

    /// Creates a campaign from `spec`, optionally resuming from a
    /// checkpoint. `supervised` campaigns are restarted from their
    /// checkpoint on backend faults; unsupervised ones fail fast
    /// (the legacy `RunCampaign` semantics).
    pub fn create(
        &mut self,
        spec: CampaignSpec,
        from: Option<&Checkpoint>,
        supervised: bool,
    ) -> Result<CampaignId, String> {
        let engine = Self::build_engine(&self.runner, &spec, from)?;
        let id = CampaignId(self.next_id);
        self.next_id += 1;
        let finished = match &engine {
            Engine::Paired(s) => s.is_finished(),
            Engine::Splitting(s) => s.is_finished(),
        };
        let mut campaign = Campaign {
            id,
            spec,
            engine,
            state: CampaignState::Running,
            inflight: None,
            cost: 0,
            restarts: 0,
            supervised,
            last_error: None,
            result: None,
        };
        // A checkpoint of an already-finished campaign creates it in
        // its terminal state so Status/Stream answer immediately.
        if finished {
            campaign.state = CampaignState::Finished;
            campaign.result = Some(Self::engine_result(&campaign.engine));
        }
        self.log.record(ControlEvent::CampaignCreated { id });
        self.campaigns.insert(id.0, campaign);
        Ok(id)
    }

    fn build_engine(
        runner: &EncounterRunner,
        spec: &CampaignSpec,
        from: Option<&Checkpoint>,
    ) -> Result<Engine, String> {
        match spec {
            CampaignSpec::Paired { request } => {
                let planner = CampaignPlanner::new(runner.clone(), request.config)
                    .model(request.model)
                    .stratification(Stratification::new(request.cpa_bins));
                let stepper = match from {
                    None if request.uniform => {
                        planner.uniform_stepper().map_err(|e| e.to_string())?
                    }
                    None => planner.stepper().map_err(|e| e.to_string())?,
                    Some(Checkpoint::Paired { checkpoint }) => {
                        if checkpoint.adaptive == request.uniform {
                            return Err(String::from(
                                "checkpoint allocation mode does not match the request",
                            ));
                        }
                        planner.resume(checkpoint).map_err(|e| e.to_string())?
                    }
                    Some(Checkpoint::Splitting { .. }) => {
                        return Err(String::from(
                            "cannot resume a paired campaign from a splitting checkpoint",
                        ));
                    }
                };
                Ok(Engine::Paired(Box::new(stepper)))
            }
            CampaignSpec::Splitting { request } => {
                let planner = SplitPlanner::new(runner.clone(), request.config)
                    .model(request.model)
                    .stratification(Stratification::new(request.cpa_bins));
                let stepper = match from {
                    None => planner.stepper().map_err(|e| e.to_string())?,
                    Some(Checkpoint::Splitting { checkpoint }) => {
                        planner.resume(checkpoint).map_err(|e| e.to_string())?
                    }
                    Some(Checkpoint::Paired { .. }) => {
                        return Err(String::from(
                            "cannot resume a splitting campaign from a paired checkpoint",
                        ));
                    }
                };
                Ok(Engine::Splitting(Box::new(stepper)))
            }
        }
    }

    fn engine_checkpoint(engine: &Engine) -> Checkpoint {
        match engine {
            Engine::Paired(s) => Checkpoint::Paired {
                checkpoint: s.checkpoint(),
            },
            Engine::Splitting(s) => Checkpoint::Splitting {
                checkpoint: s.checkpoint(),
            },
        }
    }

    fn engine_result(engine: &Engine) -> CampaignResult {
        match engine {
            Engine::Paired(s) => CampaignResult::Paired {
                outcome: s.outcome(),
            },
            Engine::Splitting(s) => CampaignResult::Splitting {
                outcome: s.outcome(),
            },
        }
    }

    /// Every campaign the plane has ever managed, in creation order.
    pub fn campaign_ids(&self) -> Vec<CampaignId> {
        self.campaigns.values().map(|c| c.id).collect()
    }

    /// Current status of `id`, if known.
    pub fn status(&self, id: CampaignId) -> Option<CampaignStatus> {
        let c = self.campaigns.get(&id.0)?;
        let (rounds_completed, jobs_done) = match &c.engine {
            Engine::Paired(s) => (s.rounds().len(), s.total_runs()),
            Engine::Splitting(s) => (s.rounds().len(), s.total_roots()),
        };
        Some(CampaignStatus {
            id,
            state: c.state,
            rounds_completed,
            jobs_done,
            restarts: c.restarts,
            last_error: c.last_error.clone(),
            checkpoint: Self::engine_checkpoint(&c.engine),
        })
    }

    /// Completed rounds of `id` so far, for stream replay.
    pub fn rounds(&self, id: CampaignId) -> Option<Vec<RoundEvent>> {
        let c = self.campaigns.get(&id.0)?;
        Some(match &c.engine {
            Engine::Paired(s) => s
                .rounds()
                .iter()
                .map(|summary| RoundEvent::Paired {
                    summary: summary.clone(),
                })
                .collect(),
            Engine::Splitting(s) => s
                .rounds()
                .iter()
                .map(|summary| RoundEvent::Splitting {
                    summary: summary.clone(),
                })
                .collect(),
        })
    }

    /// Terminal result of `id`, if it finished.
    pub fn result(&self, id: CampaignId) -> Option<&CampaignResult> {
        self.campaigns.get(&id.0)?.result.as_ref()
    }

    /// Last recorded fault of `id`, if it ever failed.
    pub fn last_error(&self, id: CampaignId) -> Option<String> {
        self.campaigns.get(&id.0)?.last_error.clone()
    }

    /// Holds a running campaign. Its in-flight partial round is kept.
    pub fn pause(&mut self, id: CampaignId) -> Result<(), String> {
        let c = Self::known(&mut self.campaigns, id)?;
        match c.state {
            CampaignState::Running => {
                c.state = CampaignState::Paused;
                self.log.record(ControlEvent::CampaignPaused { id });
                Ok(())
            }
            other => Err(format!("{id} is {other}, not running")),
        }
    }

    /// Releases a paused campaign, or manually revives a failed one
    /// (dropping its partial round — it replans from the checkpoint).
    pub fn resume(&mut self, id: CampaignId) -> Result<(), String> {
        let c = Self::known(&mut self.campaigns, id)?;
        match c.state {
            CampaignState::Paused => {
                c.state = CampaignState::Running;
                self.log.record(ControlEvent::CampaignResumed { id });
                Ok(())
            }
            CampaignState::Failed => {
                c.state = CampaignState::Running;
                c.inflight = None;
                self.log.record(ControlEvent::CampaignResumed { id });
                Ok(())
            }
            other => Err(format!("{id} is {other}, cannot resume")),
        }
    }

    /// Cancels a live campaign, returning its exact resume point. The
    /// entry stays queryable in its `Cancelled` state.
    pub fn cancel(&mut self, id: CampaignId) -> Result<Checkpoint, String> {
        let c = Self::known(&mut self.campaigns, id)?;
        match c.state {
            CampaignState::Finished | CampaignState::Cancelled => {
                Err(format!("{id} is already {}", c.state))
            }
            _ => {
                c.state = CampaignState::Cancelled;
                c.inflight = None;
                self.log.record(ControlEvent::CampaignCancelled { id });
                Ok(Self::engine_checkpoint(&c.engine))
            }
        }
    }

    fn known(
        campaigns: &mut BTreeMap<u64, Campaign>,
        id: CampaignId,
    ) -> Result<&mut Campaign, String> {
        campaigns.get_mut(&id.0).ok_or(format!("unknown {id}"))
    }

    /// Whether a failed campaign is about to be revived by the
    /// supervisor (as opposed to terminally failed).
    pub fn restart_pending(&self, id: CampaignId) -> bool {
        self.campaigns.get(&id.0).is_some_and(|c| {
            c.state == CampaignState::Failed && c.supervised && c.restarts < self.max_restarts
        })
    }

    /// Whether any campaign is eligible for dispatch (running, or
    /// failed-but-restartable).
    pub fn has_runnable(&self) -> bool {
        self.campaigns.values().any(|c| {
            c.state == CampaignState::Running
                || (c.state == CampaignState::Failed
                    && c.supervised
                    && c.restarts < self.max_restarts)
        })
    }

    /// Advances the plane one step: revives restartable failures, then
    /// dispatches one quantum for the least-served running campaign.
    ///
    /// Returns the notices produced (completed rounds, terminal
    /// results, failures, restarts) for the server to fan out.
    pub fn tick(&mut self) -> Vec<CampaignNotice> {
        let mut notices = Vec::new();
        self.supervise(&mut notices);
        let Some(id) = self.pick_runnable() else {
            return notices;
        };
        self.dispatch_quantum(id, &mut notices);
        notices
    }

    /// The supervisor pass: revive failed, supervised campaigns with
    /// restart budget left, rebuilding their engine from the
    /// checkpoint (the same path an operator resume takes).
    fn supervise(&mut self, notices: &mut Vec<CampaignNotice>) {
        let runner = self.runner.clone();
        for c in self.campaigns.values_mut() {
            if c.state != CampaignState::Failed || !c.supervised || c.restarts >= self.max_restarts
            {
                continue;
            }
            c.restarts += 1;
            c.inflight = None;
            let checkpoint = Self::engine_checkpoint(&c.engine);
            c.engine = Self::build_engine(&runner, &c.spec, Some(&checkpoint))
                // audit: allow(panic_policy, a checkpoint taken from a live engine always resumes)
                .expect("a checkpoint taken from a live engine must resume");
            c.state = CampaignState::Running;
            self.log.record(ControlEvent::CampaignRestarted {
                id: c.id,
                attempt: c.restarts,
            });
            notices.push(CampaignNotice::Restarted {
                id: c.id,
                attempt: c.restarts,
            });
        }
    }

    /// Fair share: the running campaign with the least accumulated
    /// nominal cost (creation order breaks ties via the BTreeMap).
    fn pick_runnable(&self) -> Option<CampaignId> {
        self.campaigns
            .values()
            .filter(|c| c.state == CampaignState::Running)
            .min_by_key(|c| (c.cost, c.id.0))
            .map(|c| c.id)
    }

    /// Plans the campaign's next round if none is in flight, runs one
    /// quantum of it on the backend, and completes the round when the
    /// last outcome lands.
    fn dispatch_quantum(&mut self, id: CampaignId, notices: &mut Vec<CampaignNotice>) {
        let c = self
            .campaigns
            .get_mut(&id.0)
            // audit: allow(panic_policy, the scheduler only picks ids present in the map)
            .expect("picked campaign exists");
        if c.inflight.is_none() {
            let planned = match &mut c.engine {
                Engine::Paired(s) => s.plan_round().map(|planned| Inflight::Paired {
                    planned,
                    outcomes: Vec::new(),
                }),
                Engine::Splitting(s) => s.plan_round().map(|planned| Inflight::Splitting {
                    planned,
                    outcomes: Vec::new(),
                }),
            };
            match planned {
                Some(inflight) => c.inflight = Some(inflight),
                None => {
                    // Nothing left to plan: the campaign is finished.
                    c.state = CampaignState::Finished;
                    let result = Self::engine_result(&c.engine);
                    c.result = Some(result.clone());
                    self.log.record(ControlEvent::CampaignFinished { id });
                    notices.push(CampaignNotice::Finished { id, result });
                    return;
                }
            }
        }
        // audit: allow(panic_policy, inflight was set by the plan step immediately above)
        let mut inflight = c.inflight.take().expect("round planned above");
        let step = match &mut inflight {
            Inflight::Paired { planned, outcomes } => {
                let end = (outcomes.len() + PAIR_QUANTUM).min(planned.jobs.len());
                let slice = &planned.jobs[outcomes.len()..end];
                let cost = slice.len() as u64 * PAIR_COST;
                match self.backend.run_pair_jobs(slice) {
                    Ok(mut got) => {
                        outcomes.append(&mut got);
                        Ok((cost, outcomes.len() == planned.jobs.len()))
                    }
                    Err(e) => Err(e),
                }
            }
            Inflight::Splitting { planned, outcomes } => {
                let end = (outcomes.len() + SPLIT_QUANTUM).min(planned.jobs.len());
                let slice = &planned.jobs[outcomes.len()..end];
                let cost = slice.len() as u64 * SPLIT_COST;
                match self.backend.run_split_jobs(slice) {
                    Ok(mut got) => {
                        outcomes.append(&mut got);
                        Ok((cost, outcomes.len() == planned.jobs.len()))
                    }
                    Err(e) => Err(e),
                }
            }
        };
        match step {
            Ok((cost, round_complete)) => {
                c.cost += cost;
                if !round_complete {
                    c.inflight = Some(inflight);
                    return;
                }
                let round = match (inflight, &mut c.engine) {
                    (Inflight::Paired { planned, outcomes }, Engine::Paired(s)) => {
                        RoundEvent::Paired {
                            summary: s.complete_round(&planned, &outcomes),
                        }
                    }
                    (Inflight::Splitting { planned, outcomes }, Engine::Splitting(s)) => {
                        RoundEvent::Splitting {
                            summary: s.complete_round(&planned, &outcomes),
                        }
                    }
                    // audit: allow(panic_policy, the inflight family was built from this engine family)
                    _ => unreachable!("in-flight round family matches the engine family"),
                };
                notices.push(CampaignNotice::Round { id, round });
                let finished = match &c.engine {
                    Engine::Paired(s) => s.is_finished(),
                    Engine::Splitting(s) => s.is_finished(),
                };
                if finished {
                    c.state = CampaignState::Finished;
                    let result = Self::engine_result(&c.engine);
                    c.result = Some(result.clone());
                    self.log.record(ControlEvent::CampaignFinished { id });
                    notices.push(CampaignNotice::Finished { id, result });
                }
            }
            Err(e) => {
                let error = e.to_string();
                c.state = CampaignState::Failed;
                c.last_error = Some(error.clone());
                // The partial round is dropped: a restart replans it
                // from the checkpoint, which regenerates the identical
                // jobs — determinism makes retry exact.
                c.inflight = None;
                self.log.record(ControlEvent::CampaignFailed {
                    id,
                    error: error.clone(),
                });
                let terminal = !c.supervised || c.restarts >= self.max_restarts;
                if terminal {
                    notices.push(CampaignNotice::Failed { id, error });
                }
            }
        }
    }
}
