use serde::{Deserialize, Serialize};
use uavca_encounter::{EncounterParams, ParamRanges, NUM_PARAMS};
use uavca_evo::Bounds;

/// The searchable scenario space: the paper's 9-parameter encounter
/// encoding with box constraints, exposed as GA genome [`Bounds`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct ScenarioSpace {
    ranges: ParamRanges,
}

impl ScenarioSpace {
    /// Wraps explicit parameter ranges.
    pub fn new(ranges: ParamRanges) -> Self {
        Self { ranges }
    }

    /// The underlying parameter ranges.
    pub fn ranges(&self) -> &ParamRanges {
        &self.ranges
    }

    /// The GA genome bounds (9 genes in the canonical parameter order).
    pub fn bounds(&self) -> Bounds {
        // audit: allow(panic_policy, ranges were validated when the space was built)
        Bounds::new(self.ranges.bounds.to_vec()).expect("ranges are well-formed intervals")
    }

    /// Decodes a genome into encounter parameters.
    ///
    /// # Panics
    ///
    /// Panics if `genes.len() != 9` — genomes in this space always have 9
    /// genes by construction.
    pub fn decode(&self, genes: &[f64]) -> EncounterParams {
        EncounterParams::from_slice(genes)
    }

    /// Encodes parameters as a genome.
    pub fn encode(&self, params: &EncounterParams) -> [f64; NUM_PARAMS] {
        params.to_vector()
    }

    /// Normalizes a genome to the unit box (for clustering / distance
    /// computations where the heterogeneous units would otherwise dominate).
    pub fn normalize(&self, genes: &[f64]) -> Vec<f64> {
        genes
            .iter()
            .enumerate()
            .map(|(i, &x)| {
                let (lo, hi) = self.ranges.bound(i);
                if hi > lo {
                    (x - lo) / (hi - lo)
                } else {
                    0.0
                }
            })
            .collect()
    }

    /// Maps a unit-box vector back to parameter space.
    pub fn denormalize(&self, unit: &[f64]) -> Vec<f64> {
        unit.iter()
            .enumerate()
            .map(|(i, &u)| {
                let (lo, hi) = self.ranges.bound(i);
                lo + u.clamp(0.0, 1.0) * (hi - lo)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn bounds_match_ranges() {
        let space = ScenarioSpace::default();
        let bounds = space.bounds();
        assert_eq!(bounds.len(), NUM_PARAMS);
        for i in 0..NUM_PARAMS {
            assert_eq!(bounds.interval(i), space.ranges().bound(i));
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let space = ScenarioSpace::default();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let p = space.ranges().sample_uniform(&mut rng);
            let genes = space.encode(&p);
            assert_eq!(space.decode(&genes), p);
        }
    }

    #[test]
    fn normalize_round_trip() {
        let space = ScenarioSpace::default();
        let mut rng = StdRng::seed_from_u64(2);
        let p = space.ranges().sample_uniform(&mut rng);
        let genes = space.encode(&p);
        let unit = space.normalize(&genes);
        assert!(unit.iter().all(|&u| (0.0..=1.0).contains(&u)), "{unit:?}");
        let back = space.denormalize(&unit);
        for (a, b) in genes.iter().zip(&back) {
            assert!((a - b).abs() < 1e-9);
        }
    }
}
