//! Adaptive stratified Monte-Carlo campaigns with importance splitting.
//!
//! Uniform Monte-Carlo wastes almost its entire budget on encounters
//! whose outcome is a foregone conclusion: either far outside any
//! conflict, or so deep inside the NMAC cylinder that equipped and
//! unequipped runs collide alike. The information for a *risk ratio*
//! lives where the two arms **disagree** — and under the statistical
//! encounter model that region concentrates in a few strata (small CPA
//! miss distances, specific geometries).
//!
//! [`CampaignPlanner`] exploits that structure:
//!
//! 1. **Stratify.** The [`StatisticalEncounterModel`] is partitioned by a
//!    [`Stratification`] (geometry class × CPA band) with exact
//!    per-stratum mass, so stratified estimates stay unbiased.
//! 2. **Pilot.** A fixed number of [`PairedJob`]s per stratum measures
//!    each stratum's joint equipped/unequipped outcome distribution (the
//!    per-pair 2×2 [`PairTable`]).
//! 3. **Reallocate.** Each refinement round splits its budget across
//!    strata by Neyman allocation on each stratum's contribution to the
//!    *paired* log-risk-ratio variance (see [`neyman_scores`]), so the
//!    budget chases the variance that actually bounds the CI.
//! 4. **Stop early.** After every round the combined paired risk-ratio CI
//!    is recomputed; the campaign ends as soon as its half-width reaches
//!    the configured target.
//!
//! # The paired estimator
//!
//! The two arms of every pair replay the *same* encounter on the *same*
//! seed, so the per-pair NMAC indicators are strongly positively
//! correlated — an avoidance system mostly rescues a subset of the raw
//! conflicts. Each stratum therefore keeps the full 2×2 table of joint
//! outcomes (both-NMAC / equipped-only / unequipped-only / neither)
//! rather than just the two marginals: the marginals alone cannot
//! recover the between-arm covariance, and `disagree` alone loses which
//! arm disagreed. The combined log-ratio variance is the stratified
//! delta-method expression *including* the covariance term,
//! `Var(p̂_e)/p_e² + Var(p̂_u)/p_u² − 2·Cov(p̂_e,p̂_u)/(p_e·p_u)`
//! (see [`paired_covariance`] and [`RatioEstimate::paired`]), which is
//! never wider than the covariance-free interval. A stratified
//! delete-one-pair jackknife ([`jackknife_ratio`]) is computed alongside
//! as an independent cross-check of the delta-method interval.
//!
//! # Determinism
//!
//! Every job seed derives from `(campaign_seed, stratum, round, index)`
//! via [`campaign_job_seed`] — never from execution order — and batches
//! run on the deterministic [`BatchRunner`], so a campaign's every number
//! is bit-identical for any worker-thread count and reproducible from its
//! config alone (enforced by `tests/campaign_determinism.rs`).

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize, Value};
use uavca_encounter::{StatisticalEncounterModel, Stratification, Stratum};
use uavca_exec::{Backend, Executor};

use crate::montecarlo::{finite_or_null, float_or};
use crate::{BatchRunner, EncounterRunner, PairedJob, PairedOutcome, RateEstimate};

/// 97.5th percentile of the standard normal (95% two-sided intervals).
pub(crate) const Z95: f64 = 1.959_963_984_540_054;

/// Domain-separation tag for the simulation-seed stream (vs the
/// parameter-sampling stream) derived from one job seed.
pub(crate) const SIM_STREAM: u64 = 0x5349_4d5f_5354_5245; // "SIM_STRE"

pub(crate) fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The campaign seed-derivation rule: a job's base seed is a pure
/// function of `(campaign_seed, stratum_index, round, index_in_round)`.
///
/// This is what keeps adaptive campaigns bit-identical across thread
/// counts — reallocation changes *how many* jobs a stratum gets, but a
/// given `(stratum, round, index)` job always replays the same encounter
/// and noise, no matter which worker runs it or when.
pub fn campaign_job_seed(campaign_seed: u64, stratum: usize, round: usize, index: usize) -> u64 {
    let mut h = splitmix64(campaign_seed ^ 0x4341_4d50_4149_474e); // "CAMPAIGN"
    h = splitmix64(h ^ stratum as u64);
    h = splitmix64(h ^ round as u64);
    h ^ splitmix64(h ^ index as u64)
}

/// The splitting branch-seed rule: the RNG seed for branch `branch` taken
/// at the `node`-th checkpoint crossing level `level` of a splitting root
/// whose base seed is `root_seed`.
///
/// Like [`campaign_job_seed`], this is a pure function of its arguments,
/// which is what keeps multilevel-splitting campaigns bit-identical
/// across thread and shard counts: the branch tree is walked
/// depth-first, so `(level, node, branch)` identifies a branch uniquely
/// regardless of which worker replays the root. A distinct domain
/// constant separates the branch stream from the job-seed stream so a
/// branch seed can never collide with a sibling root's simulation seed.
pub fn split_branch_seed(root_seed: u64, level: usize, node: u64, branch: usize) -> u64 {
    let mut h = splitmix64(root_seed ^ 0x5350_4c49_545f_4252); // "SPLIT_BR"
    h = splitmix64(h ^ level as u64);
    h = splitmix64(h ^ node);
    h ^ splitmix64(h ^ branch as u64)
}

/// Configuration of an adaptive stratified campaign.
///
/// # Serialized form
///
/// The disable-early-stop sentinel `target_half_width = +∞` serializes
/// as JSON `null` (the bare `Infinity` literal is not valid JSON) and
/// deserializes back to `+∞`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CampaignConfig {
    /// Campaign seed: the single source of every job seed.
    pub seed: u64,
    /// Paired runs per stratum in the pilot round (round 0). Must be at
    /// least 1: a campaign with no pilot has no tallies to reallocate on.
    pub pilot_per_stratum: usize,
    /// Paired runs added by each refinement round. Must be at least 1.
    pub round_runs: usize,
    /// Maximum refinement rounds after the pilot. Must be at least 1.
    pub max_rounds: usize,
    /// Early-stop target on the risk-ratio CI half-width (the maximum
    /// one-sided width — see [`RatioEstimate::half_width`]). Must be
    /// positive; pass [`f64::INFINITY`] to disable early stopping and
    /// always run `max_rounds` rounds. Zero, negative and NaN targets are
    /// rejected by [`CampaignConfig::validate`].
    pub target_half_width: f64,
    /// Worker threads for the simulation batches (0 = hardware
    /// parallelism). Results are bit-identical for every setting.
    pub threads: usize,
}

impl Serialize for CampaignConfig {
    fn serialize(&self) -> Value {
        Value::Object(vec![
            ("seed".to_string(), self.seed.serialize()),
            (
                "pilot_per_stratum".to_string(),
                self.pilot_per_stratum.serialize(),
            ),
            ("round_runs".to_string(), self.round_runs.serialize()),
            ("max_rounds".to_string(), self.max_rounds.serialize()),
            (
                "target_half_width".to_string(),
                finite_or_null(self.target_half_width),
            ),
            ("threads".to_string(), self.threads.serialize()),
        ])
    }
}

impl Deserialize for CampaignConfig {
    fn deserialize(v: &Value) -> Result<Self, serde::Error> {
        Ok(CampaignConfig {
            seed: u64::deserialize(v.field("seed")?)?,
            pilot_per_stratum: usize::deserialize(v.field("pilot_per_stratum")?)?,
            round_runs: usize::deserialize(v.field("round_runs")?)?,
            max_rounds: usize::deserialize(v.field("max_rounds")?)?,
            target_half_width: float_or(v.field("target_half_width")?, f64::INFINITY)?,
            threads: usize::deserialize(v.field("threads")?)?,
        })
    }
}

impl Default for CampaignConfig {
    fn default() -> Self {
        Self {
            seed: 0,
            pilot_per_stratum: 25,
            round_runs: 300,
            max_rounds: 10,
            target_half_width: 0.1,
            threads: 0,
        }
    }
}

impl CampaignConfig {
    /// Validates the configuration, rejecting the degenerate shapes that
    /// would otherwise silently produce an empty or meaningless
    /// [`CampaignOutcome`]: a zero pilot (no tallies to reallocate on),
    /// zero refinement rounds or zero runs per round (a "campaign" that
    /// never refines), and a zero/negative/NaN half-width target (use
    /// [`f64::INFINITY`] to disable early stopping explicitly).
    ///
    /// Every [`CampaignPlanner`] run path calls this up front.
    ///
    /// # Errors
    ///
    /// Returns the first [`CampaignConfigError`] violated, checked in
    /// field order.
    pub fn validate(&self) -> Result<(), CampaignConfigError> {
        if self.pilot_per_stratum == 0 {
            return Err(CampaignConfigError::ZeroPilotBudget);
        }
        if self.round_runs == 0 {
            return Err(CampaignConfigError::ZeroRoundRuns);
        }
        if self.max_rounds == 0 {
            return Err(CampaignConfigError::ZeroRounds);
        }
        if self.target_half_width.is_nan() || self.target_half_width <= 0.0 {
            return Err(CampaignConfigError::NonPositiveTargetHalfWidth);
        }
        Ok(())
    }
}

/// A degenerate [`CampaignConfig`] rejected by
/// [`CampaignConfig::validate`] before any simulation runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CampaignConfigError {
    /// `pilot_per_stratum` is zero: the pilot round would sample nothing
    /// and every reallocation would run on empty tallies.
    ZeroPilotBudget,
    /// `round_runs` is zero: refinement rounds would execute no jobs.
    ZeroRoundRuns,
    /// `max_rounds` is zero: the campaign would never refine the pilot.
    ZeroRounds,
    /// `target_half_width` is zero, negative or NaN. A campaign cannot
    /// reach a non-positive CI width; pass [`f64::INFINITY`] to disable
    /// early stopping instead.
    NonPositiveTargetHalfWidth,
}

impl std::fmt::Display for CampaignConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignConfigError::ZeroPilotBudget => {
                write!(f, "campaign config: pilot_per_stratum must be at least 1")
            }
            CampaignConfigError::ZeroRoundRuns => {
                write!(f, "campaign config: round_runs must be at least 1")
            }
            CampaignConfigError::ZeroRounds => {
                write!(f, "campaign config: max_rounds must be at least 1")
            }
            CampaignConfigError::NonPositiveTargetHalfWidth => write!(
                f,
                "campaign config: target_half_width must be positive \
                 (use f64::INFINITY to disable early stopping)"
            ),
        }
    }
}

impl std::error::Error for CampaignConfigError {}

/// The per-stratum 2×2 table of joint paired outcomes: how often the
/// equipped and unequipped replays of the same seed each ended in NMAC.
///
/// The four cells are the sufficient statistic of the paired estimator:
/// the marginal rates are `(both + one-arm-only)/runs` and the per-pair
/// covariance is `p_both − p_e·p_u`, which the combined risk-ratio CI
/// ([`RatioEstimate::paired`]) and the allocation scores
/// ([`neyman_scores`]) both need. The old scalar `disagree` count loses
/// the split between the two single-arm cells and cannot recover it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PairTable {
    /// Pairs where both arms ended in NMAC.
    pub both_nmac: usize,
    /// Pairs where only the equipped arm ended in NMAC (an *induced*
    /// collision: the avoidance system manufactured the NMAC).
    pub equipped_only: usize,
    /// Pairs where only the unequipped arm ended in NMAC (a *resolved*
    /// conflict: the avoidance system rescued it).
    pub unequipped_only: usize,
    /// Pairs where neither arm ended in NMAC.
    pub neither: usize,
}

impl PairTable {
    /// Total pairs recorded.
    pub fn runs(&self) -> usize {
        self.both_nmac + self.equipped_only + self.unequipped_only + self.neither
    }

    /// Equipped-arm NMAC count (marginal of the table).
    pub fn equipped_nmac(&self) -> usize {
        self.both_nmac + self.equipped_only
    }

    /// Unequipped-arm NMAC count (marginal of the table).
    pub fn unequipped_nmac(&self) -> usize {
        self.both_nmac + self.unequipped_only
    }

    /// Pairs whose two arms disagree on NMAC (the off-diagonal mass).
    pub fn disagree(&self) -> usize {
        self.equipped_only + self.unequipped_only
    }

    /// Adds every cell of `other` into this table — the table-level
    /// analogue of [`PairTable::absorb`], for pooling per-stratum tables
    /// into a campaign total without dropping any cell.
    pub fn merge(&mut self, other: &PairTable) {
        self.both_nmac += other.both_nmac;
        self.equipped_only += other.equipped_only;
        self.unequipped_only += other.unequipped_only;
        self.neither += other.neither;
    }

    /// Folds one paired outcome into the table.
    pub fn absorb(&mut self, pair: &PairedOutcome) {
        self.absorb_flags(pair.equipped.nmac, pair.unequipped.nmac);
    }

    /// Folds one `(equipped, unequipped)` NMAC indicator pair into the
    /// table — the cell rule behind [`PairTable::absorb`], exposed so the
    /// multi-aircraft campaign can tally per-aircraft-pair indicators
    /// that do not arrive as a scalar [`PairedOutcome`].
    pub fn absorb_flags(&mut self, equipped_nmac: bool, unequipped_nmac: bool) {
        match (equipped_nmac, unequipped_nmac) {
            (true, true) => self.both_nmac += 1,
            (true, false) => self.equipped_only += 1,
            (false, true) => self.unequipped_only += 1,
            (false, false) => self.neither += 1,
        }
    }

    /// Anscombe-smoothed `(p̃_e, p̃_u, c̃)` for variance work: a quarter
    /// pseudo-count in each of the four cells, so each marginal is the
    /// familiar `(events + ½)/(runs + 1)` and the joint cell is
    /// `(both + ¼)/(runs + 1)`. The per-pair covariance
    /// `c̃ = p̃_b − p̃_e·p̃_u` is clamped to `[0, √(ṽ_e·ṽ_u)]`: the lower
    /// clamp keeps a noisy negative sample covariance from *widening* the
    /// paired interval past the covariance-free one (identical-seed arms
    /// cannot be negatively correlated by construction), the upper is the
    /// Cauchy–Schwarz bound that keeps the paired variance non-negative.
    fn smoothed(&self) -> (f64, f64, f64) {
        let n = self.runs() as f64 + 1.0;
        let pe = (self.equipped_nmac() as f64 + 0.5) / n;
        let pu = (self.unequipped_nmac() as f64 + 0.5) / n;
        let pb = (self.both_nmac as f64 + 0.25) / n;
        let ve = pe * (1.0 - pe);
        let vu = pu * (1.0 - pu);
        let cov = (pb - pe * pu).clamp(0.0, (ve * vu).sqrt());
        (pe, pu, cov)
    }
}

/// A weighted (stratified) proportion with a normal-approximation 95% CI.
///
/// The point estimate is the exact stratified combination
/// `p̂ = Σ w_s·p̂_s`; the standard error uses the stratified variance
/// `Σ w_s²·p̃_s(1-p̃_s)/n_s` with Anscombe-smoothed per-stratum rates
/// (`p̃ = (e+½)/(n+1)`) so a stratum observed at 0 or 1 keeps a
/// non-degenerate variance contribution.
///
/// # Serialized form
///
/// With no sampled stratum the rate and standard error are undefined
/// (`NaN` in memory); they serialize as JSON `null` and deserialize back
/// to `NaN`, so emitted reports stay valid JSON.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeightedRate {
    /// Stratified point estimate (NaN when no stratum has trials).
    pub rate: f64,
    /// Stratified standard error (NaN when no stratum has trials).
    pub std_err: f64,
    /// Lower 95% bound, clamped to `[0, 1]`.
    pub ci_low: f64,
    /// Upper 95% bound, clamped to `[0, 1]`.
    pub ci_high: f64,
}

impl Serialize for WeightedRate {
    fn serialize(&self) -> Value {
        Value::Object(vec![
            ("rate".to_string(), finite_or_null(self.rate)),
            ("std_err".to_string(), finite_or_null(self.std_err)),
            ("ci_low".to_string(), Value::Float(self.ci_low)),
            ("ci_high".to_string(), Value::Float(self.ci_high)),
        ])
    }
}

impl Deserialize for WeightedRate {
    fn deserialize(v: &Value) -> Result<Self, serde::Error> {
        Ok(WeightedRate {
            rate: float_or(v.field("rate")?, f64::NAN)?,
            std_err: float_or(v.field("std_err")?, f64::NAN)?,
            ci_low: f64::deserialize(v.field("ci_low")?)?,
            ci_high: f64::deserialize(v.field("ci_high")?)?,
        })
    }
}

/// Total weight of the *sampled* strata — those with at least one trial
/// in `(weight, trials)` cells — the single renormalization denominator
/// every stratified moment divides by.
///
/// [`WeightedRate::combine`], [`paired_covariance`] and
/// [`jackknife_ratio`] must all renormalize by this same mass over the
/// same coverage criterion: the Cauchy–Schwarz argument that nests the
/// paired CI inside the unpaired one compares per-stratum terms built on
/// identical weights, so a drift in any one site's filter would silently
/// void the nesting guarantee.
fn covered_weight(cells: impl Iterator<Item = (f64, usize)>) -> f64 {
    cells.filter(|&(_, n)| n > 0).map(|(w, _)| w).sum()
}

impl WeightedRate {
    /// Combines per-stratum `(weight, events, trials)` cells. Strata with
    /// zero trials are excluded and the remaining weights renormalized
    /// (only possible before the pilot covers every stratum).
    pub fn combine(cells: &[(f64, usize, usize)]) -> WeightedRate {
        let covered = covered_weight(cells.iter().map(|&(w, _, n)| (w, n)));
        if covered <= 0.0 {
            return WeightedRate {
                rate: f64::NAN,
                std_err: f64::NAN,
                ci_low: 0.0,
                ci_high: 1.0,
            };
        }
        let mut rate = 0.0;
        let mut var = 0.0;
        for &(w, events, trials) in cells {
            if trials == 0 {
                continue;
            }
            let w = w / covered;
            let n = trials as f64;
            rate += w * events as f64 / n;
            let smoothed = (events as f64 + 0.5) / (n + 1.0);
            var += w * w * smoothed * (1.0 - smoothed) / n;
        }
        // The exact stratified combination of proportions lies in [0, 1];
        // clamp away float drift so the rate can never escape its own
        // (clamped) interval.
        let rate = rate.clamp(0.0, 1.0);
        let std_err = var.sqrt();
        WeightedRate {
            rate,
            std_err,
            ci_low: (rate - Z95 * std_err).max(0.0),
            ci_high: (rate + Z95 * std_err).min(1.0),
        }
    }

    /// Half the CI width.
    pub fn half_width(&self) -> f64 {
        (self.ci_high - self.ci_low) / 2.0
    }
}

impl std::fmt::Display for WeightedRate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.4} [95% CI {:.4}, {:.4}]",
            self.rate, self.ci_low, self.ci_high
        )
    }
}

/// The stratified between-arm covariance `Cov(p̂_e, p̂_u)` of the two
/// marginal rates of paired (identical-seed) samples:
/// `Σ w_s²·c̃_s/n_s` over sampled strata, with `c̃_s` the smoothed,
/// clamped per-pair covariance of stratum `s` (see
/// [`PairTable`]'s smoothing note) and weights renormalized over the
/// sampled strata exactly as [`WeightedRate::combine`] does.
///
/// Returns 0 when no stratum has runs (the ratio CI is undefined there
/// anyway). The result is always non-negative and bounded by
/// Cauchy–Schwarz against the two arms' variance contributions, so the
/// paired interval built from it can never be wider than the unpaired
/// one.
pub fn paired_covariance(weights: &[f64], tables: &[PairTable]) -> f64 {
    debug_assert_eq!(
        weights.len(),
        tables.len(),
        "one weight per stratum table — a mismatch would silently truncate"
    );
    let covered = covered_weight(weights.iter().zip(tables).map(|(&w, t)| (w, t.runs())));
    if covered <= 0.0 {
        return 0.0;
    }
    weights
        .iter()
        .zip(tables)
        .filter(|(_, t)| t.runs() > 0)
        .map(|(w, t)| {
            let w = w / covered;
            let (_, _, cov) = t.smoothed();
            w * w * cov / t.runs() as f64
        })
        .sum()
}

/// A ratio of two [`WeightedRate`]s with a log-scale 95% CI.
///
/// # Serialized form
///
/// The undefined markers (`NaN` ratio on a zero denominator, infinite
/// `ci_high`/`se_log` while either arm is event-free) serialize as JSON
/// `null` so emitted reports stay valid JSON; `null` deserializes back to
/// `NaN` for the ratio and `+∞` for the upper bound and standard error.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RatioEstimate {
    /// Point estimate `numerator / denominator` (NaN when the denominator
    /// is zero).
    pub ratio: f64,
    /// Lower 95% bound (0 when undefined).
    pub ci_low: f64,
    /// Upper 95% bound (infinite when undefined).
    pub ci_high: f64,
    /// Standard error of `ln(ratio)` — the log-scale spread the interval
    /// is built from (infinite when undefined).
    pub se_log: f64,
}

impl Serialize for RatioEstimate {
    fn serialize(&self) -> Value {
        Value::Object(vec![
            ("ratio".to_string(), finite_or_null(self.ratio)),
            ("ci_low".to_string(), Value::Float(self.ci_low)),
            ("ci_high".to_string(), finite_or_null(self.ci_high)),
            ("se_log".to_string(), finite_or_null(self.se_log)),
        ])
    }
}

impl Deserialize for RatioEstimate {
    fn deserialize(v: &Value) -> Result<Self, serde::Error> {
        Ok(RatioEstimate {
            ratio: float_or(v.field("ratio")?, f64::NAN)?,
            ci_low: f64::deserialize(v.field("ci_low")?)?,
            ci_high: float_or(v.field("ci_high")?, f64::INFINITY)?,
            se_log: float_or(v.field("se_log")?, f64::INFINITY)?,
        })
    }
}

impl RatioEstimate {
    /// The covariance-free delta-method CI on the log scale:
    /// `exp(ln r ∓ z·√(se_n²/p_n² + se_d²/p_d²))`.
    ///
    /// This treats the two arms as independent. For paired (identical
    /// seed) arms it over-states the variance — use
    /// [`RatioEstimate::paired`] there; this construction is kept as the
    /// conservative baseline the paired interval is compared against.
    /// When either rate is zero the interval is `[0, ∞)`.
    pub fn from_rates(numerator: &WeightedRate, denominator: &WeightedRate) -> RatioEstimate {
        Self::with_covariance(numerator, denominator, 0.0)
    }

    /// The *paired* delta-method CI on the log scale: the variance of
    /// `ln r̂` subtracts the between-arm covariance term,
    /// `se_n²/p_n² + se_d²/p_d² − 2·cov/(p_n·p_d)`, where `cov` is the
    /// stratified `Cov(p̂_n, p̂_d)` from [`paired_covariance`].
    ///
    /// Identical-seed arms are positively correlated (the equipped run
    /// mostly rescues a subset of the unequipped NMACs), so exploiting
    /// the covariance tightens the interval; `cov` is clamped to
    /// `[0, se_n·se_d]` so the result is *never* wider than
    /// [`RatioEstimate::from_rates`] on the same rates, and an overlarge
    /// caller-supplied covariance (beyond the Cauchy–Schwarz bound the
    /// arms' standard errors permit) cannot collapse the interval to a
    /// zero-width false certainty. When either rate is zero the interval
    /// is `[0, ∞)`: no early stop until both arms have events.
    pub fn paired(
        numerator: &WeightedRate,
        denominator: &WeightedRate,
        covariance: f64,
    ) -> RatioEstimate {
        let cap = numerator.std_err * denominator.std_err;
        let covariance = if cap.is_finite() && cap >= 0.0 {
            covariance.clamp(0.0, cap)
        } else {
            // Undefined std errors (NaN on empty arms) make the interval
            // undefined downstream anyway; only sanitize the sign here.
            covariance.max(0.0)
        };
        Self::with_covariance(numerator, denominator, covariance)
    }

    fn with_covariance(
        numerator: &WeightedRate,
        denominator: &WeightedRate,
        covariance: f64,
    ) -> RatioEstimate {
        let ratio = if denominator.rate > 0.0 {
            numerator.rate / denominator.rate
        } else {
            f64::NAN
        };
        if !(numerator.rate > 0.0 && denominator.rate > 0.0) {
            return RatioEstimate {
                ratio,
                ci_low: 0.0,
                ci_high: f64::INFINITY,
                se_log: f64::INFINITY,
            };
        }
        let var_log = (numerator.std_err / numerator.rate).powi(2)
            + (denominator.std_err / denominator.rate).powi(2)
            - 2.0 * covariance / (numerator.rate * denominator.rate);
        // The per-stratum Cauchy–Schwarz clamp keeps the true expression
        // non-negative; the max(0) only absorbs float drift.
        Self::from_log(ratio, var_log.max(0.0).sqrt())
    }

    /// Builds the log-symmetric interval `exp(ln ratio ∓ z·se_log)`.
    pub fn from_log(ratio: f64, se_log: f64) -> RatioEstimate {
        if ratio.is_nan() || ratio <= 0.0 || !se_log.is_finite() {
            return RatioEstimate {
                ratio,
                ci_low: 0.0,
                ci_high: f64::INFINITY,
                se_log: f64::INFINITY,
            };
        }
        RatioEstimate {
            ratio,
            ci_low: ratio * (-Z95 * se_log).exp(),
            ci_high: ratio * (Z95 * se_log).exp(),
            se_log,
        }
    }

    /// The **maximum one-sided width** `max(hi − ratio, ratio − lo)`;
    /// infinite while the interval is undefined (the early-stop
    /// comparison then never triggers).
    ///
    /// A log-symmetric interval is arithmetically *asymmetric* — the
    /// upper side `r·(e^{z·se} − 1)` is always the wider one — so the
    /// naive `(hi − lo)/2` reading under-states how far the upper bound
    /// sits from the point estimate. Defining the stop criterion as the
    /// worse side guarantees that when a campaign stops at target `t`,
    /// *neither* bound is further than `t` from the reported ratio. This
    /// is the single half-width semantics used by the
    /// [`CampaignConfig::target_half_width`] early stop,
    /// [`crate::analysis::ConvergencePoint`] and
    /// [`crate::analysis::runs_to_half_width`].
    pub fn half_width(&self) -> f64 {
        if self.ratio.is_finite() && self.ci_low.is_finite() && self.ci_high.is_finite() {
            (self.ci_high - self.ratio).max(self.ratio - self.ci_low)
        } else {
            f64::INFINITY
        }
    }
}

impl std::fmt::Display for RatioEstimate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.ci_high.is_finite() {
            write!(
                f,
                "{:.3} [95% CI {:.3}, {:.3}]",
                self.ratio, self.ci_low, self.ci_high
            )
        } else {
            write!(f, "{:.3} [95% CI undefined]", self.ratio)
        }
    }
}

/// A stratified delete-one-pair jackknife estimate of the log-risk-ratio
/// spread — the independent cross-check of the paired delta-method CI.
///
/// Within each sampled stratum every pair is left out in turn and the
/// full stratified log ratio recomputed (stratum weights stay fixed; the
/// held-out stratum's rates are re-averaged over `n_s − 1` pairs). A pair
/// only influences the estimate through which of the four [`PairTable`]
/// cells it occupies, so the `n_s` replicates collapse to at most four
/// distinct values with multiplicities and the whole jackknife costs
/// `O(strata)` instead of `O(total pairs)`. The variance is the
/// stratified jackknife sum `Σ_s (n_s−1)/n_s · Σ_{i∈s} (θ̂_(s,i) − θ̄_s)²`.
///
/// Being a resampling estimate of the *same* sampling distribution, it
/// automatically prices in the between-arm covariance — pairs move both
/// arms at once — without ever forming the covariance explicitly, which
/// is what makes it a genuine cross-check of [`RatioEstimate::paired`]
/// rather than a reformulation (property-tested agreement in
/// `tests/proptests.rs`).
///
/// The interval is undefined (`[0, ∞)`, infinite `se_log`) when any arm
/// is event-free, when a sampled stratum has fewer than two pairs, or
/// when deleting a pair would zero an arm entirely (the log replicate
/// diverges). A leave-one-*stratum*-out scheme is deliberately **not**
/// used: strata are fixed cells of the design, not exchangeable draws,
/// so deleting one estimates between-stratum heterogeneity instead of
/// sampling error (see DESIGN.md).
pub fn jackknife_ratio(weights: &[f64], tables: &[PairTable]) -> RatioEstimate {
    debug_assert_eq!(
        weights.len(),
        tables.len(),
        "one weight per stratum table — a mismatch would silently truncate"
    );
    let covered = covered_weight(weights.iter().zip(tables).map(|(&w, t)| (w, t.runs())));
    let undefined = |ratio: f64| RatioEstimate::from_log(ratio, f64::INFINITY);
    if covered <= 0.0 {
        return undefined(f64::NAN);
    }
    let sampled: Vec<(f64, &PairTable)> = weights
        .iter()
        .zip(tables)
        .filter(|(_, t)| t.runs() > 0)
        .map(|(w, t)| (w / covered, t))
        .collect();
    let pe: f64 = sampled
        .iter()
        .map(|(w, t)| w * t.equipped_nmac() as f64 / t.runs() as f64)
        .sum();
    let pu: f64 = sampled
        .iter()
        .map(|(w, t)| w * t.unequipped_nmac() as f64 / t.runs() as f64)
        .sum();
    let ratio = if pu > 0.0 { pe / pu } else { f64::NAN };
    if !(pe > 0.0 && pu > 0.0) || sampled.iter().any(|(_, t)| t.runs() < 2) {
        return undefined(ratio);
    }

    let mut var = 0.0;
    for &(w, t) in &sampled {
        let n = t.runs() as f64;
        let e = t.equipped_nmac() as f64;
        let u = t.unequipped_nmac() as f64;
        // Leave-out replicates by cell type: deleting a pair of type
        // (de, du) shifts only this stratum's marginal rates.
        let cells = [
            (t.both_nmac, 1.0, 1.0),
            (t.equipped_only, 1.0, 0.0),
            (t.unequipped_only, 0.0, 1.0),
            (t.neither, 0.0, 0.0),
        ];
        let mut thetas = [0.0f64; 4];
        let mut mean = 0.0;
        for (slot, &(count, de, du)) in thetas.iter_mut().zip(&cells) {
            if count == 0 {
                continue;
            }
            let pe_i = pe - w * e / n + w * (e - de) / (n - 1.0);
            let pu_i = pu - w * u / n + w * (u - du) / (n - 1.0);
            if !(pe_i > 0.0 && pu_i > 0.0) {
                return undefined(ratio);
            }
            *slot = pe_i.ln() - pu_i.ln();
            mean += count as f64 * *slot;
        }
        mean /= n;
        let ss: f64 = thetas
            .iter()
            .zip(&cells)
            .filter(|(_, (count, _, _))| *count > 0)
            .map(|(theta, (count, _, _))| *count as f64 * (theta - mean) * (theta - mean))
            .sum();
        var += (n - 1.0) / n * ss;
    }
    RatioEstimate::from_log(ratio, var.sqrt())
}

/// Per-stratum outcome counts with Wilson intervals.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StratumEstimate {
    /// The stratum.
    pub stratum: Stratum,
    /// Its probability mass under the model.
    pub weight: f64,
    /// Paired runs spent here.
    pub runs: usize,
    /// The joint 2×2 outcome table the rates below are marginals of.
    pub pairs: PairTable,
    /// Equipped NMAC rate.
    pub equipped_nmac: RateEstimate,
    /// Unequipped NMAC rate on identical seeds.
    pub unequipped_nmac: RateEstimate,
    /// Rate of pairs whose two arms disagree on NMAC.
    pub disagreement: RateEstimate,
    /// Fraction of equipped runs with at least one alert.
    pub alert: RateEstimate,
    /// Fraction of runs alerting although the unequipped replay stayed
    /// NMAC-free.
    pub false_alert: RateEstimate,
}

/// The stratified analogue of [`crate::MonteCarloEstimate`]: per-stratum
/// Wilson intervals and 2×2 joint tables, exactly-weighted combined
/// rates, the paired (covariance-aware) risk-ratio CI with its unpaired
/// and jackknife companions, and the stratified between-arm covariance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StratifiedEstimate {
    /// Per-stratum estimates, in canonical stratum order.
    pub strata: Vec<StratumEstimate>,
    /// Total paired runs across all strata.
    pub total_runs: usize,
    /// Combined NMAC rate with the configured equipage.
    pub equipped_nmac: WeightedRate,
    /// Combined NMAC rate of the identical-seed unequipped replays.
    pub unequipped_nmac: WeightedRate,
    /// Combined equipped/unequipped disagreement rate.
    pub disagreement: WeightedRate,
    /// Combined alert rate.
    pub alert: WeightedRate,
    /// Combined false-alert rate.
    pub false_alert: WeightedRate,
    /// Stratified between-arm covariance `Cov(p̂_e, p̂_u)` (see
    /// [`paired_covariance`]).
    pub covariance: f64,
    /// `equipped / unequipped` NMAC risk ratio with the **paired**
    /// (covariance-aware) CI — the campaign's primary deliverable and the
    /// interval the early stop watches.
    pub risk_ratio: RatioEstimate,
    /// The covariance-free delta-method CI on the same rates: never
    /// tighter than [`StratifiedEstimate::risk_ratio`], reported for the
    /// old-vs-new comparison.
    pub risk_ratio_unpaired: RatioEstimate,
    /// The stratified delete-one-pair jackknife CI (see
    /// [`jackknife_ratio`]) — an independent cross-check of the paired
    /// delta-method interval.
    pub risk_ratio_jackknife: RatioEstimate,
}

/// Convergence snapshot appended after every campaign round — the series
/// [`crate::analysis::convergence_series`] and the report tables render.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundSummary {
    /// Round number (0 is the pilot).
    pub round: usize,
    /// Paired runs allocated to each stratum this round (canonical
    /// stratum order).
    pub allocated: Vec<usize>,
    /// Paired runs executed this round.
    pub runs_this_round: usize,
    /// Cumulative paired runs after this round.
    pub total_runs: usize,
    /// Combined equipped NMAC rate after this round.
    pub equipped_nmac: WeightedRate,
    /// Combined unequipped NMAC rate after this round.
    pub unequipped_nmac: WeightedRate,
    /// Combined paired risk ratio after this round (the early-stop
    /// interval).
    pub risk_ratio: RatioEstimate,
    /// The covariance-free interval after this round, for convergence
    /// comparisons of the two constructions.
    pub risk_ratio_unpaired: RatioEstimate,
}

/// The result of a campaign: the final stratified estimate plus the full
/// round-by-round convergence trail.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignOutcome {
    /// The final stratified estimate.
    pub estimate: StratifiedEstimate,
    /// One summary per executed round, in order.
    pub rounds: Vec<RoundSummary>,
    /// Whether the risk-ratio CI reached the configured target half-width
    /// (possibly before exhausting `max_rounds`).
    pub reached_target: bool,
}

impl CampaignOutcome {
    /// Total paired runs spent.
    pub fn total_runs(&self) -> usize {
        self.estimate.total_runs
    }

    /// Cumulative runs after the first round whose paired risk-ratio CI
    /// half-width (maximum one-sided width — see
    /// [`RatioEstimate::half_width`]) is at most `target`, if any round
    /// got there (delegates to [`crate::analysis::runs_to_half_width`] so
    /// there is a single definition of the runs-to-target reading).
    pub fn runs_to_half_width(&self, target: f64) -> Option<usize> {
        crate::analysis::runs_to_half_width(
            &crate::analysis::convergence_series(&self.rounds),
            target,
        )
    }
}

/// Anything that can fly a batch of paired jobs. [`BatchRunner`] is the
/// production source; tests substitute rigged generators with known
/// per-stratum rates to validate the estimator itself.
pub trait PairSource {
    /// Runs every job, returning outcomes in job order. Implementations
    /// must be pure per job (outcome a function of `params` and `seed`
    /// only) for campaign determinism to hold.
    fn run_pairs(&self, jobs: &[PairedJob]) -> Vec<PairedOutcome>;
}

impl<B: Backend> PairSource for BatchRunner<B> {
    fn run_pairs(&self, jobs: &[PairedJob]) -> Vec<PairedOutcome> {
        self.run_paired(jobs)
    }
}

/// Per-stratum running counts: the joint 2×2 outcome table plus the
/// alerting tallies the table does not cover.
///
/// This is the campaign's unit of mergeable state. Every cell is an
/// integer count, so [`StratumTally::merge`] is exact, commutative and
/// associative — which is precisely why sharded execution can be held
/// to bit-identity with a single process: however a round's outcomes
/// were partitioned (shard counts, scheduling, mid-round requeues),
/// merging the partial tallies reproduces the same cells, and every
/// statistic downstream is a pure function of the cells.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StratumTally {
    /// The joint 2×2 outcome table of the pairs absorbed so far.
    pub pairs: PairTable,
    /// Pairs whose equipped arm alerted at least once.
    pub alerts: usize,
    /// Pairs alerting although the unequipped replay stayed NMAC-free.
    pub false_alerts: usize,
}

impl StratumTally {
    /// Folds one paired outcome into the tally.
    pub fn absorb(&mut self, pair: &PairedOutcome) {
        self.pairs.absorb(pair);
        if pair.equipped.alerted() {
            self.alerts += 1;
        }
        if pair.false_alert() {
            self.false_alerts += 1;
        }
    }

    /// Adds every count of `other` into this tally — the round- and
    /// shard-merge rule ([`PairTable::merge`] on the 2×2 cells plus the
    /// alert counters).
    pub fn merge(&mut self, other: &StratumTally) {
        self.pairs.merge(&other.pairs);
        self.alerts += other.alerts;
        self.false_alerts += other.false_alerts;
    }

    /// Total pairs recorded.
    pub fn runs(&self) -> usize {
        self.pairs.runs()
    }
}

/// Splits `budget` across strata proportionally to `scores` with
/// largest-remainder rounding (deterministic, ties broken by stratum
/// index), so every allocated total is exactly `budget`.
pub(crate) fn apportion(scores: &[f64], budget: usize) -> Vec<usize> {
    let total: f64 = scores.iter().sum();
    if total <= 0.0 {
        // Degenerate scores: spread evenly, first strata take the rest.
        let base = budget / scores.len().max(1);
        let extra = budget - base * scores.len();
        return (0..scores.len())
            .map(|i| base + usize::from(i < extra))
            .collect();
    }
    let quotas: Vec<f64> = scores.iter().map(|s| budget as f64 * s / total).collect();
    let mut alloc: Vec<usize> = quotas.iter().map(|q| q.floor() as usize).collect();
    let assigned: usize = alloc.iter().sum();
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| {
        let fa = quotas[a] - quotas[a].floor();
        let fb = quotas[b] - quotas[b].floor();
        // audit: allow(panic_policy, fractional parts of finite quotas are finite)
        fb.partial_cmp(&fa).expect("finite quotas").then(a.cmp(&b))
    });
    for &i in order.iter().take(budget.saturating_sub(assigned)) {
        alloc[i] += 1;
    }
    alloc
}

/// Neyman scores for the **paired** log-risk-ratio objective.
///
/// Minimizing the paired delta-method variance of `ln r̂`,
/// `Σ_s w_s²/n_s · (σ²_{e,s}/p_e² + σ²_{u,s}/p_u² − 2·c_s/(p_e·p_u))`,
/// over allocations `{n_s}` at a fixed total gives
/// `n_s ∝ w_s·√(σ̃²_{e,s}/p̂_e² + σ̃²_{u,s}/p̂_u² − 2·c̃_s/(p̂_e·p̂_u))` —
/// each stratum scored by its contribution to the variance that actually
/// bounds the CI, covariance term included. A stratum whose events are
/// *concordant* (both arms collide on the same pairs) carries a large
/// positive `c̃_s` that cancels most of its marginal variance: those
/// pairs tell the ratio little, and the score correctly discounts them.
/// A *discordant* stratum (arms disagree) has `c̃_s ≈ 0` and keeps its
/// full marginal score — the paired objective is what makes
/// "disagreement-rich strata matter most" a theorem rather than a
/// heuristic.
///
/// Per-stratum cell rates are shrunk toward the pooled rates
/// (`(x_s + k·p̂)/(n_s + k)`, an empirical-Bayes prior worth `k = 4`
/// pooled pseudo-runs), so an all-agree stratum scores like the campaign
/// average instead of like `1/n_s` — rare-event strata with *observed*
/// events stand out, but no region is ever written off on a handful of
/// samples (the pooled rates themselves are Laplace-smoothed and
/// nonzero). The covariance is clamped to `[0, √(σ̃²_e·σ̃²_u)]` exactly
/// as in the estimator, so every score is real and non-negative.
pub fn neyman_scores(weights: &[f64], tables: &[PairTable]) -> Vec<f64> {
    debug_assert_eq!(
        weights.len(),
        tables.len(),
        "one weight per stratum table — a mismatch would silently truncate"
    );
    /// Pseudo-runs of pooled-rate prior mixed into each stratum's cells.
    const SHRINKAGE_RUNS: f64 = 4.0;
    let total_runs: usize = tables.iter().map(PairTable::runs).sum();
    let equipped: usize = tables.iter().map(PairTable::equipped_nmac).sum();
    let unequipped: usize = tables.iter().map(PairTable::unequipped_nmac).sum();
    let both: usize = tables.iter().map(|t| t.both_nmac).sum();
    let n = total_runs as f64;
    let pe = (equipped as f64 + 1.0) / (n + 2.0);
    let pu = (unequipped as f64 + 1.0) / (n + 2.0);
    // Pooled joint rate: a half pseudo-event keeps it strictly inside
    // (0, min(pe, pu)) since both ≤ min(equipped, unequipped).
    let pb = (both as f64 + 0.5) / (n + 2.0);
    let shrink = |events: usize, trials: usize, pooled: f64| -> f64 {
        (events as f64 + SHRINKAGE_RUNS * pooled) / (trials as f64 + SHRINKAGE_RUNS)
    };
    weights
        .iter()
        .zip(tables)
        .map(|(w, t)| {
            let n_s = t.runs();
            let pe_s = shrink(t.equipped_nmac(), n_s, pe);
            let pu_s = shrink(t.unequipped_nmac(), n_s, pu);
            let pb_s = shrink(t.both_nmac, n_s, pb);
            let ve = pe_s * (1.0 - pe_s);
            let vu = pu_s * (1.0 - pu_s);
            let cov = (pb_s - pe_s * pu_s).clamp(0.0, (ve * vu).sqrt());
            let objective = ve / (pe * pe) + vu / (pu * pu) - 2.0 * cov / (pe * pu);
            w * objective.max(0.0).sqrt()
        })
        .collect()
}

/// How a campaign splits each refinement round's budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Allocation {
    /// Proportional to stratum mass — the stratified equivalent of
    /// uniform Monte-Carlo, the baseline adaptive campaigns are measured
    /// against.
    Proportional,
    /// Neyman allocation on the paired log-ratio objective (see
    /// [`neyman_scores`]).
    Neyman,
}

/// Plans and executes adaptive (or uniform-baseline) stratified
/// Monte-Carlo campaigns over the statistical encounter model.
#[derive(Debug, Clone)]
pub struct CampaignPlanner {
    runner: EncounterRunner,
    model: StatisticalEncounterModel,
    stratification: Stratification,
    config: CampaignConfig,
}

impl CampaignPlanner {
    /// A planner with the default statistical model and stratification.
    pub fn new(runner: EncounterRunner, config: CampaignConfig) -> Self {
        Self {
            runner,
            model: StatisticalEncounterModel::default(),
            stratification: Stratification::default(),
            config,
        }
    }

    /// Overrides the statistical encounter model.
    pub fn model(mut self, model: StatisticalEncounterModel) -> Self {
        self.model = model;
        self
    }

    /// Overrides the stratification.
    pub fn stratification(mut self, stratification: Stratification) -> Self {
        self.stratification = stratification;
        self
    }

    /// Adjusts the campaign configuration in place (builder-style).
    pub fn config_with(mut self, adjust: impl FnOnce(&mut CampaignConfig)) -> Self {
        adjust(&mut self.config);
        self
    }

    /// The configured campaign parameters.
    pub fn current_config(&self) -> CampaignConfig {
        self.config
    }

    /// The configured stratification.
    pub fn current_stratification(&self) -> Stratification {
        self.stratification
    }

    /// The configured statistical model.
    pub fn current_model(&self) -> StatisticalEncounterModel {
        self.model
    }

    /// Runs the adaptive campaign on the shared worker pool.
    ///
    /// # Errors
    ///
    /// Returns [`CampaignConfigError`] when the configuration is
    /// degenerate (see [`CampaignConfig::validate`]); no simulation runs
    /// in that case.
    pub fn run(&self) -> Result<CampaignOutcome, CampaignConfigError> {
        self.run_observed(|_| {})
    }

    /// Runs the adaptive campaign, streaming each [`RoundSummary`] to
    /// `observer` as soon as its round completes (progress displays,
    /// convergence logging).
    ///
    /// # Errors
    ///
    /// Returns [`CampaignConfigError`] when the configuration is
    /// degenerate; the observer is never called in that case.
    pub fn run_observed<F: FnMut(&RoundSummary)>(
        &self,
        observer: F,
    ) -> Result<CampaignOutcome, CampaignConfigError> {
        self.run_with_allocation(&self.batch(), Allocation::Neyman, observer)
    }

    /// Runs the adaptive campaign against a caller-supplied job source
    /// (rigged generators in tests, remote backends later).
    ///
    /// # Errors
    ///
    /// Returns [`CampaignConfigError`] when the configuration is
    /// degenerate; the source is never invoked in that case.
    pub fn run_with<S: PairSource>(
        &self,
        source: &S,
    ) -> Result<CampaignOutcome, CampaignConfigError> {
        self.run_with_allocation(source, Allocation::Neyman, |_| {})
    }

    /// Runs the adaptive campaign against a caller-supplied job source,
    /// streaming each [`RoundSummary`] as its round completes — the
    /// combination remote services need (a sharded backend as the
    /// source, round events forwarded over the wire as they happen).
    ///
    /// # Errors
    ///
    /// Returns [`CampaignConfigError`] when the configuration is
    /// degenerate; neither the source nor the observer is invoked in
    /// that case.
    pub fn run_with_observed<S: PairSource, F: FnMut(&RoundSummary)>(
        &self,
        source: &S,
        observer: F,
    ) -> Result<CampaignOutcome, CampaignConfigError> {
        self.run_with_allocation(source, Allocation::Neyman, observer)
    }

    /// Runs the *uniform* baseline: identical schedule and seed rule, but
    /// every round splits its budget proportionally to stratum mass —
    /// stratified uniform Monte-Carlo, no adaptation.
    ///
    /// # Errors
    ///
    /// Returns [`CampaignConfigError`] when the configuration is
    /// degenerate (same validation as [`CampaignPlanner::run`]).
    pub fn run_uniform(&self) -> Result<CampaignOutcome, CampaignConfigError> {
        self.run_with_allocation(&self.batch(), Allocation::Proportional, |_| {})
    }

    /// [`run_uniform`](Self::run_uniform) against a caller-supplied source.
    ///
    /// # Errors
    ///
    /// Returns [`CampaignConfigError`] when the configuration is
    /// degenerate; the source is never invoked in that case.
    pub fn run_uniform_with<S: PairSource>(
        &self,
        source: &S,
    ) -> Result<CampaignOutcome, CampaignConfigError> {
        self.run_with_allocation(source, Allocation::Proportional, |_| {})
    }

    /// [`run_uniform_with`](Self::run_uniform_with) with per-round
    /// streaming — so services can report uniform-baseline progress
    /// exactly as they report adaptive progress.
    ///
    /// # Errors
    ///
    /// Returns [`CampaignConfigError`] when the configuration is
    /// degenerate; neither the source nor the observer is invoked in
    /// that case.
    pub fn run_uniform_with_observed<S: PairSource, F: FnMut(&RoundSummary)>(
        &self,
        source: &S,
        observer: F,
    ) -> Result<CampaignOutcome, CampaignConfigError> {
        self.run_with_allocation(source, Allocation::Proportional, observer)
    }

    fn batch(&self) -> BatchRunner {
        BatchRunner::new(self.runner.clone(), Executor::new(self.config.threads))
    }

    fn run_with_allocation<S: PairSource, F: FnMut(&RoundSummary)>(
        &self,
        source: &S,
        allocation: Allocation,
        mut observer: F,
    ) -> Result<CampaignOutcome, CampaignConfigError> {
        // The monolithic run is the stepper driven to completion, so the
        // blocking and checkpointable paths cannot drift apart: every
        // number either path produces flows through the same planning,
        // absorption and estimation code.
        let mut stepper = CampaignStepper::fresh(self, allocation)?;
        while let Some(planned) = stepper.plan_round() {
            let outcomes = source.run_pairs(&planned.jobs);
            let summary = stepper.complete_round(&planned, &outcomes);
            observer(&summary);
        }
        Ok(stepper.outcome())
    }
}

fn estimate_from(
    strata: &[Stratum],
    weights: &[f64],
    tallies: &[StratumTally],
) -> StratifiedEstimate {
    let per_stratum: Vec<StratumEstimate> = strata
        .iter()
        .zip(weights)
        .zip(tallies)
        .map(|((&stratum, &weight), t)| StratumEstimate {
            stratum,
            weight,
            runs: t.runs(),
            pairs: t.pairs,
            equipped_nmac: RateEstimate::wilson(t.pairs.equipped_nmac(), t.runs()),
            unequipped_nmac: RateEstimate::wilson(t.pairs.unequipped_nmac(), t.runs()),
            disagreement: RateEstimate::wilson(t.pairs.disagree(), t.runs()),
            alert: RateEstimate::wilson(t.alerts, t.runs()),
            false_alert: RateEstimate::wilson(t.false_alerts, t.runs()),
        })
        .collect();
    let cells = |pick: fn(&StratumTally) -> usize| -> Vec<(f64, usize, usize)> {
        weights
            .iter()
            .zip(tallies)
            .map(|(&w, t)| (w, pick(t), t.runs()))
            .collect()
    };
    let tables: Vec<PairTable> = tallies.iter().map(|t| t.pairs).collect();
    let equipped_nmac = WeightedRate::combine(&cells(|t| t.pairs.equipped_nmac()));
    let unequipped_nmac = WeightedRate::combine(&cells(|t| t.pairs.unequipped_nmac()));
    let covariance = paired_covariance(weights, &tables);
    StratifiedEstimate {
        total_runs: tallies.iter().map(StratumTally::runs).sum(),
        covariance,
        risk_ratio: RatioEstimate::paired(&equipped_nmac, &unequipped_nmac, covariance),
        risk_ratio_unpaired: RatioEstimate::from_rates(&equipped_nmac, &unequipped_nmac),
        risk_ratio_jackknife: jackknife_ratio(weights, &tables),
        disagreement: WeightedRate::combine(&cells(|t| t.pairs.disagree())),
        alert: WeightedRate::combine(&cells(|t| t.alerts)),
        false_alert: WeightedRate::combine(&cells(|t| t.false_alerts)),
        strata: per_stratum,
        equipped_nmac,
        unequipped_nmac,
    }
}

/// The exact resumable state of a paired campaign at a round boundary.
///
/// The seed rule ([`campaign_job_seed`]) makes this checkpoint **tiny and
/// exact**: job parameters and simulation seeds are pure functions of
/// `(campaign_seed, stratum, round, index)`, each round's allocation is a
/// pure function of the merged tallies, and every estimate is a pure
/// function of the tallies. A campaign's entire between-round state is
/// therefore (config, next round index, merged [`StratumTally`]s) plus
/// the round summaries already emitted — and resuming from a checkpoint
/// replays the remaining rounds **byte-identically** to the uninterrupted
/// run (property-tested in `tests/checkpoint_resume.rs`). All fields
/// serialize to strict JSON, so checkpoints cross process and wire
/// boundaries unchanged.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignCheckpoint {
    /// The next round to execute (0 = the pilot has not run). Equals
    /// `rounds.len()` in any consistent checkpoint.
    pub next_round: usize,
    /// Whether refinement rounds use Neyman allocation (`true`) or the
    /// proportional uniform baseline (`false`).
    pub adaptive: bool,
    /// Merged per-stratum tallies in canonical stratum order.
    pub tallies: Vec<StratumTally>,
    /// Summaries of every completed round, in order.
    pub rounds: Vec<RoundSummary>,
    /// Whether the early-stop target has been reached (a finished
    /// campaign: resuming plans no further rounds).
    pub reached_target: bool,
}

/// A [`CampaignCheckpoint`] that cannot resume under the planner it was
/// handed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CampaignResumeError {
    /// The planner's own configuration is degenerate.
    Config(CampaignConfigError),
    /// The checkpoint's tally count does not match the planner's
    /// stratification — it was taken under a different design.
    StratumCountMismatch {
        /// Strata in the planner's stratification.
        expected: usize,
        /// Tallies recorded in the checkpoint.
        found: usize,
    },
    /// `next_round` disagrees with the recorded round trail.
    InconsistentTrail {
        /// The checkpoint's claimed next round.
        next_round: usize,
        /// Round summaries actually recorded.
        rounds: usize,
    },
}

impl From<CampaignConfigError> for CampaignResumeError {
    fn from(e: CampaignConfigError) -> Self {
        CampaignResumeError::Config(e)
    }
}

impl std::fmt::Display for CampaignResumeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignResumeError::Config(e) => write!(f, "{e}"),
            CampaignResumeError::StratumCountMismatch { expected, found } => write!(
                f,
                "campaign checkpoint: {found} tallies but the stratification has \
                 {expected} strata — checkpoint taken under a different design"
            ),
            CampaignResumeError::InconsistentTrail { next_round, rounds } => write!(
                f,
                "campaign checkpoint: next_round {next_round} disagrees with \
                 {rounds} recorded round summaries"
            ),
        }
    }
}

impl std::error::Error for CampaignResumeError {}

/// One planned campaign round: the paired jobs to execute plus the
/// bookkeeping [`CampaignStepper::complete_round`] needs to absorb their
/// outcomes. Jobs may be partitioned, sharded or interleaved with other
/// campaigns' work arbitrarily — outcomes must simply come back in job
/// order.
#[derive(Debug, Clone)]
pub struct PlannedRound {
    /// The round these jobs belong to (0 = pilot).
    pub round: usize,
    /// Paired runs allocated to each stratum (canonical order).
    pub allocated: Vec<usize>,
    /// The paired jobs, grouped by stratum in allocation order.
    pub jobs: Vec<PairedJob>,
    /// `owners[i]` is the stratum index that owns `jobs[i]`.
    pub owners: Vec<usize>,
}

/// A resumable round-by-round campaign executor — the engine under every
/// [`CampaignPlanner`] run path, exposed so coordinators can interleave
/// many campaigns over one fleet and checkpoint each at round boundaries.
///
/// The cycle is: [`plan_round`](Self::plan_round) →  run the jobs on any
/// [`PairSource`] → [`complete_round`](Self::complete_round), repeated
/// until `plan_round` returns `None`; [`checkpoint`](Self::checkpoint)
/// may be taken at any point between those calls and resumed later via
/// [`CampaignPlanner::resume`]. Because planning is a pure function of
/// (config, tallies), a stepper driven to completion — interrupted,
/// resumed, or interleaved — produces a [`CampaignOutcome`] byte-identical
/// to [`CampaignPlanner::run`].
#[derive(Debug, Clone)]
pub struct CampaignStepper {
    model: StatisticalEncounterModel,
    stratification: Stratification,
    config: CampaignConfig,
    allocation: Allocation,
    strata: Vec<Stratum>,
    weights: Vec<f64>,
    tallies: Vec<StratumTally>,
    rounds: Vec<RoundSummary>,
    reached_target: bool,
    next_round: usize,
}

impl CampaignStepper {
    fn fresh(
        planner: &CampaignPlanner,
        allocation: Allocation,
    ) -> Result<Self, CampaignConfigError> {
        planner.config.validate()?;
        let strata = planner.stratification.strata();
        let weights: Vec<f64> = strata
            .iter()
            .map(|&s| planner.stratification.weight(&planner.model, s))
            .collect();
        let tallies = vec![StratumTally::default(); strata.len()];
        Ok(Self {
            model: planner.model,
            stratification: planner.stratification,
            config: planner.config,
            allocation,
            strata,
            weights,
            tallies,
            rounds: Vec::new(),
            reached_target: false,
            next_round: 0,
        })
    }

    fn resumed(
        planner: &CampaignPlanner,
        checkpoint: &CampaignCheckpoint,
    ) -> Result<Self, CampaignResumeError> {
        let allocation = if checkpoint.adaptive {
            Allocation::Neyman
        } else {
            Allocation::Proportional
        };
        let mut stepper = Self::fresh(planner, allocation)?;
        if checkpoint.tallies.len() != stepper.strata.len() {
            return Err(CampaignResumeError::StratumCountMismatch {
                expected: stepper.strata.len(),
                found: checkpoint.tallies.len(),
            });
        }
        if checkpoint.next_round != checkpoint.rounds.len() {
            return Err(CampaignResumeError::InconsistentTrail {
                next_round: checkpoint.next_round,
                rounds: checkpoint.rounds.len(),
            });
        }
        stepper.tallies = checkpoint.tallies.clone();
        stepper.rounds = checkpoint.rounds.clone();
        stepper.reached_target = checkpoint.reached_target;
        stepper.next_round = checkpoint.next_round;
        Ok(stepper)
    }

    /// Whether the campaign is over: the target was reached or every
    /// round has run. [`plan_round`](Self::plan_round) returns `None`.
    pub fn is_finished(&self) -> bool {
        self.reached_target || self.next_round > self.config.max_rounds
    }

    /// The next round to execute (0 = pilot).
    pub fn next_round(&self) -> usize {
        self.next_round
    }

    /// Summaries of the rounds completed so far, in order.
    pub fn rounds(&self) -> &[RoundSummary] {
        &self.rounds
    }

    /// Total paired runs absorbed so far.
    pub fn total_runs(&self) -> usize {
        self.tallies.iter().map(StratumTally::runs).sum()
    }

    /// Plans the next round's jobs, or `None` when the campaign is
    /// finished. Planning does not commit anything: dropping the planned
    /// round and calling again replays the identical plan, because jobs
    /// derive from `(campaign_seed, stratum, round, index)` and the
    /// allocation from the merged tallies — never from wall-clock state.
    pub fn plan_round(&mut self) -> Option<PlannedRound> {
        if self.is_finished() {
            return None;
        }
        let round = self.next_round;
        let alloc = if round == 0 {
            vec![self.config.pilot_per_stratum; self.strata.len()]
        } else {
            let scores: Vec<f64> = match self.allocation {
                Allocation::Proportional => self.weights.clone(),
                Allocation::Neyman => {
                    let tables: Vec<PairTable> = self.tallies.iter().map(|t| t.pairs).collect();
                    neyman_scores(&self.weights, &tables)
                }
            };
            apportion(&scores, self.config.round_runs)
        };

        // Plan serially: every job's parameters and seed derive from
        // (campaign_seed, stratum, round, index), never from execution
        // order.
        let runs_this_round: usize = alloc.iter().sum();
        let mut jobs = Vec::with_capacity(runs_this_round);
        let mut owners = Vec::with_capacity(runs_this_round);
        for (si, &count) in alloc.iter().enumerate() {
            for index in 0..count {
                let base = campaign_job_seed(self.config.seed, si, round, index);
                let mut rng = StdRng::seed_from_u64(base);
                let params = self
                    .stratification
                    .sample(&self.model, self.strata[si], &mut rng);
                jobs.push(PairedJob {
                    params,
                    seed: splitmix64(base ^ SIM_STREAM),
                });
                owners.push(si);
            }
        }
        Some(PlannedRound {
            round,
            allocated: alloc,
            jobs,
            owners,
        })
    }

    /// Absorbs a planned round's outcomes (in job order) and advances to
    /// the next round, returning the round's summary.
    ///
    /// # Panics
    ///
    /// Panics when `planned` is not the stepper's current round or the
    /// outcome count does not match the job count — both are caller bugs
    /// that would silently corrupt the campaign state if tolerated.
    pub fn complete_round(
        &mut self,
        planned: &PlannedRound,
        outcomes: &[PairedOutcome],
    ) -> RoundSummary {
        assert_eq!(
            planned.round, self.next_round,
            "complete_round fed a stale plan: round {} but the stepper is at round {}",
            planned.round, self.next_round
        );
        assert_eq!(
            outcomes.len(),
            planned.jobs.len(),
            "a PairSource must return exactly one outcome per job"
        );
        // Absorb the round into fresh per-stratum tallies, then fold
        // those into the campaign totals through the one merge rule
        // ([`StratumTally::merge`], i.e. [`PairTable::merge`] on the
        // 2×2 cells). In-process and sharded sources thus share the
        // exact accumulation path sharded backends merge partial
        // results with — integer-count addition — so the estimate
        // cannot depend on how a round's jobs were partitioned.
        let mut round_tallies = vec![StratumTally::default(); self.strata.len()];
        for (&si, pair) in planned.owners.iter().zip(outcomes) {
            round_tallies[si].absorb(pair);
        }
        for (total, fresh) in self.tallies.iter_mut().zip(&round_tallies) {
            total.merge(fresh);
        }

        let estimate = estimate_from(&self.strata, &self.weights, &self.tallies);
        let summary = RoundSummary {
            round: planned.round,
            allocated: planned.allocated.clone(),
            runs_this_round: planned.jobs.len(),
            total_runs: estimate.total_runs,
            equipped_nmac: estimate.equipped_nmac,
            unequipped_nmac: estimate.unequipped_nmac,
            risk_ratio: estimate.risk_ratio,
            risk_ratio_unpaired: estimate.risk_ratio_unpaired,
        };
        self.rounds.push(summary.clone());
        // A finite target both enables the stop and defines it; an
        // infinite target means "never stop early" (validated > 0).
        if self.config.target_half_width.is_finite()
            && estimate.risk_ratio.half_width() <= self.config.target_half_width
        {
            self.reached_target = true;
        }
        self.next_round += 1;
        summary
    }

    /// The campaign's exact state at the current round boundary. Tiny —
    /// integer tallies and round summaries, no job or outcome data — and
    /// sufficient: [`CampaignPlanner::resume`] replays the rest of the
    /// campaign byte-identically.
    pub fn checkpoint(&self) -> CampaignCheckpoint {
        CampaignCheckpoint {
            next_round: self.next_round,
            adaptive: self.allocation == Allocation::Neyman,
            tallies: self.tallies.clone(),
            rounds: self.rounds.clone(),
            reached_target: self.reached_target,
        }
    }

    /// The outcome as of the rounds completed so far (the final outcome
    /// once [`is_finished`](Self::is_finished)).
    pub fn outcome(&self) -> CampaignOutcome {
        CampaignOutcome {
            estimate: estimate_from(&self.strata, &self.weights, &self.tallies),
            rounds: self.rounds.clone(),
            reached_target: self.reached_target,
        }
    }
}

impl CampaignPlanner {
    /// A fresh adaptive (Neyman-allocated) stepper for this planner — the
    /// resumable equivalent of [`CampaignPlanner::run`].
    ///
    /// # Errors
    ///
    /// Returns [`CampaignConfigError`] when the configuration is
    /// degenerate (same validation as every run path).
    pub fn stepper(&self) -> Result<CampaignStepper, CampaignConfigError> {
        CampaignStepper::fresh(self, Allocation::Neyman)
    }

    /// A fresh uniform-baseline (proportionally allocated) stepper — the
    /// resumable equivalent of [`CampaignPlanner::run_uniform`].
    ///
    /// # Errors
    ///
    /// Returns [`CampaignConfigError`] when the configuration is
    /// degenerate.
    pub fn uniform_stepper(&self) -> Result<CampaignStepper, CampaignConfigError> {
        CampaignStepper::fresh(self, Allocation::Proportional)
    }

    /// Rebuilds a stepper from a [`CampaignCheckpoint`], restoring the
    /// allocation rule recorded in it. The resumed stepper replays the
    /// remaining rounds byte-identically to an uninterrupted run of the
    /// same planner.
    ///
    /// # Errors
    ///
    /// Returns [`CampaignResumeError`] when the planner's config is
    /// degenerate or the checkpoint was taken under a different
    /// stratification.
    pub fn resume(
        &self,
        checkpoint: &CampaignCheckpoint,
    ) -> Result<CampaignStepper, CampaignResumeError> {
        CampaignStepper::resumed(self, checkpoint)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A table with the given cells, for estimator unit tests.
    fn table(both: usize, e_only: usize, u_only: usize, neither: usize) -> PairTable {
        PairTable {
            both_nmac: both,
            equipped_only: e_only,
            unequipped_only: u_only,
            neither,
        }
    }

    #[test]
    fn job_seeds_are_pure_and_component_sensitive() {
        let a = campaign_job_seed(7, 3, 2, 11);
        assert_eq!(a, campaign_job_seed(7, 3, 2, 11));
        assert_ne!(a, campaign_job_seed(8, 3, 2, 11));
        assert_ne!(a, campaign_job_seed(7, 4, 2, 11));
        assert_ne!(a, campaign_job_seed(7, 3, 3, 11));
        assert_ne!(a, campaign_job_seed(7, 3, 2, 12));
    }

    #[test]
    fn apportion_is_exact_and_deterministic() {
        let scores = [0.5, 0.25, 0.125, 0.125];
        let alloc = apportion(&scores, 17);
        assert_eq!(alloc.iter().sum::<usize>(), 17);
        assert_eq!(alloc, apportion(&scores, 17));
        // Largest score takes the largest share.
        assert!(alloc[0] >= alloc[1] && alloc[1] >= alloc[2]);
    }

    #[test]
    fn apportion_handles_degenerate_scores() {
        // All-zero scores spread evenly, first strata take the remainder.
        let even = apportion(&[0.0, 0.0, 0.0], 7);
        assert_eq!(even.iter().sum::<usize>(), 7);
        assert_eq!(even, vec![3, 2, 2]);
        // Negative-sum scores take the same even path.
        let neg = apportion(&[-1.0, -2.0], 5);
        assert_eq!(neg.iter().sum::<usize>(), 5);
        assert_eq!(neg, vec![3, 2]);
        // Zero budget allocates nothing, whatever the scores.
        assert_eq!(apportion(&[0.0, 0.0], 0), vec![0, 0]);
        assert_eq!(apportion(&[1.0, 3.0], 0), vec![0, 0]);
        // An empty stratification yields an empty (lossless) allocation.
        assert!(apportion(&[], 0).is_empty());
    }

    #[test]
    fn config_validation_rejects_degenerate_campaigns() {
        let ok = CampaignConfig::default();
        assert_eq!(ok.validate(), Ok(()));
        // Infinite target = early stop disabled, still valid.
        let no_stop = CampaignConfig {
            target_half_width: f64::INFINITY,
            ..ok
        };
        assert_eq!(no_stop.validate(), Ok(()));

        let cases = [
            (
                CampaignConfig {
                    pilot_per_stratum: 0,
                    ..ok
                },
                CampaignConfigError::ZeroPilotBudget,
            ),
            (
                CampaignConfig {
                    round_runs: 0,
                    ..ok
                },
                CampaignConfigError::ZeroRoundRuns,
            ),
            (
                CampaignConfig {
                    max_rounds: 0,
                    ..ok
                },
                CampaignConfigError::ZeroRounds,
            ),
            (
                CampaignConfig {
                    target_half_width: 0.0,
                    ..ok
                },
                CampaignConfigError::NonPositiveTargetHalfWidth,
            ),
            (
                CampaignConfig {
                    target_half_width: -0.1,
                    ..ok
                },
                CampaignConfigError::NonPositiveTargetHalfWidth,
            ),
            (
                CampaignConfig {
                    target_half_width: f64::NAN,
                    ..ok
                },
                CampaignConfigError::NonPositiveTargetHalfWidth,
            ),
        ];
        for (config, expected) in cases {
            assert_eq!(config.validate(), Err(expected), "{config:?}");
            // Errors render a usable message.
            assert!(!expected.to_string().is_empty());
        }
    }

    #[test]
    fn pair_table_marginals_and_absorb() {
        let t = table(3, 2, 5, 90);
        assert_eq!(t.runs(), 100);
        assert_eq!(t.equipped_nmac(), 5);
        assert_eq!(t.unequipped_nmac(), 8);
        assert_eq!(t.disagree(), 7);
    }

    #[test]
    fn pair_table_merge_keeps_every_cell() {
        let mut total = table(3, 2, 5, 90);
        total.merge(&table(1, 4, 2, 13));
        assert_eq!(total, table(4, 6, 7, 103));
        assert_eq!(total.runs(), 120);
    }

    #[test]
    fn paired_caps_an_overlarge_covariance_at_cauchy_schwarz() {
        let num = WeightedRate::combine(&[(1.0, 20, 1000)]);
        let den = WeightedRate::combine(&[(1.0, 200, 1000)]);
        // A covariance far beyond what the arms' standard errors permit
        // must not collapse the interval to zero width.
        let absurd = RatioEstimate::paired(&num, &den, 1.0);
        let capped = RatioEstimate::paired(&num, &den, num.std_err * den.std_err);
        assert_eq!(absurd, capped);
        assert!(absurd.se_log > 0.0);
        assert!(absurd.ci_low < absurd.ratio && absurd.ratio < absurd.ci_high);
        // A negative covariance is sanitized to the unpaired interval.
        let neg = RatioEstimate::paired(&num, &den, -1.0);
        assert_eq!(neg, RatioEstimate::from_rates(&num, &den));
    }

    #[test]
    fn weighted_rate_combines_exactly() {
        // Two equal-mass strata: 10% and 50% event rates → 30% combined.
        let w = WeightedRate::combine(&[(0.5, 10, 100), (0.5, 50, 100)]);
        assert!((w.rate - 0.3).abs() < 1e-12);
        assert!(w.ci_low < w.rate && w.rate < w.ci_high);
        assert!(w.std_err > 0.0);
        // Zero-trial strata are renormalized away.
        let partial = WeightedRate::combine(&[(0.5, 10, 100), (0.5, 0, 0)]);
        assert!((partial.rate - 0.1).abs() < 1e-12);
        // No coverage at all stays NaN with the vacuous interval.
        let none = WeightedRate::combine(&[(1.0, 0, 0)]);
        assert!(none.rate.is_nan());
        assert_eq!((none.ci_low, none.ci_high), (0.0, 1.0));
    }

    #[test]
    fn ratio_estimate_handles_zero_rates() {
        let p = WeightedRate::combine(&[(1.0, 20, 100)]);
        let q = WeightedRate::combine(&[(1.0, 40, 100)]);
        let r = RatioEstimate::from_rates(&p, &q);
        assert!((r.ratio - 0.5).abs() < 1e-12);
        assert!(r.ci_low < r.ratio && r.ratio < r.ci_high);
        assert!(r.half_width().is_finite());
        let zero = WeightedRate::combine(&[(1.0, 0, 100)]);
        let undef = RatioEstimate::from_rates(&zero, &q);
        assert_eq!(undef.ratio, 0.0);
        assert!(undef.half_width().is_infinite());
        assert!(RatioEstimate::from_rates(&p, &zero).ratio.is_nan());
    }

    #[test]
    fn half_width_is_the_max_one_sided_width() {
        let r = RatioEstimate::from_log(0.5, 0.2);
        // Log-symmetric: the upper side is the wider one.
        let upper = r.ci_high - r.ratio;
        let lower = r.ratio - r.ci_low;
        assert!(upper > lower);
        assert!((r.half_width() - upper).abs() < 1e-12);
        // Strictly larger than the arithmetic (hi−lo)/2 reading it fixes.
        assert!(r.half_width() > (r.ci_high - r.ci_low) / 2.0);
    }

    #[test]
    fn paired_interval_is_nested_in_the_unpaired_one() {
        // One stratum, equipped ⊂ unequipped: strong positive covariance.
        let tables = [table(8, 0, 32, 160)];
        let weights = [1.0];
        let e = WeightedRate::combine(&[(1.0, 8, 200)]);
        let u = WeightedRate::combine(&[(1.0, 40, 200)]);
        let cov = paired_covariance(&weights, &tables);
        assert!(cov > 0.0);
        let paired = RatioEstimate::paired(&e, &u, cov);
        let unpaired = RatioEstimate::from_rates(&e, &u);
        assert_eq!(paired.ratio, unpaired.ratio);
        assert!(paired.se_log < unpaired.se_log);
        assert!(paired.ci_low >= unpaired.ci_low);
        assert!(paired.ci_high <= unpaired.ci_high);
        assert!(paired.half_width() < unpaired.half_width());
    }

    #[test]
    fn negative_sample_covariance_is_clamped_to_the_unpaired_interval() {
        // Purely discordant events: sample covariance would be negative,
        // but identical-seed arms cannot be anti-correlated — clamp to 0
        // and fall back to the unpaired interval exactly.
        let tables = [table(0, 10, 30, 160)];
        let cov = paired_covariance(&[1.0], &tables);
        assert_eq!(cov, 0.0);
        let e = WeightedRate::combine(&[(1.0, 10, 200)]);
        let u = WeightedRate::combine(&[(1.0, 30, 200)]);
        let paired = RatioEstimate::paired(&e, &u, cov);
        let unpaired = RatioEstimate::from_rates(&e, &u);
        assert_eq!(paired, unpaired);
    }

    #[test]
    fn jackknife_agrees_with_the_paired_delta_method() {
        // Two healthy strata with plenty of events in every cell.
        let weights = [0.5, 0.5];
        let tables = [table(20, 10, 40, 330), table(10, 5, 25, 160)];
        let e = WeightedRate::combine(&[(0.5, 30, 400), (0.5, 15, 200)]);
        let u = WeightedRate::combine(&[(0.5, 60, 400), (0.5, 35, 200)]);
        let delta = RatioEstimate::paired(&e, &u, paired_covariance(&weights, &tables));
        let jack = jackknife_ratio(&weights, &tables);
        assert!((jack.ratio - delta.ratio).abs() < 1e-12);
        assert!(jack.se_log.is_finite());
        let rel = (jack.se_log - delta.se_log).abs() / delta.se_log;
        assert!(
            rel < 0.2,
            "jackknife {} vs delta {}",
            jack.se_log,
            delta.se_log
        );
    }

    #[test]
    fn jackknife_is_undefined_on_degenerate_tallies() {
        // No coverage.
        assert!(jackknife_ratio(&[1.0], &[table(0, 0, 0, 0)])
            .se_log
            .is_infinite());
        // An arm would be zeroed by a deletion (single equipped event).
        let single = jackknife_ratio(&[1.0], &[table(0, 1, 10, 89)]);
        assert!(single.se_log.is_infinite());
        assert_eq!((single.ci_low, single.ci_high), (0.0, f64::INFINITY));
        // A sampled stratum with one pair cannot be jackknifed.
        let tiny = jackknife_ratio(&[0.5, 0.5], &[table(2, 2, 2, 94), table(1, 0, 0, 0)]);
        assert!(tiny.se_log.is_infinite());
    }

    // The discordant-outranks-concordant allocation property lives in
    // tests/campaign_statistics.rs (neyman_ranks_discordant_above_
    // concordant_at_equal_marginals) with the rest of the paired
    // estimator's statistical coverage.
}
