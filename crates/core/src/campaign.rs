//! Adaptive stratified Monte-Carlo campaigns with importance splitting.
//!
//! Uniform Monte-Carlo wastes almost its entire budget on encounters
//! whose outcome is a foregone conclusion: either far outside any
//! conflict, or so deep inside the NMAC cylinder that equipped and
//! unequipped runs collide alike. The information for a *risk ratio*
//! lives where the two arms **disagree** — and under the statistical
//! encounter model that region concentrates in a few strata (small CPA
//! miss distances, specific geometries).
//!
//! [`CampaignPlanner`] exploits that structure:
//!
//! 1. **Stratify.** The [`StatisticalEncounterModel`] is partitioned by a
//!    [`Stratification`] (geometry class × CPA band) with exact
//!    per-stratum mass, so stratified estimates stay unbiased.
//! 2. **Pilot.** A fixed number of [`PairedJob`]s per stratum measures
//!    each stratum's equipped/unequipped **disagreement rate**.
//! 3. **Reallocate.** Each refinement round splits its budget across
//!    strata by Neyman allocation on the observed disagreement standard
//!    deviation (`n_s ∝ w_s·σ̃_s`, Laplace-smoothed so no stratum is ever
//!    written off on a small sample).
//! 4. **Stop early.** After every round the combined risk-ratio CI is
//!    recomputed; the campaign ends as soon as its half-width reaches the
//!    configured target.
//!
//! # Determinism
//!
//! Every job seed derives from `(campaign_seed, stratum, round, index)`
//! via [`campaign_job_seed`] — never from execution order — and batches
//! run on the deterministic [`BatchRunner`], so a campaign's every number
//! is bit-identical for any worker-thread count and reproducible from its
//! config alone (enforced by `tests/campaign_determinism.rs`).

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use uavca_encounter::{StatisticalEncounterModel, Stratification, Stratum};
use uavca_exec::Executor;

use crate::{BatchRunner, EncounterRunner, PairedJob, PairedOutcome, RateEstimate};

/// 97.5th percentile of the standard normal (95% two-sided intervals).
const Z95: f64 = 1.959_963_984_540_054;

/// Domain-separation tag for the simulation-seed stream (vs the
/// parameter-sampling stream) derived from one job seed.
const SIM_STREAM: u64 = 0x5349_4d5f_5354_5245; // "SIM_STRE"

fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The campaign seed-derivation rule: a job's base seed is a pure
/// function of `(campaign_seed, stratum_index, round, index_in_round)`.
///
/// This is what keeps adaptive campaigns bit-identical across thread
/// counts — reallocation changes *how many* jobs a stratum gets, but a
/// given `(stratum, round, index)` job always replays the same encounter
/// and noise, no matter which worker runs it or when.
pub fn campaign_job_seed(campaign_seed: u64, stratum: usize, round: usize, index: usize) -> u64 {
    let mut h = splitmix64(campaign_seed ^ 0x4341_4d50_4149_474e); // "CAMPAIGN"
    h = splitmix64(h ^ stratum as u64);
    h = splitmix64(h ^ round as u64);
    h ^ splitmix64(h ^ index as u64)
}

/// Configuration of an adaptive stratified campaign.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CampaignConfig {
    /// Campaign seed: the single source of every job seed.
    pub seed: u64,
    /// Paired runs per stratum in the pilot round (round 0).
    pub pilot_per_stratum: usize,
    /// Paired runs added by each refinement round.
    pub round_runs: usize,
    /// Maximum refinement rounds after the pilot.
    pub max_rounds: usize,
    /// Early-stop target on the risk-ratio CI half-width (`<= 0`
    /// disables early stopping and always runs `max_rounds` rounds).
    pub target_half_width: f64,
    /// Worker threads for the simulation batches (0 = hardware
    /// parallelism). Results are bit-identical for every setting.
    pub threads: usize,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        Self {
            seed: 0,
            pilot_per_stratum: 25,
            round_runs: 300,
            max_rounds: 10,
            target_half_width: 0.1,
            threads: 0,
        }
    }
}

/// A weighted (stratified) proportion with a normal-approximation 95% CI.
///
/// The point estimate is the exact stratified combination
/// `p̂ = Σ w_s·p̂_s`; the standard error uses the stratified variance
/// `Σ w_s²·p̃_s(1-p̃_s)/n_s` with Anscombe-smoothed per-stratum rates
/// (`p̃ = (e+½)/(n+1)`) so a stratum observed at 0 or 1 keeps a
/// non-degenerate variance contribution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WeightedRate {
    /// Stratified point estimate.
    pub rate: f64,
    /// Stratified standard error.
    pub std_err: f64,
    /// Lower 95% bound, clamped to `[0, 1]`.
    pub ci_low: f64,
    /// Upper 95% bound, clamped to `[0, 1]`.
    pub ci_high: f64,
}

impl WeightedRate {
    /// Combines per-stratum `(weight, events, trials)` cells. Strata with
    /// zero trials are excluded and the remaining weights renormalized
    /// (only possible before the pilot covers every stratum).
    pub fn combine(cells: &[(f64, usize, usize)]) -> WeightedRate {
        let covered: f64 = cells
            .iter()
            .filter(|(_, _, n)| *n > 0)
            .map(|(w, _, _)| *w)
            .sum();
        if covered <= 0.0 {
            return WeightedRate {
                rate: f64::NAN,
                std_err: f64::NAN,
                ci_low: 0.0,
                ci_high: 1.0,
            };
        }
        let mut rate = 0.0;
        let mut var = 0.0;
        for &(w, events, trials) in cells {
            if trials == 0 {
                continue;
            }
            let w = w / covered;
            let n = trials as f64;
            rate += w * events as f64 / n;
            let smoothed = (events as f64 + 0.5) / (n + 1.0);
            var += w * w * smoothed * (1.0 - smoothed) / n;
        }
        // The exact stratified combination of proportions lies in [0, 1];
        // clamp away float drift so the rate can never escape its own
        // (clamped) interval.
        let rate = rate.clamp(0.0, 1.0);
        let std_err = var.sqrt();
        WeightedRate {
            rate,
            std_err,
            ci_low: (rate - Z95 * std_err).max(0.0),
            ci_high: (rate + Z95 * std_err).min(1.0),
        }
    }

    /// Half the CI width.
    pub fn half_width(&self) -> f64 {
        (self.ci_high - self.ci_low) / 2.0
    }
}

impl std::fmt::Display for WeightedRate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.4} [95% CI {:.4}, {:.4}]",
            self.rate, self.ci_low, self.ci_high
        )
    }
}

/// A ratio of two [`WeightedRate`]s with a log-scale delta-method 95% CI.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RatioEstimate {
    /// Point estimate `numerator / denominator` (NaN when the denominator
    /// is zero).
    pub ratio: f64,
    /// Lower 95% bound (0 when undefined).
    pub ci_low: f64,
    /// Upper 95% bound (infinite when undefined).
    pub ci_high: f64,
}

impl RatioEstimate {
    /// The delta-method CI on the log scale:
    /// `exp(ln r ∓ z·√(se_n²/p_n² + se_d²/p_d²))`.
    ///
    /// The two arms are *paired* (identical seeds), so their positive
    /// covariance is ignored here — the interval is conservative (wider
    /// than the exact paired CI), which is the safe direction for an
    /// early-stop criterion. When either rate is zero the interval is
    /// `[0, ∞)`: no early stop until both arms have events.
    pub fn from_rates(numerator: &WeightedRate, denominator: &WeightedRate) -> RatioEstimate {
        let ratio = if denominator.rate > 0.0 {
            numerator.rate / denominator.rate
        } else {
            f64::NAN
        };
        let defined = numerator.rate > 0.0 && denominator.rate > 0.0;
        if !defined {
            return RatioEstimate {
                ratio,
                ci_low: 0.0,
                ci_high: f64::INFINITY,
            };
        }
        let se_log = ((numerator.std_err / numerator.rate).powi(2)
            + (denominator.std_err / denominator.rate).powi(2))
        .sqrt();
        RatioEstimate {
            ratio,
            ci_low: ratio * (-Z95 * se_log).exp(),
            ci_high: ratio * (Z95 * se_log).exp(),
        }
    }

    /// Half the CI width; infinite while the interval is undefined (the
    /// early-stop comparison then never triggers).
    pub fn half_width(&self) -> f64 {
        if self.ci_high.is_finite() && self.ci_low.is_finite() {
            (self.ci_high - self.ci_low) / 2.0
        } else {
            f64::INFINITY
        }
    }
}

impl std::fmt::Display for RatioEstimate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.ci_high.is_finite() {
            write!(
                f,
                "{:.3} [95% CI {:.3}, {:.3}]",
                self.ratio, self.ci_low, self.ci_high
            )
        } else {
            write!(f, "{:.3} [95% CI undefined]", self.ratio)
        }
    }
}

/// Per-stratum outcome counts with Wilson intervals.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StratumEstimate {
    /// The stratum.
    pub stratum: Stratum,
    /// Its probability mass under the model.
    pub weight: f64,
    /// Paired runs spent here.
    pub runs: usize,
    /// Equipped NMAC rate.
    pub equipped_nmac: RateEstimate,
    /// Unequipped NMAC rate on identical seeds.
    pub unequipped_nmac: RateEstimate,
    /// Rate of pairs whose two arms disagree on NMAC — the quantity
    /// Neyman allocation targets.
    pub disagreement: RateEstimate,
    /// Fraction of equipped runs with at least one alert.
    pub alert: RateEstimate,
    /// Fraction of runs alerting although the unequipped replay stayed
    /// NMAC-free.
    pub false_alert: RateEstimate,
}

/// The stratified analogue of [`crate::MonteCarloEstimate`]: per-stratum
/// Wilson intervals plus exactly-weighted combined rates and the combined
/// risk-ratio CI.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StratifiedEstimate {
    /// Per-stratum estimates, in canonical stratum order.
    pub strata: Vec<StratumEstimate>,
    /// Total paired runs across all strata.
    pub total_runs: usize,
    /// Combined NMAC rate with the configured equipage.
    pub equipped_nmac: WeightedRate,
    /// Combined NMAC rate of the identical-seed unequipped replays.
    pub unequipped_nmac: WeightedRate,
    /// Combined equipped/unequipped disagreement rate.
    pub disagreement: WeightedRate,
    /// Combined alert rate.
    pub alert: WeightedRate,
    /// Combined false-alert rate.
    pub false_alert: WeightedRate,
    /// `equipped / unequipped` NMAC risk ratio with its CI.
    pub risk_ratio: RatioEstimate,
}

/// Convergence snapshot appended after every campaign round — the series
/// [`crate::analysis::convergence_series`] and the report tables render.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundSummary {
    /// Round number (0 is the pilot).
    pub round: usize,
    /// Paired runs allocated to each stratum this round (canonical
    /// stratum order).
    pub allocated: Vec<usize>,
    /// Paired runs executed this round.
    pub runs_this_round: usize,
    /// Cumulative paired runs after this round.
    pub total_runs: usize,
    /// Combined equipped NMAC rate after this round.
    pub equipped_nmac: WeightedRate,
    /// Combined unequipped NMAC rate after this round.
    pub unequipped_nmac: WeightedRate,
    /// Combined risk ratio after this round.
    pub risk_ratio: RatioEstimate,
}

/// The result of a campaign: the final stratified estimate plus the full
/// round-by-round convergence trail.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignOutcome {
    /// The final stratified estimate.
    pub estimate: StratifiedEstimate,
    /// One summary per executed round, in order.
    pub rounds: Vec<RoundSummary>,
    /// Whether the risk-ratio CI reached the configured target half-width
    /// (possibly before exhausting `max_rounds`).
    pub reached_target: bool,
}

impl CampaignOutcome {
    /// Total paired runs spent.
    pub fn total_runs(&self) -> usize {
        self.estimate.total_runs
    }

    /// Cumulative runs after the first round whose risk-ratio CI
    /// half-width is at most `target`, if any round got there
    /// (delegates to [`crate::analysis::runs_to_half_width`] so there is
    /// a single definition of the runs-to-target reading).
    pub fn runs_to_half_width(&self, target: f64) -> Option<usize> {
        crate::analysis::runs_to_half_width(
            &crate::analysis::convergence_series(&self.rounds),
            target,
        )
    }
}

/// Anything that can fly a batch of paired jobs. [`BatchRunner`] is the
/// production source; tests substitute rigged generators with known
/// per-stratum rates to validate the estimator itself.
pub trait PairSource {
    /// Runs every job, returning outcomes in job order. Implementations
    /// must be pure per job (outcome a function of `params` and `seed`
    /// only) for campaign determinism to hold.
    fn run_pairs(&self, jobs: &[PairedJob]) -> Vec<PairedOutcome>;
}

impl PairSource for BatchRunner {
    fn run_pairs(&self, jobs: &[PairedJob]) -> Vec<PairedOutcome> {
        self.run_paired(jobs)
    }
}

/// Per-stratum running counts.
#[derive(Debug, Clone, Copy, Default)]
struct Tally {
    runs: usize,
    equipped_nmac: usize,
    unequipped_nmac: usize,
    disagree: usize,
    alerts: usize,
    false_alerts: usize,
}

impl Tally {
    fn absorb(&mut self, pair: &PairedOutcome) {
        self.runs += 1;
        if pair.equipped.nmac {
            self.equipped_nmac += 1;
        }
        if pair.unequipped.nmac {
            self.unequipped_nmac += 1;
        }
        if pair.equipped.nmac != pair.unequipped.nmac {
            self.disagree += 1;
        }
        if pair.equipped.alerted() {
            self.alerts += 1;
        }
        if pair.false_alert() {
            self.false_alerts += 1;
        }
    }
}

/// Splits `budget` across strata proportionally to `scores` with
/// largest-remainder rounding (deterministic, ties broken by stratum
/// index), so every allocated total is exactly `budget`.
fn apportion(scores: &[f64], budget: usize) -> Vec<usize> {
    let total: f64 = scores.iter().sum();
    if total <= 0.0 {
        // Degenerate scores: spread evenly, first strata take the rest.
        let base = budget / scores.len().max(1);
        let extra = budget - base * scores.len();
        return (0..scores.len())
            .map(|i| base + usize::from(i < extra))
            .collect();
    }
    let quotas: Vec<f64> = scores.iter().map(|s| budget as f64 * s / total).collect();
    let mut alloc: Vec<usize> = quotas.iter().map(|q| q.floor() as usize).collect();
    let assigned: usize = alloc.iter().sum();
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| {
        let fa = quotas[a] - quotas[a].floor();
        let fb = quotas[b] - quotas[b].floor();
        fb.partial_cmp(&fa).expect("finite quotas").then(a.cmp(&b))
    });
    for &i in order.iter().take(budget.saturating_sub(assigned)) {
        alloc[i] += 1;
    }
    alloc
}

/// Neyman-style scores on the observed equipped/unequipped disagreement:
/// minimizing the delta-method variance of the log risk ratio
/// `Var(p̂_e)/p_e² + Var(p̂_u)/p_u²` over allocations gives
/// `n_s ∝ w_s·√(σ̃²_{e,s}/p̂_e² + σ̃²_{u,s}/p̂_u²)` — each arm's
/// per-stratum binomial variance scaled by that arm's leverage on the
/// ratio CI. Strata where the arms disagree are exactly the strata where
/// these variances live (agreement in either direction contributes
/// nothing to the ratio's uncertainty budget), and the rarer arm's
/// events dominate the score through the `1/p̂²` leverage.
///
/// Per-stratum rates are shrunk toward the pooled arm rate
/// (`(e_s + k·p̂)/(n_s + k)`, an empirical-Bayes prior worth `k` pooled
/// pseudo-runs), so an all-agree stratum scores like the campaign
/// average instead of like `1/n_s` — rare-event strata with *observed*
/// events stand out, but no region is ever written off on a handful of
/// samples (the pooled rates themselves are Laplace-smoothed and
/// nonzero).
fn neyman_scores(weights: &[f64], tallies: &[Tally]) -> Vec<f64> {
    /// Pseudo-runs of pooled-rate prior mixed into each stratum's rate.
    const SHRINKAGE_RUNS: f64 = 4.0;
    let total_runs: usize = tallies.iter().map(|t| t.runs).sum();
    let equipped: usize = tallies.iter().map(|t| t.equipped_nmac).sum();
    let unequipped: usize = tallies.iter().map(|t| t.unequipped_nmac).sum();
    let pe = (equipped as f64 + 1.0) / (total_runs as f64 + 2.0);
    let pu = (unequipped as f64 + 1.0) / (total_runs as f64 + 2.0);
    let variance = |events: usize, trials: usize, pooled: f64| -> f64 {
        let p = (events as f64 + SHRINKAGE_RUNS * pooled) / (trials as f64 + SHRINKAGE_RUNS);
        p * (1.0 - p)
    };
    weights
        .iter()
        .zip(tallies)
        .map(|(w, t)| {
            let ve = variance(t.equipped_nmac, t.runs, pe);
            let vu = variance(t.unequipped_nmac, t.runs, pu);
            w * (ve / (pe * pe) + vu / (pu * pu)).sqrt()
        })
        .collect()
}

/// How a campaign splits each refinement round's budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Allocation {
    /// Proportional to stratum mass — the stratified equivalent of
    /// uniform Monte-Carlo, the baseline adaptive campaigns are measured
    /// against.
    Proportional,
    /// Neyman allocation on the observed (smoothed) disagreement
    /// standard deviation: `n_s ∝ w_s·σ̃_s`.
    Neyman,
}

/// Plans and executes adaptive (or uniform-baseline) stratified
/// Monte-Carlo campaigns over the statistical encounter model.
#[derive(Debug, Clone)]
pub struct CampaignPlanner {
    runner: EncounterRunner,
    model: StatisticalEncounterModel,
    stratification: Stratification,
    config: CampaignConfig,
}

impl CampaignPlanner {
    /// A planner with the default statistical model and stratification.
    pub fn new(runner: EncounterRunner, config: CampaignConfig) -> Self {
        Self {
            runner,
            model: StatisticalEncounterModel::default(),
            stratification: Stratification::default(),
            config,
        }
    }

    /// Overrides the statistical encounter model.
    pub fn model(mut self, model: StatisticalEncounterModel) -> Self {
        self.model = model;
        self
    }

    /// Overrides the stratification.
    pub fn stratification(mut self, stratification: Stratification) -> Self {
        self.stratification = stratification;
        self
    }

    /// Adjusts the campaign configuration in place (builder-style).
    pub fn config_with(mut self, adjust: impl FnOnce(&mut CampaignConfig)) -> Self {
        adjust(&mut self.config);
        self
    }

    /// The configured campaign parameters.
    pub fn current_config(&self) -> CampaignConfig {
        self.config
    }

    /// The configured stratification.
    pub fn current_stratification(&self) -> Stratification {
        self.stratification
    }

    /// The configured statistical model.
    pub fn current_model(&self) -> StatisticalEncounterModel {
        self.model
    }

    /// Runs the adaptive campaign on the shared worker pool.
    pub fn run(&self) -> CampaignOutcome {
        self.run_observed(|_| {})
    }

    /// Runs the adaptive campaign, streaming each [`RoundSummary`] to
    /// `observer` as soon as its round completes (progress displays,
    /// convergence logging).
    pub fn run_observed<F: FnMut(&RoundSummary)>(&self, observer: F) -> CampaignOutcome {
        self.run_with_observed(&self.batch(), Allocation::Neyman, observer)
    }

    /// Runs the adaptive campaign against a caller-supplied job source
    /// (rigged generators in tests, remote backends later).
    pub fn run_with<S: PairSource>(&self, source: &S) -> CampaignOutcome {
        self.run_with_observed(source, Allocation::Neyman, |_| {})
    }

    /// Runs the *uniform* baseline: identical schedule and seed rule, but
    /// every round splits its budget proportionally to stratum mass —
    /// stratified uniform Monte-Carlo, no adaptation.
    pub fn run_uniform(&self) -> CampaignOutcome {
        self.run_with_observed(&self.batch(), Allocation::Proportional, |_| {})
    }

    /// [`run_uniform`](Self::run_uniform) against a caller-supplied source.
    pub fn run_uniform_with<S: PairSource>(&self, source: &S) -> CampaignOutcome {
        self.run_with_observed(source, Allocation::Proportional, |_| {})
    }

    fn batch(&self) -> BatchRunner {
        BatchRunner::new(self.runner.clone(), Executor::new(self.config.threads))
    }

    fn run_with_observed<S: PairSource, F: FnMut(&RoundSummary)>(
        &self,
        source: &S,
        allocation: Allocation,
        mut observer: F,
    ) -> CampaignOutcome {
        let strata = self.stratification.strata();
        let weights: Vec<f64> = strata
            .iter()
            .map(|&s| self.stratification.weight(&self.model, s))
            .collect();
        let mut tallies = vec![Tally::default(); strata.len()];
        let mut rounds: Vec<RoundSummary> = Vec::new();
        let mut reached_target = false;

        for round in 0..=self.config.max_rounds {
            let alloc = if round == 0 {
                vec![self.config.pilot_per_stratum; strata.len()]
            } else {
                let scores: Vec<f64> = match allocation {
                    Allocation::Proportional => weights.clone(),
                    Allocation::Neyman => neyman_scores(&weights, &tallies),
                };
                apportion(&scores, self.config.round_runs)
            };

            // Plan serially: every job's parameters and seed derive from
            // (campaign_seed, stratum, round, index), never from
            // execution order.
            let runs_this_round: usize = alloc.iter().sum();
            let mut jobs = Vec::with_capacity(runs_this_round);
            let mut owners = Vec::with_capacity(runs_this_round);
            for (si, &count) in alloc.iter().enumerate() {
                for index in 0..count {
                    let base = campaign_job_seed(self.config.seed, si, round, index);
                    let mut rng = StdRng::seed_from_u64(base);
                    let params = self
                        .stratification
                        .sample(&self.model, strata[si], &mut rng);
                    jobs.push(PairedJob {
                        params,
                        seed: splitmix64(base ^ SIM_STREAM),
                    });
                    owners.push(si);
                }
            }

            let outcomes = source.run_pairs(&jobs);
            for (&si, pair) in owners.iter().zip(&outcomes) {
                tallies[si].absorb(pair);
            }

            let estimate = self.estimate_from(&strata, &weights, &tallies);
            let summary = RoundSummary {
                round,
                allocated: alloc,
                runs_this_round,
                total_runs: estimate.total_runs,
                equipped_nmac: estimate.equipped_nmac,
                unequipped_nmac: estimate.unequipped_nmac,
                risk_ratio: estimate.risk_ratio,
            };
            observer(&summary);
            rounds.push(summary);

            if self.config.target_half_width > 0.0
                && estimate.risk_ratio.half_width() <= self.config.target_half_width
            {
                reached_target = true;
                break;
            }
        }

        CampaignOutcome {
            estimate: self.estimate_from(&strata, &weights, &tallies),
            rounds,
            reached_target,
        }
    }

    fn estimate_from(
        &self,
        strata: &[Stratum],
        weights: &[f64],
        tallies: &[Tally],
    ) -> StratifiedEstimate {
        let per_stratum: Vec<StratumEstimate> = strata
            .iter()
            .zip(weights)
            .zip(tallies)
            .map(|((&stratum, &weight), t)| StratumEstimate {
                stratum,
                weight,
                runs: t.runs,
                equipped_nmac: RateEstimate::wilson(t.equipped_nmac, t.runs),
                unequipped_nmac: RateEstimate::wilson(t.unequipped_nmac, t.runs),
                disagreement: RateEstimate::wilson(t.disagree, t.runs),
                alert: RateEstimate::wilson(t.alerts, t.runs),
                false_alert: RateEstimate::wilson(t.false_alerts, t.runs),
            })
            .collect();
        let cells = |pick: fn(&Tally) -> usize| -> Vec<(f64, usize, usize)> {
            weights
                .iter()
                .zip(tallies)
                .map(|(&w, t)| (w, pick(t), t.runs))
                .collect()
        };
        let equipped_nmac = WeightedRate::combine(&cells(|t| t.equipped_nmac));
        let unequipped_nmac = WeightedRate::combine(&cells(|t| t.unequipped_nmac));
        StratifiedEstimate {
            total_runs: tallies.iter().map(|t| t.runs).sum(),
            risk_ratio: RatioEstimate::from_rates(&equipped_nmac, &unequipped_nmac),
            disagreement: WeightedRate::combine(&cells(|t| t.disagree)),
            alert: WeightedRate::combine(&cells(|t| t.alerts)),
            false_alert: WeightedRate::combine(&cells(|t| t.false_alerts)),
            strata: per_stratum,
            equipped_nmac,
            unequipped_nmac,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_seeds_are_pure_and_component_sensitive() {
        let a = campaign_job_seed(7, 3, 2, 11);
        assert_eq!(a, campaign_job_seed(7, 3, 2, 11));
        assert_ne!(a, campaign_job_seed(8, 3, 2, 11));
        assert_ne!(a, campaign_job_seed(7, 4, 2, 11));
        assert_ne!(a, campaign_job_seed(7, 3, 3, 11));
        assert_ne!(a, campaign_job_seed(7, 3, 2, 12));
    }

    #[test]
    fn apportion_is_exact_and_deterministic() {
        let scores = [0.5, 0.25, 0.125, 0.125];
        let alloc = apportion(&scores, 17);
        assert_eq!(alloc.iter().sum::<usize>(), 17);
        assert_eq!(alloc, apportion(&scores, 17));
        // Largest score takes the largest share.
        assert!(alloc[0] >= alloc[1] && alloc[1] >= alloc[2]);
        // Degenerate scores spread evenly.
        let even = apportion(&[0.0, 0.0, 0.0], 7);
        assert_eq!(even.iter().sum::<usize>(), 7);
        assert_eq!(even, vec![3, 2, 2]);
    }

    #[test]
    fn weighted_rate_combines_exactly() {
        // Two equal-mass strata: 10% and 50% event rates → 30% combined.
        let w = WeightedRate::combine(&[(0.5, 10, 100), (0.5, 50, 100)]);
        assert!((w.rate - 0.3).abs() < 1e-12);
        assert!(w.ci_low < w.rate && w.rate < w.ci_high);
        assert!(w.std_err > 0.0);
        // Zero-trial strata are renormalized away.
        let partial = WeightedRate::combine(&[(0.5, 10, 100), (0.5, 0, 0)]);
        assert!((partial.rate - 0.1).abs() < 1e-12);
        // No coverage at all stays NaN with the vacuous interval.
        let none = WeightedRate::combine(&[(1.0, 0, 0)]);
        assert!(none.rate.is_nan());
        assert_eq!((none.ci_low, none.ci_high), (0.0, 1.0));
    }

    #[test]
    fn ratio_estimate_handles_zero_rates() {
        let p = WeightedRate::combine(&[(1.0, 20, 100)]);
        let q = WeightedRate::combine(&[(1.0, 40, 100)]);
        let r = RatioEstimate::from_rates(&p, &q);
        assert!((r.ratio - 0.5).abs() < 1e-12);
        assert!(r.ci_low < r.ratio && r.ratio < r.ci_high);
        assert!(r.half_width().is_finite());
        let zero = WeightedRate::combine(&[(1.0, 0, 100)]);
        let undef = RatioEstimate::from_rates(&zero, &q);
        assert_eq!(undef.ratio, 0.0);
        assert!(undef.half_width().is_infinite());
        assert!(RatioEstimate::from_rates(&p, &zero).ratio.is_nan());
    }
}
