//! GA-based search for challenging UAV encounter situations — the core
//! contribution of Zou, Alexander & McDermid (DSN 2016).
//!
//! The validation problem: an ACAS XU-like logic is optimal *with respect
//! to its model*, but the model may misrepresent reality. Monte-Carlo
//! simulation can estimate event probabilities but burns enormous budgets
//! on rare events. This crate implements the paper's complementary
//! approach — **search** the scenario space for situations where undesired
//! events (mid-air collisions, false alarms) concentrate:
//!
//! * [`ScenarioSpace`]: the 9-parameter encounter encoding as a GA genome,
//! * [`EncounterRunner`]: wires a scenario into the 3-D simulation with a
//!   chosen equipage (ACAS XU both sides, one side, or none),
//! * [`BatchRunner`]: the batch-evaluation engine — every "run N
//!   simulations" site expressed as [`SimJob`]/[`PairedJob`] batches on a
//!   shared worker pool, deterministic across thread counts,
//! * [`FitnessFunction`]: the paper's Section VII fitness
//!   `mean(10000 / (1 + d_k))` over `K` stochastic runs, plus alternative
//!   objectives (alert-rate for false-alarm hunting),
//! * [`SearchHarness`]: the GA loop of Fig. 3 (scenario generator →
//!   simulation → fitness → evolve), with a budget-matched
//!   [`random search`](SearchHarness::run_random_search) baseline,
//! * [`MonteCarloEstimator`]: the classical estimation loop the paper
//!   contrasts against, with risk ratios and Wilson confidence intervals,
//! * [`CampaignPlanner`]: adaptive stratified Monte-Carlo — a pilot round
//!   over a geometry × CPA-band [`uavca_encounter::Stratification`], then
//!   Neyman reallocation of the remaining budget by each stratum's
//!   contribution to the *paired* log-risk-ratio variance (the arms replay
//!   identical seeds, so the estimator keeps the per-pair 2×2 table and
//!   exploits the between-arm covariance), with early stop on the paired
//!   risk-ratio CI half-width and a jackknife cross-check,
//! * [`analysis`]: geometry classification of found scenarios and a
//!   k-means extension (the paper's "find *areas* of the search space"
//!   future work).
//!
//! # Example
//!
//! ```no_run
//! use uavca_validation::{EncounterRunner, SearchConfig, SearchHarness};
//!
//! let runner = EncounterRunner::with_coarse_table();
//! let config = SearchConfig::smoke(); // tiny budget for doc purposes
//! let outcome = SearchHarness::new(runner, config).run_ga();
//! println!("hardest encounter found: fitness {:.0}", outcome.result.best.fitness);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod analysis;
mod campaign;
mod engine;
mod fitness;
mod harness;
mod montecarlo;
mod multi;
mod report;
mod runner;
mod scenario;
mod splitting;

pub use campaign::{
    campaign_job_seed, jackknife_ratio, neyman_scores, paired_covariance, split_branch_seed,
    CampaignCheckpoint, CampaignConfig, CampaignConfigError, CampaignOutcome, CampaignPlanner,
    CampaignResumeError, CampaignStepper, PairSource, PairTable, PlannedRound, RatioEstimate,
    RoundSummary, StratifiedEstimate, StratumEstimate, StratumTally, WeightedRate,
};
pub use engine::{BatchRunner, PairedJob, PairedOutcome, SimEngine, SimJob, SimSource};
pub use fitness::{FitnessFunction, FitnessKind};
pub use harness::{SearchConfig, SearchHarness, SearchOutcome};
pub use montecarlo::{MonteCarloConfig, MonteCarloEstimate, MonteCarloEstimator, RateEstimate};
pub use multi::{
    DensityEstimate, MultiCampaignOutcome, MultiCampaignPlanner, MultiCampaignStepper, MultiJob,
    MultiPairedOutcome, MultiPlannedRound, MultiRoundSummary, MultiRunScratch, MultiSource,
    MultiStratifiedEstimate, MultiStratumEstimate, MultiStratumTally,
};
pub use report::{
    campaign_convergence_table, campaign_shard_table, campaign_stratum_table,
    split_convergence_table, split_stratum_table, ShardUsage, TextTable,
};
pub use runner::{EncounterRunner, Equipage, RunScratch};
pub use scenario::ScenarioSpace;
pub use splitting::{
    branch_schedule, split_neyman_scores, PlannedSplitRound, SplitCampaignOutcome, SplitCheckpoint,
    SplitConfig, SplitConfigError, SplitEstimate, SplitJob, SplitOutcome, SplitPlanner,
    SplitResumeError, SplitRoundSummary, SplitSource, SplitStepper, SplitStratumEstimate,
    SplitTally,
};
