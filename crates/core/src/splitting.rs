//! Multilevel importance splitting for rare-event NMAC estimation.
//!
//! Crude (even adaptively stratified) Monte-Carlo needs on the order of
//! `100/p` simulations to pin a probability `p` to ±10% — hopeless at
//! the certification-grade equipped NMAC rates (~1e-6) the source
//! paper's validation question ultimately lives at. Multilevel splitting
//! attacks the `1/p` directly: a trajectory that drifts toward the NMAC
//! cylinder is *checkpointed* at nested severity thresholds and branched
//! into `K` continuations, so deep excursions are revisited `Π K_j`
//! times while their statistical weight is divided by the same product.
//! The NMAC probability becomes a product of per-level conditional
//! probabilities — each of moderate size, each cheap to estimate — and
//! the budget concentrates exactly where the rare event's probability
//! mass is decided.
//!
//! # The estimator
//!
//! Each **root** trajectory `i` (one [`SplitJob`]) yields an unbiased
//! per-root estimate `R_i ∈ [0, 1]`: the sum over NMAC leaves of its
//! branch tree of `Π_j 1/K_j` along the path (see
//! [`crate::EncounterRunner::run_split_reusing`]). Roots are i.i.d.
//! within a stratum, so the stratum estimate is the sample mean of
//! `R_i` with the usual `S²/n` variance — a delta-method CI that
//! composes into the existing stratified [`WeightedRate`] /
//! [`RatioEstimate`] machinery unchanged. When every root returns the
//! same value the sample variance degenerates; a smoothed Bernoulli
//! floor (`m̃(1−m̃)` with `m̃ = (ΣR + ½)/(n + 1)`, the same Anscombe
//! smoothing [`WeightedRate::combine`] uses) keeps the interval from
//! collapsing to zero width.
//!
//! # The unequipped arm and the control variate
//!
//! The unequipped arm needs no splitting (its NMAC rate is orders of
//! magnitude larger), but it rides the same root seeds, so each root
//! contributes a paired `(R_i, y_i)` observation whose sample covariance
//! feeds [`RatioEstimate::paired`] exactly as the 2×2 [`crate::PairTable`]
//! cells do for plain campaigns. On top of that, the sampled CPA miss
//! distance `x_i` is uniform within the stratum's CPA band by
//! construction ([`Stratification::sample`] redraws it), so its mean
//! `μ_s = (lo + hi)/2` is known *exactly* — a textbook regression
//! control variate. The adjusted rate
//! `p̂_u = ȳ − β̂(x̄ − μ_s)` with the closed-form least-squares slope
//! `β̂ = S_xy/S_xx` removes the variance component explained by *where
//! in the band* the roots happened to land; its variance is the
//! regression prediction variance
//! `σ̂²_res·(1/n + (μ_s − x̄)²/S_xx)` with
//! `σ̂²_res = (S_yy − β̂·S_xy)/(n − 2)` — the `(1 − ρ²)` shrinkage of
//! the raw binomial variance.
//!
//! # Determinism
//!
//! Root seeds derive from `(campaign_seed, stratum, round, index)` via
//! [`campaign_job_seed`] exactly like plain campaigns; branch seeds
//! derive from `(root_seed, level, node, branch)` via
//! [`crate::split_branch_seed`] with the branch tree walked depth-first.
//! Branch factors for round `r` are a pure function of the tallies
//! absorbed through round `r − 1` ([`branch_schedule`]), and outcomes
//! are absorbed serially in job order — so a splitting campaign's every
//! number is bit-identical for any worker-thread or shard count
//! (enforced by `tests/splitting_determinism.rs` and the serve-side
//! battery).

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize, Value};
use uavca_encounter::{EncounterParams, StatisticalEncounterModel, Stratification, Stratum};
use uavca_exec::{Backend, Executor};
use uavca_sim::{EncounterOutcome, NMAC_HORIZONTAL_FT};

use crate::campaign::{
    apportion, campaign_job_seed, splitmix64, RatioEstimate, WeightedRate, SIM_STREAM, Z95,
};
use crate::montecarlo::{finite_or_null, float_or};
use crate::{BatchRunner, EncounterRunner, RateEstimate};

/// One multilevel-splitting root: an encounter, its root simulation
/// seed, the descending severity ladder to branch at, and the branch
/// factor per rung.
///
/// Unlike [`crate::PairedJob`] this is not `Copy` — the ladder and the
/// branch schedule ride along so a job stays a pure, self-contained
/// description of its whole branch tree on any worker or shard.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SplitJob {
    /// Encounter geometry parameters.
    pub params: EncounterParams,
    /// Root simulation seed (the branch-seed rule hashes it per branch).
    pub seed: u64,
    /// Descending severity thresholds to checkpoint-and-branch at
    /// (empty = no splitting; the job degenerates to one plain run).
    pub levels: Vec<f64>,
    /// Branch factor `K_j` per rung of `levels` (parallel array).
    pub branches: Vec<usize>,
}

/// What one splitting root produced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SplitOutcome {
    /// The per-root unbiased NMAC estimate `R ∈ [0, 1]`: the sum over
    /// NMAC leaves of `Π_j 1/K_j` along each leaf's branch path.
    pub weight: f64,
    /// Trajectory segments that *entered* each stage (rungs `0..L`,
    /// then the terminal run-to-NMAC stage at index `L`).
    pub level_trials: Vec<u64>,
    /// Segments that crossed each stage's threshold (an NMAC counts as
    /// crossing the stage it occurred in; index `L` counts NMAC leaves).
    pub level_crossings: Vec<u64>,
    /// Equipped simulation steps spent across the whole branch tree.
    pub equipped_steps: u64,
    /// Steps spent on the unequipped companion run.
    pub unequipped_steps: u64,
    /// The unequipped (no avoidance) outcome on the root seed.
    pub unequipped: EncounterOutcome,
}

/// Anything that can run splitting jobs: the in-process
/// [`BatchRunner`], a sharded backend, or a rigged source in tests.
pub trait SplitSource {
    /// Runs every job, returning outcomes **in job order**.
    fn run_splits(&self, jobs: &[SplitJob]) -> Vec<SplitOutcome>;
}

impl<B: Backend> SplitSource for BatchRunner<B> {
    fn run_splits(&self, jobs: &[SplitJob]) -> Vec<SplitOutcome> {
        self.run_splits(jobs)
    }
}

/// Adaptive branch factors from per-level tallies: `K_j` targets the
/// splitting sweet spot `K_j ≈ 1/p_j` (expected one surviving branch
/// per crossing, the classic fixed-effort optimum), with the
/// conditional crossing rate estimated by the Laplace-smoothed
/// `p̂_j = (crossings_j + 1)/(trials_j + 2)`.
///
/// The smoothing makes the schedule total — an unvisited level gets
/// `p̂ = ½` and the conservative cold-start fan `K = 2` — and the clamp
/// to `[1, max_branch]` bounds the tree's worst-case cost. The result
/// is a pure function of the tallies, which is what lets adaptive
/// schedules coexist with bit-identical campaigns: round `r`'s schedule
/// depends only on rounds `0..r`, never on execution order.
pub fn branch_schedule(
    level_trials: &[u64],
    level_crossings: &[u64],
    max_branch: usize,
) -> Vec<usize> {
    debug_assert_eq!(
        level_trials.len(),
        level_crossings.len(),
        "one crossing count per level-trial count"
    );
    level_trials
        .iter()
        .zip(level_crossings)
        .map(|(&n, &c)| {
            let p = (c as f64 + 1.0) / (n as f64 + 2.0);
            ((1.0 / p).round() as usize).clamp(1, max_branch.max(1))
        })
        .collect()
}

/// Configuration of a multilevel-splitting campaign.
///
/// # Serialized form
///
/// As with [`crate::CampaignConfig`], the disable-early-stop sentinel
/// `target_half_width = +∞` serializes as JSON `null`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SplitConfig {
    /// Master seed; every root and branch seed derives from it.
    pub seed: u64,
    /// Severity rungs requested per stratum ladder. Strata whose CPA
    /// band already touches the NMAC cylinder get an empty ladder (no
    /// splitting — NMACs are not rare there); 0 disables splitting
    /// everywhere, degenerating to crude per-root sampling.
    pub levels: usize,
    /// Upper clamp on adaptive branch factors (see [`branch_schedule`]).
    pub max_branch: usize,
    /// Roots per stratum in round 0 (the pilot).
    pub pilot_roots_per_stratum: usize,
    /// Total roots per refinement round, split by Neyman scores.
    pub round_roots: usize,
    /// Refinement rounds after the pilot.
    pub max_rounds: usize,
    /// Stop as soon as the paired risk-ratio CI half-width (maximum
    /// one-sided width) reaches this; `+∞` disables the early stop.
    pub target_half_width: f64,
    /// Worker threads (0 = all cores).
    pub threads: usize,
}

impl Default for SplitConfig {
    fn default() -> Self {
        SplitConfig {
            seed: 0,
            levels: 3,
            max_branch: 8,
            pilot_roots_per_stratum: 16,
            round_roots: 128,
            max_rounds: 8,
            target_half_width: f64::INFINITY,
            threads: 0,
        }
    }
}

impl Serialize for SplitConfig {
    fn serialize(&self) -> Value {
        Value::Object(vec![
            ("seed".to_string(), self.seed.serialize()),
            ("levels".to_string(), self.levels.serialize()),
            ("max_branch".to_string(), self.max_branch.serialize()),
            (
                "pilot_roots_per_stratum".to_string(),
                self.pilot_roots_per_stratum.serialize(),
            ),
            ("round_roots".to_string(), self.round_roots.serialize()),
            ("max_rounds".to_string(), self.max_rounds.serialize()),
            (
                "target_half_width".to_string(),
                finite_or_null(self.target_half_width),
            ),
            ("threads".to_string(), self.threads.serialize()),
        ])
    }
}

impl Deserialize for SplitConfig {
    fn deserialize(v: &Value) -> Result<Self, serde::Error> {
        Ok(SplitConfig {
            seed: u64::deserialize(v.field("seed")?)?,
            levels: usize::deserialize(v.field("levels")?)?,
            max_branch: usize::deserialize(v.field("max_branch")?)?,
            pilot_roots_per_stratum: usize::deserialize(v.field("pilot_roots_per_stratum")?)?,
            round_roots: usize::deserialize(v.field("round_roots")?)?,
            max_rounds: usize::deserialize(v.field("max_rounds")?)?,
            target_half_width: float_or(v.field("target_half_width")?, f64::INFINITY)?,
            threads: usize::deserialize(v.field("threads")?)?,
        })
    }
}

impl SplitConfig {
    /// Rejects degenerate configurations (see [`SplitConfigError`]).
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint.
    pub fn validate(&self) -> Result<(), SplitConfigError> {
        if self.pilot_roots_per_stratum == 0 {
            return Err(SplitConfigError::ZeroPilotBudget);
        }
        if self.round_roots == 0 {
            return Err(SplitConfigError::ZeroRoundRoots);
        }
        if self.max_rounds == 0 {
            return Err(SplitConfigError::ZeroRounds);
        }
        if self.max_branch == 0 {
            return Err(SplitConfigError::ZeroMaxBranch);
        }
        // Negated so a NaN target is rejected alongside non-positive ones.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(self.target_half_width > 0.0) {
            return Err(SplitConfigError::NonPositiveTargetHalfWidth);
        }
        Ok(())
    }
}

/// Why a [`SplitConfig`] is degenerate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitConfigError {
    /// `pilot_roots_per_stratum == 0`: no pilot, nothing to adapt from.
    ZeroPilotBudget,
    /// `round_roots == 0`: refinement rounds would simulate nothing.
    ZeroRoundRoots,
    /// `max_rounds == 0`: the campaign would end at the pilot.
    ZeroRounds,
    /// `max_branch == 0`: every branch tree would be empty.
    ZeroMaxBranch,
    /// `target_half_width ≤ 0` or NaN: the stop could never trigger
    /// meaningfully (use `+∞` to disable the early stop).
    NonPositiveTargetHalfWidth,
}

impl std::fmt::Display for SplitConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SplitConfigError::ZeroPilotBudget => {
                write!(f, "pilot_roots_per_stratum must be at least 1")
            }
            SplitConfigError::ZeroRoundRoots => {
                write!(f, "round_roots must be at least 1")
            }
            SplitConfigError::ZeroRounds => write!(f, "max_rounds must be at least 1"),
            SplitConfigError::ZeroMaxBranch => write!(f, "max_branch must be at least 1"),
            SplitConfigError::NonPositiveTargetHalfWidth => write!(
                f,
                "target_half_width must be positive (use +inf to disable the early stop)"
            ),
        }
    }
}

impl std::error::Error for SplitConfigError {}

/// Per-stratum accumulator of splitting outcomes: root moments for the
/// equipped arm, the paired cross moment, the per-level conditional
/// tallies the branch scheduler feeds on, the control-variate joint
/// moments of the unequipped arm, and the step meters.
///
/// Outcomes are absorbed serially **in job order** by the planner, so
/// even the floating-point sums are bit-identical regardless of which
/// worker or shard ran each job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SplitTally {
    /// Roots absorbed.
    pub roots: usize,
    /// `Σ R_i` — sum of per-root estimates.
    pub sum_weight: f64,
    /// `Σ R_i²` — for the sample variance.
    pub sum_weight_sq: f64,
    /// `Σ R_i·y_i` — the equipped/unequipped cross moment (`y_i` the
    /// unequipped NMAC indicator), for the paired covariance.
    pub sum_cross: f64,
    /// Unequipped NMACs (`Σ y_i`).
    pub unequipped_nmacs: usize,
    /// `Σ x_i` of the control `x` = sampled CPA horizontal miss, ft.
    pub sum_x: f64,
    /// `Σ x_i²`.
    pub sum_xx: f64,
    /// `Σ x_i·y_i`.
    pub sum_xy: f64,
    /// Segments entering each stage (rungs, then the terminal stage).
    pub level_trials: Vec<u64>,
    /// Segments crossing each stage (see [`SplitOutcome`]).
    pub level_crossings: Vec<u64>,
    /// Equipped steps simulated (all branch trees).
    pub equipped_steps: u64,
    /// Unequipped steps simulated.
    pub unequipped_steps: u64,
}

impl SplitTally {
    /// An empty tally for a ladder with `rungs` branching levels.
    pub fn new(rungs: usize) -> Self {
        SplitTally {
            roots: 0,
            sum_weight: 0.0,
            sum_weight_sq: 0.0,
            sum_cross: 0.0,
            unequipped_nmacs: 0,
            sum_x: 0.0,
            sum_xx: 0.0,
            sum_xy: 0.0,
            level_trials: vec![0; rungs + 1],
            level_crossings: vec![0; rungs + 1],
            equipped_steps: 0,
            unequipped_steps: 0,
        }
    }

    /// Folds one root's outcome in. `x` is the control value the job was
    /// sampled at (its CPA horizontal miss distance).
    pub fn absorb(&mut self, x: f64, outcome: &SplitOutcome) {
        self.roots += 1;
        let r = outcome.weight;
        self.sum_weight += r;
        self.sum_weight_sq += r * r;
        let y = f64::from(u8::from(outcome.unequipped.nmac));
        self.sum_cross += r * y;
        self.unequipped_nmacs += usize::from(outcome.unequipped.nmac);
        self.sum_x += x;
        self.sum_xx += x * x;
        self.sum_xy += x * y;
        debug_assert_eq!(
            self.level_trials.len(),
            outcome.level_trials.len(),
            "a stratum's ladder length is fixed for the whole campaign"
        );
        for (total, &fresh) in self.level_trials.iter_mut().zip(&outcome.level_trials) {
            *total += fresh;
        }
        for (total, &fresh) in self
            .level_crossings
            .iter_mut()
            .zip(&outcome.level_crossings)
        {
            *total += fresh;
        }
        self.equipped_steps += outcome.equipped_steps;
        self.unequipped_steps += outcome.unequipped_steps;
    }

    /// Branching rungs of this stratum's ladder (stages minus the
    /// terminal run-to-NMAC stage).
    pub fn rungs(&self) -> usize {
        self.level_trials.len() - 1
    }

    /// The moment summaries both the estimator and the Neyman scores
    /// consume; `band` is the stratum's CPA band `(lo, hi)` in ft.
    fn stats(&self, band: (f64, f64)) -> SplitStats {
        let n = self.roots as f64;
        if self.roots == 0 {
            return SplitStats::default();
        }
        // Equipped arm: sample moments of the i.i.d. per-root R_i, with
        // the smoothed Bernoulli floor when the sample degenerates.
        let mean_e = self.sum_weight / n;
        let sample_var = if self.roots >= 2 {
            ((self.sum_weight_sq - self.sum_weight * self.sum_weight / n) / (n - 1.0)).max(0.0)
        } else {
            0.0
        };
        let var_e = if sample_var > 0.0 {
            sample_var
        } else {
            let m = (self.sum_weight + 0.5) / (n + 1.0);
            m * (1.0 - m)
        };
        // Unequipped arm: regression control variate on x with known
        // stratum mean μ = (lo + hi)/2 (x is redrawn uniform in band).
        let y_bar = self.unequipped_nmacs as f64 / n;
        let x_bar = self.sum_x / n;
        let mu = (band.0 + band.1) / 2.0;
        let s_xx = (self.sum_xx - n * x_bar * x_bar).max(0.0);
        let s_xy = self.sum_xy - n * x_bar * y_bar;
        // y is an indicator, so Σy² = Σy and S_yy = n·ȳ(1−ȳ) exactly.
        let s_yy = n * y_bar * (1.0 - y_bar);
        let smoothed_y = {
            let m = (self.unequipped_nmacs as f64 + 0.5) / (n + 1.0);
            m * (1.0 - m)
        };
        let usable = self.roots >= 3 && s_xx > 0.0;
        let beta = if usable { s_xy / s_xx } else { 0.0 };
        let rate_u_cv = (y_bar - beta * (x_bar - mu)).clamp(0.0, 1.0);
        let ss_res = (s_yy - beta * s_xy).max(0.0);
        // Prediction variance of the adjusted mean at the known μ; falls
        // back to the smoothed binomial variance when the regression is
        // degenerate (too few roots, all-equal x, or a perfect fit whose
        // zero residual would claim false certainty).
        let var_of_mean_u = if usable && ss_res > 0.0 {
            let resid = ss_res / (n - 2.0);
            resid * (1.0 / n + (mu - x_bar) * (mu - x_bar) / s_xx)
        } else {
            smoothed_y / n
        };
        // Paired cross moment: per-root covariance of (R_i, y_i).
        let cov = if self.roots >= 2 {
            ((self.sum_cross - n * mean_e * y_bar) / (n - 1.0)).max(0.0)
        } else {
            0.0
        };
        SplitStats {
            mean_e,
            var_e,
            rate_u_cv,
            beta,
            var_u: var_of_mean_u * n,
            var_of_mean_e: var_e / n,
            var_of_mean_u,
            cov,
        }
    }
}

/// Per-stratum moment summaries derived from a [`SplitTally`].
#[derive(Debug, Clone, Copy, Default)]
struct SplitStats {
    mean_e: f64,
    /// Per-root variance of `R_i` (floored when degenerate).
    var_e: f64,
    rate_u_cv: f64,
    beta: f64,
    /// Effective per-root variance of the CV-adjusted unequipped rate.
    var_u: f64,
    var_of_mean_e: f64,
    var_of_mean_u: f64,
    /// Per-root covariance of `(R_i, y_i)`, clamped non-negative.
    cov: f64,
}

/// Neyman scores for root reallocation across strata, on the paired
/// log-risk-ratio objective — the splitting analogue of
/// [`crate::neyman_scores`]: each stratum is scored
/// `w_s·√(σ²_{e,s}/p̂_e² + σ²_{u,s}/p̂_u² − 2·c_s/(p̂_e·p̂_u))` with the
/// per-root variances the splitting estimator itself reports (equipped:
/// sample variance of `R_i` with the smoothed floor; unequipped: the
/// control-variate residual variance) and pooled, Laplace-smoothed arm
/// rates. Pure function of the tallies, so reallocation preserves
/// bit-identity across thread and shard counts.
pub fn split_neyman_scores(
    weights: &[f64],
    tallies: &[SplitTally],
    bands: &[(f64, f64)],
) -> Vec<f64> {
    debug_assert!(
        weights.len() == tallies.len() && weights.len() == bands.len(),
        "one weight and CPA band per stratum tally"
    );
    let total_roots: usize = tallies.iter().map(|t| t.roots).sum();
    let n = total_roots as f64;
    let pooled_e: f64 = tallies.iter().map(|t| t.sum_weight).sum();
    let pooled_u: usize = tallies.iter().map(|t| t.unequipped_nmacs).sum();
    let pe = (pooled_e + 0.5) / (n + 1.0);
    let pu = (pooled_u as f64 + 1.0) / (n + 2.0);
    weights
        .iter()
        .zip(tallies)
        .zip(bands)
        .map(|((w, t), &band)| {
            let s = t.stats(band);
            let cov = s.cov.clamp(0.0, (s.var_e * s.var_u).sqrt());
            let objective = s.var_e / (pe * pe) + s.var_u / (pu * pu) - 2.0 * cov / (pe * pu);
            w * objective.max(0.0).sqrt()
        })
        .collect()
}

/// One stratum's splitting estimate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SplitStratumEstimate {
    /// The stratum.
    pub stratum: Stratum,
    /// Its exact probability mass under the model.
    pub weight: f64,
    /// Roots simulated.
    pub roots: usize,
    /// The severity ladder (descending thresholds; empty = no splitting).
    pub levels: Vec<f64>,
    /// The branch schedule the final round used.
    pub branches: Vec<usize>,
    /// Segments entering each stage (rungs, then terminal).
    pub level_trials: Vec<u64>,
    /// Segments crossing each stage.
    pub level_crossings: Vec<u64>,
    /// Splitting estimate of the equipped NMAC probability (mean `R_i`).
    pub equipped_mean: f64,
    /// Standard error of `equipped_mean`.
    pub equipped_std_err: f64,
    /// Raw (unadjusted) unequipped NMAC rate with its Wilson interval.
    pub unequipped: RateEstimate,
    /// Closed-form control-variate slope `β̂ = S_xy/S_xx`.
    pub cv_beta: f64,
    /// Control-variate-adjusted unequipped NMAC rate.
    pub unequipped_cv_rate: f64,
    /// Standard error of the adjusted rate.
    pub unequipped_cv_std_err: f64,
}

/// The combined splitting estimate across all strata.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SplitEstimate {
    /// Per-stratum detail.
    pub strata: Vec<SplitStratumEstimate>,
    /// Total roots across strata and rounds.
    pub total_roots: usize,
    /// Stratified equipped NMAC probability from the splitting means.
    pub equipped_nmac: WeightedRate,
    /// Stratified unequipped NMAC probability, control-variate adjusted
    /// (the campaign's primary denominator).
    pub unequipped_nmac: WeightedRate,
    /// The same denominator without the control variate, for comparison.
    pub unequipped_nmac_raw: WeightedRate,
    /// Stratified between-arm covariance `Cov(p̂_e, p̂_u)` from the
    /// per-root `(R_i, y_i)` cross moments.
    pub covariance: f64,
    /// Paired risk ratio on the CV-adjusted denominator.
    pub risk_ratio: RatioEstimate,
    /// Paired risk ratio on the raw denominator.
    pub risk_ratio_raw: RatioEstimate,
    /// Equipped simulation steps spent (all branch trees).
    pub equipped_steps: u64,
    /// Unequipped simulation steps spent.
    pub unequipped_steps: u64,
}

impl SplitEstimate {
    /// Total simulated UAV-steps, both arms — the cost meter the
    /// rare-event benchmarks compare against crude sampling.
    pub fn total_steps(&self) -> u64 {
        self.equipped_steps + self.unequipped_steps
    }
}

/// One completed splitting round, streamed to observers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SplitRoundSummary {
    /// Round number (0 = pilot).
    pub round: usize,
    /// Roots allocated per stratum this round.
    pub allocated: Vec<usize>,
    /// Roots this round (sum of `allocated`).
    pub roots_this_round: usize,
    /// Cumulative roots.
    pub total_roots: usize,
    /// Cumulative simulated UAV-steps, both arms.
    pub total_steps: u64,
    /// Equipped estimate after this round.
    pub equipped_nmac: WeightedRate,
    /// CV-adjusted unequipped estimate after this round.
    pub unequipped_nmac: WeightedRate,
    /// Paired risk ratio after this round.
    pub risk_ratio: RatioEstimate,
}

/// The result of a splitting campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SplitCampaignOutcome {
    /// The final estimate.
    pub estimate: SplitEstimate,
    /// Every round in order.
    pub rounds: Vec<SplitRoundSummary>,
    /// Whether the early-stop target was reached before `max_rounds`.
    pub reached_target: bool,
}

impl SplitCampaignOutcome {
    /// Cumulative simulated UAV-steps at the first round whose paired
    /// risk-ratio CI half-width reached `target` (`None` if never).
    pub fn steps_to_half_width(&self, target: f64) -> Option<u64> {
        self.rounds
            .iter()
            .find(|r| r.risk_ratio.half_width() <= target)
            .map(|r| r.total_steps)
    }
}

/// Plans and executes multilevel-splitting campaigns: the rare-event
/// counterpart of [`crate::CampaignPlanner`], sharing its seed rules,
/// stratification, Neyman-style reallocation and paired-ratio estimate.
#[derive(Debug, Clone)]
pub struct SplitPlanner {
    runner: EncounterRunner,
    model: StatisticalEncounterModel,
    stratification: Stratification,
    config: SplitConfig,
}

impl SplitPlanner {
    /// A planner with the default statistical model and stratification.
    pub fn new(runner: EncounterRunner, config: SplitConfig) -> Self {
        Self {
            runner,
            model: StatisticalEncounterModel::default(),
            stratification: Stratification::default(),
            config,
        }
    }

    /// Overrides the statistical encounter model.
    pub fn model(mut self, model: StatisticalEncounterModel) -> Self {
        self.model = model;
        self
    }

    /// Overrides the stratification.
    pub fn stratification(mut self, stratification: Stratification) -> Self {
        self.stratification = stratification;
        self
    }

    /// Adjusts the configuration in place (builder-style).
    pub fn config_with(mut self, adjust: impl FnOnce(&mut SplitConfig)) -> Self {
        adjust(&mut self.config);
        self
    }

    /// The configured campaign parameters.
    pub fn current_config(&self) -> SplitConfig {
        self.config
    }

    /// The configured stratification.
    pub fn current_stratification(&self) -> Stratification {
        self.stratification
    }

    /// The configured statistical model.
    pub fn current_model(&self) -> StatisticalEncounterModel {
        self.model
    }

    /// The per-stratum severity ladders the campaign will branch on.
    pub fn ladders(&self) -> Vec<Vec<f64>> {
        self.stratification
            .strata()
            .iter()
            .map(|&s| {
                self.stratification.severity_levels(
                    &self.model,
                    s,
                    self.config.levels,
                    NMAC_HORIZONTAL_FT,
                )
            })
            .collect()
    }

    /// Runs the splitting campaign on the shared worker pool.
    ///
    /// # Errors
    ///
    /// Returns [`SplitConfigError`] when the configuration is
    /// degenerate; no simulation runs in that case.
    pub fn run(&self) -> Result<SplitCampaignOutcome, SplitConfigError> {
        self.run_observed(|_| {})
    }

    /// Runs the campaign, streaming each [`SplitRoundSummary`] to
    /// `observer` as soon as its round completes.
    ///
    /// # Errors
    ///
    /// Returns [`SplitConfigError`] when the configuration is
    /// degenerate; the observer is never called in that case.
    pub fn run_observed<F: FnMut(&SplitRoundSummary)>(
        &self,
        observer: F,
    ) -> Result<SplitCampaignOutcome, SplitConfigError> {
        let batch = BatchRunner::new(self.runner.clone(), Executor::new(self.config.threads));
        self.run_with_observed(&batch, observer)
    }

    /// Runs the campaign against a caller-supplied job source (rigged
    /// generators in tests, sharded backends in production).
    ///
    /// # Errors
    ///
    /// Returns [`SplitConfigError`] when the configuration is
    /// degenerate; the source is never invoked in that case.
    pub fn run_with<S: SplitSource>(
        &self,
        source: &S,
    ) -> Result<SplitCampaignOutcome, SplitConfigError> {
        self.run_with_observed(source, |_| {})
    }

    /// [`run_with`](Self::run_with) plus a per-round observer.
    ///
    /// # Errors
    ///
    /// Returns [`SplitConfigError`] when the configuration is
    /// degenerate; neither the source nor the observer is invoked then.
    pub fn run_with_observed<S: SplitSource, F: FnMut(&SplitRoundSummary)>(
        &self,
        source: &S,
        mut observer: F,
    ) -> Result<SplitCampaignOutcome, SplitConfigError> {
        // The monolithic run is the stepper driven to completion, so the
        // blocking and checkpointable paths share every line of planning,
        // absorption and estimation code.
        let mut stepper = SplitStepper::fresh(self)?;
        while let Some(planned) = stepper.plan_round() {
            let outcomes = source.run_splits(&planned.jobs);
            let summary = stepper.complete_round(&planned, &outcomes);
            observer(&summary);
        }
        Ok(stepper.outcome())
    }
}

fn split_estimate_from(
    strata: &[Stratum],
    weights: &[f64],
    bands: &[(f64, f64)],
    ladders: &[Vec<f64>],
    schedules: &[Vec<usize>],
    tallies: &[SplitTally],
) -> SplitEstimate {
    let stats: Vec<SplitStats> = tallies
        .iter()
        .zip(bands)
        .map(|(t, &band)| t.stats(band))
        .collect();
    let per_stratum: Vec<SplitStratumEstimate> = strata
        .iter()
        .zip(weights)
        .zip(tallies)
        .zip(&stats)
        .enumerate()
        .map(|(si, (((&stratum, &weight), t), s))| SplitStratumEstimate {
            stratum,
            weight,
            roots: t.roots,
            levels: ladders[si].clone(),
            branches: schedules[si].clone(),
            level_trials: t.level_trials.clone(),
            level_crossings: t.level_crossings.clone(),
            equipped_mean: s.mean_e,
            equipped_std_err: s.var_of_mean_e.sqrt(),
            unequipped: RateEstimate::wilson(t.unequipped_nmacs, t.roots),
            cv_beta: s.beta,
            unequipped_cv_rate: s.rate_u_cv,
            unequipped_cv_std_err: s.var_of_mean_u.sqrt(),
        })
        .collect();
    let equipped_nmac = combine_means(
        weights
            .iter()
            .zip(tallies)
            .zip(&stats)
            .map(|((&w, t), s)| (w, t.roots, s.mean_e, s.var_of_mean_e)),
    );
    let unequipped_nmac = combine_means(
        weights
            .iter()
            .zip(tallies)
            .zip(&stats)
            .map(|((&w, t), s)| (w, t.roots, s.rate_u_cv, s.var_of_mean_u)),
    );
    let raw_cells: Vec<(f64, usize, usize)> = weights
        .iter()
        .zip(tallies)
        .map(|(&w, t)| (w, t.unequipped_nmacs, t.roots))
        .collect();
    let unequipped_nmac_raw = WeightedRate::combine(&raw_cells);
    let covariance = combined_covariance(
        weights
            .iter()
            .zip(tallies)
            .zip(&stats)
            .map(|((&w, t), s)| (w, t.roots, s.cov)),
    );
    SplitEstimate {
        total_roots: tallies.iter().map(|t| t.roots).sum(),
        equipped_steps: tallies.iter().map(|t| t.equipped_steps).sum(),
        unequipped_steps: tallies.iter().map(|t| t.unequipped_steps).sum(),
        covariance,
        risk_ratio: RatioEstimate::paired(&equipped_nmac, &unequipped_nmac, covariance),
        risk_ratio_raw: RatioEstimate::paired(&equipped_nmac, &unequipped_nmac_raw, covariance),
        strata: per_stratum,
        equipped_nmac,
        unequipped_nmac,
        unequipped_nmac_raw,
    }
}

/// The exact resumable state of a splitting campaign at a round boundary
/// — the rare-event counterpart of
/// [`crate::campaign::CampaignCheckpoint`], with one addition: the branch
/// **schedules** in force. Round `r ≥ 1` recomputes its schedules from
/// the tallies, so they are redundant for resuming *unfinished*
/// campaigns; but a finished campaign's estimate reports the schedules of
/// its *last executed* round, which were derived from the tallies as they
/// stood **before** that round's outcomes were absorbed and cannot be
/// recovered from the final tallies alone. Carrying them keeps
/// [`SplitStepper::outcome`] byte-identical through a
/// checkpoint/restore of a finished campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SplitCheckpoint {
    /// The next round to execute (0 = the pilot has not run). Equals
    /// `rounds.len()` in any consistent checkpoint.
    pub next_round: usize,
    /// Merged per-stratum tallies in canonical stratum order.
    pub tallies: Vec<SplitTally>,
    /// The branch schedule in force per stratum (the last executed
    /// round's, or the cold-start fan-2 schedule before round 0).
    pub schedules: Vec<Vec<usize>>,
    /// Summaries of every completed round, in order.
    pub rounds: Vec<SplitRoundSummary>,
    /// Whether the early-stop target has been reached.
    pub reached_target: bool,
}

/// A [`SplitCheckpoint`] that cannot resume under the planner it was
/// handed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitResumeError {
    /// The planner's own configuration is degenerate.
    Config(SplitConfigError),
    /// The checkpoint's tally count does not match the planner's
    /// stratification.
    StratumCountMismatch {
        /// Strata in the planner's stratification.
        expected: usize,
        /// Tallies recorded in the checkpoint.
        found: usize,
    },
    /// A stratum's recorded ladder length disagrees with the planner's.
    LadderMismatch {
        /// The offending stratum index.
        stratum: usize,
        /// Branching rungs the planner's ladder has.
        expected: usize,
        /// Rungs the checkpoint recorded.
        found: usize,
    },
    /// `next_round` disagrees with the recorded round trail.
    InconsistentTrail {
        /// The checkpoint's claimed next round.
        next_round: usize,
        /// Round summaries actually recorded.
        rounds: usize,
    },
}

impl From<SplitConfigError> for SplitResumeError {
    fn from(e: SplitConfigError) -> Self {
        SplitResumeError::Config(e)
    }
}

impl std::fmt::Display for SplitResumeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SplitResumeError::Config(e) => write!(f, "split config: {e}"),
            SplitResumeError::StratumCountMismatch { expected, found } => write!(
                f,
                "split checkpoint: {found} tallies but the stratification has \
                 {expected} strata — checkpoint taken under a different design"
            ),
            SplitResumeError::LadderMismatch {
                stratum,
                expected,
                found,
            } => write!(
                f,
                "split checkpoint: stratum {stratum} recorded {found} ladder \
                 rungs but the planner's ladder has {expected}"
            ),
            SplitResumeError::InconsistentTrail { next_round, rounds } => write!(
                f,
                "split checkpoint: next_round {next_round} disagrees with \
                 {rounds} recorded round summaries"
            ),
        }
    }
}

impl std::error::Error for SplitResumeError {}

/// One planned splitting round: the root jobs to execute plus the
/// bookkeeping [`SplitStepper::complete_round`] needs to absorb their
/// outcomes in job order.
#[derive(Debug, Clone)]
pub struct PlannedSplitRound {
    /// The round these jobs belong to (0 = pilot).
    pub round: usize,
    /// Roots allocated to each stratum (canonical order).
    pub allocated: Vec<usize>,
    /// The root jobs, grouped by stratum in allocation order.
    pub jobs: Vec<SplitJob>,
    /// `owners[i]` is the stratum index that owns `jobs[i]`.
    pub owners: Vec<usize>,
}

/// A resumable round-by-round splitting-campaign executor — the engine
/// under every [`SplitPlanner`] run path, mirroring
/// [`crate::CampaignStepper`] for the rare-event workload: plan a round,
/// run its jobs on any [`SplitSource`], complete the round; checkpoint at
/// any round boundary and resume byte-identically later.
#[derive(Debug, Clone)]
pub struct SplitStepper {
    model: StatisticalEncounterModel,
    stratification: Stratification,
    config: SplitConfig,
    strata: Vec<Stratum>,
    weights: Vec<f64>,
    bands: Vec<(f64, f64)>,
    ladders: Vec<Vec<f64>>,
    tallies: Vec<SplitTally>,
    schedules: Vec<Vec<usize>>,
    rounds: Vec<SplitRoundSummary>,
    reached_target: bool,
    next_round: usize,
}

impl SplitStepper {
    fn fresh(planner: &SplitPlanner) -> Result<Self, SplitConfigError> {
        planner.config.validate()?;
        let strata = planner.stratification.strata();
        let weights: Vec<f64> = strata
            .iter()
            .map(|&s| planner.stratification.weight(&planner.model, s))
            .collect();
        let bands: Vec<(f64, f64)> = strata
            .iter()
            .map(|s| planner.stratification.cpa_bounds(&planner.model, s.cpa_bin))
            .collect();
        let ladders = planner.ladders();
        let tallies: Vec<SplitTally> = ladders.iter().map(|l| SplitTally::new(l.len())).collect();
        // Cold-start fan 2 everywhere — exactly what branch_schedule
        // returns on empty tallies, so round 0 follows the same rule.
        let schedules: Vec<Vec<usize>> = ladders.iter().map(|l| vec![2; l.len()]).collect();
        Ok(Self {
            model: planner.model,
            stratification: planner.stratification,
            config: planner.config,
            strata,
            weights,
            bands,
            ladders,
            tallies,
            schedules,
            rounds: Vec::new(),
            reached_target: false,
            next_round: 0,
        })
    }

    fn resumed(
        planner: &SplitPlanner,
        checkpoint: &SplitCheckpoint,
    ) -> Result<Self, SplitResumeError> {
        let mut stepper = Self::fresh(planner)?;
        if checkpoint.tallies.len() != stepper.strata.len()
            || checkpoint.schedules.len() != stepper.strata.len()
        {
            return Err(SplitResumeError::StratumCountMismatch {
                expected: stepper.strata.len(),
                found: checkpoint.tallies.len().min(checkpoint.schedules.len()),
            });
        }
        for (si, ladder) in stepper.ladders.iter().enumerate() {
            let found = checkpoint.tallies[si].rungs();
            if found != ladder.len() || checkpoint.schedules[si].len() != ladder.len() {
                return Err(SplitResumeError::LadderMismatch {
                    stratum: si,
                    expected: ladder.len(),
                    found,
                });
            }
        }
        if checkpoint.next_round != checkpoint.rounds.len() {
            return Err(SplitResumeError::InconsistentTrail {
                next_round: checkpoint.next_round,
                rounds: checkpoint.rounds.len(),
            });
        }
        stepper.tallies = checkpoint.tallies.clone();
        stepper.schedules = checkpoint.schedules.clone();
        stepper.rounds = checkpoint.rounds.clone();
        stepper.reached_target = checkpoint.reached_target;
        stepper.next_round = checkpoint.next_round;
        Ok(stepper)
    }

    /// Whether the campaign is over: the target was reached or every
    /// round has run. [`plan_round`](Self::plan_round) returns `None`.
    pub fn is_finished(&self) -> bool {
        self.reached_target || self.next_round > self.config.max_rounds
    }

    /// The next round to execute (0 = pilot).
    pub fn next_round(&self) -> usize {
        self.next_round
    }

    /// Summaries of the rounds completed so far, in order.
    pub fn rounds(&self) -> &[SplitRoundSummary] {
        &self.rounds
    }

    /// Total roots absorbed so far.
    pub fn total_roots(&self) -> usize {
        self.tallies.iter().map(|t| t.roots).sum()
    }

    /// Plans the next round's root jobs, or `None` when the campaign is
    /// finished. Replanning after a drop replays the identical plan:
    /// branch factors and root allocation derive purely from the tallies
    /// absorbed in previous rounds, jobs from the seed rule.
    pub fn plan_round(&mut self) -> Option<PlannedSplitRound> {
        if self.is_finished() {
            return None;
        }
        let round = self.next_round;
        let alloc = if round == 0 {
            vec![self.config.pilot_roots_per_stratum; self.strata.len()]
        } else {
            // Branch factors and root allocation both derive purely
            // from tallies absorbed in previous rounds.
            self.schedules = self
                .tallies
                .iter()
                .map(|t| {
                    let rungs = t.rungs();
                    branch_schedule(
                        &t.level_trials[..rungs],
                        &t.level_crossings[..rungs],
                        self.config.max_branch,
                    )
                })
                .collect();
            let scores = split_neyman_scores(&self.weights, &self.tallies, &self.bands);
            apportion(&scores, self.config.round_roots)
        };

        // Plan serially: every job's parameters and seed derive from
        // (campaign_seed, stratum, round, index), never from
        // execution order — the same rule plain campaigns follow.
        let roots_this_round: usize = alloc.iter().sum();
        let mut jobs = Vec::with_capacity(roots_this_round);
        let mut owners = Vec::with_capacity(roots_this_round);
        for (si, &count) in alloc.iter().enumerate() {
            for index in 0..count {
                let base = campaign_job_seed(self.config.seed, si, round, index);
                let mut rng = StdRng::seed_from_u64(base);
                let params = self
                    .stratification
                    .sample(&self.model, self.strata[si], &mut rng);
                jobs.push(SplitJob {
                    params,
                    seed: splitmix64(base ^ SIM_STREAM),
                    levels: self.ladders[si].clone(),
                    branches: self.schedules[si].clone(),
                });
                owners.push(si);
            }
        }
        Some(PlannedSplitRound {
            round,
            allocated: alloc,
            jobs,
            owners,
        })
    }

    /// Absorbs a planned round's outcomes (in job order) and advances to
    /// the next round, returning the round's summary.
    ///
    /// # Panics
    ///
    /// Panics when `planned` is not the stepper's current round or the
    /// outcome count does not match the job count.
    pub fn complete_round(
        &mut self,
        planned: &PlannedSplitRound,
        outcomes: &[SplitOutcome],
    ) -> SplitRoundSummary {
        assert_eq!(
            planned.round, self.next_round,
            "complete_round fed a stale plan: round {} but the stepper is at round {}",
            planned.round, self.next_round
        );
        assert_eq!(
            outcomes.len(),
            planned.jobs.len(),
            "a SplitSource must return exactly one outcome per job"
        );
        // Absorb serially in job order: float accumulators see one
        // canonical addition order for any thread or shard count.
        for ((&si, job), outcome) in planned.owners.iter().zip(&planned.jobs).zip(outcomes) {
            self.tallies[si].absorb(job.params.cpa_horizontal_ft, outcome);
        }

        let estimate = self.estimate();
        let summary = SplitRoundSummary {
            round: planned.round,
            allocated: planned.allocated.clone(),
            roots_this_round: planned.jobs.len(),
            total_roots: estimate.total_roots,
            total_steps: estimate.total_steps(),
            equipped_nmac: estimate.equipped_nmac,
            unequipped_nmac: estimate.unequipped_nmac,
            risk_ratio: estimate.risk_ratio,
        };
        self.rounds.push(summary.clone());
        if self.config.target_half_width.is_finite()
            && estimate.risk_ratio.half_width() <= self.config.target_half_width
        {
            self.reached_target = true;
        }
        self.next_round += 1;
        summary
    }

    fn estimate(&self) -> SplitEstimate {
        split_estimate_from(
            &self.strata,
            &self.weights,
            &self.bands,
            &self.ladders,
            &self.schedules,
            &self.tallies,
        )
    }

    /// The campaign's exact state at the current round boundary —
    /// resumable byte-identically via [`SplitPlanner::resume`].
    pub fn checkpoint(&self) -> SplitCheckpoint {
        SplitCheckpoint {
            next_round: self.next_round,
            tallies: self.tallies.clone(),
            schedules: self.schedules.clone(),
            rounds: self.rounds.clone(),
            reached_target: self.reached_target,
        }
    }

    /// The outcome as of the rounds completed so far (the final outcome
    /// once [`is_finished`](Self::is_finished)).
    pub fn outcome(&self) -> SplitCampaignOutcome {
        SplitCampaignOutcome {
            estimate: self.estimate(),
            rounds: self.rounds.clone(),
            reached_target: self.reached_target,
        }
    }
}

impl SplitPlanner {
    /// A fresh stepper for this planner — the resumable equivalent of
    /// [`SplitPlanner::run`].
    ///
    /// # Errors
    ///
    /// Returns [`SplitConfigError`] when the configuration is degenerate
    /// (same validation as every run path).
    pub fn stepper(&self) -> Result<SplitStepper, SplitConfigError> {
        SplitStepper::fresh(self)
    }

    /// Rebuilds a stepper from a [`SplitCheckpoint`]. The resumed stepper
    /// replays the remaining rounds byte-identically to an uninterrupted
    /// run of the same planner.
    ///
    /// # Errors
    ///
    /// Returns [`SplitResumeError`] when the planner's config is
    /// degenerate or the checkpoint was taken under a different
    /// stratification or ladder design.
    pub fn resume(&self, checkpoint: &SplitCheckpoint) -> Result<SplitStepper, SplitResumeError> {
        SplitStepper::resumed(self, checkpoint)
    }
}

/// Stratified combination of per-stratum `(weight, roots, mean,
/// var_of_mean)` cells into a [`WeightedRate`] — the continuous-mean
/// analogue of [`WeightedRate::combine`], with the same renormalization
/// over covered (roots > 0) strata.
fn combine_means(cells: impl Iterator<Item = (f64, usize, f64, f64)>) -> WeightedRate {
    let cells: Vec<(f64, usize, f64, f64)> = cells.collect();
    let covered: f64 = cells
        .iter()
        .filter(|&&(_, n, _, _)| n > 0)
        .map(|&(w, _, _, _)| w)
        .sum();
    if covered <= 0.0 {
        return WeightedRate {
            rate: f64::NAN,
            std_err: f64::NAN,
            ci_low: 0.0,
            ci_high: 1.0,
        };
    }
    let mut rate = 0.0;
    let mut var = 0.0;
    for &(w, n, mean, var_of_mean) in &cells {
        if n == 0 {
            continue;
        }
        let w = w / covered;
        rate += w * mean;
        var += w * w * var_of_mean;
    }
    let rate = rate.clamp(0.0, 1.0);
    let std_err = var.sqrt();
    WeightedRate {
        rate,
        std_err,
        ci_low: (rate - Z95 * std_err).max(0.0),
        ci_high: (rate + Z95 * std_err).min(1.0),
    }
}

/// Stratified between-arm covariance from per-stratum `(weight, roots,
/// per-root covariance)` cells: `Σ w'_s²·c_s/n_s` with weights
/// renormalized over covered strata, mirroring [`crate::paired_covariance`].
fn combined_covariance(cells: impl Iterator<Item = (f64, usize, f64)>) -> f64 {
    let cells: Vec<(f64, usize, f64)> = cells.collect();
    let covered: f64 = cells
        .iter()
        .filter(|&&(_, n, _)| n > 0)
        .map(|&(w, _, _)| w)
        .sum();
    if covered <= 0.0 {
        return 0.0;
    }
    cells
        .iter()
        .filter(|&&(_, n, _)| n > 0)
        .map(|&(w, n, cov)| {
            let w = w / covered;
            w * w * cov / n as f64
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(weight: f64, nmac: bool, trials: &[u64], crossings: &[u64]) -> SplitOutcome {
        SplitOutcome {
            weight,
            level_trials: trials.to_vec(),
            level_crossings: crossings.to_vec(),
            equipped_steps: 100,
            unequipped_steps: 100,
            unequipped: EncounterOutcome {
                nmac,
                first_nmac_time_s: nmac.then_some(10.0),
                min_separation_ft: if nmac { 100.0 } else { 2000.0 },
                min_horizontal_ft: if nmac { 100.0 } else { 2000.0 },
                min_vertical_ft: 50.0,
                time_of_min_s: 10.0,
                own_alert_steps: 0,
                intruder_alert_steps: 0,
                first_alert_time_s: None,
                own_reversals: 0,
                duration_s: 100.0,
            },
        }
    }

    #[test]
    fn branch_schedule_targets_inverse_conditional_rate() {
        // Unvisited levels: p̂ = ½ → K = 2 (the cold-start fan).
        assert_eq!(branch_schedule(&[0, 0], &[0, 0], 8), vec![2, 2]);
        // p̂ ≈ 1/10 → K = 10, clamped at max_branch.
        assert_eq!(branch_schedule(&[98], &[9], 16), vec![10]);
        assert_eq!(branch_schedule(&[98], &[9], 6), vec![6]);
        // Certain crossing → no branching needed.
        assert_eq!(branch_schedule(&[50], &[50], 8), vec![1]);
        // max_branch = 0 is treated as 1, never 0.
        assert_eq!(branch_schedule(&[0], &[0], 0), vec![1]);
    }

    #[test]
    fn tally_absorb_accumulates_every_moment() {
        let mut t = SplitTally::new(1);
        t.absorb(100.0, &outcome(0.25, true, &[1, 2], &[1, 1]));
        t.absorb(300.0, &outcome(0.0, false, &[1, 0], &[0, 0]));
        assert_eq!(t.roots, 2);
        assert_eq!(t.sum_weight, 0.25);
        assert_eq!(t.sum_weight_sq, 0.0625);
        assert_eq!(t.sum_cross, 0.25);
        assert_eq!(t.unequipped_nmacs, 1);
        assert_eq!(t.sum_x, 400.0);
        assert_eq!(t.sum_xy, 100.0);
        assert_eq!(t.level_trials, vec![2, 2]);
        assert_eq!(t.level_crossings, vec![1, 1]);
        assert_eq!(t.equipped_steps, 200);
    }

    #[test]
    fn degenerate_samples_keep_positive_variance() {
        // All roots identical (R = 0): the Bernoulli floor kicks in.
        let mut t = SplitTally::new(0);
        for _ in 0..50 {
            t.absorb(500.0, &outcome(0.0, false, &[1], &[0]));
        }
        let s = t.stats((0.0, 1000.0));
        assert!(s.var_of_mean_e > 0.0);
        assert!(s.var_of_mean_u > 0.0);
        assert_eq!(s.mean_e, 0.0);
        assert_eq!(s.rate_u_cv, 0.0);
    }

    #[test]
    fn control_variate_shrinks_the_variance_on_band_uniform_controls() {
        // x at the 40 band midpoints (so x̄ = μ exactly), y a threshold
        // indicator on x: the regression explains part of y's variance
        // and the adjusted standard error drops below the binomial one.
        let mut t = SplitTally::new(0);
        for k in 0..40 {
            let x = 12.5 + 25.0 * k as f64;
            let y = x < 250.0; // rate 0.25, strongly correlated with x
            t.absorb(x, &outcome(0.0, y, &[1], &[0]));
        }
        let s = t.stats((0.0, 1000.0));
        let raw = t.unequipped_nmacs as f64 / t.roots as f64;
        assert_eq!(raw, 0.25);
        assert!(s.beta < 0.0);
        // x̄ sits on μ, so the adjustment leaves the rate in place…
        assert!((s.rate_u_cv - raw).abs() < 1e-9);
        // …and the CV variance is below the raw binomial variance.
        assert!(s.var_of_mean_u < raw * (1.0 - raw) / 40.0);
        assert!(s.var_of_mean_u > 0.0);
    }

    #[test]
    fn control_variate_recenters_toward_the_known_band_mean() {
        // Roots that happened to cluster in the low half of the band
        // overstate ȳ; the known band mean pulls the estimate back.
        let mut t = SplitTally::new(0);
        for k in 0..40 {
            let x = 12.5 * k as f64; // clustered in [0, 500)
            let y = x < 250.0; // true marginal rate over the band: 0.25
            t.absorb(x, &outcome(0.0, y, &[1], &[0]));
        }
        let s = t.stats((0.0, 1000.0));
        let raw = t.unequipped_nmacs as f64 / t.roots as f64;
        // Raw rate ≈ 0.5 (half the clustered draws), adjusted lower.
        assert!((raw - 0.5).abs() < 0.05);
        assert!(s.beta < 0.0);
        assert!(s.rate_u_cv < raw - 0.1);
        // Extrapolating to μ far from x̄ honestly inflates the variance
        // through the (μ − x̄)²/S_xx leverage term.
        assert!(s.var_of_mean_u > 0.0);
    }

    #[test]
    fn config_validation_rejects_degenerate_campaigns() {
        let ok = SplitConfig::default();
        assert_eq!(ok.validate(), Ok(()));
        let cases = [
            (
                SplitConfig {
                    pilot_roots_per_stratum: 0,
                    ..ok
                },
                SplitConfigError::ZeroPilotBudget,
            ),
            (
                SplitConfig {
                    round_roots: 0,
                    ..ok
                },
                SplitConfigError::ZeroRoundRoots,
            ),
            (
                SplitConfig {
                    max_rounds: 0,
                    ..ok
                },
                SplitConfigError::ZeroRounds,
            ),
            (
                SplitConfig {
                    max_branch: 0,
                    ..ok
                },
                SplitConfigError::ZeroMaxBranch,
            ),
            (
                SplitConfig {
                    target_half_width: 0.0,
                    ..ok
                },
                SplitConfigError::NonPositiveTargetHalfWidth,
            ),
        ];
        for (config, expected) in cases {
            assert_eq!(config.validate(), Err(expected));
        }
    }

    #[test]
    fn split_config_roundtrips_including_infinite_target() {
        let config = SplitConfig::default();
        let json = serde_json::to_string(&config).expect("serializable");
        let back: SplitConfig = serde_json::from_str(&json).expect("roundtrip");
        assert_eq!(config, back);
    }

    #[test]
    fn combine_means_renormalizes_over_covered_strata() {
        let combined = combine_means(
            [
                (0.5, 10, 0.2, 0.001),
                (0.25, 0, 0.0, 0.0), // uncovered: excluded, weight renormalized
                (0.25, 10, 0.4, 0.001),
            ]
            .into_iter(),
        );
        // (0.5·0.2 + 0.25·0.4)/0.75
        assert!((combined.rate - 0.2666666666666667).abs() < 1e-12);
        assert!(combined.std_err > 0.0);
        assert!(combined.ci_low < combined.rate && combined.rate < combined.ci_high);
    }
}
